//! Criterion wrappers timing every experiment at quick scale — one bench
//! per table/figure, so `cargo bench` regenerates (a reduced form of)
//! each artifact and tracks the harness's own performance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use predbranch_bench::{all_experiments, RunContext, Scale};

fn bench_experiments(c: &mut Criterion) {
    let ctx = RunContext::new();
    let scale = Scale::quick();
    let mut group = c.benchmark_group("experiments_quick");
    group.sample_size(10);
    for exp in all_experiments() {
        group.bench_with_input(BenchmarkId::from_parameter(exp.id), &exp, |b, exp| {
            b.iter(|| {
                let artifacts = (exp.run)(&ctx, &scale);
                assert!(!artifacts.is_empty());
                artifacts.len()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_experiments
}
criterion_main!(benches);

//! Criterion microbenchmarks: raw predictor lookup/update throughput on a
//! recorded branch stream, per predictor configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use predbranch_core::{
    build_predictor, build_predictor_stack, BranchInfo, HarnessConfig, InsertFilter,
    PredictionHarness, PredictorSpec, Timing,
};
use predbranch_sim::{
    Event, EventSink, Executor, PredicateScoreboard, TraceSink, EVENT_BATCH_CAPACITY,
};
use predbranch_workloads::{compile_benchmark, suite, CompileOptions, EVAL_SEED};

/// Records the gzip analog's event stream once.
fn recorded_events() -> Vec<Event> {
    let bench = &suite()[0];
    let compiled = compile_benchmark(bench, &CompileOptions::default());
    let mut trace = TraceSink::new();
    let summary =
        Executor::new(&compiled.predicated, bench.input(EVAL_SEED)).run(&mut trace, 4_000_000);
    assert!(summary.halted);
    trace.events().to_vec()
}

fn specs() -> Vec<PredictorSpec> {
    let base = PredictorSpec::Gshare {
        index_bits: 13,
        history_bits: 13,
    };
    vec![
        PredictorSpec::Bimodal { index_bits: 14 },
        base.clone(),
        base.clone().with_sfpf(),
        base.clone().with_pgu(8),
        base.with_sfpf().with_pgu(8),
    ]
}

fn bench_predictors(c: &mut Criterion) {
    let events = recorded_events();
    let branches = events
        .iter()
        .filter(|e| matches!(e, Event::Branch(b) if b.conditional))
        .count() as u64;
    let mut group = c.benchmark_group("predictor_throughput");
    group.throughput(Throughput::Elements(branches));
    for spec in specs() {
        let name = build_predictor(&spec).name();
        group.bench_with_input(BenchmarkId::from_parameter(name), &spec, |b, spec| {
            b.iter(|| {
                let mut predictor = build_predictor(spec);
                let mut scoreboard = PredicateScoreboard::new(8);
                let mut mispredicts = 0u64;
                for event in &events {
                    match event {
                        Event::PredWrite(w) => {
                            scoreboard.observe(w);
                            predictor.on_pred_write(w);
                        }
                        Event::Branch(br) if br.conditional => {
                            let info = BranchInfo::from_event(br);
                            let predicted = predictor.predict(&info, &scoreboard);
                            if predicted != br.taken {
                                mispredicts += 1;
                            }
                            predictor.update(&info, br.taken, &scoreboard);
                        }
                        Event::Branch(_) => {}
                    }
                }
                mispredicts
            })
        });
    }
    group.finish();
}

/// Harness replay throughput over the recorded stream, crossing retire
/// latency (immediate 0 vs the study's realistic 8) with dispatch
/// (boxed trait object, per-event delivery vs enum stack, batched
/// delivery) — the four corners `experiments bench` summarizes.
fn bench_harness_replay(c: &mut Criterion) {
    let events = recorded_events();
    let branches = events
        .iter()
        .filter(|e| matches!(e, Event::Branch(b) if b.conditional))
        .count() as u64;
    let spec = PredictorSpec::Gshare {
        index_bits: 13,
        history_bits: 13,
    }
    .with_sfpf()
    .with_pgu(8);
    let config = |retire: u64| HarnessConfig {
        timing: Timing::new(8, retire),
        insert: InsertFilter::All,
    };
    let mut group = c.benchmark_group("harness_replay");
    group.throughput(Throughput::Elements(branches));
    for retire in [0u64, 8] {
        group.bench_with_input(
            BenchmarkId::new("dyn_per_event", retire),
            &retire,
            |b, &retire| {
                b.iter(|| {
                    let mut harness =
                        PredictionHarness::new(build_predictor(&spec), config(retire));
                    for event in &events {
                        harness.event(event);
                    }
                    harness.finish();
                    harness.metrics().all.mispredictions.get()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("enum_batched", retire),
            &retire,
            |b, &retire| {
                b.iter(|| {
                    let mut harness =
                        PredictionHarness::new(build_predictor_stack(&spec), config(retire));
                    for chunk in events.chunks(EVENT_BATCH_CAPACITY) {
                        harness.events(chunk);
                    }
                    harness.finish();
                    harness.metrics().all.mispredictions.get()
                })
            },
        );
    }
    group.finish();
}

fn bench_harness_end_to_end(c: &mut Criterion) {
    let bench = &suite()[0];
    let compiled = compile_benchmark(bench, &CompileOptions::default());
    c.bench_function("end_to_end_sim_plus_predict", |b| {
        b.iter(|| {
            let spec = PredictorSpec::Gshare {
                index_bits: 13,
                history_bits: 13,
            };
            let mut harness = PredictionHarness::new(
                build_predictor(&spec),
                HarnessConfig {
                    timing: Timing::immediate(8),
                    insert: InsertFilter::All,
                },
            );
            let summary = Executor::new(&compiled.predicated, bench.input(EVAL_SEED))
                .run(&mut harness, 4_000_000);
            assert!(summary.halted);
            harness.finish();
            harness.metrics().all.mispredictions.get()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_predictors, bench_harness_replay, bench_harness_end_to_end,
        bench_compile_throughput
}
criterion_main!(benches);

fn bench_compile_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile_throughput");
    group.sample_size(10);
    for name in ["gzip", "mcf", "vortex"] {
        let bench = suite().into_iter().find(|b| b.name() == name).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| {
                let compiled = compile_benchmark(&bench, &CompileOptions::default());
                compiled.predicated.len()
            })
        });
    }
    group.finish();
}

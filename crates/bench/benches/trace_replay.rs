//! Criterion comparison of the two ways to drive a predictor over a
//! benchmark: live functional simulation versus replaying a recorded
//! trace. The gap between the two is exactly what the trace cache saves
//! on every predictor configuration after the first.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use predbranch_core::{build_predictor, HarnessConfig, PredictionHarness, PredictorSpec};
use predbranch_isa::Program;
use predbranch_sim::{Executor, Memory, RunSummary};
use predbranch_trace::{program_hash, TraceHeader, TraceReader, TraceWriter};
use predbranch_workloads::{compile_benchmark, suite, CompileOptions, EVAL_SEED};

const BUDGET: u64 = 4_000_000;

/// The gzip analog's predicated binary, its input, and its trace.
fn fixture() -> (Program, Memory, Vec<u8>, RunSummary) {
    let bench = &suite()[0];
    let compiled = compile_benchmark(bench, &CompileOptions::default());
    let program = compiled.predicated;
    let header = TraceHeader::new(bench.name(), program_hash(&program), EVAL_SEED, BUDGET);
    let mut writer = TraceWriter::new(Vec::new(), &header).unwrap();
    let summary = Executor::new(&program, bench.input(EVAL_SEED)).run(&mut writer, BUDGET);
    assert!(summary.halted);
    let bytes = writer.finish(&summary).unwrap();
    (program, bench.input(EVAL_SEED), bytes, summary)
}

fn gshare() -> PredictorSpec {
    PredictorSpec::Gshare {
        index_bits: 13,
        history_bits: 13,
    }
}

fn bench_live_vs_replay(c: &mut Criterion) {
    let (program, memory, trace_bytes, summary) = fixture();
    let spec = gshare();

    let mut group = c.benchmark_group("trace_replay");
    group.sample_size(10);
    group.throughput(Throughput::Elements(summary.instructions));

    group.bench_with_input(
        BenchmarkId::new("live_sim", "gzip-gshare"),
        &spec,
        |b, spec| {
            b.iter(|| {
                let mut harness =
                    PredictionHarness::new(build_predictor(spec), HarnessConfig::default());
                let summary = Executor::new(&program, memory.clone()).run(&mut harness, BUDGET);
                assert!(summary.halted);
                harness.metrics().all.mispredictions.get()
            })
        },
    );

    group.bench_with_input(
        BenchmarkId::new("trace_replay", "gzip-gshare"),
        &spec,
        |b, spec| {
            b.iter(|| {
                let mut harness =
                    PredictionHarness::new(build_predictor(spec), HarnessConfig::default());
                TraceReader::new(trace_bytes.as_slice())
                    .unwrap()
                    .replay(&mut harness)
                    .unwrap();
                harness.metrics().all.mispredictions.get()
            })
        },
    );

    group.finish();
}

criterion_group!(benches, bench_live_vs_replay);
criterion_main!(benches);

//! Criterion comparison of the two ways to drive a predictor over a
//! benchmark: live functional simulation versus replaying a recorded
//! trace. The gap between the two is exactly what the trace cache saves
//! on every predictor configuration after the first.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use predbranch_core::{build_predictor, HarnessConfig, PredictionHarness, PredictorSpec};
use predbranch_isa::Program;
use predbranch_sim::{Executor, Memory, RunSummary};
use predbranch_trace::{program_hash, TraceHeader, TraceReader, TraceWriter};
use predbranch_workloads::{compile_benchmark, suite, CompileOptions, EVAL_SEED};

const BUDGET: u64 = 4_000_000;

/// The gzip analog's predicated binary, its input, and its trace.
fn fixture() -> (Program, Memory, Vec<u8>, RunSummary) {
    let bench = &suite()[0];
    let compiled = compile_benchmark(bench, &CompileOptions::default());
    let program = compiled.predicated;
    let header = TraceHeader::new(bench.name(), program_hash(&program), EVAL_SEED, BUDGET);
    let mut writer = TraceWriter::new(Vec::new(), &header).unwrap();
    let summary = Executor::new(&program, bench.input(EVAL_SEED)).run(&mut writer, BUDGET);
    assert!(summary.halted);
    let bytes = writer.finish(&summary).unwrap();
    (program, bench.input(EVAL_SEED), bytes, summary)
}

fn gshare() -> PredictorSpec {
    PredictorSpec::Gshare {
        index_bits: 13,
        history_bits: 13,
    }
}

fn bench_live_vs_replay(c: &mut Criterion) {
    let (program, memory, trace_bytes, summary) = fixture();
    let spec = gshare();

    let mut group = c.benchmark_group("trace_replay");
    group.sample_size(10);
    group.throughput(Throughput::Elements(summary.instructions));

    group.bench_with_input(
        BenchmarkId::new("live_sim", "gzip-gshare"),
        &spec,
        |b, spec| {
            b.iter(|| {
                let mut harness =
                    PredictionHarness::new(build_predictor(spec), HarnessConfig::default());
                let summary = Executor::new(&program, memory.clone()).run(&mut harness, BUDGET);
                assert!(summary.halted);
                harness.metrics().all.mispredictions.get()
            })
        },
    );

    group.bench_with_input(
        BenchmarkId::new("trace_replay", "gzip-gshare"),
        &spec,
        |b, spec| {
            b.iter(|| {
                let mut harness =
                    PredictionHarness::new(build_predictor(spec), HarnessConfig::default());
                TraceReader::new(trace_bytes.as_slice())
                    .unwrap()
                    .replay(&mut harness)
                    .unwrap();
                harness.metrics().all.mispredictions.get()
            })
        },
    );

    group.finish();
}

/// Gang replay over live passes: one functional simulation feeding a
/// small lane matrix against one simulation per lane — the sweep
/// runner's default versus its `--gang off` escape hatch, in miniature.
fn bench_gang_vs_per_cell(c: &mut Criterion) {
    use predbranch_core::{build_predictor_stack, GangHarness};
    use predbranch_sim::Event;

    let (program, memory, _, summary) = fixture();
    let specs: Vec<PredictorSpec> = (10..=13)
        .map(|bits| PredictorSpec::Gshare {
            index_bits: bits,
            history_bits: bits,
        })
        .collect();

    let mut group = c.benchmark_group("gang_replay");
    group.sample_size(10);
    group.throughput(Throughput::Elements(
        summary.instructions * specs.len() as u64,
    ));

    group.bench_function("per_cell/gzip-4-lanes", |b| {
        b.iter(|| {
            let mut buffer: Vec<Event> = Vec::new();
            specs
                .iter()
                .map(|spec| {
                    let mut harness = PredictionHarness::new(
                        build_predictor_stack(spec),
                        HarnessConfig::default(),
                    );
                    let summary = Executor::new(&program, memory.clone()).run_batched(
                        &mut harness,
                        BUDGET,
                        &mut buffer,
                    );
                    assert!(summary.halted);
                    harness.finish();
                    harness.metrics().all.mispredictions.get()
                })
                .sum::<u64>()
        })
    });

    group.bench_function("ganged/gzip-4-lanes", |b| {
        b.iter(|| {
            let mut gang = GangHarness::new();
            for spec in &specs {
                gang.push_lane(build_predictor_stack(spec), HarnessConfig::default());
            }
            let mut buffer: Vec<Event> = Vec::new();
            let summary =
                Executor::new(&program, memory.clone()).run_batched(&mut gang, BUDGET, &mut buffer);
            assert!(summary.halted);
            gang.into_metrics()
                .iter()
                .map(|m| m.all.mispredictions.get())
                .sum::<u64>()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_live_vs_replay, bench_gang_vs_per_cell);
criterion_main!(benches);

//! `experiments bench` — the machine-readable replay-throughput
//! baseline.
//!
//! Records one benchmark's event stream into an in-memory trace file,
//! then times the two replay pipelines the runner has shipped:
//!
//! * **dyn** — the pre-refactor pipeline: every replay decodes the
//!   trace bytes again ([`TraceReader::replay_per_event`]) and delivers
//!   one [`EventSink::event`] call per event into a harness around
//!   `Box<dyn BranchPredictor>`;
//! * **enum** — the current pipeline in its steady state: the trace is
//!   decoded once (the [`predbranch_trace::TraceCache`] memo does this
//!   across a whole sweep) and every replay delivers
//!   [`EVENT_BATCH_CAPACITY`]-sized chunks through
//!   [`EventSink::events`] into a harness around the
//!   statically-dispatched [`predbranch_core::PredictorStack`]. The
//!   one-time decode runs in the warmup pass, exactly as a sweep pays
//!   it once for dozens of replays.
//!
//! Every (config, retire latency) point is measured under both
//! pipelines in the same process on the same logical stream, the
//! prediction metrics are asserted identical (the refactor's
//! byte-identical contract), and the result is written as
//! `BENCH_7.json` so the perf trajectory accrues in CI.
//!
//! The report's second section measures **gang replay** — the default
//! sweep path since the gang refactor. A cache-less sweep used to pay
//! one full functional simulation per predictor config; ganging pays
//! one simulation per *event stream* and fans each batch into every
//! lane of a [`GangHarness`]. The bench times a sweep-sized lane
//! matrix both ways on a live executor pass, asserts the per-lane
//! metrics identical, and reports the one-pass-over-per-cell speedup.
//!
//! The third section measures **trace serving** — the zero-copy `.pbtd`
//! refactor. A sweep whose stream count exceeds the decoded memo's
//! capacity thrashes it: with sidecars disabled every replay pays a
//! full varint decode plus checksum pass (the *cold-memo* case the memo
//! was never sized for). The bench records [`SERVE_STREAMS`] distinct
//! streams into an on-disk [`TraceCache`] (more than
//! [`DECODED_MEMO_CAPACITY`] slots), replays the whole matrix
//! round-robin under both serving modes, asserts the per-stream
//! metrics identical, and reports the segment-over-decode speedup.

use std::time::Instant;

use predbranch_core::{
    build_predictor, build_predictor_stack, GangHarness, HarnessConfig, InsertFilter,
    PredictionHarness, PredictorSpec, Timing,
};
use predbranch_sim::{Event, EventSink, Executor, TraceSink, EVENT_BATCH_CAPACITY};
use predbranch_sweep::Json;
use predbranch_trace::{
    program_hash, CacheKey, TraceCache, TraceHeader, TraceReader, TraceWriter,
    DECODED_MEMO_CAPACITY,
};
use predbranch_workloads::{compile_benchmark, suite, CompileOptions, EVAL_SEED};

use crate::runner::DEFAULT_LATENCY;

/// Retire latencies the baseline covers: idealized immediate update and
/// the realistic 8-slot delay used throughout the study.
pub const RETIRE_LATENCIES: [u64; 2] = [0, 8];

/// The config whose dyn→enum speedup is the acceptance headline.
pub const HEADLINE_CONFIG: &str = "gshare+sfpf+pgu";

/// Instruction budget for every live executor pass the bench times.
const BENCH_BUDGET: u64 = 4_000_000;

/// Streams in the trace-serving matrix. Deliberately larger than
/// [`DECODED_MEMO_CAPACITY`] so the decode-per-replay baseline runs
/// cold: a round-robin pass over more streams than memo slots evicts
/// every entry before its next use.
pub const SERVE_STREAMS: usize = 12;

// the cold-memo claim only means something if a round-robin pass
// genuinely cannot fit: every replay must miss
const _: () = assert!(SERVE_STREAMS > DECODED_MEMO_CAPACITY);

/// One measured (config, retire latency) point: both pipelines, same
/// event stream, same process.
#[derive(Debug, Clone, Copy)]
pub struct BenchPoint {
    /// Human label of the predictor configuration.
    pub config: &'static str,
    /// Harness retire latency in fetch slots.
    pub retire_latency: u64,
    /// Conditional branches per second, decode-every-replay per-event
    /// dyn pipeline.
    pub dyn_branches_per_sec: f64,
    /// Conditional branches per second, decode-once batched enum
    /// pipeline.
    pub enum_branches_per_sec: f64,
    /// Conditional-branch mispredictions (identical on both paths).
    pub mispredictions: u64,
}

impl BenchPoint {
    /// enum over dyn throughput ratio.
    pub fn speedup(&self) -> f64 {
        self.enum_branches_per_sec / self.dyn_branches_per_sec
    }
}

/// One measured gang point: the whole lane matrix at one retire
/// latency, per-cell (one live functional simulation per lane — the
/// pre-gang sweep) against ganged (one simulation feeding every lane).
#[derive(Debug, Clone, Copy)]
pub struct GangPoint {
    /// Harness retire latency in fetch slots.
    pub retire_latency: u64,
    /// Predicted conditional branches per second across the matrix,
    /// one live executor pass per lane.
    pub per_cell_branches_per_sec: f64,
    /// The same work with one live executor pass feeding every lane.
    pub ganged_branches_per_sec: f64,
    /// Conditional-branch mispredictions summed over the lane matrix
    /// (asserted identical on both paths).
    pub mispredictions: u64,
}

impl GangPoint {
    /// ganged over per-cell throughput ratio.
    pub fn speedup(&self) -> f64 {
        self.ganged_branches_per_sec / self.per_cell_branches_per_sec
    }
}

/// The measured trace-serving point: a stream matrix larger than the
/// decoded memo, replayed round-robin through the same on-disk
/// [`TraceCache`] under decode-per-replay (sidecars disabled, memo
/// thrashing) and segment-served (zero-copy `.pbtd` maps) modes.
#[derive(Debug, Clone, Copy)]
pub struct ServePoint {
    /// Distinct recorded streams in the matrix.
    pub streams: usize,
    /// Decoded-memo capacity the cold baseline thrashes.
    pub memo_streams: usize,
    /// Events summed over the recorded matrix.
    pub events: u64,
    /// Conditional branches per second replaying the matrix with
    /// sidecars disabled — full varint decode on every replay.
    pub decode_branches_per_sec: f64,
    /// The same replays served zero-copy from mapped segments.
    pub segment_branches_per_sec: f64,
    /// Conditional-branch mispredictions summed over the matrix
    /// (asserted identical on both paths).
    pub mispredictions: u64,
}

impl ServePoint {
    /// segment-served over decode-per-replay throughput ratio.
    pub fn speedup(&self) -> f64 {
        self.segment_branches_per_sec / self.decode_branches_per_sec
    }
}

/// A complete baseline: the recorded stream's shape plus every point.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Benchmark the event stream was recorded from.
    pub benchmark: String,
    /// Whether the quick (reduced-tiling) stream was used.
    pub quick: bool,
    /// Timed iterations per (config, retire, pipeline) point.
    pub iterations: u32,
    /// Events in the recorded stream.
    pub events: u64,
    /// Conditional branches in the recorded stream.
    pub conditional_branches: u64,
    /// Every measured point.
    pub points: Vec<BenchPoint>,
    /// Predictor lanes in the gang matrix.
    pub gang_lanes: usize,
    /// The gang-vs-per-cell measurements, one per retire latency.
    pub gang_points: Vec<GangPoint>,
    /// The cold-memo trace-serving measurement.
    pub serving: ServePoint,
}

/// The headline predictor configs, in report order.
fn configs() -> Vec<(&'static str, PredictorSpec)> {
    let base = PredictorSpec::Gshare {
        index_bits: 13,
        history_bits: 13,
    };
    vec![
        ("gshare", base.clone()),
        ("gshare+sfpf", base.clone().with_sfpf()),
        ("gshare+pgu", base.clone().with_pgu(8)),
        (HEADLINE_CONFIG, base.with_sfpf().with_pgu(8)),
    ]
}

/// The gang lane matrix: a sweep-sized grid of classic configs — a
/// gshare budget ladder plus the paper's predicate structures at two
/// budgets. Matches the shape (not the exact membership) of the grids
/// the experiment modules sweep over one shared event stream.
fn gang_lane_specs() -> Vec<(&'static str, PredictorSpec)> {
    let g = |bits: u32| PredictorSpec::Gshare {
        index_bits: bits,
        history_bits: bits,
    };
    vec![
        ("gshare:8", g(8)),
        ("gshare:9", g(9)),
        ("gshare:10", g(10)),
        ("gshare:11", g(11)),
        ("gshare:12", g(12)),
        ("gshare:13", g(13)),
        ("gshare:10+sfpf", g(10).with_sfpf()),
        ("gshare:10+pgu", g(10).with_pgu(8)),
        ("gshare:10+sfpf+pgu", g(10).with_sfpf().with_pgu(8)),
        ("gshare:13+sfpf", g(13).with_sfpf()),
        ("gshare:13+pgu", g(13).with_pgu(8)),
        ("gshare:13+sfpf+pgu", g(13).with_sfpf().with_pgu(8)),
    ]
}

fn harness_config(retire: u64) -> HarnessConfig {
    HarnessConfig {
        timing: Timing::new(DEFAULT_LATENCY, retire),
        insert: InsertFilter::All,
    }
}

/// The recorded fixture both pipelines replay: the benchmark's name,
/// the sealed trace bytes (what the dyn pipeline decodes every
/// iteration), and the decoded event vector (what the enum pipeline's
/// memo serves). Reader/writer round-trips are lossless, so the two
/// are the same stream in different representations.
struct Fixture {
    benchmark: String,
    bytes: Vec<u8>,
    events: Vec<Event>,
}

/// Records the first suite benchmark's event stream once, then tiles
/// it with strictly increasing instruction indices into a long,
/// deterministic stream whose per-point timing is well above the noise
/// floor (the raw run is only ~50k events, a couple of milliseconds
/// per replay), and seals it as an in-memory trace file.
fn fixture(quick: bool) -> Fixture {
    let bench = &suite()[0];
    let compiled = compile_benchmark(bench, &CompileOptions::default());
    let program = compiled.predicated;
    let mut trace = TraceSink::new();
    let summary = Executor::new(&program, bench.input(EVAL_SEED)).run(&mut trace, 4_000_000);
    assert!(summary.halted, "bench workload did not halt within budget");
    let base = trace.events();
    let copies = if quick { 8 } else { 40 };
    let span = base.last().map_or(0, Event::index) + 64;

    let header = TraceHeader::new(
        bench.name(),
        program_hash(&program),
        EVAL_SEED,
        span * copies,
    );
    let mut writer = TraceWriter::new(Vec::new(), &header).expect("in-memory trace");
    let mut events = Vec::with_capacity(base.len() * copies as usize);
    for k in 0..copies {
        let offset = k * span;
        for event in base {
            let shifted = match *event {
                Event::Branch(mut b) => {
                    b.index += offset;
                    Event::Branch(b)
                }
                Event::PredWrite(mut w) => {
                    w.index += offset;
                    Event::PredWrite(w)
                }
            };
            writer.record(&shifted);
            events.push(shifted);
        }
    }
    // the tiled stream's summary: every per-run count scales linearly
    let tiled_summary = predbranch_sim::RunSummary {
        instructions: span * copies,
        branches: summary.branches * copies,
        conditional_branches: summary.conditional_branches * copies,
        region_branches: summary.region_branches * copies,
        taken_conditional: summary.taken_conditional * copies,
        pred_writes: summary.pred_writes * copies,
        halted: true,
    };
    let bytes = writer.finish(&tiled_summary).expect("in-memory trace");
    Fixture {
        benchmark: bench.name().to_string(),
        bytes,
        events,
    }
}

/// One replay through the pre-refactor pipeline: decode the sealed
/// trace bytes and deliver per-event into a boxed trait-object
/// predictor.
fn replay_dyn(
    bytes: &[u8],
    spec: &PredictorSpec,
    retire: u64,
) -> predbranch_core::PredictionMetrics {
    let mut harness = PredictionHarness::new(build_predictor(spec), harness_config(retire));
    TraceReader::new(bytes)
        .expect("sealed fixture header")
        .replay_per_event(&mut harness)
        .expect("sealed fixture replays");
    harness.finish();
    *harness.metrics()
}

/// One replay through the current pipeline's steady state: the
/// already-decoded (memoized) stream delivered in batches to the
/// statically-dispatched stack.
fn replay_enum(
    events: &[Event],
    spec: &PredictorSpec,
    retire: u64,
) -> predbranch_core::PredictionMetrics {
    let mut harness = PredictionHarness::new(build_predictor_stack(spec), harness_config(retire));
    for chunk in events.chunks(EVENT_BATCH_CAPACITY) {
        harness.events(chunk);
    }
    harness.finish();
    *harness.metrics()
}

/// Times `iterations` runs of `f`, returning the last run's result
/// and the *minimum* per-run elapsed seconds — scheduler noise and
/// cache pollution only ever add time, so the minimum is the robust
/// throughput estimator on a shared machine. One untimed warmup run
/// precedes the timed loop.
fn time_passes<T, F: FnMut() -> T>(iterations: u32, mut f: F) -> (T, f64) {
    let mut result = f(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..iterations {
        let start = Instant::now();
        result = f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (result, best)
}

/// Measures the gang matrix both ways on live executor passes: the
/// pre-gang sweep (one functional simulation per lane) against the
/// ganged default (one simulation whose batches feed every lane).
///
/// # Panics
///
/// Panics if any lane's metrics differ between the two paths — gang
/// replay must be observationally invisible.
fn run_gang_matrix(quick: bool) -> (usize, Vec<GangPoint>) {
    let bench = &suite()[0];
    let compiled = compile_benchmark(bench, &CompileOptions::default());
    let program = compiled.predicated;
    let lanes = gang_lane_specs();
    let iterations: u32 = if quick { 3 } else { 10 };

    // the stream's shape, from one untimed pass
    let mut sink = TraceSink::new();
    let summary = Executor::new(&program, bench.input(EVAL_SEED)).run(&mut sink, BENCH_BUDGET);
    assert!(summary.halted, "bench workload did not halt within budget");
    let grid_branches = (summary.conditional_branches * lanes.len() as u64) as f64;

    let mut points = Vec::new();
    for retire in RETIRE_LATENCIES {
        let per_cell_pass = || -> Vec<predbranch_core::PredictionMetrics> {
            lanes
                .iter()
                .map(|(_, spec)| {
                    let mut harness =
                        PredictionHarness::new(build_predictor_stack(spec), harness_config(retire));
                    let mut buffer = Vec::new();
                    let summary = Executor::new(&program, bench.input(EVAL_SEED)).run_batched(
                        &mut harness,
                        BENCH_BUDGET,
                        &mut buffer,
                    );
                    assert!(summary.halted);
                    harness.finish();
                    *harness.metrics()
                })
                .collect()
        };
        let ganged_pass = || -> Vec<predbranch_core::PredictionMetrics> {
            let mut gang = GangHarness::new();
            for (_, spec) in &lanes {
                gang.push_lane(build_predictor_stack(spec), harness_config(retire));
            }
            let mut buffer = Vec::new();
            let summary = Executor::new(&program, bench.input(EVAL_SEED)).run_batched(
                &mut gang,
                BENCH_BUDGET,
                &mut buffer,
            );
            assert!(summary.halted);
            gang.into_metrics()
        };

        let (per_cell_metrics, per_cell_secs) = time_passes(iterations, per_cell_pass);
        let (ganged_metrics, ganged_secs) = time_passes(iterations, ganged_pass);
        assert_eq!(
            per_cell_metrics, ganged_metrics,
            "gang and per-cell paths disagree at retire {retire}"
        );
        points.push(GangPoint {
            retire_latency: retire,
            per_cell_branches_per_sec: grid_branches / per_cell_secs,
            ganged_branches_per_sec: grid_branches / ganged_secs,
            mispredictions: ganged_metrics
                .iter()
                .map(|m| m.all.mispredictions.get())
                .sum(),
        });
    }
    (lanes.len(), points)
}

/// Measures trace serving on the cold-memo case: [`SERVE_STREAMS`]
/// distinct streams (more than the memo holds) recorded into an
/// on-disk cache, then the whole matrix replayed round-robin through a
/// light harness with sidecars disabled (every replay decodes) and
/// again segment-served (every replay reads the mapped `.pbtd`).
///
/// # Panics
///
/// Panics if the two serving modes disagree on any stream's metrics,
/// if the decode baseline was not actually cold (a memo hit), or if
/// the segment path fell back to decoding.
fn run_serving_matrix(quick: bool) -> ServePoint {
    let bench = &suite()[0];
    let compiled = compile_benchmark(bench, &CompileOptions::default());
    let program = compiled.predicated;
    let streams = SERVE_STREAMS;
    let memo_streams = DECODED_MEMO_CAPACITY;
    let iterations: u32 = if quick { 3 } else { 10 };
    let spec = PredictorSpec::Gshare {
        index_bits: 10,
        history_bits: 10,
    };

    let dir = std::env::temp_dir().join(format!("predbranch-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Record each stream once — distinct seeds, distinct labels. The
    // recorder has segments enabled, so sidecars publish at record
    // time, exactly as a sweep's first pass leaves the cache.
    let recorder = TraceCache::open(&dir).expect("trace cache dir");
    let inputs: Vec<_> = (0..streams)
        .map(|i| bench.input(EVAL_SEED + 1 + i as u64))
        .collect();
    let keys: Vec<CacheKey> = inputs
        .iter()
        .enumerate()
        .map(|(i, memory)| {
            CacheKey::for_run(format!("serve/{i:02}"), &program, memory, BENCH_BUDGET)
        })
        .collect();
    let mut events = 0u64;
    let mut branches = 0u64;
    for (key, memory) in keys.iter().zip(&inputs) {
        let mut sink = TraceSink::new();
        let (summary, replayed) = recorder
            .replay_or_record(key, &program, memory.clone(), BENCH_BUDGET, &mut sink)
            .expect("stream records");
        assert!(!replayed, "serve matrix stream was already cached");
        assert!(summary.halted, "bench workload did not halt within budget");
        events += sink.events().len() as u64;
        branches += summary.conditional_branches;
    }
    assert_eq!(
        recorder.serve_stats().segment_builds,
        streams as u64,
        "every recorded stream publishes a sidecar"
    );

    let pass = |cache: &TraceCache| -> Vec<predbranch_core::PredictionMetrics> {
        keys.iter()
            .zip(&inputs)
            .map(|(key, memory)| {
                let mut harness =
                    PredictionHarness::new(build_predictor_stack(&spec), harness_config(0));
                let (summary, replayed) = cache
                    .replay_or_record(key, &program, memory.clone(), BENCH_BUDGET, &mut harness)
                    .expect("stream replays");
                assert!(replayed && summary.halted);
                harness.finish();
                *harness.metrics()
            })
            .collect()
    };

    // Path A: the v1 decode pipeline with the memo thrashing — every
    // replay decodes. Path B: segment-served zero-copy replay.
    let decode_cache = TraceCache::open(&dir)
        .expect("trace cache dir")
        .with_segments(false)
        .with_memo_capacity(memo_streams);
    let segment_cache = TraceCache::open(&dir)
        .expect("trace cache dir")
        .with_memo_capacity(memo_streams);

    let (decode_metrics, decode_secs) = time_passes(iterations, || pass(&decode_cache));
    let (segment_metrics, segment_secs) = time_passes(iterations, || pass(&segment_cache));
    assert_eq!(
        decode_metrics, segment_metrics,
        "segment-served and decode-per-replay metrics disagree"
    );
    let memo = decode_cache.memo_stats();
    assert_eq!(
        memo.hits, 0,
        "decode baseline was not cold: round-robin over {streams} streams \
         hit a {memo_streams}-slot memo"
    );
    let serve = segment_cache.serve_stats();
    assert!(
        serve.segment_replays >= (streams as u64) * u64::from(iterations),
        "segment path fell back to decoding: {} replays served",
        serve.segment_replays
    );
    let _ = std::fs::remove_dir_all(&dir);

    let total = branches as f64;
    ServePoint {
        streams,
        memo_streams,
        events,
        decode_branches_per_sec: total / decode_secs,
        segment_branches_per_sec: total / segment_secs,
        mispredictions: decode_metrics
            .iter()
            .map(|m| m.all.mispredictions.get())
            .sum(),
    }
}

/// Runs the full baseline: every config × retire latency, both
/// pipelines, on one recorded stream.
///
/// # Panics
///
/// Panics if the two pipelines ever disagree on metrics — that would
/// mean the refactor is *not* observationally invisible.
pub fn run_bench(quick: bool) -> BenchReport {
    let fixture = fixture(quick);
    let branches = fixture
        .events
        .iter()
        .filter(|e| matches!(e, Event::Branch(b) if b.conditional))
        .count() as u64;
    let iterations: u32 = if quick { 5 } else { 15 };
    let mut points = Vec::new();
    for (name, spec) in configs() {
        for retire in RETIRE_LATENCIES {
            let (dyn_metrics, dyn_secs) =
                time_passes(iterations, || replay_dyn(&fixture.bytes, &spec, retire));
            let (enum_metrics, enum_secs) =
                time_passes(iterations, || replay_enum(&fixture.events, &spec, retire));
            assert_eq!(
                dyn_metrics, enum_metrics,
                "pipelines disagree for {name} at retire {retire}"
            );
            let total = branches as f64;
            points.push(BenchPoint {
                config: name,
                retire_latency: retire,
                dyn_branches_per_sec: total / dyn_secs,
                enum_branches_per_sec: total / enum_secs,
                mispredictions: dyn_metrics.all.mispredictions.get(),
            });
        }
    }
    let (gang_lanes, gang_points) = run_gang_matrix(quick);
    let serving = run_serving_matrix(quick);
    BenchReport {
        benchmark: fixture.benchmark,
        quick,
        iterations,
        events: fixture.events.len() as u64,
        conditional_branches: branches,
        points,
        gang_lanes,
        gang_points,
        serving,
    }
}

impl BenchReport {
    /// The headline speedup: the *minimum* enum-over-dyn ratio across
    /// retire latencies for [`HEADLINE_CONFIG`] — the conservative
    /// number the acceptance gate reads.
    pub fn headline_speedup(&self) -> f64 {
        self.points
            .iter()
            .filter(|p| p.config == HEADLINE_CONFIG)
            .map(BenchPoint::speedup)
            .fold(f64::INFINITY, f64::min)
    }

    /// The headline gang-replay speedup: the ganged-over-per-cell
    /// ratio at retire latency 0 — the sweep's default timing
    /// ([`predbranch_core::Timing::immediate`]), i.e. the shape every
    /// `experiments all` sweep actually runs, and the number the
    /// acceptance gate reads out of `BENCH_7.json`. Falls back to the
    /// minimum across points if no retire-0 point was measured.
    pub fn gang_speedup(&self) -> f64 {
        self.gang_points
            .iter()
            .find(|p| p.retire_latency == 0)
            .map(GangPoint::speedup)
            .unwrap_or_else(|| {
                self.gang_points
                    .iter()
                    .map(GangPoint::speedup)
                    .fold(f64::INFINITY, f64::min)
            })
    }

    /// The trace-serving speedup: segment-served over decode-per-replay
    /// throughput on the cold-memo matrix — the number the acceptance
    /// gate reads out of `BENCH_7.json`.
    pub fn serving_speedup(&self) -> f64 {
        self.serving.speedup()
    }

    /// Renders the machine-readable `BENCH_7.json` document.
    pub fn to_json(&self) -> Json {
        let results = self
            .points
            .iter()
            .map(|p| {
                Json::obj()
                    .field("config", p.config)
                    .field("retire_latency", p.retire_latency)
                    .field("dyn_branches_per_sec", p.dyn_branches_per_sec)
                    .field("enum_branches_per_sec", p.enum_branches_per_sec)
                    .field("speedup", p.speedup())
                    .field("mispredictions", p.mispredictions)
            })
            .collect();
        let gang_results = self
            .gang_points
            .iter()
            .map(|p| {
                Json::obj()
                    .field("retire_latency", p.retire_latency)
                    .field("per_cell_branches_per_sec", p.per_cell_branches_per_sec)
                    .field("ganged_branches_per_sec", p.ganged_branches_per_sec)
                    .field("speedup", p.speedup())
                    .field("mispredictions", p.mispredictions)
            })
            .collect();
        Json::obj()
            .field("schema", "predbranch-bench/v3")
            .field("benchmark", self.benchmark.as_str())
            .field("quick", self.quick)
            .field("iterations", u64::from(self.iterations))
            .field("events", self.events)
            .field("conditional_branches", self.conditional_branches)
            .field("results", Json::Arr(results))
            .field(
                "headline",
                Json::obj()
                    .field("config", HEADLINE_CONFIG)
                    .field("speedup", self.headline_speedup()),
            )
            .field(
                "gang",
                Json::obj()
                    .field("lanes", self.gang_lanes as u64)
                    .field("results", Json::Arr(gang_results))
                    .field("speedup", self.gang_speedup()),
            )
            .field(
                "trace_serving",
                Json::obj()
                    .field("streams", self.serving.streams as u64)
                    .field("memo_streams", self.serving.memo_streams as u64)
                    .field("events", self.serving.events)
                    .field(
                        "decode_branches_per_sec",
                        self.serving.decode_branches_per_sec,
                    )
                    .field(
                        "segment_branches_per_sec",
                        self.serving.segment_branches_per_sec,
                    )
                    .field("mispredictions", self.serving.mispredictions)
                    .field("speedup", self.serving_speedup()),
            )
    }

    /// Renders the human-readable summary table.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "replay throughput · {} · {} events · {} cond branches · {} iters",
            self.benchmark, self.events, self.conditional_branches, self.iterations
        );
        let _ = writeln!(
            out,
            "{:<18} {:>6} {:>14} {:>14} {:>8}",
            "config", "retire", "dyn br/s", "enum br/s", "speedup"
        );
        for p in &self.points {
            let _ = writeln!(
                out,
                "{:<18} {:>6} {:>14.0} {:>14.0} {:>7.2}x",
                p.config,
                p.retire_latency,
                p.dyn_branches_per_sec,
                p.enum_branches_per_sec,
                p.speedup()
            );
        }
        let _ = writeln!(
            out,
            "headline ({HEADLINE_CONFIG}): {:.2}x enum over dyn",
            self.headline_speedup()
        );
        let _ = writeln!(
            out,
            "gang replay · {} lanes · one live pass vs one pass per lane",
            self.gang_lanes
        );
        let _ = writeln!(
            out,
            "{:<18} {:>6} {:>14} {:>14} {:>8}",
            "", "retire", "per-cell br/s", "ganged br/s", "speedup"
        );
        for p in &self.gang_points {
            let _ = writeln!(
                out,
                "{:<18} {:>6} {:>14.0} {:>14.0} {:>7.2}x",
                "gang matrix",
                p.retire_latency,
                p.per_cell_branches_per_sec,
                p.ganged_branches_per_sec,
                p.speedup()
            );
        }
        let _ = writeln!(
            out,
            "gang headline: {:.2}x one ganged pass over per-cell passes \
             at the sweep default timing (retire 0)",
            self.gang_speedup()
        );
        let _ = writeln!(
            out,
            "trace serving · {} streams over a {}-slot memo (cold) · {} events",
            self.serving.streams, self.serving.memo_streams, self.serving.events
        );
        let _ = writeln!(
            out,
            "{:<18} {:>6} {:>14.0} {:>14.0} {:>7.2}x",
            "serve matrix",
            "-",
            self.serving.decode_branches_per_sec,
            self.serving.segment_branches_per_sec,
            self.serving_speedup()
        );
        let _ = writeln!(
            out,
            "serving headline: {:.2}x segment-served over decode-per-replay",
            self.serving_speedup()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelines_agree_on_the_fixture() {
        let fixture = fixture(true);
        for (_, spec) in configs() {
            for retire in RETIRE_LATENCIES {
                assert_eq!(
                    replay_dyn(&fixture.bytes, &spec, retire),
                    replay_enum(&fixture.events, &spec, retire)
                );
            }
        }
    }

    #[test]
    fn fixture_bytes_decode_to_fixture_events() {
        let fixture = fixture(true);
        let (decoded, stats) = TraceReader::new(fixture.bytes.as_slice())
            .unwrap()
            .read_events()
            .unwrap();
        assert_eq!(decoded, fixture.events);
        assert_eq!(stats.events, fixture.events.len() as u64);
    }

    #[test]
    fn report_json_shape() {
        let report = BenchReport {
            benchmark: "gzip".into(),
            quick: true,
            iterations: 1,
            events: 10,
            conditional_branches: 4,
            points: vec![BenchPoint {
                config: HEADLINE_CONFIG,
                retire_latency: 0,
                dyn_branches_per_sec: 1.0,
                enum_branches_per_sec: 2.5,
                mispredictions: 1,
            }],
            gang_lanes: 12,
            gang_points: vec![
                GangPoint {
                    retire_latency: 0,
                    per_cell_branches_per_sec: 1.0,
                    ganged_branches_per_sec: 5.0,
                    mispredictions: 3,
                },
                GangPoint {
                    retire_latency: 8,
                    per_cell_branches_per_sec: 1.0,
                    ganged_branches_per_sec: 4.0,
                    mispredictions: 3,
                },
            ],
            serving: ServePoint {
                streams: 12,
                memo_streams: 8,
                events: 120,
                decode_branches_per_sec: 1.0,
                segment_branches_per_sec: 3.0,
                mispredictions: 7,
            },
        };
        assert!((report.headline_speedup() - 2.5).abs() < 1e-9);
        // the gate reads the retire-0 (sweep default timing) gang ratio
        assert!((report.gang_speedup() - 5.0).abs() < 1e-9);
        assert!((report.serving_speedup() - 3.0).abs() < 1e-9);
        let json = report.to_json();
        assert_eq!(
            json.get("schema").and_then(Json::as_str),
            Some("predbranch-bench/v3")
        );
        assert_eq!(
            json.get("results").and_then(Json::as_arr).map(<[_]>::len),
            Some(1)
        );
        let parsed = Json::parse(&json.render()).unwrap();
        assert_eq!(
            parsed
                .get("headline")
                .and_then(|h| h.get("config"))
                .and_then(Json::as_str),
            Some(HEADLINE_CONFIG)
        );
        let gang = parsed.get("gang").unwrap();
        assert_eq!(gang.get("lanes").and_then(Json::as_u64), Some(12));
        assert_eq!(
            gang.get("results").and_then(Json::as_arr).map(<[_]>::len),
            Some(2)
        );
        assert!(gang.get("speedup").is_some());
        let serving = parsed.get("trace_serving").unwrap();
        assert_eq!(serving.get("streams").and_then(Json::as_u64), Some(12));
        assert_eq!(serving.get("memo_streams").and_then(Json::as_u64), Some(8));
        assert!(serving.get("speedup").is_some());
    }

    #[test]
    fn serve_point_speedup_is_segment_over_decode() {
        let point = ServePoint {
            streams: 12,
            memo_streams: 8,
            events: 1,
            decode_branches_per_sec: 2.0,
            segment_branches_per_sec: 9.0,
            mispredictions: 0,
        };
        assert!((point.speedup() - 4.5).abs() < 1e-9);
    }

    #[test]
    fn gang_matrix_is_sweep_sized() {
        // the speedup claim only means something against a realistic
        // grid: at least a dozen lanes, all distinct
        let lanes = gang_lane_specs();
        assert!(lanes.len() >= 12, "matrix too small: {}", lanes.len());
        let mut specs: Vec<String> = lanes.iter().map(|(_, s)| format!("{s:?}")).collect();
        specs.sort();
        specs.dedup();
        assert_eq!(specs.len(), lanes.len(), "duplicate lanes in the matrix");
    }
}

//! `experiments bench` — the machine-readable replay-throughput
//! baseline.
//!
//! Records one benchmark's event stream into an in-memory trace file,
//! then times the two replay pipelines the runner has shipped:
//!
//! * **dyn** — the pre-refactor pipeline: every replay decodes the
//!   trace bytes again ([`TraceReader::replay_per_event`]) and delivers
//!   one [`EventSink::event`] call per event into a harness around
//!   `Box<dyn BranchPredictor>`;
//! * **enum** — the current pipeline in its steady state: the trace is
//!   decoded once (the [`predbranch_trace::TraceCache`] memo does this
//!   across a whole sweep) and every replay delivers
//!   [`EVENT_BATCH_CAPACITY`]-sized chunks through
//!   [`EventSink::events`] into a harness around the
//!   statically-dispatched [`predbranch_core::PredictorStack`]. The
//!   one-time decode runs in the warmup pass, exactly as a sweep pays
//!   it once for dozens of replays.
//!
//! Every (config, retire latency) point is measured under both
//! pipelines in the same process on the same logical stream, the
//! prediction metrics are asserted identical (the refactor's
//! byte-identical contract), and the result is written as
//! `BENCH_5.json` so the perf trajectory accrues in CI.

use std::time::Instant;

use predbranch_core::{
    build_predictor, build_predictor_stack, HarnessConfig, InsertFilter, PredictionHarness,
    PredictorSpec, Timing,
};
use predbranch_sim::{Event, EventSink, Executor, TraceSink, EVENT_BATCH_CAPACITY};
use predbranch_sweep::Json;
use predbranch_trace::{program_hash, TraceHeader, TraceReader, TraceWriter};
use predbranch_workloads::{compile_benchmark, suite, CompileOptions, EVAL_SEED};

use crate::runner::DEFAULT_LATENCY;

/// Retire latencies the baseline covers: idealized immediate update and
/// the realistic 8-slot delay used throughout the study.
pub const RETIRE_LATENCIES: [u64; 2] = [0, 8];

/// The config whose dyn→enum speedup is the acceptance headline.
pub const HEADLINE_CONFIG: &str = "gshare+sfpf+pgu";

/// One measured (config, retire latency) point: both pipelines, same
/// event stream, same process.
#[derive(Debug, Clone, Copy)]
pub struct BenchPoint {
    /// Human label of the predictor configuration.
    pub config: &'static str,
    /// Harness retire latency in fetch slots.
    pub retire_latency: u64,
    /// Conditional branches per second, decode-every-replay per-event
    /// dyn pipeline.
    pub dyn_branches_per_sec: f64,
    /// Conditional branches per second, decode-once batched enum
    /// pipeline.
    pub enum_branches_per_sec: f64,
    /// Conditional-branch mispredictions (identical on both paths).
    pub mispredictions: u64,
}

impl BenchPoint {
    /// enum over dyn throughput ratio.
    pub fn speedup(&self) -> f64 {
        self.enum_branches_per_sec / self.dyn_branches_per_sec
    }
}

/// A complete baseline: the recorded stream's shape plus every point.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Benchmark the event stream was recorded from.
    pub benchmark: String,
    /// Whether the quick (reduced-tiling) stream was used.
    pub quick: bool,
    /// Timed iterations per (config, retire, pipeline) point.
    pub iterations: u32,
    /// Events in the recorded stream.
    pub events: u64,
    /// Conditional branches in the recorded stream.
    pub conditional_branches: u64,
    /// Every measured point.
    pub points: Vec<BenchPoint>,
}

/// The headline predictor configs, in report order.
fn configs() -> Vec<(&'static str, PredictorSpec)> {
    let base = PredictorSpec::Gshare {
        index_bits: 13,
        history_bits: 13,
    };
    vec![
        ("gshare", base.clone()),
        ("gshare+sfpf", base.clone().with_sfpf()),
        ("gshare+pgu", base.clone().with_pgu(8)),
        (HEADLINE_CONFIG, base.with_sfpf().with_pgu(8)),
    ]
}

fn harness_config(retire: u64) -> HarnessConfig {
    HarnessConfig {
        timing: Timing::new(DEFAULT_LATENCY, retire),
        insert: InsertFilter::All,
    }
}

/// The recorded fixture both pipelines replay: the benchmark's name,
/// the sealed trace bytes (what the dyn pipeline decodes every
/// iteration), and the decoded event vector (what the enum pipeline's
/// memo serves). Reader/writer round-trips are lossless, so the two
/// are the same stream in different representations.
struct Fixture {
    benchmark: String,
    bytes: Vec<u8>,
    events: Vec<Event>,
}

/// Records the first suite benchmark's event stream once, then tiles
/// it with strictly increasing instruction indices into a long,
/// deterministic stream whose per-point timing is well above the noise
/// floor (the raw run is only ~50k events, a couple of milliseconds
/// per replay), and seals it as an in-memory trace file.
fn fixture(quick: bool) -> Fixture {
    let bench = &suite()[0];
    let compiled = compile_benchmark(bench, &CompileOptions::default());
    let program = compiled.predicated;
    let mut trace = TraceSink::new();
    let summary = Executor::new(&program, bench.input(EVAL_SEED)).run(&mut trace, 4_000_000);
    assert!(summary.halted, "bench workload did not halt within budget");
    let base = trace.events();
    let copies = if quick { 8 } else { 40 };
    let span = base.last().map_or(0, Event::index) + 64;

    let header = TraceHeader::new(
        bench.name(),
        program_hash(&program),
        EVAL_SEED,
        span * copies,
    );
    let mut writer = TraceWriter::new(Vec::new(), &header).expect("in-memory trace");
    let mut events = Vec::with_capacity(base.len() * copies as usize);
    for k in 0..copies {
        let offset = k * span;
        for event in base {
            let shifted = match *event {
                Event::Branch(mut b) => {
                    b.index += offset;
                    Event::Branch(b)
                }
                Event::PredWrite(mut w) => {
                    w.index += offset;
                    Event::PredWrite(w)
                }
            };
            writer.record(&shifted);
            events.push(shifted);
        }
    }
    // the tiled stream's summary: every per-run count scales linearly
    let tiled_summary = predbranch_sim::RunSummary {
        instructions: span * copies,
        branches: summary.branches * copies,
        conditional_branches: summary.conditional_branches * copies,
        region_branches: summary.region_branches * copies,
        taken_conditional: summary.taken_conditional * copies,
        pred_writes: summary.pred_writes * copies,
        halted: true,
    };
    let bytes = writer.finish(&tiled_summary).expect("in-memory trace");
    Fixture {
        benchmark: bench.name().to_string(),
        bytes,
        events,
    }
}

/// One replay through the pre-refactor pipeline: decode the sealed
/// trace bytes and deliver per-event into a boxed trait-object
/// predictor.
fn replay_dyn(
    bytes: &[u8],
    spec: &PredictorSpec,
    retire: u64,
) -> predbranch_core::PredictionMetrics {
    let mut harness = PredictionHarness::new(build_predictor(spec), harness_config(retire));
    TraceReader::new(bytes)
        .expect("sealed fixture header")
        .replay_per_event(&mut harness)
        .expect("sealed fixture replays");
    harness.finish();
    *harness.metrics()
}

/// One replay through the current pipeline's steady state: the
/// already-decoded (memoized) stream delivered in batches to the
/// statically-dispatched stack.
fn replay_enum(
    events: &[Event],
    spec: &PredictorSpec,
    retire: u64,
) -> predbranch_core::PredictionMetrics {
    let mut harness = PredictionHarness::new(build_predictor_stack(spec), harness_config(retire));
    for chunk in events.chunks(EVENT_BATCH_CAPACITY) {
        harness.events(chunk);
    }
    harness.finish();
    *harness.metrics()
}

/// Times `iterations` runs of `f`, returning the last run's metrics
/// and the *minimum* per-run elapsed seconds — scheduler noise and
/// cache pollution only ever add time, so the minimum is the robust
/// throughput estimator on a shared machine. One untimed warmup run
/// precedes the timed loop.
fn time_replays<F: FnMut() -> predbranch_core::PredictionMetrics>(
    iterations: u32,
    mut f: F,
) -> (predbranch_core::PredictionMetrics, f64) {
    let mut metrics = f(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..iterations {
        let start = Instant::now();
        metrics = f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (metrics, best)
}

/// Runs the full baseline: every config × retire latency, both
/// pipelines, on one recorded stream.
///
/// # Panics
///
/// Panics if the two pipelines ever disagree on metrics — that would
/// mean the refactor is *not* observationally invisible.
pub fn run_bench(quick: bool) -> BenchReport {
    let fixture = fixture(quick);
    let branches = fixture
        .events
        .iter()
        .filter(|e| matches!(e, Event::Branch(b) if b.conditional))
        .count() as u64;
    let iterations: u32 = if quick { 5 } else { 15 };
    let mut points = Vec::new();
    for (name, spec) in configs() {
        for retire in RETIRE_LATENCIES {
            let (dyn_metrics, dyn_secs) =
                time_replays(iterations, || replay_dyn(&fixture.bytes, &spec, retire));
            let (enum_metrics, enum_secs) =
                time_replays(iterations, || replay_enum(&fixture.events, &spec, retire));
            assert_eq!(
                dyn_metrics, enum_metrics,
                "pipelines disagree for {name} at retire {retire}"
            );
            let total = branches as f64;
            points.push(BenchPoint {
                config: name,
                retire_latency: retire,
                dyn_branches_per_sec: total / dyn_secs,
                enum_branches_per_sec: total / enum_secs,
                mispredictions: dyn_metrics.all.mispredictions.get(),
            });
        }
    }
    BenchReport {
        benchmark: fixture.benchmark,
        quick,
        iterations,
        events: fixture.events.len() as u64,
        conditional_branches: branches,
        points,
    }
}

impl BenchReport {
    /// The headline speedup: the *minimum* enum-over-dyn ratio across
    /// retire latencies for [`HEADLINE_CONFIG`] — the conservative
    /// number the acceptance gate reads.
    pub fn headline_speedup(&self) -> f64 {
        self.points
            .iter()
            .filter(|p| p.config == HEADLINE_CONFIG)
            .map(BenchPoint::speedup)
            .fold(f64::INFINITY, f64::min)
    }

    /// Renders the machine-readable `BENCH_5.json` document.
    pub fn to_json(&self) -> Json {
        let results = self
            .points
            .iter()
            .map(|p| {
                Json::obj()
                    .field("config", p.config)
                    .field("retire_latency", p.retire_latency)
                    .field("dyn_branches_per_sec", p.dyn_branches_per_sec)
                    .field("enum_branches_per_sec", p.enum_branches_per_sec)
                    .field("speedup", p.speedup())
                    .field("mispredictions", p.mispredictions)
            })
            .collect();
        Json::obj()
            .field("schema", "predbranch-bench/v1")
            .field("benchmark", self.benchmark.as_str())
            .field("quick", self.quick)
            .field("iterations", u64::from(self.iterations))
            .field("events", self.events)
            .field("conditional_branches", self.conditional_branches)
            .field("results", Json::Arr(results))
            .field(
                "headline",
                Json::obj()
                    .field("config", HEADLINE_CONFIG)
                    .field("speedup", self.headline_speedup()),
            )
    }

    /// Renders the human-readable summary table.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "replay throughput · {} · {} events · {} cond branches · {} iters",
            self.benchmark, self.events, self.conditional_branches, self.iterations
        );
        let _ = writeln!(
            out,
            "{:<18} {:>6} {:>14} {:>14} {:>8}",
            "config", "retire", "dyn br/s", "enum br/s", "speedup"
        );
        for p in &self.points {
            let _ = writeln!(
                out,
                "{:<18} {:>6} {:>14.0} {:>14.0} {:>7.2}x",
                p.config,
                p.retire_latency,
                p.dyn_branches_per_sec,
                p.enum_branches_per_sec,
                p.speedup()
            );
        }
        let _ = writeln!(
            out,
            "headline ({HEADLINE_CONFIG}): {:.2}x enum over dyn",
            self.headline_speedup()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelines_agree_on_the_fixture() {
        let fixture = fixture(true);
        for (_, spec) in configs() {
            for retire in RETIRE_LATENCIES {
                assert_eq!(
                    replay_dyn(&fixture.bytes, &spec, retire),
                    replay_enum(&fixture.events, &spec, retire)
                );
            }
        }
    }

    #[test]
    fn fixture_bytes_decode_to_fixture_events() {
        let fixture = fixture(true);
        let (decoded, stats) = TraceReader::new(fixture.bytes.as_slice())
            .unwrap()
            .read_events()
            .unwrap();
        assert_eq!(decoded, fixture.events);
        assert_eq!(stats.events, fixture.events.len() as u64);
    }

    #[test]
    fn report_json_shape() {
        let report = BenchReport {
            benchmark: "gzip".into(),
            quick: true,
            iterations: 1,
            events: 10,
            conditional_branches: 4,
            points: vec![BenchPoint {
                config: HEADLINE_CONFIG,
                retire_latency: 0,
                dyn_branches_per_sec: 1.0,
                enum_branches_per_sec: 2.5,
                mispredictions: 1,
            }],
        };
        assert!((report.headline_speedup() - 2.5).abs() < 1e-9);
        let json = report.to_json();
        assert_eq!(
            json.get("schema").and_then(Json::as_str),
            Some("predbranch-bench/v1")
        );
        assert_eq!(
            json.get("results").and_then(Json::as_arr).map(<[_]>::len),
            Some(1)
        );
        let parsed = Json::parse(&json.render()).unwrap();
        assert_eq!(
            parsed
                .get("headline")
                .and_then(|h| h.get("config"))
                .and_then(Json::as_str),
            Some(HEADLINE_CONFIG)
        );
    }
}

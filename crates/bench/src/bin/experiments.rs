//! Regenerates the study's tables and figures as text.
//!
//! ```text
//! experiments                # list experiments
//! experiments all            # run everything (full suite)
//! experiments f3 f5          # run selected experiments
//! experiments --quick all    # 3-benchmark quick mode
//! experiments --bars f5      # render series as text bar charts too
//! experiments --markdown all # fence artifacts for EXPERIMENTS.md
//! experiments --trace-cache .traces f5
//!                            # execute each (binary, input) once,
//!                            # replay recorded traces for every predictor
//! experiments --jobs 8 all   # run experiment cells on 8 worker lanes;
//!                            # stdout is byte-identical to --jobs 1
//! experiments --retire-latency 8 f3
//!                            # commit predictor training 8 fetch slots
//!                            # after each branch instead of immediately
//! experiments --manifest run.json all
//!                            # write a JSON run record (cells, sources,
//!                            # wall-clock, cache traffic)
//! experiments --checkpoint run.ckpt all
//!                            # journal completed cells; an interrupted
//!                            # sweep resumes from where it died
//! experiments --dispatch dyn all
//!                            # drive predictors through the boxed
//!                            # trait-object path instead of the
//!                            # statically-dispatched enum stack
//!                            # (identical output, for A/B checks)
//! experiments --gang off all # run one replay pass per cell instead of
//!                            # ganging stream-sharing cells into one
//!                            # pass (identical output, for A/B checks)
//! experiments --shard 0/2 --checkpoint s0.ckpt --manifest s0.json all
//!                            # run only the gang units this shard owns
//!                            # (deterministic partition by stream
//!                            # digest); artifacts are suppressed — the
//!                            # shard journal/manifest are the product
//! experiments merge --out merged.ckpt --manifest merged.json \
//!     s0.ckpt s1.ckpt s0.json s1.json
//!                            # stitch shard journals (.ckpt) and
//!                            # manifests (.json) into canonical merged
//!                            # forms, exactly-once by cell key; a
//!                            # finalize pass over merged.ckpt then
//!                            # reprints the sweep byte-identically
//! experiments --memo-streams 16 --trace-cache .traces all
//!                            # cap the decoded-event memo (v1-only
//!                            # fallback path) at 16 streams
//! experiments --list-stacks  # list every statically-dispatched
//!                            # predictor stack (generated from the
//!                            # stack macros, never hand-maintained)
//! experiments bench --json --quick
//!                            # measure replay throughput (dyn vs enum,
//!                            # gang vs per-cell, segment-served vs
//!                            # decode-per-replay) and write BENCH_7.json
//! ```

use std::process::ExitCode;

use predbranch_bench::experiments::find_experiment;
use predbranch_bench::runner::{Dispatch, Gang, RunContext, Shard};
use predbranch_bench::{all_experiments, benchmode, Scale};
use predbranch_sweep::{merge_journals, merge_manifests, Json, ManifestBuilder};

/// The `merge` subcommand: stitch shard-scoped journals (`.ckpt`
/// positionals, merged to `--out`) and manifests (`.json` positionals,
/// merged to `--manifest`) into their canonical forms. Exactly-once by
/// content-addressed cell key; conflicting duplicates are refused.
fn run_merge(
    out: Option<&str>,
    manifest_out: Option<&str>,
    inputs: &[String],
) -> Result<(), String> {
    let mut journals: Vec<(String, String)> = Vec::new();
    let mut manifests: Vec<(String, Json)> = Vec::new();
    for path in inputs {
        let read =
            |p: &str| std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"));
        if path.ends_with(".ckpt") {
            journals.push((path.clone(), read(path)?));
        } else if path.ends_with(".json") {
            let parsed =
                Json::parse(&read(path)?).map_err(|e| format!("cannot parse {path}: {e}"))?;
            manifests.push((path.clone(), parsed));
        } else {
            return Err(format!(
                "merge input {path} is neither a journal (.ckpt) nor a manifest (.json)"
            ));
        }
    }
    if journals.is_empty() && manifests.is_empty() {
        return Err("merge needs at least one .ckpt or .json input".into());
    }
    if !journals.is_empty() {
        let out = out.ok_or("merging journals needs --out <merged.ckpt>")?;
        let (text, report) = merge_journals(&journals)?;
        std::fs::write(out, text).map_err(|e| format!("cannot write {out}: {e}"))?;
        eprintln!("merged {} journals -> {out}: {report}", journals.len());
    }
    if !manifests.is_empty() {
        let out = manifest_out.ok_or("merging manifests needs --manifest <merged.json>")?;
        let (merged, report) = merge_manifests(&manifests)?;
        std::fs::write(out, merged.pretty()).map_err(|e| format!("cannot write {out}: {e}"))?;
        eprintln!("merged {} manifests -> {out}: {report}", manifests.len());
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let command = format!("experiments {}", args.join(" "));
    let mut flag = |name: &str| -> bool {
        if let Some(pos) = args.iter().position(|a| a == name) {
            args.remove(pos);
            true
        } else {
            false
        }
    };
    let quick = flag("--quick");
    let bars = flag("--bars");
    let markdown = flag("--markdown");
    let json = flag("--json");
    if flag("--list-stacks") {
        // generated straight from the stack macros' variant tables, so
        // the listing can never drift from the dispatch enums
        println!("available predictor stacks (variant  payload type):");
        for variant in predbranch_modern::all_stack_variants() {
            println!("  {:<20} {}", variant.name, variant.type_name());
        }
        return ExitCode::SUCCESS;
    }
    let mut valued = |name: &str| -> Result<Option<String>, String> {
        match args.iter().position(|a| a == name) {
            Some(pos) if pos + 1 < args.len() => {
                let value = args.remove(pos + 1);
                args.remove(pos);
                Ok(Some(value))
            }
            Some(_) => Err(format!("{name} needs a value")),
            None => Ok(None),
        }
    };
    let (
        trace_cache,
        jobs,
        manifest_path,
        checkpoint_path,
        retire,
        dispatch,
        gang,
        out,
        shard,
        memo,
    ) = match (
        valued("--trace-cache"),
        valued("--jobs"),
        valued("--manifest"),
        valued("--checkpoint"),
        valued("--retire-latency"),
        valued("--dispatch"),
        valued("--gang"),
        valued("--out"),
        valued("--shard"),
        valued("--memo-streams"),
    ) {
        (Ok(tc), Ok(j), Ok(m), Ok(c), Ok(r), Ok(d), Ok(g), Ok(o), Ok(s), Ok(ms)) => {
            (tc, j, m, c, r, d, g, o, s, ms)
        }
        (tc, j, m, c, r, d, g, o, s, ms) => {
            for err in [
                tc.err(),
                j.err(),
                m.err(),
                c.err(),
                r.err(),
                d.err(),
                g.err(),
                o.err(),
                s.err(),
                ms.err(),
            ]
            .into_iter()
            .flatten()
            {
                eprintln!("{err}");
            }
            return ExitCode::FAILURE;
        }
    };
    let jobs: usize = match jobs.as_deref().map(str::parse).transpose() {
        Ok(n) => n.unwrap_or(1).max(1),
        Err(e) => {
            eprintln!("--jobs needs a positive integer: {e}");
            return ExitCode::FAILURE;
        }
    };
    let retire: u64 = match retire.as_deref().map(str::parse).transpose() {
        Ok(n) => n.unwrap_or(0),
        Err(e) => {
            eprintln!("--retire-latency needs a non-negative integer: {e}");
            return ExitCode::FAILURE;
        }
    };
    let dispatch: Dispatch = match dispatch.as_deref().map(str::parse).transpose() {
        Ok(d) => d.unwrap_or_default(),
        Err(e) => {
            eprintln!("--dispatch: {e}");
            return ExitCode::FAILURE;
        }
    };
    let gang: Gang = match gang.as_deref().map(str::parse).transpose() {
        Ok(g) => g.unwrap_or_default(),
        Err(e) => {
            eprintln!("--gang: {e}");
            return ExitCode::FAILURE;
        }
    };
    let shard: Option<Shard> = match shard.as_deref().map(str::parse).transpose() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("--shard: {e}");
            return ExitCode::FAILURE;
        }
    };
    let memo: Option<usize> = match memo.as_deref().map(str::parse).transpose() {
        Ok(n) => n,
        Err(e) => {
            eprintln!("--memo-streams needs a non-negative integer: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.first().map(String::as_str) == Some("merge") {
        return match run_merge(out.as_deref(), manifest_path.as_deref(), &args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        };
    }

    if args.iter().any(|a| a == "bench") {
        eprintln!("running bench — replay throughput baseline ...");
        let report = benchmode::run_bench(quick);
        print!("{}", report.to_text());
        if json {
            let path = out.as_deref().unwrap_or("BENCH_7.json");
            let body = format!("{}\n", report.to_json().render());
            if let Err(e) = std::fs::write(path, body) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
        return ExitCode::SUCCESS;
    }

    let mut ctx = RunContext::new()
        .with_jobs(jobs)
        .with_dispatch(dispatch)
        .with_gang(gang);
    if let Some(n) = memo {
        ctx = ctx.with_memo_streams(n);
    }
    if let Some(s) = shard {
        ctx = ctx.with_shard(s);
        if checkpoint_path.is_none() {
            eprintln!(
                "warning: --shard {s} without --checkpoint discards this shard's results \
                 (the journal is the product of a sharded run)"
            );
        }
    }
    if let Some(dir) = &trace_cache {
        ctx = match ctx.with_trace_cache(dir) {
            Ok(ctx) => ctx,
            Err(e) => {
                eprintln!("cannot open trace cache {dir}: {e}");
                return ExitCode::FAILURE;
            }
        };
    }
    if let Some(path) = &checkpoint_path {
        ctx = match ctx.with_checkpoint(path) {
            Ok(ctx) => {
                eprintln!(
                    "checkpoint {path}: {} completed cells loaded",
                    ctx.checkpoint_loaded().unwrap_or(0)
                );
                ctx
            }
            Err(e) => {
                eprintln!("cannot open checkpoint {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
    }
    if let (Some(s), Some(_)) = (shard, &checkpoint_path) {
        // shard provenance in the journal itself: a keyless note line
        // the loader skips and the merge step drops
        let note = Json::obj()
            .field("note", "shard")
            .field("index", u64::from(s.index))
            .field("of", u64::from(s.count))
            .field("command", command.as_str());
        if let Err(e) = ctx.checkpoint_note(&note) {
            eprintln!("warning: cannot stamp shard provenance: {e}");
        }
    }
    if manifest_path.is_some() {
        let mut manifest = ManifestBuilder::new(&command, jobs);
        if let Some(s) = shard {
            manifest = manifest.with_shard(s.index, s.count);
        }
        manifest.fingerprint(
            "compile-options",
            format!(
                "{:016x}",
                predbranch_workloads::CompileOptions::default().fingerprint()
            ),
        );
        ctx = ctx.with_manifest(manifest);
    }
    let scale = if quick { Scale::quick() } else { Scale::full() }.with_retire(retire);

    if args.is_empty() {
        println!("experiments — regenerate the study's tables and figures\n");
        println!(
            "usage: experiments [--quick] [--jobs N] [--retire-latency R] \
             [--dispatch enum|dyn] [--gang on|off] [--trace-cache <dir>] \
             [--memo-streams N] [--shard i/N] \
             [--manifest <file>] [--checkpoint <file>] <id>... | all \
             | bench [--json] [--out <file>] \
             | merge --out <merged.ckpt> --manifest <merged.json> <shard files>... \
             | --list-stacks\n"
        );
        for exp in all_experiments() {
            println!("  {:<4} {}", exp.id, exp.title);
        }
        return ExitCode::SUCCESS;
    }

    let selected = if args.iter().any(|a| a == "all") {
        all_experiments()
    } else {
        let mut chosen = Vec::new();
        for id in &args {
            match find_experiment(id) {
                Some(exp) => chosen.push(exp),
                None => {
                    eprintln!("unknown experiment `{id}` (run with no arguments to list)");
                    return ExitCode::FAILURE;
                }
            }
        }
        chosen
    };

    for exp in selected {
        eprintln!("running {} — {} ...", exp.id, exp.title);
        if markdown && shard.is_none() {
            println!("## {} — {}\n", exp.id, exp.title);
        }
        for artifact in (exp.run)(&ctx, &scale) {
            // a shard computes only the cells it owns, so its aggregate
            // artifacts would mix real numbers with placeholders —
            // suppress them; the journal/manifest are the product, and
            // a finalize pass over the merged journal reprints the
            // sweep byte-identically
            if shard.is_some() {
                continue;
            }
            if markdown {
                println!("```text\n{artifact}```\n");
            } else {
                println!("{artifact}");
            }
            if bars {
                if let predbranch_bench::Artifact::Series(series) = &artifact {
                    println!("{}", series.to_bars(50));
                }
            }
        }
    }
    let stats = ctx.stats();
    if let Some(s) = shard {
        eprintln!(
            "shard {s}: {} cells outside this shard skipped",
            stats.shard_skips
        );
    }
    if trace_cache.is_some() {
        eprintln!(
            "trace cache: {} replays, {} recordings",
            stats.replays, stats.recordings
        );
        if let Some(memo) = ctx.memo_stats() {
            eprintln!(
                "decode memo: {} hits, {} misses, {} evictions (capacity {})",
                memo.hits, memo.misses, memo.evictions, memo.capacity
            );
        }
    }
    if checkpoint_path.is_some() && stats.checkpoint_hits > 0 {
        eprintln!(
            "checkpoint: {} cells restored without re-running",
            stats.checkpoint_hits
        );
    }
    if let (Some(path), Some(manifest)) = (&manifest_path, ctx.manifest()) {
        let cache = trace_cache
            .as_ref()
            .map(|_| (stats.replays, stats.recordings));
        match manifest.write(path, cache) {
            Ok(()) => eprintln!("manifest: {} cells -> {path}", manifest.cell_count()),
            Err(e) => {
                eprintln!("cannot write manifest {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

//! Regenerates the study's tables and figures as text.
//!
//! ```text
//! experiments                # list experiments
//! experiments all            # run everything (full suite)
//! experiments f3 f5          # run selected experiments
//! experiments --quick all    # 3-benchmark quick mode
//! experiments --bars f5      # render series as text bar charts too
//! experiments --markdown all # fence artifacts for EXPERIMENTS.md
//! experiments --trace-cache .traces f5
//!                            # execute each (binary, input) once,
//!                            # replay recorded traces for every predictor
//! ```

use std::process::ExitCode;

use predbranch_bench::experiments::find_experiment;
use predbranch_bench::{all_experiments, Scale};

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let quick = if let Some(pos) = args.iter().position(|a| a == "--quick") {
        args.remove(pos);
        true
    } else {
        false
    };
    let bars = if let Some(pos) = args.iter().position(|a| a == "--bars") {
        args.remove(pos);
        true
    } else {
        false
    };
    let markdown = if let Some(pos) = args.iter().position(|a| a == "--markdown") {
        args.remove(pos);
        true
    } else {
        false
    };
    let trace_cache = if let Some(pos) = args.iter().position(|a| a == "--trace-cache") {
        if pos + 1 >= args.len() {
            eprintln!("--trace-cache needs a directory");
            return ExitCode::FAILURE;
        }
        let dir = args.remove(pos + 1);
        args.remove(pos);
        Some(dir)
    } else {
        None
    };
    if let Some(dir) = &trace_cache {
        if let Err(e) = predbranch_bench::runner::set_trace_cache(dir) {
            eprintln!("cannot open trace cache {dir}: {e}");
            return ExitCode::FAILURE;
        }
    }
    let scale = if quick { Scale::quick() } else { Scale::full() };

    if args.is_empty() {
        println!("experiments — regenerate the study's tables and figures\n");
        println!("usage: experiments [--quick] [--trace-cache <dir>] <id>... | all\n");
        for exp in all_experiments() {
            println!("  {:<4} {}", exp.id, exp.title);
        }
        return ExitCode::SUCCESS;
    }

    let selected = if args.iter().any(|a| a == "all") {
        all_experiments()
    } else {
        let mut chosen = Vec::new();
        for id in &args {
            match find_experiment(id) {
                Some(exp) => chosen.push(exp),
                None => {
                    eprintln!("unknown experiment `{id}` (run with no arguments to list)");
                    return ExitCode::FAILURE;
                }
            }
        }
        chosen
    };

    for exp in selected {
        eprintln!("running {} — {} ...", exp.id, exp.title);
        if markdown {
            println!("## {} — {}\n", exp.id, exp.title);
        }
        for artifact in (exp.run)(&scale) {
            if markdown {
                println!("```text\n{artifact}```\n");
            } else {
                println!("{artifact}");
            }
            if bars {
                if let predbranch_bench::Artifact::Series(series) = &artifact {
                    println!("{}", series.to_bars(50));
                }
            }
        }
    }
    if trace_cache.is_some() {
        let (replays, recordings) = predbranch_bench::runner::trace_cache_stats();
        eprintln!("trace cache: {replays} replays, {recordings} recordings");
    }
    ExitCode::SUCCESS
}

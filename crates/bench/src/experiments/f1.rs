//! F1 — motivation: if-conversion removes easy branches and concentrates
//! mispredictions in the residue.
//!
//! A gshare baseline is run over each benchmark's plain and predicated
//! binaries. If-conversion removes many (often well-predicted) branches;
//! the surviving region-based branches carry a *higher* misprediction
//! rate — the paper's opening observation.

use predbranch_core::InsertFilter;
use predbranch_stats::{mean, Cell, Table};

use super::{base_spec, Artifact, Scale};
use crate::runner::{CellSpec, RunContext};

pub(crate) fn run(ctx: &RunContext, scale: &Scale) -> Vec<Artifact> {
    let spec = base_spec();
    let entries = ctx.suite(scale.limit);
    let mut cells = Vec::with_capacity(entries.len() * 2);
    for entry in entries.iter() {
        let name = entry.compiled.name;
        cells.push(CellSpec::plain(
            entry,
            format!("f1/{name}/plain"),
            &spec,
            scale.timing(),
            InsertFilter::All,
        ));
        cells.push(CellSpec::predicated(
            entry,
            format!("f1/{name}/pred"),
            &spec,
            scale.timing(),
            InsertFilter::All,
        ));
    }
    let outs = ctx.run_cells(cells);

    let mut table = Table::new(
        "F1: gshare misprediction rate, plain vs if-converted code",
        &[
            "bench",
            "plain misp%",
            "pred misp%",
            "region misp%",
            "plain MPKI",
            "pred MPKI",
        ],
    );
    let mut plain_rates = Vec::new();
    let mut pred_rates = Vec::new();
    let mut region_rates = Vec::new();
    for (i, entry) in entries.iter().enumerate() {
        let plain = &outs[2 * i];
        let pred = &outs[2 * i + 1];
        plain_rates.push(plain.misp_percent());
        pred_rates.push(pred.misp_percent());
        region_rates.push(pred.region_misp_percent());
        table.row(vec![
            Cell::new(entry.compiled.name),
            Cell::percent(plain.misp_percent()),
            Cell::percent(pred.misp_percent()),
            Cell::percent(pred.region_misp_percent()),
            Cell::float(plain.mpki(), 2),
            Cell::float(pred.mpki(), 2),
        ]);
    }
    table.row(vec![
        Cell::new("mean"),
        Cell::percent(mean(&plain_rates)),
        Cell::percent(mean(&pred_rates)),
        Cell::percent(mean(&region_rates)),
        Cell::new("-"),
        Cell::new("-"),
    ]);
    vec![Artifact::Table(table)]
}

//! F10 — PGU insertion-filter ablation: *which* predicate definitions
//! should enter global history?
//!
//! Inserting everything maximizes correlation but dilutes history with
//! uninformative bits (initializations, or-forwards); inserting only the
//! compares that define some branch's guard keeps the history dense.
//! The ablation also crosses the filter with insertion timing.

use predbranch_core::{guard_def_pcs, InsertFilter};
use predbranch_stats::{mean, Cell, Table};

use super::{base_spec, Artifact, Scale};
use crate::runner::{CellSpec, RunContext, PGU_DELAY};

const COLUMNS: usize = 5;

pub(crate) fn run(ctx: &RunContext, scale: &Scale) -> Vec<Artifact> {
    let entries = ctx.suite(scale.limit);
    let mut cells_in = Vec::with_capacity(entries.len() * COLUMNS);
    for entry in entries.iter() {
        let guard_pcs = guard_def_pcs(&entry.compiled.predicated);
        let configs: [(&str, u64, InsertFilter); COLUMNS] = [
            ("none-d8", PGU_DELAY, InsertFilter::None),
            ("all-d8", PGU_DELAY, InsertFilter::All),
            ("guard-d8", PGU_DELAY, InsertFilter::Pcs(guard_pcs.clone())),
            ("all-d0", 0, InsertFilter::All),
            ("guard-d0", 0, InsertFilter::Pcs(guard_pcs)),
        ];
        for (tag, delay, insert) in configs {
            cells_in.push(CellSpec::predicated(
                entry,
                format!("f10/{}/{tag}", entry.compiled.name),
                base_spec().with_pgu(delay),
                scale.timing(),
                insert,
            ));
        }
    }
    let outs = ctx.run_cells(cells_in);

    let mut table = Table::new(
        "F10: PGU misprediction rate (%) by insertion filter and delay",
        &[
            "bench",
            "none (=gshare)",
            "all defs d8",
            "guard defs d8",
            "all defs d0",
            "guard defs d0",
        ],
    );
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); COLUMNS];
    for (row, entry) in entries.iter().enumerate() {
        let mut cells = vec![Cell::new(entry.compiled.name)];
        for (col, column) in columns.iter_mut().enumerate() {
            let out = &outs[row * COLUMNS + col];
            column.push(out.misp_percent());
            cells.push(Cell::percent(out.misp_percent()));
        }
        table.row(cells);
    }
    let mut amean = vec![Cell::new("amean")];
    for col in &columns {
        amean.push(Cell::percent(mean(col)));
    }
    table.row(amean);
    vec![Artifact::Table(table)]
}

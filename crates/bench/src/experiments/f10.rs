//! F10 — PGU insertion-filter ablation: *which* predicate definitions
//! should enter global history?
//!
//! Inserting everything maximizes correlation but dilutes history with
//! uninformative bits (initializations, or-forwards); inserting only the
//! compares that define some branch's guard keeps the history dense.
//! The ablation also crosses the filter with insertion timing.

use predbranch_core::{guard_def_pcs, InsertFilter};
use predbranch_stats::{mean, Cell, Table};

use super::{base_spec, Artifact, Scale};
use crate::runner::{compiled_suite, run_spec, DEFAULT_LATENCY, PGU_DELAY};

pub(crate) fn run(scale: &Scale) -> Vec<Artifact> {
    let entries = compiled_suite(scale.limit);

    let mut table = Table::new(
        "F10: PGU misprediction rate (%) by insertion filter and delay",
        &[
            "bench",
            "none (=gshare)",
            "all defs d8",
            "guard defs d8",
            "all defs d0",
            "guard defs d0",
        ],
    );
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); 5];
    for entry in &entries {
        let guard_pcs = guard_def_pcs(&entry.compiled.predicated);
        let configs: Vec<(u64, InsertFilter)> = vec![
            (PGU_DELAY, InsertFilter::None),
            (PGU_DELAY, InsertFilter::All),
            (PGU_DELAY, InsertFilter::Pcs(guard_pcs.clone())),
            (0, InsertFilter::All),
            (0, InsertFilter::Pcs(guard_pcs)),
        ];
        let mut cells = vec![Cell::new(entry.compiled.name)];
        for (col, (delay, insert)) in configs.into_iter().enumerate() {
            let spec = base_spec().with_pgu(delay);
            let out = run_spec(
                &entry.compiled.predicated,
                entry.eval_input(),
                &spec,
                DEFAULT_LATENCY,
                insert,
            );
            columns[col].push(out.misp_percent());
            cells.push(Cell::percent(out.misp_percent()));
        }
        table.row(cells);
    }
    let mut amean = vec![Cell::new("amean")];
    for col in &columns {
        amean.push(Cell::percent(mean(col)));
    }
    table.row(amean);
    vec![Artifact::Table(table)]
}

//! F11 — if-conversion aggressiveness (extension ablation).
//!
//! Sweeps the converter's bias threshold from conservative (only
//! near-coin-flip branches convert) to total (everything convertible
//! converts, leaving branchless hyperblock loops). For each setting the
//! table reports the branch population, the misprediction rates, and —
//! the number that actually matters — total pipeline cycles relative to
//! the *plain* binary with the same gshare: predication removes flushes
//! but pays fetch slots for both paths, and better region-branch
//! prediction shifts the break-even point.

use predbranch_core::InsertFilter;
use predbranch_sim::{PipelineConfig, PipelineModel};
use predbranch_stats::{mean, Cell, Table};
use predbranch_workloads::{compile_benchmark, suite, CompileOptions, IfConvertConfig};

use super::{base_spec, Artifact, Scale};
use crate::runner::{run_spec, RunOutcome, SuiteEntry, DEFAULT_LATENCY, PGU_DELAY};

const THRESHOLDS: [f64; 5] = [0.55, 0.70, 0.85, 0.95, 1.01];

fn cycles(out: &RunOutcome, pipe: &PipelineConfig) -> u64 {
    PipelineModel::estimate(
        pipe,
        out.summary.instructions,
        out.metrics.all.mispredictions.get(),
        out.taken_branches(),
    )
    .cycles()
}

pub(crate) fn run(scale: &Scale) -> Vec<Artifact> {
    let pipe = PipelineConfig::default();
    let base = base_spec();
    let both = base.clone().with_sfpf().with_pgu(PGU_DELAY);
    let benchmarks: Vec<_> = suite()
        .into_iter()
        .take(scale.limit.unwrap_or(usize::MAX))
        .collect();

    // plain-binary reference cycles per benchmark (threshold-independent)
    let reference: Vec<u64> = benchmarks
        .iter()
        .map(|bench| {
            let compiled = compile_benchmark(bench, &CompileOptions::default());
            let entry = SuiteEntry {
                bench: bench.clone(),
                compiled,
            };
            let out = run_spec(
                &entry.compiled.plain,
                entry.eval_input(),
                &base,
                DEFAULT_LATENCY,
                InsertFilter::All,
            );
            cycles(&out, &pipe)
        })
        .collect();

    let mut table = Table::new(
        "F11: if-conversion aggressiveness (suite means; cycles relative to plain+gshare)",
        &[
            "convert bias <",
            "cond br kept%",
            "gshare misp%",
            "+both misp%",
            "cycles gshare",
            "cycles +both",
        ],
    );
    for threshold in THRESHOLDS {
        let opts = CompileOptions {
            ifconv: IfConvertConfig {
                convert_bias_below: threshold,
                ..IfConvertConfig::default()
            },
            ..CompileOptions::default()
        };
        let mut kept_frac = Vec::new();
        let mut misp_base = Vec::new();
        let mut misp_both = Vec::new();
        let mut rel_base = Vec::new();
        let mut rel_both = Vec::new();
        for (bench, &ref_cycles) in benchmarks.iter().zip(&reference) {
            let compiled = compile_benchmark(bench, &opts);
            let entry = SuiteEntry {
                bench: bench.clone(),
                compiled,
            };
            let out_plain_br = run_spec(
                &entry.compiled.plain,
                entry.eval_input(),
                &base,
                DEFAULT_LATENCY,
                InsertFilter::All,
            );
            let out_base = run_spec(
                &entry.compiled.predicated,
                entry.eval_input(),
                &base,
                DEFAULT_LATENCY,
                InsertFilter::All,
            );
            let out_both = run_spec(
                &entry.compiled.predicated,
                entry.eval_input(),
                &both,
                DEFAULT_LATENCY,
                InsertFilter::All,
            );
            kept_frac.push(
                100.0 * out_base.summary.conditional_branches as f64
                    / out_plain_br.summary.conditional_branches.max(1) as f64,
            );
            misp_base.push(out_base.misp_percent());
            misp_both.push(out_both.misp_percent());
            rel_base.push(cycles(&out_base, &pipe) as f64 / ref_cycles as f64);
            rel_both.push(cycles(&out_both, &pipe) as f64 / ref_cycles as f64);
        }
        table.row(vec![
            Cell::float(threshold, 2),
            Cell::percent(mean(&kept_frac)),
            Cell::percent(mean(&misp_base)),
            Cell::percent(mean(&misp_both)),
            Cell::float(mean(&rel_base), 3),
            Cell::float(mean(&rel_both), 3),
        ]);
    }
    vec![Artifact::Table(table)]
}

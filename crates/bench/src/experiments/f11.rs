//! F11 — if-conversion aggressiveness (extension ablation).
//!
//! Sweeps the converter's bias threshold from conservative (only
//! near-coin-flip branches convert) to total (everything convertible
//! converts, leaving branchless hyperblock loops). For each setting the
//! table reports the branch population, the misprediction rates, and —
//! the number that actually matters — total pipeline cycles relative to
//! the *plain* binary with the same gshare: predication removes flushes
//! but pays fetch slots for both paths, and better region-branch
//! prediction shifts the break-even point.

use predbranch_core::InsertFilter;
use predbranch_sim::{PipelineConfig, PipelineModel};
use predbranch_stats::{mean, Cell, Table};
use predbranch_workloads::{compile_benchmark, CompileOptions, CompiledBenchmark, IfConvertConfig};

use super::{base_spec, Artifact, Scale};
use crate::runner::{CellSpec, RunContext, RunOutcome, SuiteEntry, PGU_DELAY};

const THRESHOLDS: [f64; 5] = [0.55, 0.70, 0.85, 0.95, 1.01];

fn cycles(out: &RunOutcome, pipe: &PipelineConfig) -> u64 {
    PipelineModel::estimate(
        pipe,
        out.summary.instructions,
        out.metrics.all.mispredictions.get(),
        out.taken_branches(),
    )
    .cycles()
}

pub(crate) fn run(ctx: &RunContext, scale: &Scale) -> Vec<Artifact> {
    let pipe = PipelineConfig::default();
    let base = base_spec();
    let both = base.clone().with_sfpf().with_pgu(PGU_DELAY);
    // the default-options suite doubles as the plain-binary reference
    // (threshold-independent)
    let entries = ctx.suite(scale.limit);

    let reference_outs = ctx.run_cells(
        entries
            .iter()
            .map(|entry| {
                CellSpec::plain(
                    entry,
                    format!("f11/{}/reference", entry.compiled.name),
                    &base,
                    scale.timing(),
                    InsertFilter::All,
                )
            })
            .collect(),
    );
    let reference: Vec<u64> = reference_outs
        .iter()
        .map(|out| cycles(out, &pipe))
        .collect();

    // recompile the suite once per threshold, on the pool
    let mut compile_jobs: Vec<Box<dyn FnOnce() -> CompiledBenchmark + Send>> = Vec::new();
    for &threshold in &THRESHOLDS {
        for entry in entries.iter() {
            let bench = entry.bench.clone();
            compile_jobs.push(Box::new(move || {
                let opts = CompileOptions {
                    ifconv: IfConvertConfig {
                        convert_bias_below: threshold,
                        ..IfConvertConfig::default()
                    },
                    ..CompileOptions::default()
                };
                compile_benchmark(&bench, &opts)
            }));
        }
    }
    let compiled = ctx.map_batch(compile_jobs);

    // three cells per (threshold, bench): plain/gshare (branch-count
    // reference), pred/gshare, pred/+both
    let n = entries.len();
    let mut cells_in = Vec::with_capacity(THRESHOLDS.len() * n * 3);
    for ti in 0..THRESHOLDS.len() {
        for (ei, entry) in entries.iter().enumerate() {
            let recompiled = SuiteEntry {
                bench: entry.bench.clone(),
                compiled: compiled[ti * n + ei].clone(),
            };
            let name = recompiled.compiled.name;
            let mut plain_cell = CellSpec::plain(
                &recompiled,
                format!("f11/{name}/t{ti}/plain"),
                &base,
                scale.timing(),
                InsertFilter::All,
            );
            plain_cell.cache_label = format!("{name}-plain-ifc{ti}");
            cells_in.push(plain_cell);
            for (tag, spec) in [("gshare", &base), ("both", &both)] {
                let mut cell = CellSpec::predicated(
                    &recompiled,
                    format!("f11/{name}/t{ti}/{tag}"),
                    spec,
                    scale.timing(),
                    InsertFilter::All,
                );
                cell.cache_label = format!("{name}-pred-ifc{ti}");
                cells_in.push(cell);
            }
        }
    }
    let outs = ctx.run_cells(cells_in);

    let mut table = Table::new(
        "F11: if-conversion aggressiveness (suite means; cycles relative to plain+gshare)",
        &[
            "convert bias <",
            "cond br kept%",
            "gshare misp%",
            "+both misp%",
            "cycles gshare",
            "cycles +both",
        ],
    );
    for (ti, threshold) in THRESHOLDS.into_iter().enumerate() {
        let mut kept_frac = Vec::new();
        let mut misp_base = Vec::new();
        let mut misp_both = Vec::new();
        let mut rel_base = Vec::new();
        let mut rel_both = Vec::new();
        for (ei, &ref_cycles) in reference.iter().enumerate() {
            let at = (ti * n + ei) * 3;
            let (out_plain_br, out_base, out_both) = (&outs[at], &outs[at + 1], &outs[at + 2]);
            kept_frac.push(
                100.0 * out_base.summary.conditional_branches as f64
                    / out_plain_br.summary.conditional_branches.max(1) as f64,
            );
            misp_base.push(out_base.misp_percent());
            misp_both.push(out_both.misp_percent());
            rel_base.push(cycles(out_base, &pipe) as f64 / ref_cycles as f64);
            rel_both.push(cycles(out_both, &pipe) as f64 / ref_cycles as f64);
        }
        table.row(vec![
            Cell::float(threshold, 2),
            Cell::percent(mean(&kept_frac)),
            Cell::percent(mean(&misp_base)),
            Cell::percent(mean(&misp_both)),
            Cell::float(mean(&rel_base), 3),
            Cell::float(mean(&rel_both), 3),
        ]);
    }
    vec![Artifact::Table(table)]
}

//! F12 — squash-filter policy ablation (extension).
//!
//! Three design questions around the basic filter: does the symmetric
//! known-true → predict-taken rule help, and should filtered branches
//! still train the underlying predictor (keeping its history aligned)
//! or be hidden from it (keeping its tables clean)?

use predbranch_core::{InsertFilter, PredictorSpec};
use predbranch_stats::{mean, Cell, Table};

use super::{base_spec, Artifact, Scale};
use crate::runner::{CellSpec, RunContext};

fn policies() -> Vec<(&'static str, PredictorSpec)> {
    let base = base_spec();
    let sfpf = |known_true: bool, update_filtered: bool| PredictorSpec::Sfpf {
        base: Box::new(base.clone()),
        known_true,
        update_filtered,
        learned_guards: None,
    };
    vec![
        ("no filter", base.clone()),
        ("filter (paper)", sfpf(false, true)),
        ("+ known-true rule", sfpf(true, true)),
        ("hide filtered from tables", sfpf(false, false)),
        ("both extensions", sfpf(true, false)),
        (
            "learned guard table (1K)",
            PredictorSpec::Sfpf {
                base: Box::new(base.clone()),
                known_true: false,
                update_filtered: true,
                learned_guards: Some(10),
            },
        ),
    ]
}

pub(crate) fn run(ctx: &RunContext, scale: &Scale) -> Vec<Artifact> {
    let entries = ctx.suite(scale.limit);
    let all_policies = policies();
    let mut cells_in = Vec::with_capacity(all_policies.len() * entries.len());
    for (pi, (_, spec)) in all_policies.iter().enumerate() {
        for entry in entries.iter() {
            cells_in.push(CellSpec::predicated(
                entry,
                format!("f12/{}/p{pi}", entry.compiled.name),
                spec,
                scale.timing(),
                InsertFilter::All,
            ));
        }
    }
    let outs = ctx.run_cells(cells_in);

    let mut table = Table::new(
        "F12: squash-filter policy ablation (suite means)",
        &["policy", "misp%", "filtered%", "region misp%"],
    );
    let n = entries.len();
    for (pi, (label, _)) in all_policies.iter().enumerate() {
        let slice = &outs[pi * n..(pi + 1) * n];
        let misp: Vec<f64> = slice.iter().map(|o| o.misp_percent()).collect();
        let coverage: Vec<f64> = slice
            .iter()
            .map(|o| o.metrics.filter_coverage().percent())
            .collect();
        let region: Vec<f64> = slice.iter().map(|o| o.region_misp_percent()).collect();
        table.row(vec![
            Cell::new(*label),
            Cell::percent(mean(&misp)),
            Cell::percent(mean(&coverage)),
            Cell::percent(mean(&region)),
        ]);
    }
    vec![Artifact::Table(table)]
}

//! F12 — squash-filter policy ablation (extension).
//!
//! Three design questions around the basic filter: does the symmetric
//! known-true → predict-taken rule help, and should filtered branches
//! still train the underlying predictor (keeping its history aligned)
//! or be hidden from it (keeping its tables clean)?

use predbranch_core::{InsertFilter, PredictorSpec};
use predbranch_stats::{mean, Cell, Table};

use super::{base_spec, Artifact, Scale};
use crate::runner::{compiled_suite, run_spec, DEFAULT_LATENCY};

fn policies() -> Vec<(&'static str, PredictorSpec)> {
    let base = base_spec();
    let sfpf = |known_true: bool, update_filtered: bool| PredictorSpec::Sfpf {
        base: Box::new(base.clone()),
        known_true,
        update_filtered,
        learned_guards: None,
    };
    vec![
        ("no filter", base.clone()),
        ("filter (paper)", sfpf(false, true)),
        ("+ known-true rule", sfpf(true, true)),
        ("hide filtered from tables", sfpf(false, false)),
        ("both extensions", sfpf(true, false)),
        (
            "learned guard table (1K)",
            PredictorSpec::Sfpf {
                base: Box::new(base.clone()),
                known_true: false,
                update_filtered: true,
                learned_guards: Some(10),
            },
        ),
    ]
}

pub(crate) fn run(scale: &Scale) -> Vec<Artifact> {
    let entries = compiled_suite(scale.limit);
    let mut table = Table::new(
        "F12: squash-filter policy ablation (suite means)",
        &["policy", "misp%", "filtered%", "region misp%"],
    );
    for (label, spec) in policies() {
        let mut misp = Vec::new();
        let mut coverage = Vec::new();
        let mut region = Vec::new();
        for entry in &entries {
            let out = run_spec(
                &entry.compiled.predicated,
                entry.eval_input(),
                &spec,
                DEFAULT_LATENCY,
                InsertFilter::All,
            );
            misp.push(out.misp_percent());
            coverage.push(out.metrics.filter_coverage().percent());
            region.push(out.region_misp_percent());
        }
        table.row(vec![
            Cell::new(label),
            Cell::percent(mean(&misp)),
            Cell::percent(mean(&coverage)),
            Cell::percent(mean(&region)),
        ]);
    }
    vec![Artifact::Table(table)]
}

//! F13 — sensitivity to the predicate resolve latency (extension).
//!
//! The machine's compare-to-fetch latency determines how much predicate
//! information the front end has. Sweeping it moves both techniques
//! between their ideal (latency 0: SFPF sees every guard, and the whole
//! machine is effectively an oracle) and their useless extreme.

use predbranch_core::InsertFilter;
use predbranch_stats::{mean, Series};

use super::{base_spec, Artifact, Scale};
use crate::runner::{compiled_suite, run_spec, PGU_DELAY};

const LATENCIES: [u64; 7] = [0, 2, 4, 8, 12, 16, 32];

pub(crate) fn run(scale: &Scale) -> Vec<Artifact> {
    let entries = compiled_suite(scale.limit);
    let base = base_spec();
    let specs = [
        ("gshare", base.clone()),
        ("+SFPF", base.clone().with_sfpf()),
        ("+both", base.with_sfpf().with_pgu(PGU_DELAY)),
    ];

    let mut series = Series::new(
        "F13: suite-mean misprediction rate (%) vs predicate resolve latency",
        "latency",
    );
    for (label, _) in &specs {
        series.line(*label);
    }
    for latency in LATENCIES {
        let mut ys = Vec::with_capacity(specs.len());
        for (_, spec) in &specs {
            let rates: Vec<f64> = entries
                .iter()
                .map(|entry| {
                    run_spec(
                        &entry.compiled.predicated,
                        entry.eval_input(),
                        spec,
                        latency,
                        InsertFilter::All,
                    )
                    .misp_percent()
                })
                .collect();
            ys.push(mean(&rates));
        }
        series.point(latency.to_string(), &ys);
    }
    vec![Artifact::Series(series)]
}

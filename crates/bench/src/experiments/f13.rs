//! F13 — sensitivity to the predicate resolve latency (extension).
//!
//! The machine's compare-to-fetch latency determines how much predicate
//! information the front end has. Sweeping it moves both techniques
//! between their ideal (latency 0: SFPF sees every guard, and the whole
//! machine is effectively an oracle) and their useless extreme.

use predbranch_core::{InsertFilter, Timing};
use predbranch_stats::{mean, Series};

use super::{base_spec, Artifact, Scale};
use crate::runner::{CellSpec, RunContext, PGU_DELAY};

const LATENCIES: [u64; 7] = [0, 2, 4, 8, 12, 16, 32];

pub(crate) fn run(ctx: &RunContext, scale: &Scale) -> Vec<Artifact> {
    let entries = ctx.suite(scale.limit);
    let base = base_spec();
    let specs = [
        ("gshare", base.clone()),
        ("+SFPF", base.clone().with_sfpf()),
        ("+both", base.with_sfpf().with_pgu(PGU_DELAY)),
    ];

    let mut cells_in = Vec::with_capacity(LATENCIES.len() * specs.len() * entries.len());
    for latency in LATENCIES {
        for (label, spec) in &specs {
            for entry in entries.iter() {
                cells_in.push(CellSpec::predicated(
                    entry,
                    format!("f13/{}/{label}/L{latency}", entry.compiled.name),
                    spec,
                    Timing::new(latency, scale.retire_latency),
                    InsertFilter::All,
                ));
            }
        }
    }
    let outs = ctx.run_cells(cells_in);

    let mut series = Series::new(
        "F13: suite-mean misprediction rate (%) vs predicate resolve latency",
        "latency",
    );
    for (label, _) in &specs {
        series.line(*label);
    }
    let n = entries.len();
    for (li, latency) in LATENCIES.into_iter().enumerate() {
        let mut ys = Vec::with_capacity(specs.len());
        for si in 0..specs.len() {
            let start = (li * specs.len() + si) * n;
            let rates: Vec<f64> = outs[start..start + n]
                .iter()
                .map(|out| out.misp_percent())
                .collect();
            ys.push(mean(&rates));
        }
        series.point(latency.to_string(), &ys);
    }
    vec![Artifact::Series(series)]
}

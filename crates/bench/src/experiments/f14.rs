//! F14 — seed stability (extension): the headline result across
//! independent evaluation inputs.
//!
//! Synthetic workloads invite the worry that a result is an artifact of
//! one input draw. Each headline configuration runs on several fresh
//! evaluation seeds (compilation stays trained on the canonical training
//! seed); the table reports the suite-mean misprediction rate per
//! configuration as mean ± 95% CI over seeds.

use predbranch_core::InsertFilter;
use predbranch_stats::{mean, Cell, Summary, Table};

use super::{headline_specs, Artifact, Scale};
use crate::runner::{compiled_suite, run_spec, DEFAULT_LATENCY};

const SEEDS: [u64; 5] = [11, 222, 3_333, 44_444, 555_555];

pub(crate) fn run(scale: &Scale) -> Vec<Artifact> {
    let entries = compiled_suite(scale.limit);
    let mut table = Table::new(
        "F14: headline result across evaluation seeds (suite mean misp%, n=5 seeds)",
        &["config", "mean", "95% CI ±", "min", "max"],
    );
    for (label, spec) in headline_specs() {
        let mut per_seed = Summary::new();
        for seed in SEEDS {
            let rates: Vec<f64> = entries
                .iter()
                .map(|entry| {
                    run_spec(
                        &entry.compiled.predicated,
                        entry.bench.input(seed),
                        &spec,
                        DEFAULT_LATENCY,
                        InsertFilter::All,
                    )
                    .misp_percent()
                })
                .collect();
            per_seed.record(mean(&rates));
        }
        table.row(vec![
            Cell::new(label),
            Cell::percent(per_seed.mean()),
            Cell::float(per_seed.confidence95(), 3),
            Cell::percent(per_seed.min()),
            Cell::percent(per_seed.max()),
        ]);
    }
    vec![Artifact::Table(table)]
}

//! F14 — seed stability (extension): the headline result across
//! independent evaluation inputs.
//!
//! Synthetic workloads invite the worry that a result is an artifact of
//! one input draw. Each headline configuration runs on several fresh
//! evaluation seeds (compilation stays trained on the canonical training
//! seed); the table reports the suite-mean misprediction rate per
//! configuration as mean ± 95% CI over seeds.

use predbranch_core::InsertFilter;
use predbranch_stats::{mean, Cell, Summary, Table};

use super::{headline_specs, Artifact, Scale};
use crate::runner::{CellSpec, RunContext};

const SEEDS: [u64; 5] = [11, 222, 3_333, 44_444, 555_555];

pub(crate) fn run(ctx: &RunContext, scale: &Scale) -> Vec<Artifact> {
    let entries = ctx.suite(scale.limit);
    let specs = headline_specs();
    let mut cells_in = Vec::with_capacity(specs.len() * SEEDS.len() * entries.len());
    for (label, spec) in &specs {
        for seed in SEEDS {
            for entry in entries.iter() {
                cells_in.push(CellSpec::seeded(
                    entry,
                    format!("f14/{}/{label}/s{seed}", entry.compiled.name),
                    seed,
                    spec,
                    scale.timing(),
                    InsertFilter::All,
                ));
            }
        }
    }
    let outs = ctx.run_cells(cells_in);

    let mut table = Table::new(
        "F14: headline result across evaluation seeds (suite mean misp%, n=5 seeds)",
        &["config", "mean", "95% CI ±", "min", "max"],
    );
    let n = entries.len();
    for (si, (label, _)) in specs.iter().enumerate() {
        let mut per_seed = Summary::new();
        for seed_idx in 0..SEEDS.len() {
            let start = (si * SEEDS.len() + seed_idx) * n;
            let rates: Vec<f64> = outs[start..start + n]
                .iter()
                .map(|out| out.misp_percent())
                .collect();
            per_seed.record(mean(&rates));
        }
        table.row(vec![
            Cell::new(*label),
            Cell::percent(per_seed.mean()),
            Cell::float(per_seed.confidence95(), 3),
            Cell::percent(per_seed.min()),
            Cell::percent(per_seed.max()),
        ]);
    }
    vec![Artifact::Table(table)]
}

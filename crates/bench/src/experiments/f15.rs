//! F15 — compare hoisting (extension): scheduling compares away from
//! their branches, the compiler-side half of the paper's co-design.
//!
//! The techniques only see predicate values that have *resolved* by
//! fetch; IMPACT's schedulers moved compares as early as dependences
//! allow for exactly this reason. The experiment recompiles the suite
//! with the hoisting pass and measures what it buys: longer
//! definition-to-branch distances, more squash-filter coverage, and
//! lower misprediction with the techniques on.

use predbranch_core::InsertFilter;
use predbranch_sim::{ExecMetrics, Executor, GuardKnowledgeStats};
use predbranch_stats::{mean, Cell, Table};
use predbranch_workloads::{
    compile_benchmark, suite, CompileOptions, CompiledBenchmark, DEFAULT_MAX_INSTRUCTIONS,
};

use super::{base_spec, Artifact, Scale};
use crate::runner::{CellSpec, RunContext, SuiteEntry, DEFAULT_LATENCY, PGU_DELAY};

pub(crate) fn run(ctx: &RunContext, scale: &Scale) -> Vec<Artifact> {
    let both = base_spec().with_sfpf().with_pgu(PGU_DELAY);
    let sfpf = base_spec().with_sfpf();
    let benchmarks: Vec<_> = suite()
        .into_iter()
        .take(scale.limit.unwrap_or(usize::MAX))
        .collect();

    // compile both schedules of every benchmark, bench-major
    // ([bench0/plain-sched, bench0/hoisted, bench1/plain-sched, ...])
    let mut compile_jobs: Vec<Box<dyn FnOnce() -> CompiledBenchmark + Send>> = Vec::new();
    for bench in &benchmarks {
        for hoist in [false, true] {
            let bench = bench.clone();
            compile_jobs.push(Box::new(move || {
                compile_benchmark(
                    &bench,
                    &CompileOptions {
                        hoist,
                        ..CompileOptions::default()
                    },
                )
            }));
        }
    }
    let compiled = ctx.map_batch(compile_jobs);
    let variants: Vec<SuiteEntry> = benchmarks
        .iter()
        .flat_map(|bench| [bench, bench])
        .zip(compiled)
        .map(|(bench, compiled)| SuiteEntry {
            bench: bench.clone(),
            compiled,
        })
        .collect();

    // per variant: an instrumented functional run for distance/coverage…
    let sink_jobs = variants
        .iter()
        .map(|entry| {
            let program = entry.compiled.predicated.clone();
            let input = entry.eval_input();
            let job: Box<dyn FnOnce() -> (f64, f64) + Send> = Box::new(move || {
                let mut sinks = (
                    ExecMetrics::new(),
                    GuardKnowledgeStats::new(DEFAULT_LATENCY),
                );
                let summary =
                    Executor::new(&program, input).run(&mut sinks, DEFAULT_MAX_INSTRUCTIONS);
                assert!(summary.halted);
                let (metrics, knowledge) = sinks;
                (
                    metrics.guard_distance().mean(),
                    knowledge.known_false().percent(),
                )
            });
            job
        })
        .collect();
    let sink_stats = ctx.map_batch(sink_jobs);

    // …and two predictor cells (+SFPF, +both)
    let mut cells_in = Vec::with_capacity(variants.len() * 2);
    for (vi, entry) in variants.iter().enumerate() {
        let sched = if vi % 2 == 0 {
            "plain-sched"
        } else {
            "hoisted"
        };
        for (tag, spec) in [("sfpf", &sfpf), ("both", &both)] {
            let mut cell = CellSpec::predicated(
                entry,
                format!("f15/{}/{sched}/{tag}", entry.compiled.name),
                spec,
                scale.timing(),
                InsertFilter::All,
            );
            if vi % 2 == 1 {
                cell.cache_label = format!("{}-pred-hoist", entry.compiled.name);
            }
            cells_in.push(cell);
        }
    }
    let outs = ctx.run_cells(cells_in);

    let mut table = Table::new(
        "F15: compare hoisting (per benchmark: plain schedule → hoisted schedule)",
        &[
            "bench",
            "guard dist",
            "guard dist.h",
            "kf%",
            "kf%.h",
            "+SFPF misp%",
            "+SFPF.h",
            "+both misp%",
            "+both.h",
        ],
    );
    let mut dist = (Vec::new(), Vec::new());
    let mut cover = (Vec::new(), Vec::new());
    let mut m_sfpf = (Vec::new(), Vec::new());
    let mut m_both = (Vec::new(), Vec::new());
    for (bi, bench) in benchmarks.iter().enumerate() {
        let (d0, k0) = sink_stats[2 * bi];
        let (d1, k1) = sink_stats[2 * bi + 1];
        let s0 = outs[4 * bi].misp_percent();
        let b0 = outs[4 * bi + 1].misp_percent();
        let s1 = outs[4 * bi + 2].misp_percent();
        let b1 = outs[4 * bi + 3].misp_percent();
        dist.0.push(d0);
        dist.1.push(d1);
        cover.0.push(k0);
        cover.1.push(k1);
        m_sfpf.0.push(s0);
        m_sfpf.1.push(s1);
        m_both.0.push(b0);
        m_both.1.push(b1);
        // interleave: dist, dist.h, kf, kf.h, sfpf, sfpf.h, both, both.h
        table.row(vec![
            Cell::new(bench.name()),
            Cell::float(d0, 1),
            Cell::float(d1, 1),
            Cell::percent(k0),
            Cell::percent(k1),
            Cell::percent(s0),
            Cell::percent(s1),
            Cell::percent(b0),
            Cell::percent(b1),
        ]);
    }
    table.row(vec![
        Cell::new("mean"),
        Cell::float(mean(&dist.0), 1),
        Cell::float(mean(&dist.1), 1),
        Cell::percent(mean(&cover.0)),
        Cell::percent(mean(&cover.1)),
        Cell::percent(mean(&m_sfpf.0)),
        Cell::percent(mean(&m_sfpf.1)),
        Cell::percent(mean(&m_both.0)),
        Cell::percent(mean(&m_both.1)),
    ]);
    vec![Artifact::Table(table)]
}

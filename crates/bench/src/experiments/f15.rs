//! F15 — compare hoisting (extension): scheduling compares away from
//! their branches, the compiler-side half of the paper's co-design.
//!
//! The techniques only see predicate values that have *resolved* by
//! fetch; IMPACT's schedulers moved compares as early as dependences
//! allow for exactly this reason. The experiment recompiles the suite
//! with the hoisting pass and measures what it buys: longer
//! definition-to-branch distances, more squash-filter coverage, and
//! lower misprediction with the techniques on.

use predbranch_core::InsertFilter;
use predbranch_sim::{ExecMetrics, Executor, GuardKnowledgeStats};
use predbranch_stats::{mean, Cell, Table};
use predbranch_workloads::{compile_benchmark, suite, CompileOptions, DEFAULT_MAX_INSTRUCTIONS};

use super::{base_spec, Artifact, Scale};
use crate::runner::{run_spec, SuiteEntry, DEFAULT_LATENCY, PGU_DELAY};

pub(crate) fn run(scale: &Scale) -> Vec<Artifact> {
    let both = base_spec().with_sfpf().with_pgu(PGU_DELAY);
    let sfpf = base_spec().with_sfpf();
    let mut table = Table::new(
        "F15: compare hoisting (per benchmark: plain schedule → hoisted schedule)",
        &[
            "bench",
            "guard dist",
            "guard dist.h",
            "kf%",
            "kf%.h",
            "+SFPF misp%",
            "+SFPF.h",
            "+both misp%",
            "+both.h",
        ],
    );
    let mut dist = (Vec::new(), Vec::new());
    let mut cover = (Vec::new(), Vec::new());
    let mut m_sfpf = (Vec::new(), Vec::new());
    let mut m_both = (Vec::new(), Vec::new());
    for bench in suite().into_iter().take(scale.limit.unwrap_or(usize::MAX)) {
        let mut row = vec![Cell::new(bench.name())];
        let mut cells: Vec<[Cell; 2]> = Vec::new();
        for (slot, hoist) in [false, true].into_iter().enumerate() {
            let compiled = compile_benchmark(
                &bench,
                &CompileOptions {
                    hoist,
                    ..CompileOptions::default()
                },
            );
            let entry = SuiteEntry {
                bench: bench.clone(),
                compiled,
            };
            let mut sinks = (
                ExecMetrics::new(),
                GuardKnowledgeStats::new(DEFAULT_LATENCY),
            );
            let summary = Executor::new(&entry.compiled.predicated, entry.eval_input())
                .run(&mut sinks, DEFAULT_MAX_INSTRUCTIONS);
            assert!(summary.halted);
            let (metrics, knowledge) = sinks;
            let d = metrics.guard_distance().mean();
            let k = knowledge.known_false().percent();
            let s = run_spec(
                &entry.compiled.predicated,
                entry.eval_input(),
                &sfpf,
                DEFAULT_LATENCY,
                InsertFilter::All,
            )
            .misp_percent();
            let b = run_spec(
                &entry.compiled.predicated,
                entry.eval_input(),
                &both,
                DEFAULT_LATENCY,
                InsertFilter::All,
            )
            .misp_percent();
            cells.push([Cell::float(d, 1), Cell::percent(k)]);
            cells.push([Cell::percent(s), Cell::percent(b)]);
            let bucket = |v: &mut (Vec<f64>, Vec<f64>), x: f64| {
                if slot == 0 {
                    v.0.push(x)
                } else {
                    v.1.push(x)
                }
            };
            bucket(&mut dist, d);
            bucket(&mut cover, k);
            bucket(&mut m_sfpf, s);
            bucket(&mut m_both, b);
        }
        // interleave: dist, dist.h, kf, kf.h, sfpf, sfpf.h, both, both.h
        row.push(cells[0][0].clone());
        row.push(cells[2][0].clone());
        row.push(cells[0][1].clone());
        row.push(cells[2][1].clone());
        row.push(cells[1][0].clone());
        row.push(cells[3][0].clone());
        row.push(cells[1][1].clone());
        row.push(cells[3][1].clone());
        table.row(row);
    }
    table.row(vec![
        Cell::new("mean"),
        Cell::float(mean(&dist.0), 1),
        Cell::float(mean(&dist.1), 1),
        Cell::percent(mean(&cover.0)),
        Cell::percent(mean(&cover.1)),
        Cell::percent(mean(&m_sfpf.0)),
        Cell::percent(mean(&m_sfpf.1)),
        Cell::percent(mean(&m_both.0)),
        Cell::percent(mean(&m_both.1)),
    ]);
    vec![Artifact::Table(table)]
}

//! F16 — sensitivity to the commit (retire) latency (extension).
//!
//! The harness normally trains the predictor the moment a branch
//! resolves (retire latency 0, the idealized immediate update every
//! published figure uses). A real front end only updates non-speculative
//! state at retire, several fetch slots later, speculating the history
//! register at fetch and repairing it from a checkpoint on a squash.
//! Sweeping the retire latency measures how much of the headline result
//! that delay costs.
//!
//! The expected answer is *essentially nothing*, and the flat curves are
//! the finding: the speculative history is architecturally exact at
//! every fetch (correct predictions shift the true outcome; a
//! misprediction's flush repairs the register before the next fetch),
//! and a delayed two-bit-counter update can only matter if the entry is
//! re-read while its training is in flight — but in-flight updates from
//! correctly predicted branches only reinforce the counter's current
//! direction, and a misprediction drains the window before the next
//! prediction. So the headline configurations are insensitive to
//! realistic update timing, which is what licenses comparing the
//! idealized figures against hardware-style predictors at all.

use predbranch_core::{InsertFilter, Timing};
use predbranch_stats::{mean, Series};

use super::{headline_specs, Artifact, Scale};
use crate::runner::{CellSpec, RunContext, DEFAULT_LATENCY};

const RETIRE_LATENCIES: [u64; 6] = [0, 1, 2, 4, 8, 16];

pub(crate) fn run(ctx: &RunContext, scale: &Scale) -> Vec<Artifact> {
    let entries = ctx.suite(scale.limit);
    let specs = headline_specs();

    let mut cells_in = Vec::with_capacity(RETIRE_LATENCIES.len() * specs.len() * entries.len());
    for retire in RETIRE_LATENCIES {
        for (label, spec) in &specs {
            for entry in entries.iter() {
                cells_in.push(CellSpec::predicated(
                    entry,
                    format!("f16/{}/{label}/R{retire}", entry.compiled.name),
                    spec,
                    Timing::new(DEFAULT_LATENCY, retire),
                    InsertFilter::All,
                ));
            }
        }
    }
    let outs = ctx.run_cells(cells_in);

    let mut series = Series::new(
        "F16: suite-mean misprediction rate (%) vs retire latency",
        "retire",
    );
    for (label, _) in &specs {
        series.line(*label);
    }
    let n = entries.len();
    for (ri, retire) in RETIRE_LATENCIES.into_iter().enumerate() {
        let mut ys = Vec::with_capacity(specs.len());
        for si in 0..specs.len() {
            let start = (ri * specs.len() + si) * n;
            let rates: Vec<f64> = outs[start..start + n]
                .iter()
                .map(|out| out.misp_percent())
                .collect();
            ys.push(mean(&rates));
        }
        series.point(retire.to_string(), &ys);
    }
    vec![Artifact::Series(series)]
}

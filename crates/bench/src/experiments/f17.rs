//! F17 — the H2P taxonomy joined against per-branch mispredictions
//! (extension).
//!
//! One shared decoded pass per benchmark feeds the streaming
//! characterizer *and* all four headline attribution harnesses, then
//! every static conditional branch's misprediction counts are grouped
//! by its taxonomy bucket. The join answers the question the taxonomy
//! exists for: which class of branch does each mechanism actually fix?
//!
//! The expected shape — and the claim the test suite pins — is that the
//! SFPF/PGU wins concentrate in the *predicate-predictable* bucket.
//! That is a real prediction, not a tautology: the classifier sees only
//! fetch-visible signals (scoreboard guard knowledge plus a delayed
//! predicate-outcome register), never the architectural guard value the
//! predictors are being scored against.

use predbranch_characterize::{Bucket, Characterization, Characterizer};
use predbranch_core::{build_predictor_stack, HotBranches, PredictorStack};
use predbranch_stats::{Align, Cell, Table};

use super::{headline_specs, Artifact, Scale};
use crate::runner::{RunContext, DEFAULT_LATENCY};

/// One benchmark's taxonomy plus each profiled static's misprediction
/// counts under the four headline configurations (in [`headline_specs`]
/// order) — plain data, so the per-benchmark jobs can migrate across
/// worker threads.
type EntryResult = (Characterization, std::collections::BTreeMap<u32, [u64; 4]>);

/// Per-bucket aggregation across the suite: static count, dynamic
/// branches, and mispredictions per headline configuration.
#[derive(Debug, Default, Clone, Copy)]
struct BucketAgg {
    statics: u64,
    branches: u64,
    misp: [u64; 4],
}

impl BucketAgg {
    fn misp_percent(&self, config: usize) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.misp[config] as f64 / self.branches as f64 * 100.0
        }
    }

    /// The mechanism's win over gshare in percentage points (positive =
    /// fewer mispredictions).
    fn delta_pp(&self, config: usize) -> f64 {
        self.misp_percent(0) - self.misp_percent(config)
    }
}

pub(crate) fn run(ctx: &RunContext, scale: &Scale) -> Vec<Artifact> {
    let entries = ctx.suite(scale.limit);

    let jobs: Vec<Box<dyn FnOnce() -> EntryResult + Send>> = entries
        .iter()
        .map(|entry| {
            let ctx = ctx.clone();
            let program = entry.compiled.predicated.clone();
            let memory = entry.eval_input();
            let cache_label = format!("{}-pred", entry.compiled.name);
            let job: Box<dyn FnOnce() -> EntryResult + Send> = Box::new(move || {
                let specs = headline_specs();
                let hot = |i: usize| {
                    HotBranches::new(build_predictor_stack(&specs[i].1), DEFAULT_LATENCY)
                };
                let mut characterizer = Characterizer::new();
                let (mut h0, mut h1, mut h2, mut h3) = (hot(0), hot(1), hot(2), hot(3));
                {
                    // tuple sinks: the one decoded pass fans out to the
                    // characterizer and all four attribution harnesses
                    let mut sink = (&mut characterizer, (&mut h0, (&mut h1, (&mut h2, &mut h3))));
                    ctx.stream_events(&cache_label, &program, &memory, &mut sink);
                }
                let report = characterizer.finish();
                let hots: [HotBranches<PredictorStack>; 4] = [h0, h1, h2, h3];
                let misp = report
                    .branches()
                    .iter()
                    .map(|profile| {
                        let mut counts = [0u64; 4];
                        for (slot, hot) in counts.iter_mut().zip(&hots) {
                            *slot = hot.at(profile.pc).map_or(0, |c| c.mispredictions.get());
                        }
                        (profile.pc, counts)
                    })
                    .collect();
                (report, misp)
            });
            job
        })
        .collect();
    let results = ctx.map_batch(jobs);

    // join: every static's attribution counts land in its bucket
    let mut agg = [BucketAgg::default(); 4];
    let mut total = BucketAgg::default();
    for (report, misp) in &results {
        for profile in report.branches() {
            let slot = Bucket::ALL
                .iter()
                .position(|&b| b == profile.bucket)
                .expect("bucket in ALL");
            for (config, &count) in misp[&profile.pc].iter().enumerate() {
                agg[slot].misp[config] += count;
                total.misp[config] += count;
            }
            agg[slot].statics += 1;
            agg[slot].branches += profile.executions;
            total.statics += 1;
            total.branches += profile.executions;
        }
    }

    let mut deltas = Table::new(
        "F17: misprediction win over gshare (pp) by taxonomy bucket",
        &[
            "bucket", "statics", "branches", "gshare", "+SFPF", "+PGU", "+both",
        ],
    )
    .with_aligns(&[
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for (bucket, a) in Bucket::ALL.iter().zip(&agg) {
        deltas.row(bucket_row(bucket.label(), a));
    }
    deltas.row(bucket_row("(all)", &total));

    let mut population = Table::new(
        "F17: static-branch taxonomy per benchmark",
        &[
            "benchmark",
            "statics",
            "biased",
            "history",
            "predicate",
            "hard",
        ],
    )
    .with_aligns(&[
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for (entry, (report, _)) in entries.iter().zip(&results) {
        let mut row = vec![
            Cell::new(entry.compiled.name),
            Cell::count(report.branches().len() as u64),
        ];
        for bucket in Bucket::ALL {
            row.push(Cell::count(report.bucket_count(bucket) as u64));
        }
        population.row(row);
    }

    vec![Artifact::Table(deltas), Artifact::Table(population)]
}

fn bucket_row(label: &str, a: &BucketAgg) -> Vec<Cell> {
    vec![
        Cell::new(label),
        Cell::count(a.statics),
        Cell::count(a.branches),
        Cell::percent(a.misp_percent(0)),
        Cell::float(a.delta_pp(1), 2),
        Cell::float(a.delta_pp(2), 2),
        Cell::float(a.delta_pp(3), 2),
    ]
}

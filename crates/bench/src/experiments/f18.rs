//! F18 — the paper's question against modern baselines (extension):
//! per-benchmark misprediction rates of gshare, TAGE, and the
//! multiperspective perceptron, each bare and with +SFPF, +PGU, and
//! both.
//!
//! One F3-shaped table per base family. Within a family, the modifier
//! columns answer "do the paper's predicate mechanisms still help on
//! this base?"; across families, the `amean` rows answer "how much of
//! the 2003 win does a stronger baseline simply absorb?". F19 joins
//! these same configurations against the F17 taxonomy to show *where*
//! the surviving wins land.

use predbranch_core::InsertFilter;
use predbranch_modern::ModernSpec;
use predbranch_stats::{geometric_mean, mean, Cell, Table};

use super::{base_spec, modifier_grid, mpp_spec, tage_spec, Artifact, Scale};
use crate::runner::{CellSpec, RunContext};

/// The three base predictors, in table order.
pub(super) fn families() -> Vec<(&'static str, ModernSpec)> {
    vec![
        ("gshare", base_spec().into()),
        ("tage", tage_spec()),
        ("mpp", mpp_spec()),
    ]
}

pub(crate) fn run(ctx: &RunContext, scale: &Scale) -> Vec<Artifact> {
    let entries = ctx.suite(scale.limit);
    let families = families();

    // one flat grid — family-major, then benchmark, then modifier — so
    // the worker pool sees all 12 × |suite| cells at once
    let mut cells_in = Vec::new();
    let mut grids = Vec::new();
    for (family, base) in &families {
        let specs = modifier_grid(base.clone());
        for entry in entries.iter() {
            for (modifier, spec) in &specs {
                cells_in.push(CellSpec::predicated(
                    entry,
                    format!("f18/{}/{family}{modifier}", entry.compiled.name),
                    spec,
                    scale.timing(),
                    InsertFilter::All,
                ));
            }
        }
        grids.push(specs);
    }
    let outs = ctx.run_cells(cells_in);

    let mut artifacts = Vec::with_capacity(families.len());
    let mut cursor = 0;
    for ((family, _), specs) in families.iter().zip(&grids) {
        let mut header = vec!["bench"];
        header.extend(specs.iter().map(|(modifier, _)| *modifier));
        let mut table = Table::new(
            format!("F18: misprediction rate (%), {family} family, predicated binaries"),
            &header,
        );

        let mut columns: Vec<Vec<f64>> = vec![Vec::new(); specs.len()];
        for entry in entries.iter() {
            let mut cells = vec![Cell::new(entry.compiled.name)];
            for column in &mut columns {
                column.push(outs[cursor].misp_percent());
                cells.push(Cell::percent(outs[cursor].misp_percent()));
                cursor += 1;
            }
            table.row(cells);
        }

        let mut amean = vec![Cell::new("amean")];
        let mut relative = vec![Cell::new("vs base")];
        let base_gmean = geometric_mean(&columns[0]).max(1e-9);
        for column in &columns {
            amean.push(Cell::percent(mean(column)));
            relative.push(Cell::float(geometric_mean(column) / base_gmean, 3));
        }
        table.row(amean);
        table.row(relative);
        artifacts.push(Artifact::Table(table));
    }
    artifacts
}

//! F19 — where the modern-tier wins land (extension): the F18
//! configurations joined against the F17 predictability taxonomy.
//!
//! For each benchmark, one shared decoded pass feeds the streaming
//! characterizer and six per-branch attribution harnesses — TAGE and
//! the multiperspective perceptron, each bare, with +SFPF+PGU, and in
//! its predicate-aware form (`ptage`/`pmpp`). Every static conditional
//! branch's misprediction counts are then grouped by its taxonomy
//! bucket.
//!
//! The claim under test — the paper's conclusion carried forward 20
//! years — is that whatever accuracy the predicate mechanisms still buy
//! on top of a modern base concentrates in the *predicate-predictable*
//! bucket: the branches whose guards resolve early or whose predicate
//! context is informative, exactly the population the 2003 mechanisms
//! were designed for. On the other buckets a strong history-based base
//! has little left to gain from predicate signals.

use predbranch_characterize::{Bucket, Characterization, Characterizer};
use predbranch_core::HotBranches;
use predbranch_modern::{build_modern_stack, ModernSpec, ModernStack};
use predbranch_stats::{Align, Cell, Table};

use super::{mpp_spec, tage_spec, Artifact, Scale};
use crate::runner::{RunContext, DEFAULT_LATENCY, PGU_DELAY};

/// The six configurations, in column order: each family's base, its
/// +SFPF+PGU wrapping, and its predicate-aware variant.
fn configs() -> [ModernSpec; 6] {
    let both = |spec: ModernSpec| spec.with_sfpf().with_pgu(PGU_DELAY);
    [
        tage_spec(),
        both(tage_spec()),
        predicate_variant(tage_spec()),
        mpp_spec(),
        both(mpp_spec()),
        predicate_variant(mpp_spec()),
    ]
}

/// The predicate-aware form of a modern base spec, keeping its
/// geometry in lock-step with the F18 configuration.
fn predicate_variant(spec: ModernSpec) -> ModernSpec {
    match spec {
        ModernSpec::Tage {
            tables,
            index_bits,
            max_history,
            ..
        } => ModernSpec::Tage {
            tables,
            index_bits,
            max_history,
            predicate: true,
        },
        ModernSpec::Mpp { index_bits, .. } => ModernSpec::Mpp {
            index_bits,
            predicate: true,
        },
        other => other,
    }
}

/// One benchmark's taxonomy plus each profiled static's misprediction
/// counts under the six configurations (in [`configs`] order).
type EntryResult = (Characterization, std::collections::BTreeMap<u32, [u64; 6]>);

/// Per-bucket aggregation across the suite.
#[derive(Debug, Default, Clone, Copy)]
struct BucketAgg {
    statics: u64,
    branches: u64,
    misp: [u64; 6],
}

impl BucketAgg {
    fn misp_percent(&self, config: usize) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.misp[config] as f64 / self.branches as f64 * 100.0
        }
    }

    /// `config`'s win over its family base in percentage points
    /// (positive = fewer mispredictions).
    fn delta_pp(&self, base: usize, config: usize) -> f64 {
        self.misp_percent(base) - self.misp_percent(config)
    }
}

pub(crate) fn run(ctx: &RunContext, scale: &Scale) -> Vec<Artifact> {
    let entries = ctx.suite(scale.limit);

    let jobs: Vec<Box<dyn FnOnce() -> EntryResult + Send>> = entries
        .iter()
        .map(|entry| {
            let ctx = ctx.clone();
            let program = entry.compiled.predicated.clone();
            let memory = entry.eval_input();
            let cache_label = format!("{}-pred", entry.compiled.name);
            let job: Box<dyn FnOnce() -> EntryResult + Send> = Box::new(move || {
                let specs = configs();
                let hot =
                    |i: usize| HotBranches::new(build_modern_stack(&specs[i]), DEFAULT_LATENCY);
                let mut characterizer = Characterizer::new();
                let (mut h0, mut h1, mut h2) = (hot(0), hot(1), hot(2));
                let (mut h3, mut h4, mut h5) = (hot(3), hot(4), hot(5));
                {
                    // tuple sinks: the one decoded pass fans out to the
                    // characterizer and all six attribution harnesses
                    let mut sink = (
                        &mut characterizer,
                        (&mut h0, (&mut h1, (&mut h2, (&mut h3, (&mut h4, &mut h5))))),
                    );
                    ctx.stream_events(&cache_label, &program, &memory, &mut sink);
                }
                let report = characterizer.finish();
                let hots: [HotBranches<ModernStack>; 6] = [h0, h1, h2, h3, h4, h5];
                let misp = report
                    .branches()
                    .iter()
                    .map(|profile| {
                        let mut counts = [0u64; 6];
                        for (slot, hot) in counts.iter_mut().zip(&hots) {
                            *slot = hot.at(profile.pc).map_or(0, |c| c.mispredictions.get());
                        }
                        (profile.pc, counts)
                    })
                    .collect();
                (report, misp)
            });
            job
        })
        .collect();
    let results = ctx.map_batch(jobs);

    // join: every static's attribution counts land in its bucket
    let mut agg = [BucketAgg::default(); 4];
    let mut total = BucketAgg::default();
    for (report, misp) in &results {
        for profile in report.branches() {
            let slot = Bucket::ALL
                .iter()
                .position(|&b| b == profile.bucket)
                .expect("bucket in ALL");
            for (config, &count) in misp[&profile.pc].iter().enumerate() {
                agg[slot].misp[config] += count;
                total.misp[config] += count;
            }
            agg[slot].statics += 1;
            agg[slot].branches += profile.executions;
            total.statics += 1;
            total.branches += profile.executions;
        }
    }

    let mut table = Table::new(
        "F19: modern-tier misprediction win over each family base (pp) by taxonomy bucket",
        &[
            "bucket",
            "statics",
            "branches",
            "tage",
            "tage+both",
            "ptage",
            "mpp",
            "mpp+both",
            "pmpp",
        ],
    )
    .with_aligns(&[
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for (bucket, a) in Bucket::ALL.iter().zip(&agg) {
        table.row(bucket_row(bucket.label(), a));
    }
    table.row(bucket_row("(all)", &total));

    vec![Artifact::Table(table)]
}

fn bucket_row(label: &str, a: &BucketAgg) -> Vec<Cell> {
    vec![
        Cell::new(label),
        Cell::count(a.statics),
        Cell::count(a.branches),
        Cell::percent(a.misp_percent(0)),
        Cell::float(a.delta_pp(0, 1), 2),
        Cell::float(a.delta_pp(0, 2), 2),
        Cell::percent(a.misp_percent(3)),
        Cell::float(a.delta_pp(3, 4), 2),
        Cell::float(a.delta_pp(3, 5), 2),
    ]
}

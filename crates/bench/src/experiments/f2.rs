//! F2 — fetch-time guard knowledge vs resolve latency: the squash
//! filter's opportunity.
//!
//! For each scoreboard resolve latency, classify every fetched
//! conditional branch of the predicated binaries by what fetch knows
//! about its guard: known-false (squashable with 100% accuracy),
//! known-true, or unresolved.

use predbranch_sim::{Executor, GuardKnowledgeStats};
use predbranch_stats::{mean, Cell, Series, Table};
use predbranch_workloads::DEFAULT_MAX_INSTRUCTIONS;

use super::{Artifact, Scale};
use crate::runner::{RunContext, DEFAULT_LATENCY};

const LATENCIES: [u64; 6] = [0, 2, 4, 8, 16, 32];

pub(crate) fn run(ctx: &RunContext, scale: &Scale) -> Vec<Artifact> {
    let entries = ctx.suite(scale.limit);

    // one classification job per (latency, entry), latency-major so the
    // aggregation below can slice per latency step
    let mut jobs: Vec<Box<dyn FnOnce() -> GuardKnowledgeStats + Send>> = Vec::new();
    for latency in LATENCIES {
        for entry in entries.iter() {
            let program = entry.compiled.predicated.clone();
            let input = entry.eval_input();
            jobs.push(Box::new(move || {
                let mut stats = GuardKnowledgeStats::new(latency);
                let summary =
                    Executor::new(&program, input).run(&mut stats, DEFAULT_MAX_INSTRUCTIONS);
                assert!(summary.halted);
                stats
            }));
        }
    }
    let all_stats = ctx.map_batch(jobs);

    let mut series = Series::new(
        "F2a: fetch-time guard knowledge vs resolve latency (suite mean, % of cond branches)",
        "latency",
    );
    series.line("known-false");
    series.line("known-true");
    series.line("unknown");
    let n = entries.len();
    for (li, latency) in LATENCIES.into_iter().enumerate() {
        let slice = &all_stats[li * n..(li + 1) * n];
        let kf: Vec<f64> = slice.iter().map(|s| s.known_false().percent()).collect();
        let kt: Vec<f64> = slice.iter().map(|s| s.known_true().percent()).collect();
        let unk: Vec<f64> = slice.iter().map(|s| s.unknown().percent()).collect();
        series.point(latency.to_string(), &[mean(&kf), mean(&kt), mean(&unk)]);
    }

    let mut table = Table::new(
        "F2b: guard knowledge per benchmark at the default latency",
        &[
            "bench",
            "known-false%",
            "known-true%",
            "unknown%",
            "kf accuracy%",
        ],
    );
    let default_idx = LATENCIES
        .iter()
        .position(|&l| l == DEFAULT_LATENCY)
        .expect("default latency must be part of the sweep");
    for (entry, stats) in entries
        .iter()
        .zip(&all_stats[default_idx * n..(default_idx + 1) * n])
    {
        let accuracy = if stats.known_false().numerator() == 0 {
            Cell::new("-")
        } else {
            Cell::percent(stats.known_false_accuracy().percent())
        };
        table.row(vec![
            Cell::new(entry.compiled.name),
            Cell::percent(stats.known_false().percent()),
            Cell::percent(stats.known_true().percent()),
            Cell::percent(stats.unknown().percent()),
            accuracy,
        ]);
    }
    vec![Artifact::Series(series), Artifact::Table(table)]
}

//! F2 — fetch-time guard knowledge vs resolve latency: the squash
//! filter's opportunity.
//!
//! For each scoreboard resolve latency, classify every fetched
//! conditional branch of the predicated binaries by what fetch knows
//! about its guard: known-false (squashable with 100% accuracy),
//! known-true, or unresolved.

use predbranch_sim::{Executor, GuardKnowledgeStats};
use predbranch_stats::{mean, Cell, Series, Table};
use predbranch_workloads::DEFAULT_MAX_INSTRUCTIONS;

use super::{Artifact, Scale};
use crate::runner::{compiled_suite, DEFAULT_LATENCY};

const LATENCIES: [u64; 6] = [0, 2, 4, 8, 16, 32];

pub(crate) fn run(scale: &Scale) -> Vec<Artifact> {
    let entries = compiled_suite(scale.limit);

    let mut series = Series::new(
        "F2a: fetch-time guard knowledge vs resolve latency (suite mean, % of cond branches)",
        "latency",
    );
    series.line("known-false");
    series.line("known-true");
    series.line("unknown");
    for latency in LATENCIES {
        let mut kf = Vec::new();
        let mut kt = Vec::new();
        let mut unk = Vec::new();
        for entry in &entries {
            let stats = classify(entry, latency);
            kf.push(stats.known_false().percent());
            kt.push(stats.known_true().percent());
            unk.push(stats.unknown().percent());
        }
        series.point(latency.to_string(), &[mean(&kf), mean(&kt), mean(&unk)]);
    }

    let mut table = Table::new(
        "F2b: guard knowledge per benchmark at the default latency",
        &[
            "bench",
            "known-false%",
            "known-true%",
            "unknown%",
            "kf accuracy%",
        ],
    );
    for entry in &entries {
        let stats = classify(entry, DEFAULT_LATENCY);
        let accuracy = if stats.known_false().numerator() == 0 {
            Cell::new("-")
        } else {
            Cell::percent(stats.known_false_accuracy().percent())
        };
        table.row(vec![
            Cell::new(entry.compiled.name),
            Cell::percent(stats.known_false().percent()),
            Cell::percent(stats.known_true().percent()),
            Cell::percent(stats.unknown().percent()),
            accuracy,
        ]);
    }
    vec![Artifact::Series(series), Artifact::Table(table)]
}

fn classify(entry: &crate::runner::SuiteEntry, latency: u64) -> GuardKnowledgeStats {
    let mut stats = GuardKnowledgeStats::new(latency);
    let summary = Executor::new(&entry.compiled.predicated, entry.eval_input())
        .run(&mut stats, DEFAULT_MAX_INSTRUCTIONS);
    assert!(summary.halted);
    stats
}

//! F3 — the headline figure: per-benchmark misprediction rates of the
//! gshare baseline vs +SFPF, +PGU, and both, on predicated code.

use predbranch_core::InsertFilter;
use predbranch_stats::{geometric_mean, mean, Cell, Table};

use super::{headline_specs, Artifact, Scale};
use crate::runner::{CellSpec, RunContext};

pub(crate) fn run(ctx: &RunContext, scale: &Scale) -> Vec<Artifact> {
    let specs = headline_specs();
    let entries = ctx.suite(scale.limit);
    let mut cells_in = Vec::with_capacity(entries.len() * specs.len());
    for entry in entries.iter() {
        for (label, spec) in &specs {
            cells_in.push(CellSpec::predicated(
                entry,
                format!("f3/{}/{label}", entry.compiled.name),
                spec,
                scale.timing(),
                InsertFilter::All,
            ));
        }
    }
    let outs = ctx.run_cells(cells_in);

    let mut header = vec!["bench"];
    header.extend(specs.iter().map(|(label, _)| *label));
    let mut table = Table::new(
        "F3: conditional-branch misprediction rate (%), predicated binaries",
        &header,
    );

    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); specs.len()];
    for (row, entry) in entries.iter().enumerate() {
        let mut cells = vec![Cell::new(entry.compiled.name)];
        for col in 0..specs.len() {
            let out = &outs[row * specs.len() + col];
            columns[col].push(out.misp_percent());
            cells.push(Cell::percent(out.misp_percent()));
        }
        table.row(cells);
    }

    let mut amean = vec![Cell::new("amean")];
    let mut relative = vec![Cell::new("vs gshare")];
    let base_gmean = geometric_mean(&columns[0]).max(1e-9);
    for col in &columns {
        amean.push(Cell::percent(mean(col)));
        relative.push(Cell::float(geometric_mean(col) / base_gmean, 3));
    }
    table.row(amean);
    table.row(relative);
    vec![Artifact::Table(table)]
}

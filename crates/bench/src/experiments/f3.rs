//! F3 — the headline figure: per-benchmark misprediction rates of the
//! gshare baseline vs +SFPF, +PGU, and both, on predicated code.

use predbranch_core::InsertFilter;
use predbranch_stats::{geometric_mean, mean, Cell, Table};

use super::{headline_specs, Artifact, Scale};
use crate::runner::{compiled_suite, run_spec, DEFAULT_LATENCY};

pub(crate) fn run(scale: &Scale) -> Vec<Artifact> {
    let specs = headline_specs();
    let mut header = vec!["bench"];
    header.extend(specs.iter().map(|(label, _)| *label));
    let mut table = Table::new(
        "F3: conditional-branch misprediction rate (%), predicated binaries",
        &header,
    );

    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); specs.len()];
    for entry in compiled_suite(scale.limit) {
        let mut cells = vec![Cell::new(entry.compiled.name)];
        for (col, (_, spec)) in specs.iter().enumerate() {
            let out = run_spec(
                &entry.compiled.predicated,
                entry.eval_input(),
                spec,
                DEFAULT_LATENCY,
                InsertFilter::All,
            );
            columns[col].push(out.misp_percent());
            cells.push(Cell::percent(out.misp_percent()));
        }
        table.row(cells);
    }

    let mut amean = vec![Cell::new("amean")];
    let mut relative = vec![Cell::new("vs gshare")];
    let base_gmean = geometric_mean(&columns[0]).max(1e-9);
    for col in &columns {
        amean.push(Cell::percent(mean(col)));
        relative.push(Cell::float(geometric_mean(col) / base_gmean, 3));
    }
    table.row(amean);
    table.row(relative);
    vec![Artifact::Table(table)]
}

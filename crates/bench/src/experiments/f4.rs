//! F4 — the paper's target class: region-based branches only.

use predbranch_core::InsertFilter;
use predbranch_stats::{mean, Cell, Table};

use super::{headline_specs, Artifact, Scale};
use crate::runner::{CellSpec, RunContext};

pub(crate) fn run(ctx: &RunContext, scale: &Scale) -> Vec<Artifact> {
    let specs = headline_specs();
    let entries = ctx.suite(scale.limit);
    let mut cells_in = Vec::with_capacity(entries.len() * specs.len());
    for entry in entries.iter() {
        for (label, spec) in &specs {
            cells_in.push(CellSpec::predicated(
                entry,
                format!("f4/{}/{label}", entry.compiled.name),
                spec,
                scale.timing(),
                InsertFilter::All,
            ));
        }
    }
    let outs = ctx.run_cells(cells_in);

    let mut header = vec!["bench", "region br"];
    header.extend(specs.iter().map(|(label, _)| *label));
    let mut table = Table::new("F4: region-based-branch misprediction rate (%)", &header);

    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); specs.len()];
    for (row, entry) in entries.iter().enumerate() {
        let mut cells = vec![Cell::new(entry.compiled.name)];
        for col in 0..specs.len() {
            let out = &outs[row * specs.len() + col];
            columns[col].push(out.region_misp_percent());
            if col == 0 {
                cells.push(Cell::count(out.metrics.region.branches.get()));
            }
            cells.push(Cell::percent(out.region_misp_percent()));
        }
        table.row(cells);
    }
    let mut amean = vec![Cell::new("amean"), Cell::new("-")];
    for col in &columns {
        amean.push(Cell::percent(mean(col)));
    }
    table.row(amean);
    vec![Artifact::Table(table)]
}

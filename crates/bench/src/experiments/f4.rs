//! F4 — the paper's target class: region-based branches only.

use predbranch_core::InsertFilter;
use predbranch_stats::{mean, Cell, Table};

use super::{headline_specs, Artifact, Scale};
use crate::runner::{compiled_suite, run_spec, DEFAULT_LATENCY};

pub(crate) fn run(scale: &Scale) -> Vec<Artifact> {
    let specs = headline_specs();
    let mut header = vec!["bench", "region br"];
    header.extend(specs.iter().map(|(label, _)| *label));
    let mut table = Table::new("F4: region-based-branch misprediction rate (%)", &header);

    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); specs.len()];
    for entry in compiled_suite(scale.limit) {
        let mut cells = vec![Cell::new(entry.compiled.name)];
        let mut region_count = 0;
        for (col, (_, spec)) in specs.iter().enumerate() {
            let out = run_spec(
                &entry.compiled.predicated,
                entry.eval_input(),
                spec,
                DEFAULT_LATENCY,
                InsertFilter::All,
            );
            region_count = out.metrics.region.branches.get();
            columns[col].push(out.region_misp_percent());
            if col == 0 {
                cells.push(Cell::count(region_count));
            }
            cells.push(Cell::percent(out.region_misp_percent()));
        }
        let _ = region_count;
        table.row(cells);
    }
    let mut amean = vec![Cell::new("amean"), Cell::new("-")];
    for col in &columns {
        amean.push(Cell::percent(mean(col)));
    }
    table.row(amean);
    vec![Artifact::Table(table)]
}

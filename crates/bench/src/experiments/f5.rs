//! F5 — predictor budget sweep: suite-mean misprediction rate as the
//! gshare table grows, for all four configurations.
//!
//! The suite's analogs have compact static footprints (tens of hot
//! branches), so capacity pressure appears at *small* tables; the sweep
//! therefore starts at 16 B and runs to 16 KB. The interesting shape:
//! predicate information is worth more than any amount of extra table —
//! the curves flatten with size while the technique gap persists,
//! because the correlation PGU adds is not capacity-limited.

use predbranch_core::{InsertFilter, PredictorSpec};
use predbranch_stats::{mean, Series};

use super::{Artifact, Scale};
use crate::runner::{CellSpec, RunContext, PGU_DELAY};

/// Swept table index widths; a `2^n`-entry table of 2-bit counters is
/// `2^(n-2)` bytes.
const INDEX_BITS: [u32; 6] = [6, 8, 10, 12, 14, 16];

const CONFIGS: [&str; 4] = ["gshare", "+SFPF", "+PGU", "+both"];

fn size_label(index_bits: u32) -> String {
    let bytes = 1u64 << (index_bits - 2);
    if bytes < 1024 {
        format!("{bytes}B")
    } else {
        format!("{}KB", bytes / 1024)
    }
}

pub(crate) fn run(ctx: &RunContext, scale: &Scale) -> Vec<Artifact> {
    let entries = ctx.suite(scale.limit);
    let mut cells_in = Vec::new();
    for bits in INDEX_BITS {
        let base = PredictorSpec::Gshare {
            index_bits: bits,
            history_bits: bits.min(16),
        };
        let specs = [
            base.clone(),
            base.clone().with_sfpf(),
            base.clone().with_pgu(PGU_DELAY),
            base.with_sfpf().with_pgu(PGU_DELAY),
        ];
        for (config, spec) in CONFIGS.iter().zip(&specs) {
            for entry in entries.iter() {
                cells_in.push(CellSpec::predicated(
                    entry,
                    format!("f5/{}/{config}/b{bits}", entry.compiled.name),
                    spec,
                    scale.timing(),
                    InsertFilter::All,
                ));
            }
        }
    }
    let outs = ctx.run_cells(cells_in);

    let mut series = Series::new(
        "F5: suite-mean misprediction rate (%) vs gshare table size",
        "size",
    );
    for label in CONFIGS {
        series.line(label);
    }
    let n = entries.len();
    for (bi, bits) in INDEX_BITS.into_iter().enumerate() {
        let mut ys = Vec::with_capacity(CONFIGS.len());
        for ci in 0..CONFIGS.len() {
            let start = (bi * CONFIGS.len() + ci) * n;
            let rates: Vec<f64> = outs[start..start + n]
                .iter()
                .map(|out| out.misp_percent())
                .collect();
            ys.push(mean(&rates));
        }
        series.point(size_label(bits), &ys);
    }
    vec![Artifact::Series(series)]
}

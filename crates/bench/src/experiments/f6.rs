//! F6 — PGU insertion-timing sensitivity.
//!
//! Sweeps the delay between a compare executing and its predicate bit
//! entering global history: 0 models an ideal speculative front-end
//! insertion, the resolve latency (8) models commit-time update, larger
//! values model a sluggish update path. Also reports the measured
//! guard-definition-to-branch distances, which bound how much delay the
//! correlation can survive.

use predbranch_core::InsertFilter;
use predbranch_sim::{ExecMetrics, Executor};
use predbranch_stats::{mean, Cell, Series, Table};
use predbranch_workloads::DEFAULT_MAX_INSTRUCTIONS;

use super::{base_spec, Artifact, Scale};
use crate::runner::{CellSpec, RunContext};

const DELAYS: [u64; 7] = [0, 1, 2, 4, 8, 16, 32];

pub(crate) fn run(ctx: &RunContext, scale: &Scale) -> Vec<Artifact> {
    let entries = ctx.suite(scale.limit);

    let mut cells_in = Vec::with_capacity(DELAYS.len() * entries.len());
    for delay in DELAYS {
        let spec = base_spec().with_pgu(delay);
        for entry in entries.iter() {
            cells_in.push(CellSpec::predicated(
                entry,
                format!("f6/{}/d{delay}", entry.compiled.name),
                &spec,
                scale.timing(),
                InsertFilter::All,
            ));
        }
    }
    let outs = ctx.run_cells(cells_in);

    let mut series = Series::new(
        "F6a: suite-mean misprediction rate (%) vs PGU insertion delay",
        "delay",
    );
    series.line("+PGU");
    let n = entries.len();
    for (di, delay) in DELAYS.into_iter().enumerate() {
        let rates: Vec<f64> = outs[di * n..(di + 1) * n]
            .iter()
            .map(|out| out.misp_percent())
            .collect();
        series.point(delay.to_string(), &[mean(&rates)]);
    }

    // guard distances come from an instrumented functional run, not a
    // predictor cell; map_batch keeps them on the pool anyway
    let distance_jobs = entries
        .iter()
        .map(|entry| {
            let program = entry.compiled.predicated.clone();
            let input = entry.eval_input();
            let job: Box<dyn FnOnce() -> (f64, u64, u64, u64) + Send> = Box::new(move || {
                let mut metrics = ExecMetrics::new();
                let summary =
                    Executor::new(&program, input).run(&mut metrics, DEFAULT_MAX_INSTRUCTIONS);
                assert!(summary.halted);
                let hist = metrics.guard_distance();
                let median_edge = hist.percentile_upper_bound(0.5).unwrap_or(0);
                (hist.mean(), median_edge, hist.max(), hist.count())
            });
            job
        })
        .collect();
    let distances = ctx.map_batch(distance_jobs);

    let mut table = Table::new(
        "F6b: guard definition-to-branch distance (fetch slots)",
        &["bench", "mean", "p50<=", "max", "samples"],
    );
    for (entry, (mean_dist, median_edge, max, count)) in entries.iter().zip(distances) {
        table.row(vec![
            Cell::new(entry.compiled.name),
            Cell::float(mean_dist, 1),
            Cell::count(median_edge),
            Cell::count(max),
            Cell::count(count),
        ]);
    }
    vec![Artifact::Series(series), Artifact::Table(table)]
}

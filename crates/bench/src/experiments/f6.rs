//! F6 — PGU insertion-timing sensitivity.
//!
//! Sweeps the delay between a compare executing and its predicate bit
//! entering global history: 0 models an ideal speculative front-end
//! insertion, the resolve latency (8) models commit-time update, larger
//! values model a sluggish update path. Also reports the measured
//! guard-definition-to-branch distances, which bound how much delay the
//! correlation can survive.

use predbranch_core::InsertFilter;
use predbranch_sim::{ExecMetrics, Executor};
use predbranch_stats::{mean, Cell, Series, Table};
use predbranch_workloads::DEFAULT_MAX_INSTRUCTIONS;

use super::{base_spec, Artifact, Scale};
use crate::runner::{compiled_suite, run_spec, DEFAULT_LATENCY};

const DELAYS: [u64; 7] = [0, 1, 2, 4, 8, 16, 32];

pub(crate) fn run(scale: &Scale) -> Vec<Artifact> {
    let entries = compiled_suite(scale.limit);

    let mut series = Series::new(
        "F6a: suite-mean misprediction rate (%) vs PGU insertion delay",
        "delay",
    );
    series.line("+PGU");
    for delay in DELAYS {
        let spec = base_spec().with_pgu(delay);
        let rates: Vec<f64> = entries
            .iter()
            .map(|entry| {
                run_spec(
                    &entry.compiled.predicated,
                    entry.eval_input(),
                    &spec,
                    DEFAULT_LATENCY,
                    InsertFilter::All,
                )
                .misp_percent()
            })
            .collect();
        series.point(delay.to_string(), &[mean(&rates)]);
    }

    let mut table = Table::new(
        "F6b: guard definition-to-branch distance (fetch slots)",
        &["bench", "mean", "p50<=", "max", "samples"],
    );
    for entry in &entries {
        let mut metrics = ExecMetrics::new();
        let summary = Executor::new(&entry.compiled.predicated, entry.eval_input())
            .run(&mut metrics, DEFAULT_MAX_INSTRUCTIONS);
        assert!(summary.halted);
        let hist = metrics.guard_distance();
        let median_edge = hist.percentile_upper_bound(0.5).unwrap_or(0);
        table.row(vec![
            Cell::new(entry.compiled.name),
            Cell::float(hist.mean(), 1),
            Cell::count(median_edge),
            Cell::count(hist.max()),
            Cell::count(hist.count()),
        ]);
    }
    vec![Artifact::Series(series), Artifact::Table(table)]
}

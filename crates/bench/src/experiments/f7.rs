//! F7 — robustness: applying the techniques to different baseline
//! predictors (bimodal, gshare, local, tournament).
//!
//! SFPF composes with anything; PGU needs a global history register, so
//! it applies to gshare and tournament only (for bimodal and local the
//! +PGU column equals the base by construction).

use predbranch_core::{InsertFilter, PredictorSpec};
use predbranch_stats::{mean, Cell, Table};

use super::{Artifact, Scale};
use crate::runner::{compiled_suite, run_spec, DEFAULT_LATENCY, PGU_DELAY};

fn baselines() -> Vec<(&'static str, PredictorSpec)> {
    vec![
        ("bimodal", PredictorSpec::Bimodal { index_bits: 14 }),
        (
            "gshare",
            PredictorSpec::Gshare {
                index_bits: 13,
                history_bits: 13,
            },
        ),
        (
            "local",
            PredictorSpec::Local {
                bht_bits: 10,
                history_bits: 10,
                pattern_bits: 12,
            },
        ),
        (
            "tournament",
            PredictorSpec::Tournament {
                gshare_bits: 12,
                history_bits: 12,
                bimodal_bits: 12,
                chooser_bits: 12,
            },
        ),
        (
            "perceptron",
            PredictorSpec::Perceptron {
                index_bits: 7,
                history_bits: 14,
            },
        ),
        (
            "agree",
            PredictorSpec::Agree {
                index_bits: 12,
                history_bits: 12,
            },
        ),
    ]
}

pub(crate) fn run(scale: &Scale) -> Vec<Artifact> {
    let entries = compiled_suite(scale.limit);
    let mut table = Table::new(
        "F7: suite-mean misprediction rate (%) per baseline predictor",
        &["baseline", "base", "+SFPF", "+PGU", "+both"],
    );
    for (name, base) in baselines() {
        let variants = [
            base.clone(),
            base.clone().with_sfpf(),
            base.clone().with_pgu(PGU_DELAY),
            base.with_sfpf().with_pgu(PGU_DELAY),
        ];
        let mut cells = vec![Cell::new(name)];
        for spec in &variants {
            let rates: Vec<f64> = entries
                .iter()
                .map(|entry| {
                    run_spec(
                        &entry.compiled.predicated,
                        entry.eval_input(),
                        spec,
                        DEFAULT_LATENCY,
                        InsertFilter::All,
                    )
                    .misp_percent()
                })
                .collect();
            cells.push(Cell::percent(mean(&rates)));
        }
        table.row(cells);
    }
    vec![Artifact::Table(table)]
}

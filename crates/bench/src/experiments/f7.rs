//! F7 — robustness: applying the techniques to different baseline
//! predictors (bimodal, gshare, local, tournament).
//!
//! SFPF composes with anything; PGU needs a global history register, so
//! it applies to gshare and tournament only (for bimodal and local the
//! +PGU column equals the base by construction).

use predbranch_core::{InsertFilter, PredictorSpec};
use predbranch_stats::{mean, Cell, Table};

use super::{Artifact, Scale};
use crate::runner::{CellSpec, RunContext, PGU_DELAY};

const VARIANTS: [&str; 4] = ["base", "+SFPF", "+PGU", "+both"];

fn baselines() -> Vec<(&'static str, PredictorSpec)> {
    vec![
        ("bimodal", PredictorSpec::Bimodal { index_bits: 14 }),
        (
            "gshare",
            PredictorSpec::Gshare {
                index_bits: 13,
                history_bits: 13,
            },
        ),
        (
            "local",
            PredictorSpec::Local {
                bht_bits: 10,
                history_bits: 10,
                pattern_bits: 12,
            },
        ),
        (
            "tournament",
            PredictorSpec::Tournament {
                gshare_bits: 12,
                history_bits: 12,
                bimodal_bits: 12,
                chooser_bits: 12,
            },
        ),
        (
            "perceptron",
            PredictorSpec::Perceptron {
                index_bits: 7,
                history_bits: 14,
            },
        ),
        (
            "agree",
            PredictorSpec::Agree {
                index_bits: 12,
                history_bits: 12,
            },
        ),
    ]
}

pub(crate) fn run(ctx: &RunContext, scale: &Scale) -> Vec<Artifact> {
    let entries = ctx.suite(scale.limit);
    let bases = baselines();
    let mut cells_in = Vec::new();
    for (name, base) in &bases {
        let variants = [
            base.clone(),
            base.clone().with_sfpf(),
            base.clone().with_pgu(PGU_DELAY),
            base.clone().with_sfpf().with_pgu(PGU_DELAY),
        ];
        for (variant, spec) in VARIANTS.iter().zip(&variants) {
            for entry in entries.iter() {
                cells_in.push(CellSpec::predicated(
                    entry,
                    format!("f7/{}/{name}/{variant}", entry.compiled.name),
                    spec,
                    scale.timing(),
                    InsertFilter::All,
                ));
            }
        }
    }
    let outs = ctx.run_cells(cells_in);

    let mut table = Table::new(
        "F7: suite-mean misprediction rate (%) per baseline predictor",
        &["baseline", "base", "+SFPF", "+PGU", "+both"],
    );
    let n = entries.len();
    for (bi, (name, _)) in bases.iter().enumerate() {
        let mut cells = vec![Cell::new(*name)];
        for vi in 0..VARIANTS.len() {
            let start = (bi * VARIANTS.len() + vi) * n;
            let rates: Vec<f64> = outs[start..start + n]
                .iter()
                .map(|out| out.misp_percent())
                .collect();
            cells.push(Cell::percent(mean(&rates)));
        }
        table.row(cells);
    }
    vec![Artifact::Table(table)]
}

//! F8 — pipeline-level effect: speedup from the reduced flush count.
//!
//! Cycles come from the event-driven [`FetchTimeline`] (fetch
//! fragmentation at taken branches + full flush stalls), cross-checked
//! against the closed-form [`PipelineModel`]; every configuration runs
//! the same predicated binary, so speedups come purely from
//! mispredictions avoided.
//!
//! Timeline runs are live by construction (the fetch timeline consumes
//! the event stream cycle by cycle), so this experiment bypasses the
//! trace cache and fans out raw jobs instead of predictor cells.

use predbranch_core::{build_predictor, HarnessConfig, InsertFilter, PredictionHarness};
use predbranch_sim::{Executor, PipelineConfig, PipelineModel};
use predbranch_stats::{geometric_mean, Cell, Table};
use predbranch_workloads::DEFAULT_MAX_INSTRUCTIONS;

use super::{headline_specs, Artifact, Scale};
use crate::runner::RunContext;

struct TimelinePoint {
    cycles: u64,
    ipc: f64,
    /// Closed-form cross-check, computed for the baseline column only.
    model_ipc: Option<f64>,
}

pub(crate) fn run(ctx: &RunContext, scale: &Scale) -> Vec<Artifact> {
    let specs = headline_specs();
    let pipe = PipelineConfig::default();
    let timing = scale.timing();
    let entries = ctx.suite(scale.limit);

    let mut jobs: Vec<Box<dyn FnOnce() -> TimelinePoint + Send>> = Vec::new();
    for entry in entries.iter() {
        for (i, (_, spec)) in specs.iter().enumerate() {
            let program = entry.compiled.predicated.clone();
            let input = entry.eval_input();
            let spec = spec.clone();
            jobs.push(Box::new(move || {
                let mut harness = PredictionHarness::new(
                    build_predictor(&spec),
                    HarnessConfig {
                        timing,
                        insert: InsertFilter::All,
                    },
                )
                .with_timeline(pipe);
                let summary =
                    Executor::new(&program, input).run(&mut harness, 2 * DEFAULT_MAX_INSTRUCTIONS);
                assert!(summary.halted);
                harness.finish();
                let timeline = *harness.timeline().expect("timeline attached");
                let model_ipc = (i == 0).then(|| {
                    let unconditional = summary.branches - summary.conditional_branches;
                    PipelineModel::estimate(
                        &pipe,
                        summary.instructions,
                        harness.metrics().all.mispredictions.get(),
                        summary.taken_conditional + unconditional,
                    )
                    .ipc()
                });
                TimelinePoint {
                    cycles: timeline.cycles(),
                    ipc: timeline.ipc(),
                    model_ipc,
                }
            }));
        }
    }
    let points = ctx.map_batch(jobs);

    let mut table = Table::new(
        "F8: IPC and speedup over the gshare baseline (event-driven fetch timeline)",
        &[
            "bench",
            "IPC gshare",
            "spd +SFPF",
            "spd +PGU",
            "spd +both",
            "model IPC",
        ],
    );
    let mut speedups: Vec<Vec<f64>> = vec![Vec::new(); specs.len() - 1];
    for (row, entry) in entries.iter().enumerate() {
        let slice = &points[row * specs.len()..(row + 1) * specs.len()];
        let mut cells = vec![Cell::new(entry.compiled.name), Cell::float(slice[0].ipc, 3)];
        for (i, point) in slice.iter().enumerate().skip(1) {
            let speedup = slice[0].cycles as f64 / point.cycles as f64;
            speedups[i - 1].push(speedup);
            cells.push(Cell::float(speedup, 4));
        }
        cells.push(Cell::float(slice[0].model_ipc.unwrap_or(0.0), 3));
        table.row(cells);
    }
    let mut gmean = vec![Cell::new("gmean"), Cell::new("-")];
    for col in &speedups {
        gmean.push(Cell::float(geometric_mean(col), 4));
    }
    gmean.push(Cell::new("-"));
    table.row(gmean);
    vec![Artifact::Table(table)]
}

//! F8 — pipeline-level effect: speedup from the reduced flush count.
//!
//! Cycles come from the event-driven [`FetchTimeline`] (fetch
//! fragmentation at taken branches + full flush stalls), cross-checked
//! against the closed-form [`PipelineModel`]; every configuration runs
//! the same predicated binary, so speedups come purely from
//! mispredictions avoided.

use predbranch_core::{build_predictor, HarnessConfig, InsertFilter, PredictionHarness};
use predbranch_sim::{Executor, PipelineConfig, PipelineModel};
use predbranch_stats::{geometric_mean, Cell, Table};
use predbranch_workloads::DEFAULT_MAX_INSTRUCTIONS;

use super::{headline_specs, Artifact, Scale};
use crate::runner::{compiled_suite, DEFAULT_LATENCY};

pub(crate) fn run(scale: &Scale) -> Vec<Artifact> {
    let specs = headline_specs();
    let pipe = PipelineConfig::default();
    let mut table = Table::new(
        "F8: IPC and speedup over the gshare baseline (event-driven fetch timeline)",
        &[
            "bench",
            "IPC gshare",
            "spd +SFPF",
            "spd +PGU",
            "spd +both",
            "model IPC",
        ],
    );
    let mut speedups: Vec<Vec<f64>> = vec![Vec::new(); specs.len() - 1];
    for entry in compiled_suite(scale.limit) {
        let mut cycles = Vec::with_capacity(specs.len());
        let mut model_ipc = 0.0;
        for (i, (_, spec)) in specs.iter().enumerate() {
            let mut harness = PredictionHarness::new(
                build_predictor(spec),
                HarnessConfig {
                    resolve_latency: DEFAULT_LATENCY,
                    insert: InsertFilter::All,
                },
            )
            .with_timeline(pipe);
            let summary = Executor::new(&entry.compiled.predicated, entry.eval_input())
                .run(&mut harness, 2 * DEFAULT_MAX_INSTRUCTIONS);
            assert!(summary.halted);
            let timeline = *harness.timeline().expect("timeline attached");
            cycles.push((timeline.cycles(), timeline.ipc()));
            if i == 0 {
                let unconditional = summary.branches - summary.conditional_branches;
                model_ipc = PipelineModel::estimate(
                    &pipe,
                    summary.instructions,
                    harness.metrics().all.mispredictions.get(),
                    summary.taken_conditional + unconditional,
                )
                .ipc();
            }
        }
        let mut cells = vec![Cell::new(entry.compiled.name), Cell::float(cycles[0].1, 3)];
        for (i, &(c, _)) in cycles.iter().enumerate().skip(1) {
            let speedup = cycles[0].0 as f64 / c as f64;
            speedups[i - 1].push(speedup);
            cells.push(Cell::float(speedup, 4));
        }
        cells.push(Cell::float(model_ipc, 3));
        table.row(cells);
    }
    let mut gmean = vec![Cell::new("gmean"), Cell::new("-")];
    for col in &speedups {
        gmean.push(Cell::float(geometric_mean(col), 4));
    }
    gmean.push(Cell::new("-"));
    table.row(gmean);
    vec![Artifact::Table(table)]
}

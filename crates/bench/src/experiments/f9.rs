//! F9 — oracle headroom: how much of the distance to perfect prediction
//! the techniques capture.
//!
//! The perfect-guard oracle is 100% accurate on this ISA (a branch *is*
//! its guard), so the headroom is simply the baseline misprediction
//! rate; the figure reports what fraction of it each configuration
//! recovers, realistically timed and with ideal (zero-latency) predicate
//! delivery.

use predbranch_core::{InsertFilter, PredictorSpec};
use predbranch_stats::{mean, Cell, Table};

use super::{base_spec, Artifact, Scale};
use crate::runner::{compiled_suite, run_spec, DEFAULT_LATENCY, PGU_DELAY};

pub(crate) fn run(scale: &Scale) -> Vec<Artifact> {
    let base = base_spec();
    let both_real = base.clone().with_sfpf().with_pgu(PGU_DELAY);
    let both_ideal = base.clone().with_sfpf().with_pgu(0);
    let oracle = PredictorSpec::OracleGuard;

    let mut table = Table::new(
        "F9: misprediction rate (%) against the perfect-guard oracle",
        &[
            "bench",
            "gshare",
            "both (real)",
            "both (ideal timing)",
            "oracle",
            "headroom captured%",
        ],
    );
    let mut captured_all = Vec::new();
    for entry in compiled_suite(scale.limit) {
        let run1 = |spec: &PredictorSpec, latency: u64| {
            run_spec(
                &entry.compiled.predicated,
                entry.eval_input(),
                spec,
                latency,
                InsertFilter::All,
            )
            .misp_percent()
        };
        let b = run1(&base, DEFAULT_LATENCY);
        let real = run1(&both_real, DEFAULT_LATENCY);
        // ideal timing: zero resolve latency and zero insertion delay
        let ideal = run1(&both_ideal, 0);
        let orc = run1(&oracle, DEFAULT_LATENCY);
        let captured = if b > 1e-9 {
            100.0 * (b - real) / (b - orc).max(1e-9)
        } else {
            100.0
        };
        captured_all.push(captured);
        table.row(vec![
            Cell::new(entry.compiled.name),
            Cell::percent(b),
            Cell::percent(real),
            Cell::percent(ideal),
            Cell::percent(orc),
            Cell::percent(captured),
        ]);
    }
    table.row(vec![
        Cell::new("mean"),
        Cell::new("-"),
        Cell::new("-"),
        Cell::new("-"),
        Cell::new("-"),
        Cell::percent(mean(&captured_all)),
    ]);
    vec![Artifact::Table(table)]
}

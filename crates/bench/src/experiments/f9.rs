//! F9 — oracle headroom: how much of the distance to perfect prediction
//! the techniques capture.
//!
//! The perfect-guard oracle is 100% accurate on this ISA (a branch *is*
//! its guard), so the headroom is simply the baseline misprediction
//! rate; the figure reports what fraction of it each configuration
//! recovers, realistically timed and with ideal (zero-latency) predicate
//! delivery.

use predbranch_core::{InsertFilter, PredictorSpec, Timing};
use predbranch_stats::{mean, Cell, Table};

use super::{base_spec, Artifact, Scale};
use crate::runner::{CellSpec, RunContext, DEFAULT_LATENCY, PGU_DELAY};

pub(crate) fn run(ctx: &RunContext, scale: &Scale) -> Vec<Artifact> {
    let base = base_spec();
    let both_real = base.clone().with_sfpf().with_pgu(PGU_DELAY);
    let both_ideal = base.clone().with_sfpf().with_pgu(0);
    let oracle = PredictorSpec::OracleGuard;
    // (column tag, spec, resolve latency); ideal timing = zero resolve
    // latency and zero insertion delay
    let configs = [
        ("gshare", &base, DEFAULT_LATENCY),
        ("real", &both_real, DEFAULT_LATENCY),
        ("ideal", &both_ideal, 0),
        ("oracle", &oracle, DEFAULT_LATENCY),
    ];

    let entries = ctx.suite(scale.limit);
    let mut cells_in = Vec::with_capacity(entries.len() * configs.len());
    for entry in entries.iter() {
        for (tag, spec, latency) in &configs {
            cells_in.push(CellSpec::predicated(
                entry,
                format!("f9/{}/{tag}", entry.compiled.name),
                *spec,
                Timing::new(*latency, scale.retire_latency),
                InsertFilter::All,
            ));
        }
    }
    let outs = ctx.run_cells(cells_in);

    let mut table = Table::new(
        "F9: misprediction rate (%) against the perfect-guard oracle",
        &[
            "bench",
            "gshare",
            "both (real)",
            "both (ideal timing)",
            "oracle",
            "headroom captured%",
        ],
    );
    let mut captured_all = Vec::new();
    for (row, entry) in entries.iter().enumerate() {
        let rate = |col: usize| outs[row * configs.len() + col].misp_percent();
        let (b, real, ideal, orc) = (rate(0), rate(1), rate(2), rate(3));
        let captured = if b > 1e-9 {
            100.0 * (b - real) / (b - orc).max(1e-9)
        } else {
            100.0
        };
        captured_all.push(captured);
        table.row(vec![
            Cell::new(entry.compiled.name),
            Cell::percent(b),
            Cell::percent(real),
            Cell::percent(ideal),
            Cell::percent(orc),
            Cell::percent(captured),
        ]);
    }
    table.row(vec![
        Cell::new("mean"),
        Cell::new("-"),
        Cell::new("-"),
        Cell::new("-"),
        Cell::new("-"),
        Cell::percent(mean(&captured_all)),
    ]);
    vec![Artifact::Table(table)]
}

//! One module per table/figure of the study.
//!
//! The experiment ids follow DESIGN.md: `t1`/`t2` are tables, `f1`–`f10`
//! figures. Every experiment maps a [`Scale`] to a list of text
//! [`Artifact`]s so the binary, the tests, and the Criterion benches all
//! share one implementation.

use std::fmt;

use predbranch_core::{PredictorSpec, Timing};
use predbranch_modern::ModernSpec;
use predbranch_stats::{Series, Table};

use crate::runner::{RunContext, DEFAULT_LATENCY, PGU_DELAY};

mod f1;
mod f10;
mod f11;
mod f12;
mod f13;
mod f14;
mod f15;
mod f16;
mod f17;
mod f18;
mod f19;
mod f2;
mod f3;
mod f4;
mod f5;
mod f6;
mod f7;
mod f8;
mod f9;
mod t1;
mod t2;

/// How much of the suite an experiment run covers, and at which
/// harness timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Restrict to the first `n` benchmarks (`None` = whole suite).
    pub limit: Option<usize>,
    /// Commit delay (in fetched instructions) for every cell the
    /// experiment runs. `0` reproduces the historical immediate-update
    /// results exactly; see [`predbranch_core::Timing`].
    pub retire_latency: u64,
}

impl Scale {
    /// The full 11-benchmark suite.
    pub fn full() -> Self {
        Scale {
            limit: None,
            retire_latency: 0,
        }
    }

    /// A 3-benchmark quick mode for tests and Criterion.
    pub fn quick() -> Self {
        Scale {
            limit: Some(3),
            retire_latency: 0,
        }
    }

    /// The same scale with a different retire latency.
    pub fn with_retire(self, retire_latency: u64) -> Self {
        Scale {
            retire_latency,
            ..self
        }
    }

    /// The harness timing every experiment cell runs at: the suite's
    /// default resolve latency plus this scale's retire latency.
    pub fn timing(&self) -> Timing {
        Timing::new(DEFAULT_LATENCY, self.retire_latency)
    }
}

/// A rendered experiment output.
#[derive(Debug, Clone, PartialEq)]
pub enum Artifact {
    /// A table (rows per benchmark, typically).
    Table(Table),
    /// A labelled series (one line per configuration).
    Series(Series),
}

impl fmt::Display for Artifact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Artifact::Table(t) => t.fmt(f),
            Artifact::Series(s) => s.fmt(f),
        }
    }
}

impl Artifact {
    /// The artifact's title.
    pub fn title(&self) -> &str {
        match self {
            Artifact::Table(t) => t.title(),
            Artifact::Series(s) => s.title(),
        }
    }
}

/// A registered experiment.
#[derive(Debug, Clone, Copy)]
pub struct Experiment {
    /// Short id (`t1`, `f3`, ...).
    pub id: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// Produces the artifacts. Runs its grid through the given
    /// [`RunContext`] (pool, trace cache, checkpoint, manifest); output
    /// is identical at any `--jobs` level.
    pub run: fn(&RunContext, &Scale) -> Vec<Artifact>,
}

/// All experiments, in DESIGN.md order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "t1",
            title: "workload characterization",
            run: t1::run,
        },
        Experiment {
            id: "t2",
            title: "machine and predictor configurations",
            run: t2::run,
        },
        Experiment {
            id: "f1",
            title: "motivation: if-conversion concentrates mispredictions",
            run: f1::run,
        },
        Experiment {
            id: "f2",
            title: "fetch-time guard knowledge vs resolve latency",
            run: f2::run,
        },
        Experiment {
            id: "f3",
            title: "headline: misprediction rate per benchmark",
            run: f3::run,
        },
        Experiment {
            id: "f4",
            title: "region-based branches only",
            run: f4::run,
        },
        Experiment {
            id: "f5",
            title: "predictor budget sweep",
            run: f5::run,
        },
        Experiment {
            id: "f6",
            title: "PGU insertion-timing sensitivity",
            run: f6::run,
        },
        Experiment {
            id: "f7",
            title: "techniques across baseline predictors",
            run: f7::run,
        },
        Experiment {
            id: "f8",
            title: "pipeline-level speedup",
            run: f8::run,
        },
        Experiment {
            id: "f9",
            title: "oracle headroom",
            run: f9::run,
        },
        Experiment {
            id: "f10",
            title: "PGU insertion-filter ablation",
            run: f10::run,
        },
        Experiment {
            id: "f11",
            title: "if-conversion aggressiveness (extension)",
            run: f11::run,
        },
        Experiment {
            id: "f12",
            title: "squash-filter policy ablation (extension)",
            run: f12::run,
        },
        Experiment {
            id: "f13",
            title: "resolve-latency sensitivity (extension)",
            run: f13::run,
        },
        Experiment {
            id: "f14",
            title: "seed stability of the headline result (extension)",
            run: f14::run,
        },
        Experiment {
            id: "f15",
            title: "compare hoisting: compiler/predictor co-design (extension)",
            run: f15::run,
        },
        Experiment {
            id: "f16",
            title: "retire-latency sensitivity of the headline result (extension)",
            run: f16::run,
        },
        Experiment {
            id: "f17",
            title: "H2P taxonomy vs per-branch misprediction deltas (extension)",
            run: f17::run,
        },
        Experiment {
            id: "f18",
            title: "modern baselines: gshare vs TAGE vs MPP, each ±SFPF ±PGU (extension)",
            run: f18::run,
        },
        Experiment {
            id: "f19",
            title: "modern-predictor wins by taxonomy bucket (extension)",
            run: f19::run,
        },
    ]
}

/// Finds an experiment by id.
pub fn find_experiment(id: &str) -> Option<Experiment> {
    all_experiments().into_iter().find(|e| e.id == id)
}

/// The study's default base predictor: a 16 K-entry (4 KB) gshare with a
/// matched 13-bit history.
pub(crate) fn base_spec() -> PredictorSpec {
    PredictorSpec::Gshare {
        index_bits: 13,
        history_bits: 13,
    }
}

/// The four headline configurations of the study.
pub(crate) fn headline_specs() -> Vec<(&'static str, PredictorSpec)> {
    let base = base_spec();
    vec![
        ("gshare", base.clone()),
        ("+SFPF", base.clone().with_sfpf()),
        ("+PGU", base.clone().with_pgu(PGU_DELAY)),
        ("+both", base.with_sfpf().with_pgu(PGU_DELAY)),
    ]
}

/// The modern-tier TAGE configuration F18/F19 evaluate: four tables of
/// 1 K entries over a 64-bit geometric history series.
pub(crate) fn tage_spec() -> ModernSpec {
    "tage:4/10/64".parse().expect("valid tage spec")
}

/// The modern-tier multiperspective-perceptron configuration F18/F19
/// evaluate: seven views of 4 K six-bit weights each.
pub(crate) fn mpp_spec() -> ModernSpec {
    "mpp:12".parse().expect("valid mpp spec")
}

/// `base` with the study's four modifier combinations (none, +SFPF,
/// +PGU, +both) — [`headline_specs`] generalized to any base predictor.
pub(crate) fn modifier_grid(base: ModernSpec) -> Vec<(&'static str, ModernSpec)> {
    vec![
        ("base", base.clone()),
        ("+SFPF", base.clone().with_sfpf()),
        ("+PGU", base.clone().with_pgu(PGU_DELAY)),
        ("+both", base.with_sfpf().with_pgu(PGU_DELAY)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unique() {
        let all = all_experiments();
        assert_eq!(all.len(), 21);
        let ids: std::collections::HashSet<_> = all.iter().map(|e| e.id).collect();
        assert_eq!(ids.len(), 21);
        assert!(find_experiment("f3").is_some());
        assert!(find_experiment("f18").is_some());
        assert!(find_experiment("zz").is_none());
    }

    #[test]
    fn every_experiment_runs_at_quick_scale() {
        let ctx = RunContext::new();
        let scale = Scale::quick();
        for exp in all_experiments() {
            let artifacts = (exp.run)(&ctx, &scale);
            assert!(!artifacts.is_empty(), "{} produced nothing", exp.id);
            for a in &artifacts {
                let text = a.to_string();
                assert!(!text.is_empty(), "{}: empty artifact", exp.id);
                assert!(!a.title().is_empty());
            }
        }
    }

    #[test]
    fn headline_specs_are_four() {
        assert_eq!(headline_specs().len(), 4);
    }

    fn quick_artifacts(id: &str) -> Vec<Artifact> {
        (find_experiment(id).unwrap().run)(&RunContext::new(), &Scale::quick())
    }

    fn table_of(artifacts: &[Artifact], idx: usize) -> &Table {
        match &artifacts[idx] {
            Artifact::Table(t) => t,
            Artifact::Series(_) => panic!("expected a table at index {idx}"),
        }
    }

    fn series_of(artifacts: &[Artifact], idx: usize) -> &Series {
        match &artifacts[idx] {
            Artifact::Series(s) => s,
            Artifact::Table(_) => panic!("expected a series at index {idx}"),
        }
    }

    fn pct(cell: &predbranch_stats::Cell) -> f64 {
        cell.as_str().trim_end_matches('%').parse().unwrap()
    }

    #[test]
    fn t1_has_one_row_per_benchmark_with_ten_columns() {
        let artifacts = quick_artifacts("t1");
        let t = table_of(&artifacts, 0);
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.column_count(), 10);
        // removed% is a valid percentage
        for row in 0..t.row_count() {
            let removed = pct(t.cell(row, 7).unwrap());
            assert!((0.0..=100.0).contains(&removed));
        }
    }

    #[test]
    fn t2_reports_equal_storage_for_all_headline_configs() {
        let artifacts = quick_artifacts("t2");
        let t = table_of(&artifacts, 1);
        let bits: Vec<&str> = (0..t.row_count())
            .map(|r| t.cell(r, 2).unwrap().as_str())
            .collect();
        assert!(bits.windows(2).all(|w| w[0] == w[1]), "{bits:?}");
    }

    #[test]
    fn f1_predicated_mpki_below_plain() {
        let artifacts = quick_artifacts("f1");
        let t = table_of(&artifacts, 0);
        for row in 0..t.row_count() - 1 {
            let plain: f64 = t.cell(row, 4).unwrap().as_str().parse().unwrap();
            let pred: f64 = t.cell(row, 5).unwrap().as_str().parse().unwrap();
            assert!(pred <= plain, "row {row}: {pred} > {plain}");
        }
    }

    #[test]
    fn f2_fractions_sum_to_one_hundred() {
        let artifacts = quick_artifacts("f2");
        let s = series_of(&artifacts, 0);
        for (x, ys) in s.points() {
            let sum: f64 = ys.iter().sum();
            assert!((sum - 100.0).abs() < 0.01, "latency {x}: {sum}");
        }
    }

    #[test]
    fn f6_delay_curve_trends_upward() {
        // not strictly monotone (history alignment can wobble a hair),
        // but each step may only improve marginally and the endpoints
        // must order decisively
        let artifacts = quick_artifacts("f6");
        let s = series_of(&artifacts, 0);
        let ys = s.line_values(0).unwrap();
        for w in ys.windows(2) {
            assert!(w[1] >= w[0] - 0.1, "{ys:?}");
        }
        assert!(
            ys.last().unwrap() > ys.first().unwrap(),
            "large delays must hurt: {ys:?}"
        );
    }

    #[test]
    fn f9_oracle_column_is_zero() {
        let artifacts = quick_artifacts("f9");
        let t = table_of(&artifacts, 0);
        for row in 0..t.row_count() - 1 {
            assert_eq!(pct(t.cell(row, 4).unwrap()), 0.0);
        }
    }

    #[test]
    fn f10_none_filter_matches_gshare_baseline() {
        // column 1 of f10 ("none") must equal column 1 of f3 ("gshare")
        let f10 = quick_artifacts("f10");
        let f3 = quick_artifacts("f3");
        let t10 = table_of(&f10, 0);
        let t3 = table_of(&f3, 0);
        for row in 0..3 {
            assert_eq!(
                t10.cell(row, 1).unwrap().as_str(),
                t3.cell(row, 1).unwrap().as_str(),
                "row {row}"
            );
        }
    }

    #[test]
    fn f13_baseline_is_latency_flat() {
        let artifacts = quick_artifacts("f13");
        let s = series_of(&artifacts, 0);
        let base = s.line_values(0).unwrap();
        assert!(
            base.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-9),
            "{base:?}"
        );
    }

    #[test]
    fn f14_min_le_mean_le_max() {
        let artifacts = quick_artifacts("f14");
        let t = table_of(&artifacts, 0);
        for row in 0..t.row_count() {
            let mean = pct(t.cell(row, 1).unwrap());
            let min = pct(t.cell(row, 3).unwrap());
            let max = pct(t.cell(row, 4).unwrap());
            assert!(min <= mean + 1e-9 && mean <= max + 1e-9, "row {row}");
        }
    }

    #[test]
    fn f17_wins_concentrate_in_the_predicate_bucket() {
        let artifacts = quick_artifacts("f17");
        let deltas = table_of(&artifacts, 0);
        // rows: 4 buckets in Bucket::ALL order + the (all) total
        assert_eq!(deltas.row_count(), 5);
        let delta = |row: usize, col: usize| -> f64 {
            deltas.cell(row, col).unwrap().as_str().parse().unwrap()
        };
        // +both's win (pp, col 6) in the predicate-predictable bucket
        // (row 2) must exceed its win in every other bucket
        let predicate_win = delta(2, 6);
        assert!(predicate_win > 0.0, "{predicate_win}");
        for row in [0, 1, 3] {
            assert!(
                predicate_win > delta(row, 6),
                "row {row}: {} >= {predicate_win}",
                delta(row, 6)
            );
        }
        // every quick-suite static sits in exactly one bucket: the
        // bucket rows' static counts sum to the (all) row's
        let count = |row: usize| -> u64 {
            deltas
                .cell(row, 1)
                .unwrap()
                .as_str()
                .replace(',', "")
                .parse()
                .unwrap()
        };
        assert_eq!(count(0) + count(1) + count(2) + count(3), count(4));
        // and the per-benchmark population table tallies the same total
        let population = table_of(&artifacts, 1);
        let statics: u64 = (0..population.row_count())
            .map(|r| {
                population
                    .cell(r, 1)
                    .unwrap()
                    .as_str()
                    .replace(',', "")
                    .parse::<u64>()
                    .unwrap()
            })
            .sum();
        assert_eq!(statics, count(4));
    }

    #[test]
    fn f18_modern_bases_do_not_trail_gshare() {
        let artifacts = quick_artifacts("f18");
        assert_eq!(artifacts.len(), 3);
        // row 3 is `amean`, column 1 the bare base: the modern bases
        // must not mispredict more than the 2003-era gshare baseline
        let amean = |family: usize| pct(table_of(&artifacts, family).cell(3, 1).unwrap());
        let gshare = amean(0);
        assert!(amean(1) <= gshare, "tage {} > gshare {gshare}", amean(1));
        assert!(amean(2) <= gshare, "mpp {} > gshare {gshare}", amean(2));
    }

    #[test]
    fn f19_modern_wins_concentrate_in_the_predicate_bucket() {
        let artifacts = quick_artifacts("f19");
        let t = table_of(&artifacts, 0);
        // rows: 4 buckets in Bucket::ALL order + the (all) total
        assert_eq!(t.row_count(), 5);
        let delta =
            |row: usize, col: usize| -> f64 { t.cell(row, col).unwrap().as_str().parse().unwrap() };
        // the ISSUE's forward-looking claim: whatever the predicate
        // mechanisms still buy on a modern base lands in the
        // predicate-predictable bucket (row 2). Checked for +SFPF+PGU
        // on TAGE (col 4) and MPP (col 7), and for the predicate-aware
        // variants ptage (col 5) and pmpp (col 8).
        for col in [4, 5, 7, 8] {
            let predicate_win = delta(2, col);
            assert!(predicate_win > 0.0, "col {col}: {predicate_win}");
            for row in [0, 1, 3] {
                assert!(
                    predicate_win > delta(row, col),
                    "col {col} row {row}: {} >= {predicate_win}",
                    delta(row, col)
                );
            }
        }
    }

    #[test]
    fn f15_hoisted_distance_not_shorter() {
        let artifacts = quick_artifacts("f15");
        let t = table_of(&artifacts, 0);
        for row in 0..t.row_count() {
            let plain: f64 = t.cell(row, 1).unwrap().as_str().parse().unwrap();
            let hoisted: f64 = t.cell(row, 2).unwrap().as_str().parse().unwrap();
            assert!(hoisted >= plain - 1e-9, "row {row}: {hoisted} < {plain}");
        }
    }
}

//! T1 — workload characterization.
//!
//! For every benchmark: static and dynamic instruction counts of both
//! binaries, how many dynamic conditional branches if-conversion
//! removed, what fraction of the survivors are region-based, and the
//! predicate-definition density — the table that establishes the branch
//! population the techniques target.

use predbranch_sim::{ExecMetrics, Executor};
use predbranch_stats::{Cell, Table};
use predbranch_workloads::DEFAULT_MAX_INSTRUCTIONS;

use super::{Artifact, Scale};
use crate::runner::RunContext;

struct Characterization {
    plain: predbranch_sim::RunSummary,
    pred: predbranch_sim::RunSummary,
    region_percent: f64,
}

pub(crate) fn run(ctx: &RunContext, scale: &Scale) -> Vec<Artifact> {
    let entries = ctx.suite(scale.limit);
    let jobs = entries
        .iter()
        .map(|entry| {
            let plain_program = entry.compiled.plain.clone();
            let pred_program = entry.compiled.predicated.clone();
            let input = entry.eval_input();
            let job: Box<dyn FnOnce() -> Characterization + Send> = Box::new(move || {
                let mut plain_metrics = ExecMetrics::new();
                let plain = Executor::new(&plain_program, input.clone())
                    .run(&mut plain_metrics, DEFAULT_MAX_INSTRUCTIONS);
                let mut pred_metrics = ExecMetrics::new();
                let pred = Executor::new(&pred_program, input)
                    .run(&mut pred_metrics, DEFAULT_MAX_INSTRUCTIONS);
                Characterization {
                    plain,
                    pred,
                    region_percent: pred_metrics.region_fraction().percent(),
                }
            });
            job
        })
        .collect();
    let rows = ctx.map_batch(jobs);

    let mut table = Table::new(
        "T1: workload characterization (plain vs if-converted)",
        &[
            "bench",
            "static",
            "static.pred",
            "dyn insts",
            "dyn insts.pred",
            "cond br",
            "cond br.pred",
            "removed%",
            "region%",
            "pdefs/1k",
        ],
    );
    for (entry, c) in entries.iter().zip(rows) {
        let removed = 100.0
            * (1.0
                - c.pred.conditional_branches as f64 / c.plain.conditional_branches.max(1) as f64);
        let pdefs_per_k = c.pred.pred_writes as f64 * 1000.0 / c.pred.instructions.max(1) as f64;
        table.row(vec![
            Cell::new(entry.compiled.name),
            Cell::count(u64::from(entry.compiled.plain.len())),
            Cell::count(u64::from(entry.compiled.predicated.len())),
            Cell::count(c.plain.instructions),
            Cell::count(c.pred.instructions),
            Cell::count(c.plain.conditional_branches),
            Cell::count(c.pred.conditional_branches),
            Cell::percent(removed),
            Cell::percent(c.region_percent),
            Cell::float(pdefs_per_k, 1),
        ]);
    }
    vec![Artifact::Table(table)]
}

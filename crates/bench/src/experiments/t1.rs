//! T1 — workload characterization.
//!
//! For every benchmark: static and dynamic instruction counts of both
//! binaries, how many dynamic conditional branches if-conversion
//! removed, what fraction of the survivors are region-based, and the
//! predicate-definition density — the table that establishes the branch
//! population the techniques target.

use predbranch_sim::{ExecMetrics, Executor};
use predbranch_stats::{Cell, Table};
use predbranch_workloads::DEFAULT_MAX_INSTRUCTIONS;

use super::{Artifact, Scale};
use crate::runner::compiled_suite;

pub(crate) fn run(scale: &Scale) -> Vec<Artifact> {
    let mut table = Table::new(
        "T1: workload characterization (plain vs if-converted)",
        &[
            "bench",
            "static",
            "static.pred",
            "dyn insts",
            "dyn insts.pred",
            "cond br",
            "cond br.pred",
            "removed%",
            "region%",
            "pdefs/1k",
        ],
    );
    for entry in compiled_suite(scale.limit) {
        let mut plain_metrics = ExecMetrics::new();
        let plain = Executor::new(&entry.compiled.plain, entry.eval_input())
            .run(&mut plain_metrics, DEFAULT_MAX_INSTRUCTIONS);
        let mut pred_metrics = ExecMetrics::new();
        let pred = Executor::new(&entry.compiled.predicated, entry.eval_input())
            .run(&mut pred_metrics, DEFAULT_MAX_INSTRUCTIONS);

        let removed = 100.0
            * (1.0 - pred.conditional_branches as f64 / plain.conditional_branches.max(1) as f64);
        let pdefs_per_k = pred.pred_writes as f64 * 1000.0 / pred.instructions.max(1) as f64;
        table.row(vec![
            Cell::new(entry.compiled.name),
            Cell::count(u64::from(entry.compiled.plain.len())),
            Cell::count(u64::from(entry.compiled.predicated.len())),
            Cell::count(plain.instructions),
            Cell::count(pred.instructions),
            Cell::count(plain.conditional_branches),
            Cell::count(pred.conditional_branches),
            Cell::percent(removed),
            Cell::percent(pred_metrics.region_fraction().percent()),
            Cell::float(pdefs_per_k, 1),
        ]);
    }
    vec![Artifact::Table(table)]
}

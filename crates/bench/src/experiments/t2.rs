//! T2 — machine and predictor configurations used throughout the study.

use predbranch_core::build_predictor;
use predbranch_sim::PipelineConfig;
use predbranch_stats::{Cell, Table};

use super::{headline_specs, Artifact, Scale};
use crate::runner::{RunContext, DEFAULT_LATENCY, PGU_DELAY};

pub(crate) fn run(_ctx: &RunContext, _scale: &Scale) -> Vec<Artifact> {
    let pipe = PipelineConfig::default();
    let mut machine = Table::new("T2a: machine configuration", &["parameter", "value"]);
    for (name, value) in [
        ("fetch width", pipe.fetch_width.to_string()),
        (
            "mispredict penalty (cycles)",
            pipe.mispredict_penalty.to_string(),
        ),
        (
            "taken-branch bubble (cycles)",
            pipe.taken_bubble.to_string(),
        ),
        (
            "predicate resolve latency (fetch slots)",
            DEFAULT_LATENCY.to_string(),
        ),
        ("PGU insertion delay (fetch slots)", PGU_DELAY.to_string()),
    ] {
        machine.row(vec![Cell::new(name), Cell::new(value)]);
    }

    let mut preds = Table::new(
        "T2b: headline predictor configurations",
        &["config", "name", "storage bits"],
    );
    for (label, spec) in headline_specs() {
        let built = build_predictor(&spec);
        preds.row(vec![
            Cell::new(label),
            Cell::new(built.name()),
            Cell::count(built.storage_bits() as u64),
        ]);
    }
    vec![Artifact::Table(machine), Artifact::Table(preds)]
}

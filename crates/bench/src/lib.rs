//! Experiment harness: regenerates every table and figure of the study.
//!
//! Each experiment in [`experiments`] is a pure function from a
//! [`Scale`] to text artifacts ([`predbranch_stats::Table`] /
//! [`predbranch_stats::Series`]); the `experiments` binary prints them,
//! the Criterion benches time them, and EXPERIMENTS.md records their
//! output against the paper's claims.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;
pub mod runner;

pub use experiments::{all_experiments, Artifact, Experiment, Scale};
pub use runner::{compiled_suite, run_spec, RunOutcome, SuiteEntry, DEFAULT_LATENCY, PGU_DELAY};

//! Experiment harness: regenerates every table and figure of the study.
//!
//! Each experiment in [`experiments`] is a pure function from a
//! ([`runner::RunContext`], [`Scale`]) pair to text artifacts
//! ([`predbranch_stats::Table`] / [`predbranch_stats::Series`]); the
//! `experiments` binary prints them, the Criterion benches time them,
//! and EXPERIMENTS.md records their output against the paper's claims.
//! The context carries the sweep machinery — worker pool, trace cache,
//! checkpoint journal, manifest — and experiments decompose their grids
//! into [`runner::CellSpec`]s so output stays byte-identical at any
//! `--jobs` level.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod benchmode;
pub mod experiments;
pub mod runner;

pub use experiments::{all_experiments, Artifact, Experiment, Scale};
pub use runner::{
    compiled_suite, run_spec, run_spec_dispatch, CellSpec, Dispatch, Gang, RunContext, RunOutcome,
    RunStats, Shard, SuiteEntry, DEFAULT_LATENCY, PGU_DELAY,
};

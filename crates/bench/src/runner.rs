//! Shared run machinery for the experiments.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use predbranch_core::{
    build_predictor, HarnessConfig, InsertFilter, PredictionHarness, PredictionMetrics,
    PredictorSpec,
};
use predbranch_isa::Program;
use predbranch_sim::{Executor, Memory, RunSummary};
use predbranch_trace::{CacheKey, TraceCache};
use predbranch_workloads::{
    compile_benchmark, suite, Benchmark, CompileOptions, CompiledBenchmark,
    DEFAULT_MAX_INSTRUCTIONS, EVAL_SEED,
};

/// The machine's predicate resolve latency used throughout the study
/// (compare execute → first fetch that can observe the result).
pub const DEFAULT_LATENCY: u64 = 8;

/// The realistic PGU insertion delay: predicate bits become visible to
/// the history register one resolve latency after the defining compare.
pub const PGU_DELAY: u64 = 8;

static TRACE_CACHE: Mutex<Option<TraceCache>> = Mutex::new(None);
static CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static CACHE_MISSES: AtomicU64 = AtomicU64::new(0);

/// Routes every subsequent [`run_spec`] call through an on-disk trace
/// cache rooted at `dir` (creating it if needed): each distinct
/// (binary, input, budget) is executed through the functional simulator
/// at most once per cache lifetime, and every further predictor run
/// replays the recorded event stream. Keys are content-addressed
/// ([`CacheKey::for_run`]), so results are numerically identical to
/// live simulation.
pub fn set_trace_cache(dir: impl AsRef<Path>) -> std::io::Result<()> {
    let cache = TraceCache::open(dir.as_ref())?;
    *TRACE_CACHE.lock().unwrap() = Some(cache);
    CACHE_HITS.store(0, Ordering::Relaxed);
    CACHE_MISSES.store(0, Ordering::Relaxed);
    Ok(())
}

/// Turns the trace cache back off; subsequent runs execute live.
pub fn clear_trace_cache() {
    *TRACE_CACHE.lock().unwrap() = None;
}

/// (replays, recordings) performed since [`set_trace_cache`].
pub fn trace_cache_stats() -> (u64, u64) {
    (
        CACHE_HITS.load(Ordering::Relaxed),
        CACHE_MISSES.load(Ordering::Relaxed),
    )
}

/// A benchmark plus its two compiled binaries.
#[derive(Debug)]
pub struct SuiteEntry {
    /// The benchmark descriptor (inputs, name).
    pub bench: Benchmark,
    /// Plain + predicated binaries and region metadata.
    pub compiled: CompiledBenchmark,
}

impl SuiteEntry {
    /// The evaluation input (always a different seed than training).
    pub fn eval_input(&self) -> Memory {
        self.bench.input(EVAL_SEED)
    }
}

/// Compiles the whole suite (optionally only the first `limit`
/// benchmarks, for quick modes).
pub fn compiled_suite(limit: Option<usize>) -> Vec<SuiteEntry> {
    let opts = CompileOptions::default();
    suite()
        .into_iter()
        .take(limit.unwrap_or(usize::MAX))
        .map(|bench| {
            let compiled = compile_benchmark(&bench, &opts);
            SuiteEntry { bench, compiled }
        })
        .collect()
}

/// The result of one predictor × binary run.
#[derive(Debug, Clone, Copy)]
pub struct RunOutcome {
    /// Prediction metrics by branch class.
    pub metrics: PredictionMetrics,
    /// Execution summary (instructions, branch counts, halted).
    pub summary: RunSummary,
}

impl RunOutcome {
    /// Overall conditional-branch misprediction rate, percent.
    pub fn misp_percent(&self) -> f64 {
        self.metrics.all.misp_rate().percent()
    }

    /// Region-branch misprediction rate, percent.
    pub fn region_misp_percent(&self) -> f64 {
        self.metrics.region.misp_rate().percent()
    }

    /// Mispredictions per kilo-instruction.
    pub fn mpki(&self) -> f64 {
        self.metrics.mpki(self.summary.instructions)
    }

    /// Dynamic taken branches of any kind (for taken-bubble accounting).
    pub fn taken_branches(&self) -> u64 {
        let unconditional = self.summary.branches - self.summary.conditional_branches;
        self.summary.taken_conditional + unconditional
    }
}

/// Runs one predictor spec over one binary with the study's default
/// resolve latency and the given insertion filter.
///
/// # Panics
///
/// Panics if the program fails to halt within the suite instruction
/// budget (suite programs always halt; a hang is a harness bug).
pub fn run_spec(
    program: &Program,
    memory: Memory,
    spec: &PredictorSpec,
    resolve_latency: u64,
    insert: InsertFilter,
) -> RunOutcome {
    let predictor = build_predictor(spec);
    let mut harness = PredictionHarness::new(
        predictor,
        HarnessConfig {
            resolve_latency,
            insert,
        },
    );
    let budget = 2 * DEFAULT_MAX_INSTRUCTIONS;
    let cache = TRACE_CACHE.lock().unwrap().clone();
    let summary = match cache {
        Some(cache) => {
            let key = CacheKey::for_run("run", program, &memory, budget);
            let (summary, hit) = cache
                .replay_or_record(&key, program, memory, budget, &mut harness)
                .expect("trace cache I/O failed");
            let counter = if hit { &CACHE_HITS } else { &CACHE_MISSES };
            counter.fetch_add(1, Ordering::Relaxed);
            summary
        }
        None => Executor::new(program, memory).run(&mut harness, budget),
    };
    assert!(summary.halted, "experiment program did not halt");
    RunOutcome {
        metrics: *harness.metrics(),
        summary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiled_suite_limit() {
        let entries = compiled_suite(Some(2));
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].bench.name(), entries[0].compiled.name);
    }

    #[test]
    fn run_outcome_accessors_consistent() {
        let entries = compiled_suite(Some(1));
        let e = &entries[0];
        let out = run_spec(
            &e.compiled.predicated,
            e.eval_input(),
            &PredictorSpec::StaticNotTaken,
            DEFAULT_LATENCY,
            InsertFilter::All,
        );
        assert!(out.summary.halted);
        assert!(out.misp_percent() >= 0.0);
        assert!(out.taken_branches() <= out.summary.branches);
        assert!(out.mpki() >= 0.0);
    }
}

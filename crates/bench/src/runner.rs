//! Shared run machinery for the experiments.
//!
//! The central type is [`RunContext`]: an explicit, cloneable handle
//! threaded through every experiment module that owns the sweep's
//! worker pool, the optional on-disk trace cache, the optional
//! checkpoint journal, and the optional run manifest. It replaces the
//! old process-global `static TRACE_CACHE: Mutex<Option<TraceCache>>`,
//! which both serialized all access behind one poisoning lock (a
//! panicking experiment wedged every later run) and made parallel
//! sweeps impossible to reason about.
//!
//! Experiments decompose their grids into [`CellSpec`]s — one
//! (program, input, predictor spec, machine options) point each — and
//! call [`RunContext::run_cells`], which executes the cells on the
//! work-stealing pool and returns outcomes **in submission order**.
//! Because every cell is a pure function of its spec, aggregation over
//! that vector is byte-identical to the sequential loop it replaced, at
//! any `--jobs N`.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use predbranch_core::{
    build_predictor, build_predictor_stack, BranchPredictor, GangHarness, HarnessConfig,
    InsertFilter, PredictionHarness, PredictionMetrics, PredictorSpec, Timing,
};
use predbranch_isa::Program;
use predbranch_modern::{build_modern, build_modern_stack, ModernSpec};
use predbranch_sim::{Event, EventSink, Executor, Memory, RunSummary, EVENT_BATCH_CAPACITY};
use predbranch_sweep::{CellRecord, CellSource, Checkpoint, Json, ManifestBuilder, WorkerPool};
use predbranch_trace::{memory_fingerprint, program_hash, CacheKey, TraceCache};
use predbranch_workloads::{
    compile_benchmark, suite, Benchmark, CompileOptions, CompiledBenchmark,
    DEFAULT_MAX_INSTRUCTIONS, EVAL_SEED,
};

/// The machine's predicate resolve latency used throughout the study
/// (compare execute → first fetch that can observe the result) — the
/// single source of truth lives in `predbranch_sim`.
pub const DEFAULT_LATENCY: u64 = predbranch_sim::DEFAULT_RESOLVE_LATENCY;

/// The realistic PGU insertion delay: predicate bits become visible to
/// the history register one resolve latency after the defining compare.
pub const PGU_DELAY: u64 = 8;

/// Instruction budget for every experiment cell.
const CELL_BUDGET: u64 = 2 * DEFAULT_MAX_INSTRUCTIONS;

/// How predictor calls are dispatched on the hot path.
///
/// Both paths drive predictors whose *state transitions* are identical
/// — [`predbranch_modern::ModernStack`] is a structural mirror of
/// [`build_modern`] — so every experiment result is byte-identical
/// under either setting. `Dyn` exists as an A/B lever: the golden-parity
/// suite runs under both, and `experiments bench` measures the gap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Dispatch {
    /// Statically-dispatched [`predbranch_modern::ModernStack`] enum
    /// (the default): each predictor operation is one match and a
    /// direct, inlinable call.
    #[default]
    Enum,
    /// `Box<dyn BranchPredictor>` — the pre-refactor shape, one virtual
    /// call per predictor operation.
    Dyn,
}

impl std::str::FromStr for Dispatch {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "enum" => Ok(Dispatch::Enum),
            "dyn" => Ok(Dispatch::Dyn),
            other => Err(format!("unknown dispatch `{other}` (expected enum|dyn)")),
        }
    }
}

/// Whether [`RunContext::run_cells`] gangs cells that share an event
/// stream into one replay pass.
///
/// With gang replay **on** (the default), cells are grouped by
/// (benchmark stream, timing) into units; each unit decodes/executes
/// its stream once and feeds every member cell as an independent
/// [`GangHarness`] lane. Lanes share nothing but the unit's predicate
/// scoreboard — identical by construction to the one each solo pass
/// would build (grouping by timing guarantees a common resolve
/// latency) — so outcomes are byte-identical to the per-cell path.
/// `Off` exists as the A/B escape hatch mirroring `--dispatch
/// enum|dyn`, and the property suite diffs the two paths
/// outcome-for-outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Gang {
    /// Group stream-sharing cells into one gang pass (the default).
    #[default]
    On,
    /// One full replay/execution pass per cell — the pre-gang shape.
    Off,
}

impl std::str::FromStr for Gang {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "on" => Ok(Gang::On),
            "off" => Ok(Gang::Off),
            other => Err(format!("unknown gang mode `{other}` (expected on|off)")),
        }
    }
}

/// One shard of a deterministically partitioned sweep: this process
/// owns every gang unit whose stream digest satisfies
/// `digest % count == index`.
///
/// Partitioning is by *stream identity* — the same (cache label,
/// program, input, timing) tuple that gang replay groups by — so a
/// shard always owns whole gang units and each unit's single
/// decode/execution pass happens in exactly one process. Cells outside
/// the shard yield placeholder outcomes and are neither journaled nor
/// manifested; the per-shard journals and manifests are later stitched
/// together by `experiments merge`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// This process's shard index, `0 ≤ index < count`.
    pub index: u32,
    /// Total number of shards the sweep is split across.
    pub count: u32,
}

impl Shard {
    /// Whether this shard owns the gang unit with `stream_digest`.
    pub fn owns(&self, stream_digest: u64) -> bool {
        stream_digest % u64::from(self.count) == u64::from(self.index)
    }
}

impl std::str::FromStr for Shard {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || format!("bad shard `{s}` (expected i/N with 0 <= i < N)");
        let (index, count) = s.split_once('/').ok_or_else(err)?;
        let index: u32 = index.parse().map_err(|_| err())?;
        let count: u32 = count.parse().map_err(|_| err())?;
        if count == 0 || index >= count {
            return Err(err());
        }
        Ok(Shard { index, count })
    }
}

impl std::fmt::Display for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// A benchmark plus its two compiled binaries.
#[derive(Debug)]
pub struct SuiteEntry {
    /// The benchmark descriptor (inputs, name).
    pub bench: Benchmark,
    /// Plain + predicated binaries and region metadata.
    pub compiled: CompiledBenchmark,
}

impl SuiteEntry {
    /// The evaluation input (always a different seed than training).
    pub fn eval_input(&self) -> Memory {
        self.bench.input(EVAL_SEED)
    }
}

/// Compiles the whole suite (optionally only the first `limit`
/// benchmarks, for quick modes).
pub fn compiled_suite(limit: Option<usize>) -> Vec<SuiteEntry> {
    let opts = CompileOptions::default();
    suite()
        .into_iter()
        .take(limit.unwrap_or(usize::MAX))
        .map(|bench| {
            let compiled = compile_benchmark(&bench, &opts);
            SuiteEntry { bench, compiled }
        })
        .collect()
}

/// The result of one predictor × binary run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOutcome {
    /// Prediction metrics by branch class.
    pub metrics: PredictionMetrics,
    /// Execution summary (instructions, branch counts, halted).
    pub summary: RunSummary,
}

impl RunOutcome {
    /// Overall conditional-branch misprediction rate, percent.
    pub fn misp_percent(&self) -> f64 {
        self.metrics.all.misp_rate().percent()
    }

    /// Region-branch misprediction rate, percent.
    pub fn region_misp_percent(&self) -> f64 {
        self.metrics.region.misp_rate().percent()
    }

    /// Mispredictions per kilo-instruction.
    pub fn mpki(&self) -> f64 {
        self.metrics.mpki(self.summary.instructions)
    }

    /// Dynamic taken branches of any kind (for taken-bubble accounting).
    pub fn taken_branches(&self) -> u64 {
        let unconditional = self.summary.branches - self.summary.conditional_branches;
        self.summary.taken_conditional + unconditional
    }
}

/// One point of an experiment grid: a binary, an input, a predictor
/// spec, and the machine options — everything that determines a
/// [`RunOutcome`]. Cells own their data (`'static`) so they can migrate
/// across worker threads.
///
/// The spec is a [`ModernSpec`]: classic paper-era configurations and
/// the modern tier (TAGE, multiperspective perceptron) share one cell
/// type. Constructors accept anything convertible — in particular a
/// `&PredictorSpec`, so classic experiments read unchanged — and
/// `ModernSpec`'s `Debug` is transparent for classic specs, keeping
/// every pre-existing checkpoint/cache key stable.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Manifest/checkpoint display label, e.g. `f3/gzip/+PGU`.
    pub label: String,
    /// Trace-cache file label — shared by every cell over the same
    /// (binary, input) so the cache stores one trace per execution, not
    /// one per predictor config. Typically `"<bench>-<variant>"`.
    pub cache_label: String,
    /// The compiled binary to run.
    pub program: Program,
    /// The input image.
    pub memory: Memory,
    /// Predictor configuration.
    pub spec: ModernSpec,
    /// Update-timing knobs (resolve and retire latencies).
    pub timing: Timing,
    /// Which predicate definitions reach the predictor.
    pub insert: InsertFilter,
}

impl CellSpec {
    /// A cell over a suite entry's *predicated* binary and its
    /// evaluation input.
    pub fn predicated(
        entry: &SuiteEntry,
        label: impl Into<String>,
        spec: impl Into<ModernSpec>,
        timing: Timing,
        insert: InsertFilter,
    ) -> Self {
        CellSpec {
            label: label.into(),
            cache_label: format!("{}-pred", entry.compiled.name),
            program: entry.compiled.predicated.clone(),
            memory: entry.eval_input(),
            spec: spec.into(),
            timing,
            insert,
        }
    }

    /// A cell over a suite entry's *plain* binary and its evaluation
    /// input.
    pub fn plain(
        entry: &SuiteEntry,
        label: impl Into<String>,
        spec: impl Into<ModernSpec>,
        timing: Timing,
        insert: InsertFilter,
    ) -> Self {
        CellSpec {
            label: label.into(),
            cache_label: format!("{}-plain", entry.compiled.name),
            program: entry.compiled.plain.clone(),
            memory: entry.eval_input(),
            spec: spec.into(),
            timing,
            insert,
        }
    }

    /// A cell over the predicated binary with a non-default input seed
    /// (seed-stability experiments).
    pub fn seeded(
        entry: &SuiteEntry,
        label: impl Into<String>,
        seed: u64,
        spec: impl Into<ModernSpec>,
        timing: Timing,
        insert: InsertFilter,
    ) -> Self {
        CellSpec {
            label: label.into(),
            cache_label: format!("{}-pred-{seed:x}", entry.compiled.name),
            program: entry.compiled.predicated.clone(),
            memory: entry.bench.input(seed),
            spec: spec.into(),
            timing,
            insert,
        }
    }

    /// The cell's stable, content-addressed checkpoint key: a digest of
    /// the program encoding, input image, budget, machine options, and
    /// predictor spec. Equal keys ⇒ equal outcomes, so a resumed sweep
    /// may trust a checkpointed result with this key no matter which
    /// experiment, process, or `--jobs` level produced it.
    pub fn key(&self) -> String {
        let mut digest = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                digest ^= u64::from(b);
                digest = digest.wrapping_mul(0x100_0000_01b3);
            }
        };
        mix(&program_hash(&self.program).to_le_bytes());
        mix(&memory_fingerprint(&self.memory).to_le_bytes());
        mix(&CELL_BUDGET.to_le_bytes());
        mix(&self.timing.resolve_latency.to_le_bytes());
        mix(&self.timing.retire_latency.to_le_bytes());
        mix(format!("{:?}", self.spec).as_bytes());
        match &self.insert {
            InsertFilter::All => mix(b"insert:all"),
            InsertFilter::None => mix(b"insert:none"),
            InsertFilter::Pcs(pcs) => {
                mix(b"insert:pcs");
                let mut sorted: Vec<u32> = pcs.iter().copied().collect();
                sorted.sort_unstable();
                for pc in sorted {
                    mix(&pc.to_le_bytes());
                }
            }
        }
        format!("v2-{digest:016x}")
    }

    /// The harness configuration this cell's lane runs under.
    fn harness_config(&self) -> HarnessConfig {
        HarnessConfig {
            timing: self.timing,
            insert: self.insert.clone(),
        }
    }
}

/// Sweep-level counters (all monotone, all thread-safe).
#[derive(Debug, Default)]
struct RunCounters {
    /// Trace-cache replays.
    replays: AtomicU64,
    /// Trace-cache recordings (cold executions through the cache).
    recordings: AtomicU64,
    /// Cells restored from the checkpoint journal without running.
    checkpoint_hits: AtomicU64,
    /// Cells executed live (no cache attached).
    live_runs: AtomicU64,
    /// Cells outside this process's shard, skipped with placeholders.
    shard_skips: AtomicU64,
}

/// A snapshot of [`RunContext`] counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Trace-cache replays.
    pub replays: u64,
    /// Trace-cache recordings.
    pub recordings: u64,
    /// Cells restored from the checkpoint journal.
    pub checkpoint_hits: u64,
    /// Cells executed live (no cache attached).
    pub live_runs: u64,
    /// Cells outside this process's shard (placeholder outcomes).
    pub shard_skips: u64,
}

/// Compiled-suite memo: one shared suite per `limit` value.
type SuiteMemo = Vec<(Option<usize>, Arc<Vec<SuiteEntry>>)>;

/// The sweep's execution context: worker pool, trace cache, checkpoint
/// journal, and manifest recorder, threaded explicitly through every
/// experiment. Cloning is cheap (shared handles) and clones observe the
/// same counters — workers receive a clone each, which is how every
/// worker gets its own [`TraceCache`] handle without a global lock.
#[derive(Debug, Clone, Default)]
pub struct RunContext {
    pool: Option<Arc<WorkerPool>>,
    cache: Option<TraceCache>,
    checkpoint: Option<Arc<Checkpoint>>,
    manifest: Option<Arc<ManifestBuilder>>,
    counters: Arc<RunCounters>,
    suites: Arc<Mutex<SuiteMemo>>,
    dispatch: Dispatch,
    gang: Gang,
    shard: Option<Shard>,
    memo_streams: Option<usize>,
}

impl RunContext {
    /// A sequential context with no cache, checkpoint, or manifest —
    /// the exact behavior of the pre-sweep harness.
    pub fn new() -> Self {
        RunContext::default()
    }

    /// Executes cells on `jobs` concurrent lanes (1 = sequential,
    /// spawning no threads; `n ≥ 2` spawns `n - 1` workers and the
    /// submitting thread helps).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.pool = if jobs >= 2 {
            Some(Arc::new(WorkerPool::new(jobs)))
        } else {
            None
        };
        self
    }

    /// Routes every cell through an on-disk trace cache rooted at `dir`
    /// (creating it if needed): each distinct (binary, input, budget)
    /// is executed through the functional simulator at most once per
    /// cache lifetime, and every further predictor run replays the
    /// recorded event stream. Keys are content-addressed
    /// ([`CacheKey::for_run`]), so results are numerically identical to
    /// live simulation.
    pub fn with_trace_cache(mut self, dir: impl AsRef<Path>) -> std::io::Result<Self> {
        let mut cache = TraceCache::open(dir.as_ref())?;
        if let Some(n) = self.memo_streams {
            cache = cache.with_memo_capacity(n);
        }
        self.cache = Some(cache);
        Ok(self)
    }

    /// Caps the trace cache's decoded-event memo at `streams`
    /// concurrently memoized streams (0 disables the memo entirely).
    /// The memo only serves v1-only cache entries — segment-served
    /// streams never enter it — so this is a fallback-path knob.
    pub fn with_memo_streams(mut self, streams: usize) -> Self {
        self.memo_streams = Some(streams);
        self.cache = self.cache.take().map(|c| c.with_memo_capacity(streams));
        self
    }

    /// Restricts execution to one shard of a deterministically
    /// partitioned sweep: gang units whose stream digest falls outside
    /// `shard` are skipped with placeholder outcomes (never journaled,
    /// never manifested). Aggregate artifacts computed from a sharded
    /// context are therefore meaningless — the journal is the product.
    pub fn with_shard(mut self, shard: Shard) -> Self {
        self.shard = Some(shard);
        self
    }

    /// The configured shard, when this context is one of a fleet.
    pub fn shard(&self) -> Option<Shard> {
        self.shard
    }

    /// Journals every completed cell to `path` and, on reopen, restores
    /// completed cells instead of re-running them — interrupted sweeps
    /// resume from where they died.
    pub fn with_checkpoint(mut self, path: impl AsRef<Path>) -> std::io::Result<Self> {
        self.checkpoint = Some(Arc::new(Checkpoint::open(path.as_ref().to_path_buf())?));
        Ok(self)
    }

    /// Records every cell (label, key, source, wall-clock) into
    /// `manifest` for the final run record.
    pub fn with_manifest(mut self, manifest: ManifestBuilder) -> Self {
        self.manifest = Some(Arc::new(manifest));
        self
    }

    /// Selects the predictor dispatch path (default [`Dispatch::Enum`]).
    /// Outcomes are identical under both; cache and checkpoint entries
    /// are therefore shared freely across dispatch modes.
    pub fn with_dispatch(mut self, dispatch: Dispatch) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// The configured dispatch path.
    pub fn dispatch(&self) -> Dispatch {
        self.dispatch
    }

    /// Selects the replay grouping mode (default [`Gang::On`]).
    /// Outcomes are identical under both; only the number of decode /
    /// execution passes differs.
    pub fn with_gang(mut self, gang: Gang) -> Self {
        self.gang = gang;
        self
    }

    /// The configured replay grouping mode.
    pub fn gang(&self) -> Gang {
        self.gang
    }

    /// The configured parallelism.
    pub fn jobs(&self) -> usize {
        self.pool.as_ref().map_or(1, |pool| pool.jobs())
    }

    /// Whether a trace cache is attached.
    pub fn has_trace_cache(&self) -> bool {
        self.cache.is_some()
    }

    /// The manifest recorder, when one is attached.
    pub fn manifest(&self) -> Option<&ManifestBuilder> {
        self.manifest.as_deref()
    }

    /// How many completed cells the checkpoint journal held when it was
    /// opened (`None` without a checkpoint).
    pub fn checkpoint_loaded(&self) -> Option<usize> {
        self.checkpoint.as_ref().map(|c| c.loaded())
    }

    /// Appends a keyless provenance note to the attached checkpoint
    /// journal (shard identity, command line). A no-op without one.
    pub fn checkpoint_note(&self, payload: &Json) -> std::io::Result<()> {
        match &self.checkpoint {
            Some(checkpoint) => checkpoint.note(payload),
            None => Ok(()),
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> RunStats {
        RunStats {
            replays: self.counters.replays.load(Ordering::Relaxed),
            recordings: self.counters.recordings.load(Ordering::Relaxed),
            checkpoint_hits: self.counters.checkpoint_hits.load(Ordering::Relaxed),
            live_runs: self.counters.live_runs.load(Ordering::Relaxed),
            shard_skips: self.counters.shard_skips.load(Ordering::Relaxed),
        }
    }

    /// (replays, recordings) against the trace cache.
    pub fn cache_stats(&self) -> (u64, u64) {
        let stats = self.stats();
        (stats.replays, stats.recordings)
    }

    /// Decoded-event memo traffic of the attached trace cache (`None`
    /// without one) — hit/miss/eviction counters that expose thrash at
    /// the memo's stream bound.
    pub fn memo_stats(&self) -> Option<predbranch_trace::MemoStats> {
        self.cache.as_ref().map(TraceCache::memo_stats)
    }

    /// The compiled suite, memoized per `limit` so a multi-experiment
    /// sweep compiles each benchmark once instead of once per
    /// experiment.
    pub fn suite(&self, limit: Option<usize>) -> Arc<Vec<SuiteEntry>> {
        let mut suites = self
            .suites
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some((_, entries)) = suites.iter().find(|(l, _)| *l == limit) {
            return Arc::clone(entries);
        }
        let entries = Arc::new(compiled_suite(limit));
        suites.push((limit, Arc::clone(&entries)));
        entries
    }

    /// The digest sharding partitions on: the same stream identity gang
    /// replay groups by — (cache label, program content, input content,
    /// timing) — so every shard owns whole gang units.
    fn stream_digest(
        cache_label: &str,
        program_digest: u64,
        memory_digest: u64,
        timing: Timing,
    ) -> u64 {
        let mut digest = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                digest ^= u64::from(b);
                digest = digest.wrapping_mul(0x100_0000_01b3);
            }
        };
        mix(cache_label.as_bytes());
        mix(&program_digest.to_le_bytes());
        mix(&memory_digest.to_le_bytes());
        mix(&timing.resolve_latency.to_le_bytes());
        mix(&timing.retire_latency.to_le_bytes());
        digest
    }

    /// Whether this context's shard (if any) owns `cell`'s stream.
    fn owns_cell(&self, cell: &CellSpec) -> bool {
        match self.shard {
            None => true,
            Some(shard) => shard.owns(Self::stream_digest(
                &cell.cache_label,
                program_hash(&cell.program),
                memory_fingerprint(&cell.memory),
                cell.timing,
            )),
        }
    }

    /// The outcome a sharded context returns for cells it does not own:
    /// empty metrics, an empty-but-halted summary. Recognizably inert,
    /// and excluded from journals and manifests so the merge step sees
    /// each cell exactly once.
    fn shard_placeholder(&self) -> RunOutcome {
        self.counters.shard_skips.fetch_add(1, Ordering::Relaxed);
        RunOutcome {
            metrics: PredictionMetrics::default(),
            summary: RunSummary {
                halted: true,
                ..RunSummary::default()
            },
        }
    }

    /// Runs one cell: checkpoint lookup first, then trace-cache replay
    /// or record, then live execution — whichever applies first. In a
    /// sharded context, cells outside the shard return a placeholder
    /// (after the checkpoint lookup, so a finalize pass over a merged
    /// journal restores every cell regardless of sharding).
    ///
    /// # Panics
    ///
    /// Panics if the program fails to halt within the suite instruction
    /// budget (suite programs always halt; a hang is a harness bug).
    pub fn run_cell(&self, cell: &CellSpec) -> RunOutcome {
        let key = cell.key();
        if let Some(checkpoint) = &self.checkpoint {
            if let Some(outcome) = checkpoint.lookup(&key).and_then(outcome_from_json) {
                self.counters
                    .checkpoint_hits
                    .fetch_add(1, Ordering::Relaxed);
                self.record_manifest(cell, &key, 0, CellSource::Checkpoint);
                return outcome;
            }
        }
        if !self.owns_cell(cell) {
            return self.shard_placeholder();
        }
        let started = Instant::now();
        let (outcome, source) = self.execute(cell);
        let wall_ms = started.elapsed().as_millis() as u64;
        if let Some(checkpoint) = &self.checkpoint {
            if let Err(e) = checkpoint.record(&key, wall_ms, &outcome_to_json(&outcome)) {
                eprintln!(
                    "warning: checkpoint append failed for {} ({e}); cell will re-run on resume",
                    cell.label
                );
            }
        }
        self.record_manifest(cell, &key, wall_ms, source);
        outcome
    }

    /// Runs a grid of cells, in parallel when a pool is attached, and
    /// returns outcomes **in submission order** — the vector is
    /// positionally identical to `cells.iter().map(|c|
    /// ctx.run_cell(c))` at any worker count.
    ///
    /// Under [`Gang::On`] (the default), cells sharing an event stream
    /// and timing are grouped into gang units and each unit replays its
    /// stream **once**, feeding every member cell as an independent
    /// [`GangHarness`] lane; the scheduling unit on the worker pool is
    /// then the gang unit, not the cell. Per-cell outcomes, cache keys,
    /// checkpoint records, and manifest records are unchanged — only
    /// the number of decode/execution passes (and thus the
    /// replay/record/live counters, which count passes) differs.
    pub fn run_cells(&self, cells: Vec<CellSpec>) -> Vec<RunOutcome> {
        if self.gang == Gang::On {
            return self.run_cells_ganged(cells);
        }
        match &self.pool {
            Some(pool) if cells.len() > 1 => {
                let jobs = cells
                    .into_iter()
                    .map(|cell| {
                        let ctx = self.clone();
                        let job: Box<dyn FnOnce() -> RunOutcome + Send> =
                            Box::new(move || ctx.run_cell(&cell));
                        job
                    })
                    .collect();
                pool.run_batch(jobs)
            }
            _ => cells.iter().map(|cell| self.run_cell(cell)).collect(),
        }
    }

    /// The gang-replay grid path: checkpoint lookups per cell, then one
    /// replay pass per (stream, timing) unit, results scattered back to
    /// submission order.
    fn run_cells_ganged(&self, cells: Vec<CellSpec>) -> Vec<RunOutcome> {
        let mut slots: Vec<Option<RunOutcome>> = vec![None; cells.len()];

        // Checkpoint restores stay per-cell: a resumed sweep skips
        // exactly the cells it completed, and a unit re-runs only its
        // missing lanes.
        let mut pending: Vec<(usize, CellSpec)> = Vec::new();
        for (index, cell) in cells.into_iter().enumerate() {
            if let Some(checkpoint) = &self.checkpoint {
                let key = cell.key();
                if let Some(outcome) = checkpoint.lookup(&key).and_then(outcome_from_json) {
                    self.counters
                        .checkpoint_hits
                        .fetch_add(1, Ordering::Relaxed);
                    self.record_manifest(&cell, &key, 0, CellSource::Checkpoint);
                    slots[index] = Some(outcome);
                    continue;
                }
            }
            pending.push((index, cell));
        }

        // Group by (stream identity, timing) in first-appearance order.
        // The content hashes — not just the cache label — define the
        // stream, so two cells gang only if they replay byte-identical
        // events; timing joins the key per the grouping rule even
        // though lanes carry private scoreboards, keeping a unit's
        // lanes directly comparable.
        let mut units: Vec<Vec<(usize, CellSpec)>> = Vec::new();
        let mut by_stream: HashMap<(String, u64, u64, Timing), usize> = HashMap::new();
        for (index, cell) in pending {
            let stream = (
                cell.cache_label.clone(),
                program_hash(&cell.program),
                memory_fingerprint(&cell.memory),
                cell.timing,
            );
            if let Some(shard) = self.shard {
                if !shard.owns(Self::stream_digest(&stream.0, stream.1, stream.2, stream.3)) {
                    slots[index] = Some(self.shard_placeholder());
                    continue;
                }
            }
            match by_stream.entry(stream) {
                Entry::Occupied(slot) => units[*slot.get()].push((index, cell)),
                Entry::Vacant(slot) => {
                    slot.insert(units.len());
                    units.push(vec![(index, cell)]);
                }
            }
        }

        let unit_outcomes: Vec<Vec<(usize, RunOutcome)>> = match &self.pool {
            Some(pool) if units.len() > 1 => {
                let jobs = units
                    .into_iter()
                    .map(|unit| {
                        let ctx = self.clone();
                        let job: Box<dyn FnOnce() -> Vec<(usize, RunOutcome)> + Send> =
                            Box::new(move || ctx.run_gang_unit(&unit));
                        job
                    })
                    .collect();
                pool.run_batch(jobs)
            }
            _ => units.iter().map(|unit| self.run_gang_unit(unit)).collect(),
        };
        for (index, outcome) in unit_outcomes.into_iter().flatten() {
            slots[index] = Some(outcome);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every submitted cell resolves to an outcome"))
            .collect()
    }

    /// Runs one gang unit — cells sharing a (stream, timing) — with a
    /// single replay/execution pass, then journals and records each
    /// member under its own per-cell key.
    fn run_gang_unit(&self, unit: &[(usize, CellSpec)]) -> Vec<(usize, RunOutcome)> {
        let started = Instant::now();
        let (outcomes, source) = match self.dispatch {
            Dispatch::Enum => self.gang_with(build_modern_stack, unit),
            Dispatch::Dyn => self.gang_with(build_modern, unit),
        };
        let wall_ms = started.elapsed().as_millis() as u64;
        unit.iter()
            .zip(&outcomes)
            .map(|((index, cell), outcome)| {
                let key = cell.key();
                if let Some(checkpoint) = &self.checkpoint {
                    if let Err(e) = checkpoint.record(&key, wall_ms, &outcome_to_json(outcome)) {
                        eprintln!(
                            "warning: checkpoint append failed for {} ({e}); cell will re-run on resume",
                            cell.label
                        );
                    }
                }
                self.record_manifest(cell, &key, wall_ms, source);
                (*index, *outcome)
            })
            .collect()
    }

    /// Builds the lane bank for `unit` (one predictor per member cell,
    /// monomorphized per dispatch path) and drives all lanes from one
    /// pass over the unit's stream. Outcomes are returned in unit
    /// order.
    fn gang_with<P: BranchPredictor>(
        &self,
        build: impl Fn(&ModernSpec) -> P,
        unit: &[(usize, CellSpec)],
    ) -> (Vec<RunOutcome>, CellSource) {
        let mut gang = GangHarness::new();
        for (_, cell) in unit {
            gang.push_lane(build(&cell.spec), cell.harness_config());
        }
        let lead = &unit[0].1;
        let (summary, source) =
            self.deliver(&lead.cache_label, &lead.program, &lead.memory, &mut gang);
        let outcomes = gang
            .into_metrics()
            .into_iter()
            .map(|metrics| RunOutcome { metrics, summary })
            .collect();
        (outcomes, source)
    }

    /// Runs arbitrary owned jobs on the pool (sequentially without
    /// one), results in submission order. For experiment work that is
    /// not a predictor cell — custom sinks, recompilation sweeps —
    /// which wants the same determinism-under-parallelism contract but
    /// no caching or checkpointing.
    pub fn map_batch<T: Send + 'static>(
        &self,
        jobs: Vec<Box<dyn FnOnce() -> T + Send + 'static>>,
    ) -> Vec<T> {
        match &self.pool {
            Some(pool) => pool.run_batch(jobs),
            None => jobs.into_iter().map(|job| job()).collect(),
        }
    }

    /// Streams one execution's decoded event stream into an arbitrary
    /// [`EventSink`] at the standard cell budget — through the trace
    /// cache when one is attached (recording on first touch, replaying
    /// after), live otherwise. Events arrive in
    /// [`EVENT_BATCH_CAPACITY`]-sized batches on both paths, so custom
    /// analyses (characterization, attribution) see the identical
    /// sequence a predictor cell would, from at most one decode.
    ///
    /// # Panics
    ///
    /// Panics if the program fails to halt within the suite instruction
    /// budget, or on trace-cache I/O failure.
    pub fn stream_events<S: EventSink>(
        &self,
        cache_label: &str,
        program: &Program,
        memory: &Memory,
        sink: &mut S,
    ) -> RunSummary {
        self.deliver(cache_label, program, memory, sink).0
    }

    /// The one stream-delivery primitive every run path shares: one
    /// decode/execution pass over (program, memory) at the cell budget,
    /// through the trace cache when attached (recording on first touch)
    /// and the live batched executor otherwise. Exactly one pass
    /// counter — replays, recordings, or live_runs — moves per call, so
    /// the counters report *passes*, which the gang path amortizes
    /// across its lanes.
    ///
    /// # Panics
    ///
    /// Panics if the program fails to halt within the budget, or on
    /// trace-cache I/O failure.
    fn deliver<S: EventSink>(
        &self,
        cache_label: &str,
        program: &Program,
        memory: &Memory,
        sink: &mut S,
    ) -> (RunSummary, CellSource) {
        let (summary, source) = match &self.cache {
            Some(cache) => {
                let key = CacheKey::for_run(cache_label, program, memory, CELL_BUDGET);
                let (summary, hit) = cache
                    .replay_or_record(&key, program, memory.clone(), CELL_BUDGET, sink)
                    .expect("trace cache I/O failed");
                if hit {
                    self.counters.replays.fetch_add(1, Ordering::Relaxed);
                    (summary, CellSource::Replayed)
                } else {
                    self.counters.recordings.fetch_add(1, Ordering::Relaxed);
                    (summary, CellSource::Recorded)
                }
            }
            None => {
                self.counters.live_runs.fetch_add(1, Ordering::Relaxed);
                let mut buffer: Vec<Event> = Vec::with_capacity(EVENT_BATCH_CAPACITY);
                let summary = Executor::new(program, memory.clone()).run_batched(
                    sink,
                    CELL_BUDGET,
                    &mut buffer,
                );
                (summary, CellSource::Live)
            }
        };
        assert!(summary.halted, "experiment program did not halt");
        (summary, source)
    }

    fn execute(&self, cell: &CellSpec) -> (RunOutcome, CellSource) {
        match self.dispatch {
            Dispatch::Enum => self.execute_with(build_modern_stack(&cell.spec), cell),
            Dispatch::Dyn => self.execute_with(build_modern(&cell.spec), cell),
        }
    }

    /// Runs `cell` through `predictor`, monomorphized per dispatch path
    /// so the enum stack's calls inline. Events reach the harness in
    /// [`EVENT_BATCH_CAPACITY`]-sized chunks on both the replay and the
    /// live path; the harness carries no timeline here, so skipping
    /// per-instruction callbacks is observationally irrelevant.
    fn execute_with<P: BranchPredictor>(
        &self,
        predictor: P,
        cell: &CellSpec,
    ) -> (RunOutcome, CellSource) {
        let mut harness = PredictionHarness::new(predictor, cell.harness_config());
        let (summary, source) =
            self.deliver(&cell.cache_label, &cell.program, &cell.memory, &mut harness);
        harness.finish();
        (
            RunOutcome {
                metrics: *harness.metrics(),
                summary,
            },
            source,
        )
    }

    fn record_manifest(&self, cell: &CellSpec, key: &str, wall_ms: u64, source: CellSource) {
        if let Some(manifest) = &self.manifest {
            manifest.record_cell(CellRecord {
                key: key.to_string(),
                label: cell.label.clone(),
                wall_ms,
                source,
            });
        }
    }
}

/// Runs one predictor spec over one binary, live (no cache, no
/// context) — the primitive the experiments used before the sweep
/// existed, kept for benches, doc examples, and one-off probes.
///
/// # Panics
///
/// Panics if the program fails to halt within the suite instruction
/// budget.
pub fn run_spec(
    program: &Program,
    memory: Memory,
    spec: &PredictorSpec,
    timing: Timing,
    insert: InsertFilter,
) -> RunOutcome {
    run_spec_dispatch(program, memory, spec, timing, insert, Dispatch::Enum)
}

/// [`run_spec`] with an explicit dispatch path — the A/B primitive the
/// throughput benches and `experiments bench` time. Both paths deliver
/// events to the harness in batches; only the predictor call dispatch
/// differs, and outcomes are identical.
///
/// # Panics
///
/// Panics if the program fails to halt within the suite instruction
/// budget.
pub fn run_spec_dispatch(
    program: &Program,
    memory: Memory,
    spec: &PredictorSpec,
    timing: Timing,
    insert: InsertFilter,
    dispatch: Dispatch,
) -> RunOutcome {
    match dispatch {
        Dispatch::Enum => run_live(build_predictor_stack(spec), program, memory, timing, insert),
        Dispatch::Dyn => run_live(build_predictor(spec), program, memory, timing, insert),
    }
}

/// The shared live-run primitive under both `run_spec*` wrappers: one
/// batched execution pass driving `predictor` through a fresh harness.
/// Monomorphized per predictor shape so the enum stack's calls inline.
///
/// # Panics
///
/// Panics if the program fails to halt within the suite instruction
/// budget.
fn run_live<P: BranchPredictor>(
    predictor: P,
    program: &Program,
    memory: Memory,
    timing: Timing,
    insert: InsertFilter,
) -> RunOutcome {
    let mut harness = PredictionHarness::new(predictor, HarnessConfig { timing, insert });
    let mut buffer = Vec::with_capacity(EVENT_BATCH_CAPACITY);
    let summary =
        Executor::new(program, memory).run_batched(&mut harness, CELL_BUDGET, &mut buffer);
    assert!(summary.halted, "experiment program did not halt");
    harness.finish();
    RunOutcome {
        metrics: *harness.metrics(),
        summary,
    }
}

fn counts_json(counts: &predbranch_core::ClassCounts) -> Json {
    Json::Arr(vec![
        Json::from(counts.branches.get()),
        Json::from(counts.mispredictions.get()),
    ])
}

fn counts_from_json(json: &Json) -> Option<predbranch_core::ClassCounts> {
    let items = json.as_arr()?;
    match items {
        [branches, mispredictions] => Some(predbranch_core::ClassCounts {
            branches: predbranch_stats::Counter::with_value(branches.as_u64()?),
            mispredictions: predbranch_stats::Counter::with_value(mispredictions.as_u64()?),
        }),
        _ => None,
    }
}

/// Serializes an outcome for the checkpoint journal. All counts are far
/// below 2^53, so the JSON number representation is exact.
pub fn outcome_to_json(outcome: &RunOutcome) -> Json {
    let m = &outcome.metrics;
    let s = &outcome.summary;
    Json::obj()
        .field(
            "metrics",
            Json::obj()
                .field("all", counts_json(&m.all))
                .field("region", counts_json(&m.region))
                .field("non_region", counts_json(&m.non_region))
                .field("kf", m.known_false_guard.get())
                .field("kfm", m.known_false_mispredicted.get())
                .field("pw", m.pred_writes.get()),
        )
        .field(
            "summary",
            Json::obj()
                .field("instructions", s.instructions)
                .field("branches", s.branches)
                .field("conditional", s.conditional_branches)
                .field("region", s.region_branches)
                .field("taken_cond", s.taken_conditional)
                .field("pred_writes", s.pred_writes)
                .field("halted", s.halted),
        )
}

/// Restores an outcome from its journal form; `None` on any shape
/// mismatch (the cell then simply re-runs).
pub fn outcome_from_json(json: &Json) -> Option<RunOutcome> {
    let m = json.get("metrics")?;
    let s = json.get("summary")?;
    let counter = |j: &Json, key: &str| -> Option<predbranch_stats::Counter> {
        Some(predbranch_stats::Counter::with_value(j.get(key)?.as_u64()?))
    };
    let metrics = PredictionMetrics {
        all: counts_from_json(m.get("all")?)?,
        region: counts_from_json(m.get("region")?)?,
        non_region: counts_from_json(m.get("non_region")?)?,
        known_false_guard: counter(m, "kf")?,
        known_false_mispredicted: counter(m, "kfm")?,
        pred_writes: counter(m, "pw")?,
    };
    let summary = RunSummary {
        instructions: s.get("instructions")?.as_u64()?,
        branches: s.get("branches")?.as_u64()?,
        conditional_branches: s.get("conditional")?.as_u64()?,
        region_branches: s.get("region")?.as_u64()?,
        taken_conditional: s.get("taken_cond")?.as_u64()?,
        pred_writes: s.get("pred_writes")?.as_u64()?,
        halted: matches!(s.get("halted"), Some(Json::Bool(true))),
    };
    Some(RunOutcome { metrics, summary })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiled_suite_limit() {
        let entries = compiled_suite(Some(2));
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].bench.name(), entries[0].compiled.name);
    }

    #[test]
    fn run_outcome_accessors_consistent() {
        let ctx = RunContext::new();
        let entries = ctx.suite(Some(1));
        let cell = CellSpec::predicated(
            &entries[0],
            "test/static",
            &PredictorSpec::StaticNotTaken,
            Timing::immediate(DEFAULT_LATENCY),
            InsertFilter::All,
        );
        let out = ctx.run_cell(&cell);
        assert!(out.summary.halted);
        assert!(out.misp_percent() >= 0.0);
        assert!(out.taken_branches() <= out.summary.branches);
        assert!(out.mpki() >= 0.0);
        assert_eq!(ctx.stats().live_runs, 1);
    }

    #[test]
    fn suite_is_memoized_per_limit() {
        let ctx = RunContext::new();
        let a = ctx.suite(Some(1));
        let b = ctx.suite(Some(1));
        assert!(Arc::ptr_eq(&a, &b));
        let c = ctx.suite(Some(2));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn cell_keys_are_stable_and_discriminating() {
        let ctx = RunContext::new();
        let entries = ctx.suite(Some(1));
        let base = CellSpec::predicated(
            &entries[0],
            "a",
            &PredictorSpec::StaticNotTaken,
            Timing::immediate(DEFAULT_LATENCY),
            InsertFilter::All,
        );
        // the label is cosmetic: same content, same key
        let relabeled = CellSpec {
            label: "b".into(),
            ..base.clone()
        };
        assert_eq!(base.key(), relabeled.key());
        // but every content knob separates
        let other_spec = CellSpec {
            spec: PredictorSpec::StaticBtfn.into(),
            ..base.clone()
        };
        assert_ne!(base.key(), other_spec.key());
        let modern_spec = CellSpec {
            spec: "tage:4/10/64".parse::<ModernSpec>().unwrap(),
            ..base.clone()
        };
        assert_ne!(base.key(), modern_spec.key());
        let other_latency = CellSpec {
            timing: Timing::immediate(DEFAULT_LATENCY + 1),
            ..base.clone()
        };
        assert_ne!(base.key(), other_latency.key());
        let other_retire = CellSpec {
            timing: Timing::new(DEFAULT_LATENCY, 4),
            ..base.clone()
        };
        assert_ne!(base.key(), other_retire.key());
        let other_insert = CellSpec {
            insert: InsertFilter::None,
            ..base.clone()
        };
        assert_ne!(base.key(), other_insert.key());
        let plain = CellSpec::plain(
            &entries[0],
            "a",
            &PredictorSpec::StaticNotTaken,
            Timing::immediate(DEFAULT_LATENCY),
            InsertFilter::All,
        );
        assert_ne!(base.key(), plain.key());
    }

    #[test]
    fn outcome_json_roundtrips_exactly() {
        let ctx = RunContext::new();
        let entries = ctx.suite(Some(1));
        let cell = CellSpec::predicated(
            &entries[0],
            "test/roundtrip",
            &PredictorSpec::StaticNotTaken,
            Timing::immediate(DEFAULT_LATENCY),
            InsertFilter::All,
        );
        let out = ctx.run_cell(&cell);
        let json = outcome_to_json(&out);
        let parsed = Json::parse(&json.render()).unwrap();
        assert_eq!(outcome_from_json(&parsed), Some(out));
        assert_eq!(outcome_from_json(&Json::Null), None);
        assert_eq!(outcome_from_json(&Json::obj()), None);
    }
}

//! Shared run machinery for the experiments.

use predbranch_core::{
    build_predictor, HarnessConfig, InsertFilter, PredictionHarness, PredictionMetrics,
    PredictorSpec,
};
use predbranch_isa::Program;
use predbranch_sim::{Executor, Memory, RunSummary};
use predbranch_workloads::{
    compile_benchmark, suite, Benchmark, CompileOptions, CompiledBenchmark, EVAL_SEED,
    DEFAULT_MAX_INSTRUCTIONS,
};

/// The machine's predicate resolve latency used throughout the study
/// (compare execute → first fetch that can observe the result).
pub const DEFAULT_LATENCY: u64 = 8;

/// The realistic PGU insertion delay: predicate bits become visible to
/// the history register one resolve latency after the defining compare.
pub const PGU_DELAY: u64 = 8;

/// A benchmark plus its two compiled binaries.
#[derive(Debug)]
pub struct SuiteEntry {
    /// The benchmark descriptor (inputs, name).
    pub bench: Benchmark,
    /// Plain + predicated binaries and region metadata.
    pub compiled: CompiledBenchmark,
}

impl SuiteEntry {
    /// The evaluation input (always a different seed than training).
    pub fn eval_input(&self) -> Memory {
        self.bench.input(EVAL_SEED)
    }
}

/// Compiles the whole suite (optionally only the first `limit`
/// benchmarks, for quick modes).
pub fn compiled_suite(limit: Option<usize>) -> Vec<SuiteEntry> {
    let opts = CompileOptions::default();
    suite()
        .into_iter()
        .take(limit.unwrap_or(usize::MAX))
        .map(|bench| {
            let compiled = compile_benchmark(&bench, &opts);
            SuiteEntry { bench, compiled }
        })
        .collect()
}

/// The result of one predictor × binary run.
#[derive(Debug, Clone, Copy)]
pub struct RunOutcome {
    /// Prediction metrics by branch class.
    pub metrics: PredictionMetrics,
    /// Execution summary (instructions, branch counts, halted).
    pub summary: RunSummary,
}

impl RunOutcome {
    /// Overall conditional-branch misprediction rate, percent.
    pub fn misp_percent(&self) -> f64 {
        self.metrics.all.misp_rate().percent()
    }

    /// Region-branch misprediction rate, percent.
    pub fn region_misp_percent(&self) -> f64 {
        self.metrics.region.misp_rate().percent()
    }

    /// Mispredictions per kilo-instruction.
    pub fn mpki(&self) -> f64 {
        self.metrics.mpki(self.summary.instructions)
    }

    /// Dynamic taken branches of any kind (for taken-bubble accounting).
    pub fn taken_branches(&self) -> u64 {
        let unconditional = self.summary.branches - self.summary.conditional_branches;
        self.summary.taken_conditional + unconditional
    }
}

/// Runs one predictor spec over one binary with the study's default
/// resolve latency and the given insertion filter.
///
/// # Panics
///
/// Panics if the program fails to halt within the suite instruction
/// budget (suite programs always halt; a hang is a harness bug).
pub fn run_spec(
    program: &Program,
    memory: Memory,
    spec: &PredictorSpec,
    resolve_latency: u64,
    insert: InsertFilter,
) -> RunOutcome {
    let predictor = build_predictor(spec);
    let mut harness = PredictionHarness::new(
        predictor,
        HarnessConfig {
            resolve_latency,
            insert,
        },
    );
    let summary =
        Executor::new(program, memory).run(&mut harness, 2 * DEFAULT_MAX_INSTRUCTIONS);
    assert!(summary.halted, "experiment program did not halt");
    RunOutcome {
        metrics: *harness.metrics(),
        summary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiled_suite_limit() {
        let entries = compiled_suite(Some(2));
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].bench.name(), entries[0].compiled.name);
    }

    #[test]
    fn run_outcome_accessors_consistent() {
        let entries = compiled_suite(Some(1));
        let e = &entries[0];
        let out = run_spec(
            &e.compiled.predicated,
            e.eval_input(),
            &PredictorSpec::StaticNotTaken,
            DEFAULT_LATENCY,
            InsertFilter::All,
        );
        assert!(out.summary.halted);
        assert!(out.misp_percent() >= 0.0);
        assert!(out.taken_branches() <= out.summary.branches);
        assert!(out.mpki() >= 0.0);
    }
}

//! End-to-end sweep tests through the `experiments` binary: stdout must
//! be byte-identical across `--jobs` levels, and `--manifest` must write
//! a well-formed run record.

use std::path::PathBuf;
use std::process::{Command, Output};

use predbranch_sweep::Json;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pb-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn experiments(args: &[&str]) -> Output {
    let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(args)
        .output()
        .expect("spawn experiments");
    assert!(
        out.status.success(),
        "experiments {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

#[test]
fn stdout_is_byte_identical_across_jobs_levels() {
    let dir = tmp_dir("jobs");
    let cache = dir.join("traces");
    let cache = cache.to_str().unwrap();
    let base = experiments(&["--quick", "--trace-cache", cache, "--jobs", "1", "f1", "f3"]);
    for jobs in ["2", "8"] {
        let out = experiments(&[
            "--quick",
            "--trace-cache",
            cache,
            "--jobs",
            jobs,
            "f1",
            "f3",
        ]);
        assert_eq!(
            String::from_utf8_lossy(&base.stdout),
            String::from_utf8_lossy(&out.stdout),
            "--jobs {jobs} changed stdout"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn manifest_is_written_and_well_formed() {
    let dir = tmp_dir("manifest");
    let manifest_path = dir.join("run.json");
    experiments(&[
        "--quick",
        "--jobs",
        "2",
        "--manifest",
        manifest_path.to_str().unwrap(),
        "f1",
    ]);
    let manifest = Json::parse(&std::fs::read_to_string(&manifest_path).unwrap()).unwrap();
    assert_eq!(
        manifest.get("manifest_version").and_then(Json::as_u64),
        Some(1)
    );
    assert_eq!(manifest.get("jobs").and_then(Json::as_u64), Some(2));
    let command = manifest.get("command").and_then(Json::as_str).unwrap();
    assert!(command.contains("f1"), "{command}");

    // f1 at quick scale: 3 benchmarks × (plain + pred) = 6 cells, all
    // live (no cache), every record carrying a v2- content key
    let cells = manifest.get("cells").and_then(Json::as_arr).unwrap();
    assert_eq!(cells.len(), 6);
    for cell in cells {
        assert!(cell
            .get("key")
            .and_then(Json::as_str)
            .unwrap()
            .starts_with("v2-"));
        assert_eq!(cell.get("source").and_then(Json::as_str), Some("live"));
    }
    let totals = manifest.get("totals").unwrap();
    assert_eq!(totals.get("cells").and_then(Json::as_u64), Some(6));
    assert_eq!(totals.get("live").and_then(Json::as_u64), Some(6));

    let fingerprints = manifest.get("fingerprints").unwrap();
    assert!(fingerprints
        .get("compile-options")
        .and_then(Json::as_str)
        .is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpointed_rerun_restores_instead_of_rerunning() {
    let dir = tmp_dir("resume");
    let journal = dir.join("sweep.ckpt");
    let journal = journal.to_str().unwrap();
    let first = experiments(&["--quick", "--checkpoint", journal, "f1"]);
    let second = experiments(&["--quick", "--checkpoint", journal, "f1"]);
    assert_eq!(
        String::from_utf8_lossy(&first.stdout),
        String::from_utf8_lossy(&second.stdout),
        "restored results must render identically"
    );
    let stderr = String::from_utf8_lossy(&second.stderr);
    assert!(
        stderr.contains("6 completed cells loaded") && stderr.contains("6 cells restored"),
        "second run must restore all six cells from the journal:\n{stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

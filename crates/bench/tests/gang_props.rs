//! Gang replay must be invisible: for ANY mix of classic and modern
//! predictor specs over any mix of benchmarks, at retire latency 0 and
//! 8, the ganged grid (the default) produces `RunOutcome`s identical —
//! metrics, misprediction tallies, run summaries — to the sequential
//! per-cell path (`--gang off`).
//!
//! Each case shares one on-disk trace cache between both contexts, so
//! the property also exercises the replay path the full sweeps use:
//! the first context to touch a stream records it, everything after
//! replays.

use proptest::prelude::*;

use predbranch_bench::{CellSpec, Gang, RunContext};
use predbranch_core::{InsertFilter, Timing};

/// Spec strings spanning every predictor family the sweep engine can
/// gang: classic gshare stacks with and without the paper's predicate
/// structures, a bimodal baseline, and the modern TAGE/MPP tier with
/// their predicate-aware variants.
const SPEC_POOL: &[&str] = &[
    "gshare:10/10",
    "gshare:12/12+sfpf",
    "gshare:10/10+pgu8",
    "gshare:10/10+sfpf+pgu8",
    "bimodal:12",
    "tage:4/8/48",
    "ptage:4/8/48",
    "mpp:10",
    "pmpp:10",
];

fn scratch_dir(case: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pb-gang-props-{}-{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One sampled grid: each element is (spec index, benchmark index).
fn arb_grid() -> impl Strategy<Value = Vec<(usize, usize)>> {
    prop::collection::vec((0usize..SPEC_POOL.len(), 0usize..2), 1..7)
}

fn cells_for(ctx: &RunContext, grid: &[(usize, usize)], retire: u64) -> Vec<CellSpec> {
    let entries = ctx.suite(Some(2));
    grid.iter()
        .enumerate()
        .map(|(i, &(spec_idx, bench_idx))| {
            let entry = &entries[bench_idx % entries.len()];
            CellSpec::predicated(
                entry,
                format!("props/{}/{i}", entry.compiled.name),
                SPEC_POOL[spec_idx]
                    .parse::<predbranch_modern::ModernSpec>()
                    .expect("pool specs parse"),
                Timing::immediate(retire),
                InsertFilter::All,
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The gang-replay contract from DESIGN.md: lanes share no state,
    /// so a ganged pass is byte-identical to per-cell passes.
    #[test]
    fn gang_outcomes_match_per_cell_outcomes(
        grid in arb_grid(),
        retire in prop_oneof![Just(0u64), Just(8u64)],
        seed in 0u64..1_000,
    ) {
        let dir = scratch_dir(seed);
        let ganged = RunContext::new()
            .with_trace_cache(&dir)
            .expect("trace cache opens");
        let per_cell = RunContext::new()
            .with_gang(Gang::Off)
            .with_trace_cache(&dir)
            .expect("trace cache opens");

        let outs_ganged = ganged.run_cells(cells_for(&ganged, &grid, retire));
        let outs_per_cell = per_cell.run_cells(cells_for(&per_cell, &grid, retire));
        prop_assert_eq!(
            outs_ganged,
            outs_per_cell,
            "ganged and per-cell outcomes diverge for grid {:?} at retire {}",
            grid,
            retire
        );

        // ganging never runs more passes than the per-cell path
        let (g, p) = (ganged.stats(), per_cell.stats());
        prop_assert!(
            g.replays + g.recordings + g.live_runs
                <= p.replays + p.recordings + p.live_runs,
            "gang used more passes ({g:?}) than per-cell ({p:?})"
        );

        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Golden parity: at retire latency 0 the in-flight window must
//! reproduce the idealized immediate-update results **byte for byte**.
//!
//! `golden/quick_all.txt` is the captured stdout of
//! `experiments --quick all` from before the speculative-history
//! refactor (when the harness trained predictors inline, with no
//! window). Any drift in any of the original seventeen experiments —
//! a changed misprediction count, a reordered row, even a formatting
//! change — fails this test.

use predbranch_bench::experiments::find_experiment;
use predbranch_bench::{Dispatch, RunContext, Scale};

/// The experiment ids the golden file covers, in `all` order. F16 was
/// added together with the retire-latency knob, so it has no
/// pre-refactor output to compare against.
const GOLDEN_IDS: [&str; 17] = [
    "t1", "t2", "f1", "f2", "f3", "f4", "f5", "f6", "f7", "f8", "f9", "f10", "f11", "f12", "f13",
    "f14", "f15",
];

#[test]
fn quick_all_output_is_byte_identical_to_pre_refactor_golden() {
    // default dispatch: the statically-dispatched PredictorStack
    assert_golden(RunContext::new());
}

#[test]
fn quick_all_output_is_byte_identical_under_dyn_dispatch() {
    // the boxed trait-object escape hatch must agree byte for byte
    assert_golden(RunContext::new().with_dispatch(Dispatch::Dyn));
}

/// F17 postdates the speculative-history refactor, so it gets its own
/// golden: the captured stdout of `experiments --quick f17`. Pinning
/// the bytes pins the taxonomy thresholds, the join, and the table
/// formatting at once.
#[test]
fn f17_quick_output_is_byte_identical_to_golden() {
    let golden = include_str!("golden/f17_quick.txt");
    let exp = find_experiment("f17").expect("f17 registered");
    let mut rendered = String::new();
    for artifact in (exp.run)(&RunContext::new(), &Scale::quick()) {
        rendered.push_str(&format!("{artifact}\n"));
    }
    assert_eq!(rendered, golden, "f17 --quick output drifted from golden");
}

/// F18 introduces the modern predictor tier (TAGE, multiperspective
/// perceptron). Its golden is pinned across *both* dispatch paths and
/// across worker counts: the modern predictors' speculative checkpoint
/// machinery must be deterministic under parallel cell execution and
/// structurally identical between the enum stack and the boxed
/// composition.
#[test]
fn f18_quick_output_is_byte_identical_on_every_path() {
    let golden = include_str!("golden/f18_quick.txt");
    let exp = find_experiment("f18").expect("f18 registered");
    for (tag, ctx) in [
        ("enum", RunContext::new()),
        ("dyn", RunContext::new().with_dispatch(Dispatch::Dyn)),
        ("jobs2", RunContext::new().with_jobs(2)),
        (
            "dyn-jobs2",
            RunContext::new().with_dispatch(Dispatch::Dyn).with_jobs(2),
        ),
    ] {
        let mut rendered = String::new();
        for artifact in (exp.run)(&ctx, &Scale::quick()) {
            rendered.push_str(&format!("{artifact}\n"));
        }
        assert_eq!(rendered, golden, "f18 --quick output drifted ({tag})");
    }
}

fn assert_golden(ctx: RunContext) {
    let golden = include_str!("golden/quick_all.txt");
    let scale = Scale::quick();
    assert_eq!(scale.retire_latency, 0, "golden was captured at retire 0");

    let mut rendered = String::new();
    for id in GOLDEN_IDS {
        let exp = find_experiment(id).expect(id);
        for artifact in (exp.run)(&ctx, &scale) {
            // the binary prints each artifact with `println!("{artifact}")`
            rendered.push_str(&format!("{artifact}\n"));
        }
    }

    if rendered != golden {
        let diverge = rendered
            .lines()
            .zip(golden.lines())
            .enumerate()
            .find(|(_, (new, old))| new != old);
        match diverge {
            Some((line, (new, old))) => panic!(
                "output diverges from the pre-refactor golden at line {}:\n  golden: {old}\n  now:    {new}",
                line + 1
            ),
            None => panic!(
                "output length differs from the golden: {} vs {} bytes",
                rendered.len(),
                golden.len()
            ),
        }
    }
}

//! Sharding must be invisible after the merge: for ANY mix of
//! predictor specs over any mix of benchmarks, split across ANY shard
//! count, the merged shard journals and manifests are byte-identical to
//! the (canonicalized) single-process run's, and a finalize pass over
//! the merged journal restores every cell to exactly the single-process
//! outcome. This is the exactly-once contract `experiments merge`
//! builds on the content-addressed cell keys.

use proptest::prelude::*;

use predbranch_bench::{CellSpec, RunContext, Shard};
use predbranch_core::{InsertFilter, Timing};
use predbranch_sweep::{merge_journals, merge_manifests, Json, ManifestBuilder};

/// Classic and modern specs, mirroring the gang-replay property pool.
const SPEC_POOL: &[&str] = &[
    "gshare:10/10",
    "gshare:12/12+sfpf",
    "gshare:10/10+pgu8",
    "gshare:10/10+sfpf+pgu8",
    "bimodal:12",
    "tage:4/8/48",
    "pmpp:10",
];

fn scratch_dir(case: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pb-shard-props-{}-{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One sampled grid: each element is (spec index, benchmark index).
fn arb_grid() -> impl Strategy<Value = Vec<(usize, usize)>> {
    prop::collection::vec((0usize..SPEC_POOL.len(), 0usize..2), 1..7)
}

fn cells_for(ctx: &RunContext, grid: &[(usize, usize)], retire: u64) -> Vec<CellSpec> {
    let entries = ctx.suite(Some(2));
    grid.iter()
        .enumerate()
        .map(|(i, &(spec_idx, bench_idx))| {
            let entry = &entries[bench_idx % entries.len()];
            CellSpec::predicated(
                entry,
                format!("props/{}/{i}", entry.compiled.name),
                SPEC_POOL[spec_idx]
                    .parse::<predbranch_modern::ModernSpec>()
                    .expect("pool specs parse"),
                Timing::immediate(retire),
                InsertFilter::All,
            )
        })
        .collect()
}

/// The (journal text, rendered manifest) pair a context produced.
fn artifacts(dir: &std::path::Path, tag: &str, manifest: &ManifestBuilder) -> (String, String) {
    let journal = std::fs::read_to_string(dir.join(format!("{tag}.ckpt"))).unwrap();
    (journal, manifest.finish(None).pretty())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random spec mixes × random shard counts merge to the
    /// single-process record exactly, and finalize reproduces the
    /// single-process outcomes from the merged journal alone.
    #[test]
    fn sharded_runs_merge_to_the_single_process_record(
        grid in arb_grid(),
        shards in 1u32..5,
        retire in prop_oneof![Just(0u64), Just(8u64)],
        seed in 0u64..1_000,
    ) {
        let dir = scratch_dir(seed);

        // the single-process reference run
        let direct = RunContext::new()
            .with_checkpoint(dir.join("single.ckpt"))
            .expect("checkpoint opens")
            .with_manifest(ManifestBuilder::new("props single", 1));
        let direct_outcomes = direct.run_cells(cells_for(&direct, &grid, retire));
        let (direct_journal, direct_manifest) =
            artifacts(&dir, "single", direct.manifest().unwrap());

        // the sharded fleet: same cells, one context per shard
        let mut shard_journals = Vec::new();
        let mut shard_manifests = Vec::new();
        let mut owned_total = 0u64;
        for index in 0..shards {
            let shard = Shard { index, count: shards };
            let ctx = RunContext::new()
                .with_shard(shard)
                .with_checkpoint(dir.join(format!("s{index}.ckpt")))
                .expect("checkpoint opens")
                .with_manifest(
                    ManifestBuilder::new(format!("props shard {shard}"), 1)
                        .with_shard(index, shards),
                );
            let outcomes = ctx.run_cells(cells_for(&ctx, &grid, retire));
            prop_assert_eq!(outcomes.len(), grid.len());
            let stats = ctx.stats();
            owned_total += grid.len() as u64 - stats.shard_skips;
            let (journal, manifest) =
                artifacts(&dir, &format!("s{index}"), ctx.manifest().unwrap());
            shard_journals.push((format!("s{index}.ckpt"), journal));
            shard_manifests.push((
                format!("s{index}.json"),
                Json::parse(&manifest).expect("manifest parses"),
            ));
        }
        // every cell ran in exactly one shard
        prop_assert_eq!(owned_total, grid.len() as u64);

        // canonical journal forms are byte-identical
        let (merged_journal, _) = merge_journals(&shard_journals).expect("journal merge");
        let (canon_single, _) =
            merge_journals(&[("single.ckpt".into(), direct_journal)]).expect("canonicalize");
        prop_assert_eq!(&merged_journal, &canon_single);

        // canonical manifest forms are byte-identical
        let (merged_manifest, _) = merge_manifests(&shard_manifests).expect("manifest merge");
        let (canon_manifest, _) = merge_manifests(&[(
            "single.json".into(),
            Json::parse(&direct_manifest).expect("manifest parses"),
        )])
        .expect("canonicalize");
        prop_assert_eq!(merged_manifest.pretty(), canon_manifest.pretty());

        // finalize: a fresh un-sharded context over the merged journal
        // restores every cell without running anything
        std::fs::write(dir.join("merged.ckpt"), &merged_journal).unwrap();
        let finalize = RunContext::new()
            .with_checkpoint(dir.join("merged.ckpt"))
            .expect("checkpoint opens");
        let restored = finalize.run_cells(cells_for(&finalize, &grid, retire));
        prop_assert_eq!(restored, direct_outcomes);
        let stats = finalize.stats();
        prop_assert_eq!(stats.checkpoint_hits, grid.len() as u64);
        prop_assert_eq!(stats.live_runs + stats.replays + stats.recordings, 0);

        let _ = std::fs::remove_dir_all(&dir);
    }
}

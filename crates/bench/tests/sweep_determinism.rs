//! The sweep engine's core contract: `--jobs N` is an implementation
//! detail. Cell outcomes, artifact text, and checkpoint-resumed results
//! must be identical at every parallelism level, with and without the
//! trace cache.

use predbranch_bench::experiments::find_experiment;
use predbranch_bench::{CellSpec, Gang, RunContext, Scale, DEFAULT_LATENCY};
use predbranch_core::{InsertFilter, Timing};

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pb-sweep-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A modest mixed grid: two benchmarks × the four headline configs.
fn grid(ctx: &RunContext) -> Vec<CellSpec> {
    let entries = ctx.suite(Some(2));
    let base = predbranch_core::PredictorSpec::Gshare {
        index_bits: 13,
        history_bits: 13,
    };
    let specs = [
        base.clone(),
        base.clone().with_sfpf(),
        base.clone().with_pgu(8),
        base.with_sfpf().with_pgu(8),
    ];
    let mut cells = Vec::new();
    for entry in entries.iter() {
        for (i, spec) in specs.iter().enumerate() {
            cells.push(CellSpec::predicated(
                entry,
                format!("grid/{}/{i}", entry.compiled.name),
                spec,
                Timing::immediate(DEFAULT_LATENCY),
                InsertFilter::All,
            ));
        }
    }
    cells
}

#[test]
fn run_cells_is_jobs_invariant() {
    let sequential = RunContext::new();
    let outs1 = sequential.run_cells(grid(&sequential));
    for jobs in [2, 8] {
        let parallel = RunContext::new().with_jobs(jobs);
        let outs_n = parallel.run_cells(grid(&parallel));
        assert_eq!(
            outs1, outs_n,
            "jobs={jobs} must produce identical outcomes in identical order"
        );
    }
}

#[test]
fn experiment_artifacts_are_jobs_invariant() {
    // full experiments, not just raw cells: aggregation order must not
    // depend on execution order (f3 = pure cell grid, f6 = cells +
    // map_batch side table)
    for id in ["f3", "f6"] {
        let exp = find_experiment(id).unwrap();
        let render = |jobs: usize| -> String {
            let ctx = RunContext::new().with_jobs(jobs);
            (exp.run)(&ctx, &Scale::quick())
                .iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        };
        let one = render(1);
        let eight = render(8);
        assert_eq!(
            one, eight,
            "{id}: artifacts differ between jobs=1 and jobs=8"
        );
        assert!(!one.trim().is_empty());
    }
}

#[test]
fn trace_cache_replays_are_jobs_invariant_and_counted() {
    let dir = tmp_dir("cache");
    // ganged (default): 2 benchmarks × 4 specs collapse into 2 gang
    // units, so the cold sweep records each stream once and replays
    // nothing — the counters count *passes*, not cells
    let warm = RunContext::new().with_trace_cache(&dir).unwrap();
    let outs_warm = warm.run_cells(grid(&warm));
    let stats = warm.stats();
    assert_eq!((stats.replays, stats.recordings), (0, 2), "{stats:?}");

    // the per-cell escape hatch against the now-warm cache: one replay
    // pass per cell, outcomes identical to the ganged pass
    let per_cell = RunContext::new()
        .with_gang(Gang::Off)
        .with_trace_cache(&dir)
        .unwrap();
    let outs_per_cell = per_cell.run_cells(grid(&per_cell));
    assert_eq!(outs_warm, outs_per_cell);
    let stats = per_cell.stats();
    assert_eq!(
        (stats.replays, stats.recordings),
        (8, 0),
        "a warm cache must satisfy every cell"
    );

    // warm + parallel + ganged: one replay per unit, same outcomes
    let parallel = RunContext::new()
        .with_jobs(4)
        .with_trace_cache(&dir)
        .unwrap();
    let outs_parallel = parallel.run_cells(grid(&parallel));
    assert_eq!(outs_warm, outs_parallel);
    let stats = parallel.stats();
    assert_eq!(
        (stats.replays, stats.recordings),
        (2, 0),
        "a warm cache must satisfy every unit"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn gang_escape_hatch_matches_ganged_outcomes() {
    let ganged = RunContext::new();
    let per_cell = RunContext::new().with_gang(Gang::Off);
    let outs_ganged = ganged.run_cells(grid(&ganged));
    assert_eq!(outs_ganged, per_cell.run_cells(grid(&per_cell)));
    // 2 streams → 2 gang passes; the escape hatch runs all 8 cells
    assert_eq!(ganged.stats().live_runs, 2);
    assert_eq!(per_cell.stats().live_runs, 8);
}

#[test]
fn gang_units_group_by_stream_and_timing() {
    let ctx = RunContext::new();
    let entries = ctx.suite(Some(1));
    let base = predbranch_core::PredictorSpec::Gshare {
        index_bits: 13,
        history_bits: 13,
    };
    let mut cells = Vec::new();
    // one benchmark, two timings, two specs each: timing splits the
    // stream into two units even though the events are identical
    for retire in [0, 8] {
        for spec in [base.clone(), base.clone().with_sfpf()] {
            cells.push(CellSpec::predicated(
                entries.first().unwrap(),
                format!("timing/{retire}"),
                &spec,
                Timing::new(DEFAULT_LATENCY, retire),
                InsertFilter::All,
            ));
        }
    }
    ctx.run_cells(cells);
    assert_eq!(ctx.stats().live_runs, 2, "one pass per (stream, timing)");
}

#[test]
fn checkpoint_resume_skips_completed_cells() {
    let dir = tmp_dir("ckpt");
    let journal = dir.join("sweep.ckpt");

    // first (interrupted) sweep: only half the grid completes
    let first = RunContext::new().with_checkpoint(&journal).unwrap();
    assert_eq!(first.checkpoint_loaded(), Some(0));
    let full_grid = grid(&first);
    let half: Vec<CellSpec> = full_grid[..4].to_vec();
    let half_outs = first.run_cells(half);
    assert_eq!(first.stats().checkpoint_hits, 0);
    // the four completed cells share one stream: one ganged pass
    assert_eq!(first.stats().live_runs, 1);
    drop(first);

    // resumed sweep over the whole grid: the four completed cells are
    // restored from the journal, only the remaining four run
    let resumed = RunContext::new()
        .with_jobs(2)
        .with_checkpoint(&journal)
        .unwrap();
    assert_eq!(resumed.checkpoint_loaded(), Some(4));
    let outs = resumed.run_cells(grid(&resumed));
    assert_eq!(resumed.stats().checkpoint_hits, 4);
    // the four cells that still need running share the second
    // benchmark's stream: one ganged pass
    assert_eq!(resumed.stats().live_runs, 1);
    assert_eq!(
        &outs[..4],
        &half_outs[..],
        "restored outcomes must be exact"
    );

    // and the resumed results equal a from-scratch sequential run
    let reference = RunContext::new();
    assert_eq!(outs, reference.run_cells(grid(&reference)));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_survives_torn_tail() {
    let dir = tmp_dir("torn");
    let journal = dir.join("sweep.ckpt");

    let first = RunContext::new().with_checkpoint(&journal).unwrap();
    let outs = first.run_cells(grid(&first)[..2].to_vec());
    drop(first);

    // simulate a crash mid-append: chop the journal mid-line
    let bytes = std::fs::read(&journal).unwrap();
    let newlines: Vec<usize> = bytes
        .iter()
        .enumerate()
        .filter(|(_, &b)| b == b'\n')
        .map(|(i, _)| i)
        .collect();
    assert_eq!(newlines.len(), 2, "one journal line per cell");
    std::fs::write(&journal, &bytes[..newlines[0] + 1 + 7]).unwrap();

    // the intact first record is restored, the torn second re-runs
    let resumed = RunContext::new().with_checkpoint(&journal).unwrap();
    assert_eq!(resumed.checkpoint_loaded(), Some(1));
    let outs2 = resumed.run_cells(grid(&resumed)[..2].to_vec());
    assert_eq!(outs2, outs);
    assert_eq!(resumed.stats().checkpoint_hits, 1);
    assert_eq!(resumed.stats().live_runs, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn manifest_records_every_cell_in_canonical_order() {
    use predbranch_sweep::ManifestBuilder;
    let ctx = RunContext::new()
        .with_jobs(4)
        .with_manifest(ManifestBuilder::new("test-sweep", 4));
    let cells = grid(&ctx);
    let expected: Vec<String> = {
        let mut labels: Vec<(String, String)> =
            cells.iter().map(|c| (c.label.clone(), c.key())).collect();
        labels.sort();
        labels.into_iter().map(|(label, _)| label).collect()
    };
    ctx.run_cells(cells);
    let manifest = ctx.manifest().unwrap().finish(None);
    let cells_json = manifest.get("cells").unwrap().as_arr().unwrap();
    let recorded: Vec<String> = cells_json
        .iter()
        .map(|c| c.get("label").unwrap().as_str().unwrap().to_string())
        .collect();
    assert_eq!(recorded, expected, "manifest order must be canonical");
    let totals = manifest.get("totals").unwrap();
    assert_eq!(totals.get("cells").unwrap().as_u64(), Some(8));
    assert_eq!(totals.get("live").unwrap().as_u64(), Some(8));
}

//! The streaming event sink that accumulates per-branch joint counts.

use std::collections::{BTreeMap, VecDeque};

use predbranch_sim::{
    BranchEvent, EventSink, PredWriteEvent, PredicateScoreboard, DEFAULT_RESOLVE_LATENCY,
};
use predbranch_stats::JointDistribution;

use crate::report::{profile, Characterization};
use crate::{GLOBAL_DEPTHS, LOCAL_DEPTHS, PRED_HISTORY_BITS, PRED_VISIBILITY_DELAY};

/// Per-static-branch accumulation state.
#[derive(Debug, Default)]
pub(crate) struct BranchState {
    pub(crate) taken: u64,
    pub(crate) total: u64,
    pub(crate) region: bool,
    /// This branch's own direction history (youngest outcome in bit 0).
    local: u64,
    /// `H(taken | global history)` joint, one per [`GLOBAL_DEPTHS`] entry.
    pub(crate) global_joints: [JointDistribution; GLOBAL_DEPTHS.len()],
    /// `H(taken | local history)` joint, one per [`LOCAL_DEPTHS`] entry.
    pub(crate) local_joints: [JointDistribution; LOCAL_DEPTHS.len()],
    /// `H(taken | fetch-visible predicate state)` joint.
    pub(crate) pred_joint: JointDistribution,
}

/// A streaming [`EventSink`] computing every characterization metric in
/// one pass over a decoded event stream (see the crate docs).
///
/// Feed it events — directly from the executor, through a trace
/// replay, or composed into a tuple sink next to other consumers —
/// then call [`Characterizer::finish`] for the report. Only
/// *conditional* branches are profiled: unconditional branches carry no
/// prediction problem.
#[derive(Debug)]
pub struct Characterizer {
    scoreboard: PredicateScoreboard,
    /// All-conditional-branches direction history (youngest in bit 0).
    global: u64,
    /// The delayed predicate-definition outcome register: the last
    /// [`PRED_HISTORY_BITS`] *fetch-visible* predicate values.
    pred_history: u64,
    /// Definitions not yet visible, `(definition index, value)` in
    /// program order — the same pending-queue shape the PGU uses.
    pending: VecDeque<(u64, bool)>,
    per_pc: BTreeMap<u32, BranchState>,
}

impl Characterizer {
    /// Creates a characterizer using the study's default resolve
    /// latency for the guard scoreboard and [`PRED_VISIBILITY_DELAY`]
    /// for the predicate-history register.
    pub fn new() -> Self {
        Characterizer {
            scoreboard: PredicateScoreboard::new(DEFAULT_RESOLVE_LATENCY),
            global: 0,
            pred_history: 0,
            pending: VecDeque::new(),
            per_pc: BTreeMap::new(),
        }
    }

    /// Shifts every pending predicate definition that has become
    /// visible by `fetch_index` into the predicate-history register.
    fn drain_visible(&mut self, fetch_index: u64) {
        while let Some(&(def_index, value)) = self.pending.front() {
            if fetch_index.saturating_sub(def_index) >= PRED_VISIBILITY_DELAY {
                self.pred_history = (self.pred_history << 1) | u64::from(value);
                self.pending.pop_front();
            } else {
                break;
            }
        }
    }

    /// Consumes the accumulated counts and produces the report. Static
    /// branches appear sorted by pc.
    pub fn finish(self) -> Characterization {
        Characterization::from_states(self.per_pc)
    }
}

impl Default for Characterizer {
    fn default() -> Self {
        Characterizer::new()
    }
}

impl EventSink for Characterizer {
    fn branch(&mut self, event: &BranchEvent) {
        if !event.conditional {
            return;
        }
        self.drain_visible(event.index);
        // Fetch-visible predicate context: what the scoreboard knows
        // about the guard (known-false / known-true / in-flight), joined
        // with the delayed predicate-outcome register. Using the *raw*
        // architectural guard value here would be degenerate — in this
        // ISA `taken == guard` for conditional branches — so only
        // signals a real front end has at fetch enter the context.
        let know: u64 = match self.scoreboard.query(event.guard, event.index).value() {
            Some(false) => 0,
            Some(true) => 1,
            None => 2,
        };
        let pred_context =
            (know << PRED_HISTORY_BITS) | (self.pred_history & ((1 << PRED_HISTORY_BITS) - 1));

        let state = self.per_pc.entry(event.pc).or_default();
        for (joint, depth) in state.global_joints.iter_mut().zip(GLOBAL_DEPTHS) {
            joint.record(self.global & ((1 << depth) - 1), event.taken);
        }
        for (joint, depth) in state.local_joints.iter_mut().zip(LOCAL_DEPTHS) {
            joint.record(state.local & ((1 << depth) - 1), event.taken);
        }
        state.pred_joint.record(pred_context, event.taken);
        state.total += 1;
        state.taken += u64::from(event.taken);
        state.region |= event.region.is_some();
        state.local = (state.local << 1) | u64::from(event.taken);
        self.global = (self.global << 1) | u64::from(event.taken);
    }

    fn pred_write(&mut self, event: &PredWriteEvent) {
        self.scoreboard.observe(event);
        self.pending.push_back((event.index, event.value));
    }
}

impl BranchState {
    /// Finalizes this state into a profile (see `report::profile`).
    pub(crate) fn into_profile(self, pc: u32) -> crate::BranchProfile {
        profile(pc, self)
    }
}

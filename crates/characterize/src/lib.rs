//! Streaming predictability characterization and the hard-to-predict
//! (H2P) branch taxonomy.
//!
//! The experiment harness reports *aggregate* misprediction rates; this
//! crate explains them. A [`Characterizer`] is an
//! [`EventSink`](predbranch_sim::EventSink) that consumes one decoded
//! event stream — live execution, trace replay, or the trace cache's
//! decoded-event memo — in a single batched pass and computes, per
//! static conditional branch:
//!
//! * **bias** — the taken-rate and its marginal Shannon entropy
//!   `H(taken)`;
//! * **history-conditioned entropy** — the residual entropy
//!   `H(taken | history)` at several global and local outcome-history
//!   depths ([`GLOBAL_DEPTHS`], [`LOCAL_DEPTHS`]), taking the best
//!   (lowest) depth the sample count can support;
//! * **predicate correlation** — the mutual information between the
//!   branch's direction and the fetch-visible predicate state: the
//!   guard's [`PredKnowledge`](predbranch_sim::PredKnowledge) under the
//!   same [`PredicateScoreboard`](predbranch_sim::PredicateScoreboard)
//!   plumbing SFPF uses, joined with a PGU-style delayed register of
//!   the last [`PRED_HISTORY_BITS`] predicate-definition outcomes;
//! * **a bucket** — every static branch is classified into exactly one
//!   of the four [`Bucket`]s by [`classify`].
//!
//! # Thresholds
//!
//! The taxonomy is only useful if its thresholds are stable and
//! documented, so they are public constants:
//!
//! | constant | value | meaning |
//! |---|---|---|
//! | [`BIAS_THRESHOLD`] | 0.95 | taken-rate (either direction) at or above which a branch is *biased* |
//! | [`PREDICTABLE_ENTROPY_BITS`] | 0.25 | residual conditional entropy at or below which a context *explains* a branch |
//! | [`SUPPORT_PER_CONTEXT`] | 8 | minimum average samples per observed context before an empirical conditional entropy is trusted |
//!
//! The support rule guards against the classic small-sample bias:
//! deep-history conditional entropy tends to zero as contexts
//! proliferate (every context seen once looks deterministic), which
//! would classify genuinely random branches as history-predictable.
//! A depth whose joint table fails the rule is ignored.
//!
//! # Classification order
//!
//! [`classify`] checks buckets in a fixed priority: *biased* first
//! (a static prediction suffices — no predictor mechanism earns credit
//! for these), then *history-predictable* (a conventional
//! history-indexed predictor like gshare already captures these), then
//! *predicate-predictable* (only fetch-visible predicate state explains
//! them — the branches SFPF and PGU exist for), else *fundamentally
//! hard*. The ordering is what makes the F17 join meaningful: a branch
//! both history- and predicate-correlated lands in the history bucket
//! because the baseline predictor needs no help there, so mechanism
//! wins concentrate where the taxonomy says they should.
//!
//! # Examples
//!
//! ```
//! use predbranch_characterize::{Bucket, Characterizer};
//! use predbranch_sim::{Executor, Memory};
//!
//! let program = predbranch_isa::assemble(
//!     "mov r1 = 0\nloop: cmp.lt p1, p2 = r1, 50\n (p1) add r1 = r1, 1\n (p1) br loop\n halt",
//! )
//! .unwrap();
//! let mut sink = Characterizer::new();
//! Executor::new(&program, Memory::new()).run(&mut sink, 10_000);
//! let report = sink.finish();
//! assert_eq!(report.branches().len(), 1);
//! assert_eq!(report.branches()[0].bucket, Bucket::Biased);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod characterizer;
mod report;

pub use characterizer::Characterizer;
pub use report::{classify, BranchProfile, Bucket, Characterization, HistoryKind};

/// Taken-rate (towards either direction) at or above which a branch is
/// [`Bucket::Biased`]: a static always-taken/never-taken prediction is
/// already at least 95% accurate, so no dynamic mechanism earns credit.
pub const BIAS_THRESHOLD: f64 = 0.95;

/// Residual conditional entropy, in bits, at or below which a context
/// is considered to *explain* a branch. 0.25 bits corresponds to a
/// conditional distribution more skewed than ~96/4 — the residual
/// surprise a two-bit counter per context absorbs easily.
pub const PREDICTABLE_ENTROPY_BITS: f64 = 0.25;

/// Minimum average observations per distinct observed context before an
/// empirical conditional entropy is trusted (see the crate docs on
/// small-sample bias).
pub const SUPPORT_PER_CONTEXT: u64 = 8;

/// Global outcome-history depths (bits of all-branches direction
/// history) at which `H(taken | history)` is measured.
pub const GLOBAL_DEPTHS: [usize; 3] = [2, 4, 8];

/// Local outcome-history depths (bits of this branch's own direction
/// history) at which `H(taken | history)` is measured.
pub const LOCAL_DEPTHS: [usize; 3] = [2, 4, 8];

/// Number of recent fetch-visible predicate-definition outcomes joined
/// into the predicate-correlation context (the PGU-style register).
pub const PRED_HISTORY_BITS: usize = 4;

/// Fetch slots between a predicate definition and its visibility to the
/// predicate-history register — the same commit-time delay the
/// realistic PGU configuration models (`PGU_DELAY` in the harness).
pub const PRED_VISIBILITY_DELAY: u64 = 8;

//! Finalized per-branch profiles, the H2P taxonomy, and rendering.

use std::collections::BTreeMap;
use std::fmt;

use predbranch_stats::{entropy_bits, Align, Cell, JointDistribution, Table};
use predbranch_sweep::Json;

use crate::characterizer::BranchState;
use crate::{
    BIAS_THRESHOLD, GLOBAL_DEPTHS, LOCAL_DEPTHS, PREDICTABLE_ENTROPY_BITS, SUPPORT_PER_CONTEXT,
};

/// The four-way hard-to-predict taxonomy. Every static conditional
/// branch is assigned exactly one bucket by [`classify`]; see the crate
/// docs for the ordering rationale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Bucket {
    /// Heavily skewed towards one direction (taken-rate ≥
    /// [`BIAS_THRESHOLD`] either way): a static prediction suffices.
    Biased,
    /// Some supported outcome-history depth drives the residual entropy
    /// to ≤ [`PREDICTABLE_ENTROPY_BITS`]: a conventional
    /// history-indexed predictor captures it.
    HistoryPredictable,
    /// Only the fetch-visible predicate state (guard knowledge +
    /// delayed predicate-outcome register) explains it — the branches
    /// SFPF and PGU exist for.
    PredicatePredictable,
    /// No measured context explains the branch.
    FundamentallyHard,
}

impl Bucket {
    /// All buckets, in classification (and reporting) order.
    pub const ALL: [Bucket; 4] = [
        Bucket::Biased,
        Bucket::HistoryPredictable,
        Bucket::PredicatePredictable,
        Bucket::FundamentallyHard,
    ];

    /// The stable text label used in tables, JSON, and goldens.
    pub fn label(&self) -> &'static str {
        match self {
            Bucket::Biased => "biased",
            Bucket::HistoryPredictable => "history-predictable",
            Bucket::PredicatePredictable => "predicate-predictable",
            Bucket::FundamentallyHard => "fundamentally-hard",
        }
    }
}

impl fmt::Display for Bucket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Which history register produced a branch's best residual entropy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HistoryKind {
    /// The all-branches global direction history.
    Global,
    /// The branch's own direction history.
    Local,
}

impl HistoryKind {
    fn letter(&self) -> char {
        match self {
            HistoryKind::Global => 'g',
            HistoryKind::Local => 'l',
        }
    }
}

/// The finished characterization of one static conditional branch.
#[derive(Debug, Clone, PartialEq)]
pub struct BranchProfile {
    /// Static pc of the branch.
    pub pc: u32,
    /// Whether any dynamic instance was a region-based branch.
    pub region: bool,
    /// Dynamic executions observed.
    pub executions: u64,
    /// Taken executions observed.
    pub taken: u64,
    /// The dominant-direction rate, `max(taken, not-taken) / total`.
    pub bias: f64,
    /// Marginal direction entropy `H(taken)`, bits.
    pub entropy: f64,
    /// Best *supported* history-conditioned residual entropy
    /// `H(taken | history)`, bits; equals [`BranchProfile::entropy`]
    /// when no depth passes the support rule.
    pub history_entropy: f64,
    /// The `(register, depth)` that produced
    /// [`BranchProfile::history_entropy`]; `None` when no depth was
    /// supported.
    pub history_context: Option<(HistoryKind, usize)>,
    /// Residual entropy under the fetch-visible predicate context,
    /// bits; equals the marginal when the predicate joint is
    /// unsupported.
    pub pred_entropy: f64,
    /// Mutual information between the predicate context and the branch
    /// direction, bits (`0.0` when unsupported).
    pub pred_mi: f64,
    /// The assigned taxonomy bucket.
    pub bucket: Bucket,
}

/// Assigns the bucket from the three finished metrics, in the
/// documented priority order (see the crate docs). Thresholds are
/// [`BIAS_THRESHOLD`] and [`PREDICTABLE_ENTROPY_BITS`].
pub fn classify(bias: f64, history_entropy: f64, pred_entropy: f64) -> Bucket {
    if bias >= BIAS_THRESHOLD {
        Bucket::Biased
    } else if history_entropy <= PREDICTABLE_ENTROPY_BITS {
        Bucket::HistoryPredictable
    } else if pred_entropy <= PREDICTABLE_ENTROPY_BITS {
        Bucket::PredicatePredictable
    } else {
        Bucket::FundamentallyHard
    }
}

/// The lowest supported conditional entropy across a set of joints,
/// with its identifying `(kind, depth)`.
fn best_supported(
    joints: &[JointDistribution],
    depths: &[usize],
    kind: HistoryKind,
) -> Option<(f64, (HistoryKind, usize))> {
    joints
        .iter()
        .zip(depths)
        .filter(|(joint, _)| joint.supported(SUPPORT_PER_CONTEXT))
        .map(|(joint, &depth)| (joint.conditional_entropy(), (kind, depth)))
        // strict `<` keeps the shallowest depth on ties — deterministic
        .fold(None, |best: Option<(f64, _)>, cand| match best {
            Some((b, _)) if cand.0 >= b => best,
            _ => Some(cand),
        })
}

/// Finalizes one branch's accumulated state into its profile.
pub(crate) fn profile(pc: u32, state: BranchState) -> BranchProfile {
    let not_taken = state.total - state.taken;
    let bias = if state.total == 0 {
        0.0
    } else {
        state.taken.max(not_taken) as f64 / state.total as f64
    };
    let entropy = entropy_bits(&[state.taken, not_taken]);

    let global = best_supported(&state.global_joints, &GLOBAL_DEPTHS, HistoryKind::Global);
    let local = best_supported(&state.local_joints, &LOCAL_DEPTHS, HistoryKind::Local);
    let (history_entropy, history_context) = match (global, local) {
        (Some((g, gc)), Some((l, lc))) => {
            // global wins ties: it is what gshare actually indexes with
            if g <= l {
                (g, Some(gc))
            } else {
                (l, Some(lc))
            }
        }
        (Some((g, gc)), None) => (g, Some(gc)),
        (None, Some((l, lc))) => (l, Some(lc)),
        (None, None) => (entropy, None),
    };

    let (pred_entropy, pred_mi) = if state.pred_joint.supported(SUPPORT_PER_CONTEXT) {
        (
            state.pred_joint.conditional_entropy(),
            state.pred_joint.mutual_information(),
        )
    } else {
        (entropy, 0.0)
    };

    let bucket = classify(bias, history_entropy, pred_entropy);
    BranchProfile {
        pc,
        region: state.region,
        executions: state.total,
        taken: state.taken,
        bias,
        entropy,
        history_entropy,
        history_context,
        pred_entropy,
        pred_mi,
        bucket,
    }
}

/// The full report for one event stream: every static conditional
/// branch's [`BranchProfile`], sorted by pc.
#[derive(Debug, Clone, PartialEq)]
pub struct Characterization {
    branches: Vec<BranchProfile>,
}

impl Characterization {
    pub(crate) fn from_states(states: BTreeMap<u32, BranchState>) -> Self {
        Characterization {
            branches: states
                .into_iter()
                .map(|(pc, state)| state.into_profile(pc))
                .collect(),
        }
    }

    /// Per-branch profiles, sorted by pc.
    pub fn branches(&self) -> &[BranchProfile] {
        &self.branches
    }

    /// The profile of one static branch, if it executed.
    pub fn at(&self, pc: u32) -> Option<&BranchProfile> {
        self.branches.iter().find(|b| b.pc == pc)
    }

    /// How many static branches landed in `bucket`.
    pub fn bucket_count(&self, bucket: Bucket) -> usize {
        self.branches.iter().filter(|b| b.bucket == bucket).count()
    }

    /// Total dynamic conditional branches observed.
    pub fn dynamic_branches(&self) -> u64 {
        self.branches.iter().map(|b| b.executions).sum()
    }

    /// The per-branch text table. Entropies are in bits; `hist` names
    /// the `(register, depth)` behind `H|hist` (`g4` = 4 bits of global
    /// history, `l2` = 2 bits of local), `-` when no depth passed the
    /// support rule.
    pub fn table(&self, title: impl Into<String>) -> Table {
        let mut table = Table::new(
            title,
            &[
                "pc", "execs", "taken%", "H", "H|hist", "hist", "H|pred", "predMI", "bucket",
            ],
        )
        .with_aligns(&[
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Left,
        ]);
        for b in &self.branches {
            let taken_pct = if b.executions == 0 {
                0.0
            } else {
                b.taken as f64 / b.executions as f64 * 100.0
            };
            table.row(vec![
                Cell::new(b.pc),
                Cell::count(b.executions),
                Cell::percent(taken_pct),
                Cell::float(b.entropy, 3),
                Cell::float(b.history_entropy, 3),
                Cell::new(match b.history_context {
                    Some((kind, depth)) => format!("{}{depth}", kind.letter()),
                    None => "-".to_string(),
                }),
                Cell::float(b.pred_entropy, 3),
                Cell::float(b.pred_mi, 3),
                Cell::new(b.bucket),
            ]);
        }
        table
    }

    /// One-line bucket summary, e.g.
    /// `7 statics: 3 biased, 2 history-predictable, ...`.
    pub fn summary(&self) -> String {
        let parts: Vec<String> = Bucket::ALL
            .iter()
            .map(|&b| format!("{} {}", self.bucket_count(b), b.label()))
            .collect();
        format!("{} statics: {}", self.branches.len(), parts.join(", "))
    }

    /// The ordered-JSON form (same module the sweep manifests use), with
    /// per-branch metrics and the bucket tally. Field order is fixed, so
    /// rendering is byte-deterministic.
    pub fn to_json(&self) -> Json {
        let branches: Vec<Json> = self
            .branches
            .iter()
            .map(|b| {
                Json::obj()
                    .field("pc", u64::from(b.pc))
                    .field("region", b.region)
                    .field("executions", b.executions)
                    .field("taken", b.taken)
                    .field("bias", b.bias)
                    .field("entropy", b.entropy)
                    .field("history_entropy", b.history_entropy)
                    .field(
                        "history_context",
                        match b.history_context {
                            Some((kind, depth)) => Json::Str(format!("{}{depth}", kind.letter())),
                            None => Json::Null,
                        },
                    )
                    .field("pred_entropy", b.pred_entropy)
                    .field("pred_mi", b.pred_mi)
                    .field("bucket", b.bucket.label())
            })
            .collect();
        let mut buckets = Json::obj();
        for b in Bucket::ALL {
            buckets = buckets.field(b.label(), self.bucket_count(b));
        }
        Json::obj()
            .field("statics", self.branches.len())
            .field("dynamic_branches", self.dynamic_branches())
            .field("buckets", buckets)
            .field("branches", Json::Arr(branches))
    }
}

//! Crafted event streams pinning each taxonomy bucket: streams built so
//! exactly one signal (bias, outcome history, fetch-visible predicate
//! state, or nothing) explains the branch, and the classifier must land
//! it in the matching bucket.

use predbranch_characterize::{Bucket, Characterizer, PRED_VISIBILITY_DELAY};
use predbranch_isa::PredReg;
use predbranch_sim::{BranchEvent, EventSink, PredWriteEvent, DEFAULT_RESOLVE_LATENCY};

fn p(i: u8) -> PredReg {
    PredReg::new(i).unwrap()
}

fn write(index: u64, value: bool) -> PredWriteEvent {
    PredWriteEvent {
        pc: 1,
        preg: p(1),
        value,
        index,
        guard: PredReg::TRUE,
        guard_value: true,
    }
}

fn branch(pc: u32, index: u64, taken: bool) -> BranchEvent {
    BranchEvent {
        pc,
        target: 0,
        guard: p(1),
        taken,
        conditional: true,
        region: Some(0),
        index,
    }
}

/// Deterministic pseudo-random bits with no short-period or linear
/// structure a history register could latch onto.
fn splitmix_bit(state: &mut u64) -> bool {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) & 1 == 1
}

/// Feeds `n` (define, branch) iterations where the branch outcome
/// equals the predicate value and the define→branch distance is
/// `gap` fetch slots.
fn run_pattern(n: u64, gap: u64, mut value_of: impl FnMut(u64) -> bool) -> Characterizer {
    let mut sink = Characterizer::new();
    for i in 0..n {
        let value = value_of(i);
        let base = i * 20;
        sink.pred_write(&write(base, value));
        sink.branch(&branch(7, base + gap, value));
    }
    sink
}

/// A gap large enough that both the scoreboard and the delayed
/// predicate-history register see the definition at the branch's fetch.
const RESOLVED_GAP: u64 = DEFAULT_RESOLVE_LATENCY + 2;

#[test]
fn always_taken_branch_is_biased() {
    let report = run_pattern(200, RESOLVED_GAP, |_| true).finish();
    let b = report.at(7).unwrap();
    assert_eq!(b.bucket, Bucket::Biased);
    assert_eq!(b.bias, 1.0);
    assert_eq!(b.entropy, 0.0);
    assert_eq!(b.executions, 200);
    assert_eq!(b.taken, 200);
    assert!(b.region);
}

#[test]
fn alternating_branch_is_history_predictable() {
    let report = run_pattern(512, RESOLVED_GAP, |i| i % 2 == 0).finish();
    let b = report.at(7).unwrap();
    // marginally a fair coin, fully explained by two history bits
    assert!(b.bias < 0.51, "{}", b.bias);
    assert!(b.entropy > 0.99, "{}", b.entropy);
    assert!(b.history_entropy < 0.05, "{}", b.history_entropy);
    assert!(b.history_context.is_some());
    assert_eq!(b.bucket, Bucket::HistoryPredictable);
}

#[test]
fn resolved_random_guard_is_predicate_predictable() {
    // outcome = a pseudo-random predicate resolved well before fetch:
    // history sees noise, the scoreboard sees the answer
    let mut state = 0x1234_5678u64;
    let report = run_pattern(4096, RESOLVED_GAP, |_| splitmix_bit(&mut state)).finish();
    let b = report.at(7).unwrap();
    assert!(b.bias < 0.55, "{}", b.bias);
    assert!(
        b.history_entropy > 0.8,
        "history latched: {}",
        b.history_entropy
    );
    assert!(b.pred_entropy < 0.01, "{}", b.pred_entropy);
    assert!(b.pred_mi > 0.9, "{}", b.pred_mi);
    assert_eq!(b.bucket, Bucket::PredicatePredictable);
}

#[test]
fn unresolved_random_guard_is_fundamentally_hard() {
    // same pseudo-random outcomes, but the define sits 2 slots before
    // the branch: in flight at fetch, so no front-end signal explains it
    let mut state = 0x9999_0001u64;
    const { assert!(2 < DEFAULT_RESOLVE_LATENCY && 2 < PRED_VISIBILITY_DELAY) };
    let report = run_pattern(4096, 2, |_| splitmix_bit(&mut state)).finish();
    let b = report.at(7).unwrap();
    assert!(b.bias < 0.55, "{}", b.bias);
    assert!(b.history_entropy > 0.8, "{}", b.history_entropy);
    assert!(b.pred_entropy > 0.8, "{}", b.pred_entropy);
    assert!(b.pred_mi < 0.1, "{}", b.pred_mi);
    assert_eq!(b.bucket, Bucket::FundamentallyHard);
}

#[test]
fn sparse_branch_falls_back_to_marginal_entropy() {
    // 4 executions cannot support any conditioned estimate: the
    // alternating pattern must NOT be called history-predictable
    let report = run_pattern(4, RESOLVED_GAP, |i| i % 2 == 0).finish();
    let b = report.at(7).unwrap();
    assert!(b.history_context.is_none());
    assert_eq!(b.history_entropy, b.entropy);
    assert_eq!(b.bucket, Bucket::FundamentallyHard);
}

#[test]
fn unconditional_branches_are_not_profiled() {
    let mut sink = Characterizer::new();
    sink.branch(&BranchEvent {
        pc: 3,
        target: 0,
        guard: PredReg::TRUE,
        taken: true,
        conditional: false,
        region: None,
        index: 0,
    });
    let report = sink.finish();
    assert!(report.branches().is_empty());
    assert_eq!(report.dynamic_branches(), 0);
}

#[test]
fn every_static_gets_exactly_one_bucket() {
    // four branches, one engineered per bucket, in one stream
    let mut sink = Characterizer::new();
    let mut state = 0xabcdu64;
    for i in 0..2048u64 {
        let base = i * 40;
        let noise = splitmix_bit(&mut state);
        sink.pred_write(&write(base, noise));
        // pc 10: always taken; pc 11: alternates; pc 12: equals the
        // resolved predicate; pc 13: fresh unresolved noise
        sink.branch(&branch(10, base + 11, true));
        sink.branch(&branch(11, base + 12, i % 2 == 0));
        sink.branch(&branch(12, base + 13, noise));
        let late = splitmix_bit(&mut state);
        sink.pred_write(&PredWriteEvent {
            pc: 2,
            preg: p(2),
            value: late,
            index: base + 14,
            guard: PredReg::TRUE,
            guard_value: true,
        });
        sink.branch(&BranchEvent {
            guard: p(2),
            ..branch(13, base + 16, late)
        });
    }
    let report = sink.finish();
    assert_eq!(report.branches().len(), 4);
    let total: usize = Bucket::ALL.iter().map(|&b| report.bucket_count(b)).sum();
    assert_eq!(total, 4, "every static in exactly one bucket");
    assert_eq!(report.at(10).unwrap().bucket, Bucket::Biased);
    assert_eq!(report.at(12).unwrap().bucket, Bucket::PredicatePredictable);
    assert_eq!(report.at(13).unwrap().bucket, Bucket::FundamentallyHard);
    assert_eq!(report.dynamic_branches(), 4 * 2048);
}

#[test]
fn rendering_is_deterministic_and_parseable() {
    let mut state = 7u64;
    let report = run_pattern(256, RESOLVED_GAP, |_| splitmix_bit(&mut state)).finish();
    let table = report.table("demo").to_string();
    let table2 = report.table("demo").to_string();
    assert_eq!(table, table2);
    assert!(table.contains("bucket"));
    let json = report.to_json();
    assert_eq!(json.render(), report.to_json().render());
    let parsed = predbranch_sweep::Json::parse(&json.render()).unwrap();
    assert_eq!(parsed.get("statics").unwrap().as_u64(), Some(1));
    assert_eq!(parsed.get("branches").unwrap().as_arr().unwrap().len(), 1);
    assert!(report.summary().contains("1 statics"));
}

#[test]
fn batched_delivery_matches_per_event() {
    use predbranch_sim::Event;
    let mut events = Vec::new();
    let mut state = 42u64;
    for i in 0..512u64 {
        let v = splitmix_bit(&mut state);
        events.push(Event::PredWrite(write(i * 20, v)));
        events.push(Event::Branch(branch(5, i * 20 + RESOLVED_GAP, v)));
    }
    let mut per_event = Characterizer::new();
    for e in &events {
        per_event.event(e);
    }
    let mut batched = Characterizer::new();
    for chunk in events.chunks(64) {
        batched.events(chunk);
    }
    assert_eq!(
        per_event.finish().to_json().render(),
        batched.finish().to_json().render()
    );
}

//! A structured-programming DSL for building CFGs.

use predbranch_isa::{AluOp, Gpr, Src};

use crate::cfg::{Block, BlockId, Cfg, Cond, MidOp, Terminator};
use crate::error::CompileError;

/// Incrementally builds a [`Cfg`] from structured control flow.
///
/// The builder maintains a "current block"; straight-line ops append to
/// it, and the structured constructs ([`CfgBuilder::if_then_else`],
/// [`CfgBuilder::while_loop`], ...) create the block diamonds and loops
/// that if-conversion later consumes. Because every construct is
/// single-entry/single-exit, the produced graphs are reducible.
///
/// # Examples
///
/// ```
/// use predbranch_compiler::{CfgBuilder, Cond};
/// use predbranch_isa::{CmpCond, Gpr, Src};
///
/// let i = Gpr::new(1).unwrap();
/// let mut b = CfgBuilder::new();
/// b.mov(i, Src::Imm(0));
/// b.while_loop(
///     |_| Cond::new(CmpCond::Lt, i, Src::Imm(100)),
///     |b| {
///         b.addi(i, i, 1);
///     },
/// );
/// b.halt();
/// let cfg = b.finish()?;
/// assert!(cfg.len() >= 4);
/// # Ok::<(), predbranch_compiler::CompileError>(())
/// ```
#[derive(Debug)]
pub struct CfgBuilder {
    blocks: Vec<Option<Block>>, // None = open (unterminated) block
    open_ops: Vec<Vec<MidOp>>,  // pending ops per open block
    current: BlockId,
    halted: bool,
}

impl Default for CfgBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl CfgBuilder {
    /// Creates a builder positioned in a fresh entry block.
    pub fn new() -> Self {
        CfgBuilder {
            blocks: vec![None],
            open_ops: vec![Vec::new()],
            current: BlockId(0),
            halted: false,
        }
    }

    fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(None);
        self.open_ops.push(Vec::new());
        id
    }

    fn terminate(&mut self, term: Terminator) {
        let idx = self.current.index();
        assert!(
            self.blocks[idx].is_none(),
            "block {} terminated twice",
            self.current
        );
        let ops = std::mem::take(&mut self.open_ops[idx]);
        self.blocks[idx] = Some(Block { ops, term });
    }

    fn switch_to(&mut self, block: BlockId) {
        self.current = block;
    }

    /// Appends an op to the current block.
    ///
    /// # Panics
    ///
    /// Panics if called after [`CfgBuilder::halt`] sealed the graph.
    pub fn op(&mut self, op: MidOp) {
        assert!(!self.halted, "builder already halted");
        self.open_ops[self.current.index()].push(op);
    }

    /// Appends `dst = src`.
    pub fn mov(&mut self, dst: Gpr, src: impl Into<Src>) {
        self.op(MidOp::Mov {
            dst,
            src: src.into(),
        });
    }

    /// Appends `dst = src1 <op> src2`.
    pub fn alu(&mut self, op: AluOp, dst: Gpr, src1: Gpr, src2: impl Into<Src>) {
        self.op(MidOp::Alu {
            op,
            dst,
            src1,
            src2: src2.into(),
        });
    }

    /// Appends `dst = src1 + imm`.
    pub fn addi(&mut self, dst: Gpr, src1: Gpr, imm: i32) {
        self.alu(AluOp::Add, dst, src1, Src::Imm(imm));
    }

    /// Appends `dst = mem[base + offset]`.
    pub fn load(&mut self, dst: Gpr, base: Gpr, offset: i32) {
        self.op(MidOp::Load { dst, base, offset });
    }

    /// Appends `mem[base + offset] = src`.
    pub fn store(&mut self, src: Gpr, base: Gpr, offset: i32) {
        self.op(MidOp::Store { src, base, offset });
    }

    /// Builds `if cond { then } else { else }` and continues in the join
    /// block.
    pub fn if_then_else(
        &mut self,
        cond: Cond,
        then_f: impl FnOnce(&mut Self),
        else_f: impl FnOnce(&mut Self),
    ) {
        assert!(!self.halted, "builder already halted");
        let then_bb = self.new_block();
        let else_bb = self.new_block();
        let join = self.new_block();
        self.terminate(Terminator::CondBr {
            cond,
            then_bb,
            else_bb,
        });
        self.switch_to(then_bb);
        then_f(self);
        if self.blocks[self.current.index()].is_none() {
            self.terminate(Terminator::Jump(join));
        }
        self.switch_to(else_bb);
        else_f(self);
        if self.blocks[self.current.index()].is_none() {
            self.terminate(Terminator::Jump(join));
        }
        self.switch_to(join);
    }

    /// Builds `if cond { then }` and continues in the join block.
    pub fn if_then(&mut self, cond: Cond, then_f: impl FnOnce(&mut Self)) {
        self.if_then_else(cond, then_f, |_| {});
    }

    /// Builds a `while` loop. `header_f` runs in the loop-header block
    /// (re-executed every iteration — loads/recomputations of the loop
    /// condition operands belong here) and returns the continue condition;
    /// `body_f` builds the loop body. Continues in the exit block.
    pub fn while_loop(
        &mut self,
        header_f: impl FnOnce(&mut Self) -> Cond,
        body_f: impl FnOnce(&mut Self),
    ) {
        assert!(!self.halted, "builder already halted");
        let header = self.new_block();
        let body = self.new_block();
        let exit = self.new_block();
        self.terminate(Terminator::Jump(header));
        self.switch_to(header);
        let cond = header_f(self);
        self.terminate(Terminator::CondBr {
            cond,
            then_bb: body,
            else_bb: exit,
        });
        self.switch_to(body);
        body_f(self);
        if self.blocks[self.current.index()].is_none() {
            self.terminate(Terminator::Jump(header));
        }
        self.switch_to(exit);
    }

    /// Builds a counted loop: `for reg in start..end { body }` with unit
    /// stride. The counter register must not be clobbered by the body.
    pub fn for_range(
        &mut self,
        counter: Gpr,
        start: impl Into<Src>,
        end: impl Into<Src>,
        body_f: impl FnOnce(&mut Self),
    ) {
        let end = end.into();
        self.mov(counter, start);
        self.while_loop(
            |_| Cond::new(predbranch_isa::CmpCond::Lt, counter, end),
            |b| {
                body_f(b);
                b.addi(counter, counter, 1);
            },
        );
    }

    /// Terminates the current block with `halt` and seals the builder.
    pub fn halt(&mut self) {
        assert!(!self.halted, "builder already halted");
        self.terminate(Terminator::Halt);
        self.halted = true;
    }

    /// Finishes construction and validates the graph.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::UnterminatedBlock`] if [`CfgBuilder::halt`]
    /// was never called (or a construct left an open block), otherwise any
    /// validation error from [`Cfg::from_blocks`].
    pub fn finish(self) -> Result<Cfg, CompileError> {
        let mut blocks = Vec::with_capacity(self.blocks.len());
        for (i, slot) in self.blocks.into_iter().enumerate() {
            match slot {
                Some(block) => blocks.push(block),
                None => {
                    return Err(CompileError::UnterminatedBlock {
                        block: BlockId(i as u32),
                    })
                }
            }
        }
        Cfg::from_blocks(blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predbranch_isa::CmpCond;

    fn r(i: u8) -> Gpr {
        Gpr::new(i).unwrap()
    }

    #[test]
    fn straight_line_program() {
        let mut b = CfgBuilder::new();
        b.mov(r(1), 5);
        b.addi(r(1), r(1), 2);
        b.halt();
        let cfg = b.finish().unwrap();
        assert_eq!(cfg.len(), 1);
        assert_eq!(cfg.block(Cfg::ENTRY).ops.len(), 2);
        assert_eq!(cfg.block(Cfg::ENTRY).term, Terminator::Halt);
    }

    #[test]
    fn if_then_else_builds_diamond() {
        let mut b = CfgBuilder::new();
        b.if_then_else(
            Cond::new(CmpCond::Eq, r(1), 0),
            |b| b.mov(r(2), 1),
            |b| b.mov(r(2), 2),
        );
        b.mov(r(3), 3);
        b.halt();
        let cfg = b.finish().unwrap();
        assert_eq!(cfg.len(), 4);
        let preds = cfg.predecessors();
        // the join block has two predecessors
        let join = cfg
            .block_ids()
            .find(|&id| preds[id.index()].len() == 2)
            .expect("join exists");
        assert_eq!(cfg.block(join).ops.len(), 1);
    }

    #[test]
    fn if_then_builds_triangle() {
        let mut b = CfgBuilder::new();
        b.if_then(Cond::new(CmpCond::Ne, r(1), 0), |b| b.mov(r(2), 1));
        b.halt();
        let cfg = b.finish().unwrap();
        assert_eq!(cfg.len(), 4); // entry, then, empty else, join
    }

    #[test]
    fn while_loop_builds_backedge() {
        let mut b = CfgBuilder::new();
        b.mov(r(1), 0);
        b.while_loop(
            |_| Cond::new(CmpCond::Lt, r(1), 10),
            |b| b.addi(r(1), r(1), 1),
        );
        b.halt();
        let cfg = b.finish().unwrap();
        // find the back edge: body → header
        let mut found = false;
        for (id, block) in cfg.iter() {
            for succ in block.term.successors() {
                if cfg.is_back_edge(id, succ) {
                    found = true;
                }
            }
        }
        assert!(found, "while loop must contain a back edge");
    }

    #[test]
    fn nested_constructs_compose() {
        let mut b = CfgBuilder::new();
        b.for_range(r(1), 0, 10, |b| {
            b.if_then_else(
                Cond::new(CmpCond::Eq, r(1), 5),
                |b| {
                    b.if_then(Cond::new(CmpCond::Gt, r(2), 0), |b| b.mov(r(3), 1));
                },
                |b| b.mov(r(3), 2),
            );
        });
        b.halt();
        let cfg = b.finish().unwrap();
        assert!(cfg.len() > 8);
        // every block reachable from entry must be terminated (finish
        // succeeded) and validation passed.
    }

    #[test]
    fn unterminated_builder_rejected() {
        let b = CfgBuilder::new();
        assert!(matches!(
            b.finish(),
            Err(CompileError::UnterminatedBlock { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "already halted")]
    fn ops_after_halt_rejected() {
        let mut b = CfgBuilder::new();
        b.halt();
        b.mov(r(1), 0);
    }

    #[test]
    fn entry_is_block_zero() {
        let mut b = CfgBuilder::new();
        b.mov(r(1), 1);
        b.halt();
        let cfg = b.finish().unwrap();
        assert_eq!(cfg.reverse_postorder()[0], Cfg::ENTRY);
    }
}

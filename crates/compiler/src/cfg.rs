//! The mid-level control-flow graph.

use std::fmt;

use predbranch_isa::{AluOp, CmpCond, Gpr, Src};

use crate::error::CompileError;

/// An index naming a basic block in a [`Cfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub(crate) u32);

impl BlockId {
    /// The block's index.
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// A straight-line (non-control) operation inside a basic block.
///
/// This is the unpredicated subset of the ISA: lowering attaches guard
/// predicates, so the mid-level form stays purely structural.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MidOp {
    /// `dst = src1 <op> src2`
    Alu {
        /// The operation.
        op: AluOp,
        /// Destination register.
        dst: Gpr,
        /// First source register.
        src1: Gpr,
        /// Second source operand.
        src2: Src,
    },
    /// `dst = src`
    Mov {
        /// Destination register.
        dst: Gpr,
        /// Source operand.
        src: Src,
    },
    /// `dst = mem[base + offset]`
    Load {
        /// Destination register.
        dst: Gpr,
        /// Base address register.
        base: Gpr,
        /// Word offset.
        offset: i32,
    },
    /// `mem[base + offset] = src`
    Store {
        /// Stored register.
        src: Gpr,
        /// Base address register.
        base: Gpr,
        /// Word offset.
        offset: i32,
    },
    /// No operation (placeholder / padding).
    Nop,
}

/// A branch condition: `src1 <cond> src2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cond {
    /// Relational condition.
    pub cond: CmpCond,
    /// First source register.
    pub src1: Gpr,
    /// Second source operand.
    pub src2: Src,
}

impl Cond {
    /// Creates a condition.
    pub fn new(cond: CmpCond, src1: Gpr, src2: impl Into<Src>) -> Self {
        Cond {
            cond,
            src1,
            src2: src2.into(),
        }
    }

    /// The condition testing the opposite outcome.
    pub fn negate(&self) -> Cond {
        Cond {
            cond: self.cond.negate(),
            ..*self
        }
    }

    /// Evaluates the condition given resolved operand values.
    pub fn eval(&self, src1: i64, src2: i64) -> bool {
        self.cond.eval(src1, src2)
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.src1, self.cond, self.src2)
    }
}

/// How a basic block ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way conditional branch: to `then_bb` when the condition holds,
    /// else to `else_bb`.
    CondBr {
        /// The branch condition.
        cond: Cond,
        /// Taken successor.
        then_bb: BlockId,
        /// Fall-through successor.
        else_bb: BlockId,
    },
    /// Program end.
    Halt,
}

impl Terminator {
    /// The block's successors, in `(then, else)` order for branches.
    pub fn successors(&self) -> impl Iterator<Item = BlockId> + '_ {
        let pair = match *self {
            Terminator::Jump(t) => [Some(t), None],
            Terminator::CondBr {
                then_bb, else_bb, ..
            } => [Some(then_bb), Some(else_bb)],
            Terminator::Halt => [None, None],
        };
        pair.into_iter().flatten()
    }
}

/// A basic block: straight-line ops plus a terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Straight-line operations.
    pub ops: Vec<MidOp>,
    /// How the block ends.
    pub term: Terminator,
}

impl Block {
    /// Number of ops plus one for the terminator — the block's size for
    /// if-conversion budgeting.
    pub fn weight(&self) -> usize {
        self.ops.len() + 1
    }
}

/// A control-flow graph with a designated entry block (`bb0`).
///
/// Construct one with [`crate::CfgBuilder`]; direct construction via
/// [`Cfg::from_blocks`] is available for tests and custom front-ends and
/// performs the same validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cfg {
    blocks: Vec<Block>,
}

impl Cfg {
    /// Entry block id (`bb0`).
    pub const ENTRY: BlockId = BlockId(0);

    /// Creates a validated CFG from raw blocks.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] if the graph is empty, an edge targets a
    /// missing block, or no `Halt` terminator exists.
    pub fn from_blocks(blocks: Vec<Block>) -> Result<Self, CompileError> {
        if blocks.is_empty() {
            return Err(CompileError::EmptyCfg);
        }
        let n = blocks.len() as u32;
        let mut has_halt = false;
        for (i, block) in blocks.iter().enumerate() {
            for succ in block.term.successors() {
                if succ.0 >= n {
                    return Err(CompileError::DanglingEdge {
                        from: BlockId(i as u32),
                        to: succ,
                    });
                }
            }
            if block.term == Terminator::Halt {
                has_halt = true;
            }
        }
        if !has_halt {
            return Err(CompileError::NoHalt);
        }
        Ok(Cfg { blocks })
    }

    /// Number of blocks.
    #[allow(clippy::len_without_is_empty)] // validated CFGs are never empty
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// The block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (ids from this CFG never are).
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Iterates over `(id, block)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// All block ids.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Predecessor lists, indexed by block.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (id, block) in self.iter() {
            for succ in block.term.successors() {
                preds[succ.index()].push(id);
            }
        }
        preds
    }

    /// Reverse postorder over blocks reachable from the entry.
    ///
    /// For the reducible graphs the builder produces, an edge `a → b` with
    /// `rpo_position[b] <= rpo_position[a]` is a (loop) back edge.
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let mut visited = vec![false; self.blocks.len()];
        let mut postorder = Vec::with_capacity(self.blocks.len());
        // Iterative DFS storing (block, next-successor-index).
        let mut stack: Vec<(BlockId, usize)> = vec![(Self::ENTRY, 0)];
        visited[Self::ENTRY.index()] = true;
        while let Some(&(id, next)) = stack.last() {
            let succs: Vec<BlockId> = self.block(id).term.successors().collect();
            if next < succs.len() {
                stack.last_mut().expect("stack is non-empty").1 += 1;
                let s = succs[next];
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                postorder.push(id);
                stack.pop();
            }
        }
        postorder.reverse();
        postorder
    }

    /// Positions of each block in reverse postorder (`usize::MAX` for
    /// unreachable blocks).
    pub fn rpo_positions(&self) -> Vec<usize> {
        let mut pos = vec![usize::MAX; self.blocks.len()];
        for (i, id) in self.reverse_postorder().into_iter().enumerate() {
            pos[id.index()] = i;
        }
        pos
    }

    /// Whether edge `from → to` is a back edge (loop edge) with respect to
    /// the reverse postorder.
    pub fn is_back_edge(&self, from: BlockId, to: BlockId) -> bool {
        let pos = self.rpo_positions();
        pos[to.index()] != usize::MAX
            && pos[from.index()] != usize::MAX
            && pos[to.index()] <= pos[from.index()]
    }
}

impl fmt::Display for Cfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (id, block) in self.iter() {
            writeln!(f, "{id}:")?;
            for op in &block.ops {
                writeln!(f, "    {op:?}")?;
            }
            match &block.term {
                Terminator::Jump(t) => writeln!(f, "    jump {t}")?,
                Terminator::CondBr {
                    cond,
                    then_bb,
                    else_bb,
                } => writeln!(f, "    if {cond} then {then_bb} else {else_bb}")?,
                Terminator::Halt => writeln!(f, "    halt")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> Gpr {
        Gpr::new(i).unwrap()
    }

    fn halt_block() -> Block {
        Block {
            ops: vec![],
            term: Terminator::Halt,
        }
    }

    /// entry → (then: bb1 | else: bb2) → bb3(halt)
    fn diamond() -> Cfg {
        Cfg::from_blocks(vec![
            Block {
                ops: vec![MidOp::Mov {
                    dst: r(1),
                    src: Src::Imm(1),
                }],
                term: Terminator::CondBr {
                    cond: Cond::new(CmpCond::Gt, r(1), 0),
                    then_bb: BlockId(1),
                    else_bb: BlockId(2),
                },
            },
            Block {
                ops: vec![MidOp::Nop],
                term: Terminator::Jump(BlockId(3)),
            },
            Block {
                ops: vec![MidOp::Nop],
                term: Terminator::Jump(BlockId(3)),
            },
            halt_block(),
        ])
        .unwrap()
    }

    #[test]
    fn empty_cfg_rejected() {
        assert!(matches!(
            Cfg::from_blocks(vec![]),
            Err(CompileError::EmptyCfg)
        ));
    }

    #[test]
    fn dangling_edge_rejected() {
        let err = Cfg::from_blocks(vec![Block {
            ops: vec![],
            term: Terminator::Jump(BlockId(7)),
        }])
        .unwrap_err();
        assert!(matches!(err, CompileError::DanglingEdge { .. }));
    }

    #[test]
    fn missing_halt_rejected() {
        let err = Cfg::from_blocks(vec![Block {
            ops: vec![],
            term: Terminator::Jump(BlockId(0)),
        }])
        .unwrap_err();
        assert!(matches!(err, CompileError::NoHalt));
    }

    #[test]
    fn successors_per_terminator() {
        let cfg = diamond();
        let entry_succs: Vec<_> = cfg.block(Cfg::ENTRY).term.successors().collect();
        assert_eq!(entry_succs, vec![BlockId(1), BlockId(2)]);
        assert_eq!(cfg.block(BlockId(3)).term.successors().count(), 0);
    }

    #[test]
    fn predecessors_inverted_correctly() {
        let cfg = diamond();
        let preds = cfg.predecessors();
        assert_eq!(preds[0], vec![]);
        assert_eq!(preds[1], vec![BlockId(0)]);
        assert_eq!(preds[2], vec![BlockId(0)]);
        assert_eq!(preds[3], vec![BlockId(1), BlockId(2)]);
    }

    #[test]
    fn rpo_starts_at_entry_and_respects_topology() {
        let cfg = diamond();
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo[0], Cfg::ENTRY);
        let pos = cfg.rpo_positions();
        // join comes after both arms
        assert!(pos[3] > pos[1]);
        assert!(pos[3] > pos[2]);
    }

    #[test]
    fn back_edge_detection_on_loop() {
        // bb0 → bb1; bb1 → bb1 (self loop) | bb2(halt)
        let cfg = Cfg::from_blocks(vec![
            Block {
                ops: vec![],
                term: Terminator::Jump(BlockId(1)),
            },
            Block {
                ops: vec![],
                term: Terminator::CondBr {
                    cond: Cond::new(CmpCond::Lt, r(1), 10),
                    then_bb: BlockId(1),
                    else_bb: BlockId(2),
                },
            },
            halt_block(),
        ])
        .unwrap();
        assert!(cfg.is_back_edge(BlockId(1), BlockId(1)));
        assert!(!cfg.is_back_edge(BlockId(0), BlockId(1)));
        assert!(!cfg.is_back_edge(BlockId(1), BlockId(2)));
    }

    #[test]
    fn unreachable_blocks_excluded_from_rpo() {
        let cfg = Cfg::from_blocks(vec![
            halt_block(),
            Block {
                ops: vec![],
                term: Terminator::Jump(BlockId(0)),
            },
        ])
        .unwrap();
        assert_eq!(cfg.reverse_postorder(), vec![BlockId(0)]);
        assert_eq!(cfg.rpo_positions()[1], usize::MAX);
    }

    #[test]
    fn cond_negate_flips_eval() {
        let c = Cond::new(CmpCond::Le, r(1), 5);
        assert!(c.eval(5, 5));
        assert!(!c.negate().eval(5, 5));
        assert!(c.negate().eval(6, 5));
    }

    #[test]
    fn block_weight_counts_terminator() {
        assert_eq!(halt_block().weight(), 1);
        let b = Block {
            ops: vec![MidOp::Nop, MidOp::Nop],
            term: Terminator::Halt,
        };
        assert_eq!(b.weight(), 3);
    }

    #[test]
    fn display_dumps_structure() {
        let text = diamond().to_string();
        assert!(text.contains("bb0:"));
        assert!(text.contains("if r1 gt 0 then bb1 else bb2"));
        assert!(text.contains("halt"));
    }
}

//! Dominator analysis (Cooper–Harvey–Kennedy).

use crate::cfg::{BlockId, Cfg};

/// The dominator tree of a [`Cfg`].
///
/// Computed with the Cooper–Harvey–Kennedy iterative algorithm over
/// reverse postorder. Unreachable blocks have no dominator information
/// and report `false`/`None` from every query.
///
/// The if-converter uses this to assert its invariant that a region seed
/// dominates every block placed in the region.
///
/// # Examples
///
/// ```
/// use predbranch_compiler::{CfgBuilder, Cond, Dominators, Cfg};
/// use predbranch_isa::{CmpCond, Gpr};
///
/// let mut b = CfgBuilder::new();
/// b.if_then(Cond::new(CmpCond::Eq, Gpr::new(1).unwrap(), 0), |_| {});
/// b.halt();
/// let cfg = b.finish().unwrap();
/// let dom = Dominators::compute(&cfg);
/// for id in cfg.block_ids() {
///     assert!(dom.dominates(Cfg::ENTRY, id));
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dominators {
    /// Immediate dominator per block; `idom[entry] == entry`; `None` for
    /// unreachable blocks.
    idom: Vec<Option<BlockId>>,
}

impl Dominators {
    /// Computes the dominator tree of `cfg`.
    pub fn compute(cfg: &Cfg) -> Self {
        let rpo = cfg.reverse_postorder();
        let pos = cfg.rpo_positions();
        let preds = cfg.predecessors();
        let mut idom: Vec<Option<BlockId>> = vec![None; cfg.len()];
        idom[Cfg::ENTRY.index()] = Some(Cfg::ENTRY);

        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| {
            while a != b {
                while pos[a.index()] > pos[b.index()] {
                    a = idom[a.index()].expect("processed block has idom");
                }
                while pos[b.index()] > pos[a.index()] {
                    b = idom[b.index()].expect("processed block has idom");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.index()] {
                    if idom[p.index()].is_none() {
                        continue; // unprocessed or unreachable predecessor
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if new_idom.is_some() && idom[b.index()] != new_idom {
                    idom[b.index()] = new_idom;
                    changed = true;
                }
            }
        }
        Dominators { idom }
    }

    /// The immediate dominator of `block` (`entry` for the entry block),
    /// or `None` if the block is unreachable.
    pub fn idom(&self, block: BlockId) -> Option<BlockId> {
        self.idom.get(block.index()).copied().flatten()
    }

    /// Whether `a` dominates `b` (reflexively).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }

    /// Whether `a` strictly dominates `b`.
    pub fn strictly_dominates(&self, a: BlockId, b: BlockId) -> bool {
        a != b && self.dominates(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CfgBuilder;
    use crate::cfg::Cond;
    use predbranch_isa::{CmpCond, Gpr};

    fn r(i: u8) -> Gpr {
        Gpr::new(i).unwrap()
    }

    fn diamond_cfg() -> Cfg {
        let mut b = CfgBuilder::new();
        b.if_then_else(Cond::new(CmpCond::Eq, r(1), 0), |_| {}, |_| {});
        b.halt();
        b.finish().unwrap()
    }

    #[test]
    fn entry_dominates_everything() {
        let cfg = diamond_cfg();
        let dom = Dominators::compute(&cfg);
        for id in cfg.block_ids() {
            assert!(dom.dominates(Cfg::ENTRY, id), "entry must dominate {id}");
        }
    }

    #[test]
    fn entry_idom_is_itself() {
        let dom = Dominators::compute(&diamond_cfg());
        assert_eq!(dom.idom(Cfg::ENTRY), Some(Cfg::ENTRY));
    }

    #[test]
    fn diamond_join_dominated_by_branch_not_arms() {
        let cfg = diamond_cfg();
        let dom = Dominators::compute(&cfg);
        let preds = cfg.predecessors();
        let join = cfg
            .block_ids()
            .find(|&id| preds[id.index()].len() == 2)
            .unwrap();
        assert_eq!(dom.idom(join), Some(Cfg::ENTRY));
        for &arm in &preds[join.index()] {
            assert!(!dom.dominates(arm, join), "{arm} must not dominate join");
            assert!(dom.dominates(Cfg::ENTRY, arm));
        }
    }

    #[test]
    fn loop_header_dominates_body() {
        let mut b = CfgBuilder::new();
        b.mov(r(1), 0);
        b.while_loop(
            |_| Cond::new(CmpCond::Lt, r(1), 10),
            |b| b.addi(r(1), r(1), 1),
        );
        b.halt();
        let cfg = b.finish().unwrap();
        let dom = Dominators::compute(&cfg);
        // find header (target of a back edge) and body (its source)
        let mut pair = None;
        for (id, block) in cfg.iter() {
            for succ in block.term.successors() {
                if cfg.is_back_edge(id, succ) {
                    pair = Some((succ, id));
                }
            }
        }
        let (header, body) = pair.expect("loop exists");
        assert!(dom.strictly_dominates(header, body));
    }

    #[test]
    fn unreachable_blocks_have_no_idom() {
        use crate::cfg::{Block, Terminator};
        let cfg = Cfg::from_blocks(vec![
            Block {
                ops: vec![],
                term: Terminator::Halt,
            },
            Block {
                ops: vec![],
                term: Terminator::Jump(BlockId(0)),
            },
        ])
        .unwrap();
        let dom = Dominators::compute(&cfg);
        assert_eq!(dom.idom(BlockId(1)), None);
        assert!(!dom.dominates(BlockId(1), BlockId(0)));
        assert!(!dom.dominates(BlockId(0), BlockId(1)));
    }

    #[test]
    fn dominance_is_reflexive_and_antisymmetric_on_distinct_chain() {
        let cfg = diamond_cfg();
        let dom = Dominators::compute(&cfg);
        for id in cfg.block_ids() {
            assert!(dom.dominates(id, id));
        }
        assert!(!dom.strictly_dominates(Cfg::ENTRY, Cfg::ENTRY));
    }
}

//! Compiler error type.

use std::error::Error;
use std::fmt;

use predbranch_isa::ProgramError;

use crate::cfg::BlockId;

/// Why compilation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The CFG has no blocks.
    EmptyCfg,
    /// An edge targets a block id that does not exist.
    DanglingEdge {
        /// Source block.
        from: BlockId,
        /// Missing target block.
        to: BlockId,
    },
    /// The CFG contains no `Halt` terminator.
    NoHalt,
    /// The builder was finished while control constructs were still open,
    /// or the current block was left unterminated.
    UnterminatedBlock {
        /// The offending block.
        block: BlockId,
    },
    /// If-conversion ran out of predicate registers for a region; the
    /// region limits in [`crate::IfConvertConfig`] are too generous.
    OutOfPredicates {
        /// Seed block of the region that overflowed.
        region_seed: BlockId,
    },
    /// The produced program failed ISA-level validation (internal error).
    InvalidProgram(ProgramError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::EmptyCfg => f.write_str("control-flow graph is empty"),
            CompileError::DanglingEdge { from, to } => {
                write!(f, "edge from {from} targets missing block {to}")
            }
            CompileError::NoHalt => f.write_str("control-flow graph has no halt"),
            CompileError::UnterminatedBlock { block } => {
                write!(f, "block {block} was never terminated")
            }
            CompileError::OutOfPredicates { region_seed } => write!(
                f,
                "region seeded at {region_seed} needs more predicate registers than exist"
            ),
            CompileError::InvalidProgram(e) => write!(f, "generated invalid program: {e}"),
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::InvalidProgram(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProgramError> for CompileError {
    fn from(e: ProgramError) -> Self {
        CompileError::InvalidProgram(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_key_fields() {
        let e = CompileError::DanglingEdge {
            from: BlockId(1),
            to: BlockId(9),
        };
        assert!(e.to_string().contains("bb1"));
        assert!(e.to_string().contains("bb9"));
        assert!(CompileError::OutOfPredicates {
            region_seed: BlockId(3)
        }
        .to_string()
        .contains("bb3"));
    }

    #[test]
    fn program_error_converts_and_chains() {
        let e: CompileError = ProgramError::Empty.into();
        assert!(matches!(e, CompileError::InvalidProgram(_)));
        assert!(e.source().is_some());
    }
}

//! If-conversion: hyperblock-style region formation and predication.
//!
//! This pass reproduces the compiler context the paper assumes: an
//! IMPACT-style if-converter that selects single-entry acyclic regions of
//! the CFG, replaces the control flow *inside* each region with
//! compare-to-predicate instructions and guarded execution, and leaves the
//! remaining control transfers as **region-based branches**:
//!
//! * *kept branches* — side exits for strongly biased branches whose
//!   unlikely path is not worth predicating,
//! * *split branches* — both targets leave the region,
//! * *leaf exits* — guarded branches at the region end steering control
//!   to the correct successor of each predicated path (including loop
//!   back edges, which make a whole loop body one re-entered hyperblock).
//!
//! Region selection is profile-guided: a branch is converted (both paths
//! predicated) when its bias is below [`IfConvertConfig::convert_bias_below`],
//! and kept as a region-based branch otherwise — hard-to-predict branches
//! get predicated away, exactly the trade the paper's introduction
//! describes.
//!
//! Predicate assignment follows the Park–Schlansker scheme using the
//! IA-64 compare types: single-predecessor blocks get their predicate from
//! an `unc`-type compare at the predecessor's terminator (which also
//! clears the predicate when the predecessor itself was predicated off),
//! and merge blocks accumulate their predicate through `or`-type compares
//! after an explicit initialization to false at the region top.

use std::collections::{HashMap, HashSet, VecDeque};

use predbranch_isa::{CmpType, Inst, Op, PredReg, Program};

use crate::cfg::{BlockId, Cfg, Cond, Terminator};
use crate::dom::Dominators;
use crate::error::CompileError;
use crate::linearize::{always_false, always_true, cmp_inst, lower_op, sink, Emitter, PredPool};
use crate::profile::CfgProfile;

/// Tuning knobs for region formation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IfConvertConfig {
    /// Maximum number of blocks per region.
    pub max_region_blocks: usize,
    /// Maximum total weight (ops + terminators) per region.
    pub max_region_weight: usize,
    /// Convert a branch (predicate both paths) when its profiled bias is
    /// below this threshold; keep it as a region-based branch otherwise.
    pub convert_bias_below: f64,
    /// Bias assumed for branches with no profile information.
    pub unknown_bias: f64,
}

impl Default for IfConvertConfig {
    fn default() -> Self {
        IfConvertConfig {
            max_region_blocks: 16,
            max_region_weight: 96,
            convert_bias_below: 0.85,
            unknown_bias: 0.5,
        }
    }
}

/// Metadata about one formed region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionInfo {
    /// The region id stamped on its region-based branches.
    pub id: u16,
    /// The region's entry block.
    pub seed: BlockId,
    /// Member blocks, in topological (emission) order.
    pub blocks: Vec<BlockId>,
    /// Conditional branches eliminated by predication.
    pub converted_branches: u32,
    /// Conditional region-based branches left in the region (kept side
    /// exits, split exits, and guarded leaf exits).
    pub kept_branches: u32,
}

/// Aggregate if-conversion statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IfConvStats {
    /// Regions accepted.
    pub regions_formed: u32,
    /// Regions grown but discarded (no branch converted, or predicate
    /// pool exceeded).
    pub regions_dropped: u32,
    /// Conditional branches removed by predication.
    pub branches_converted: u32,
    /// Conditional region-based branches emitted.
    pub branches_kept: u32,
    /// Blocks executing under a non-trivial guard predicate.
    pub blocks_predicated: u32,
}

/// The output of [`if_convert`].
#[derive(Debug, Clone, PartialEq)]
pub struct IfConvResult {
    /// The predicated program.
    pub program: Program,
    /// Per-region metadata, indexed by region id.
    pub regions: Vec<RegionInfo>,
    /// Aggregate statistics.
    pub stats: IfConvStats,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EdgeKind {
    Jump,
    CondThen,
    CondElse,
}

/// A fully planned region: membership plus predicate assignment.
#[derive(Debug)]
struct PlannedRegion {
    id: u16,
    seed: BlockId,
    members: Vec<BlockId>, // topological order
    member_set: HashSet<BlockId>,
    pred_of: HashMap<BlockId, PredReg>,
    or_acc: HashSet<BlockId>,
    keep_pred: HashMap<BlockId, PredReg>,
    split_preds: HashMap<BlockId, (PredReg, PredReg)>,
    converted: u32,
}

/// If-converts a CFG into a predicated program with region-based branches.
///
/// `profile` supplies branch biases from [`crate::profile_cfg`]; without
/// it every branch is assumed to have [`IfConvertConfig::unknown_bias`]
/// (so, with the default configuration, everything eligible converts).
///
/// # Errors
///
/// Returns [`CompileError`] if the produced program fails ISA validation
/// (internal invariant; propagated for robustness).
///
/// # Examples
///
/// See the crate-level example.
pub fn if_convert(
    cfg: &Cfg,
    profile: Option<&CfgProfile>,
    config: &IfConvertConfig,
) -> Result<IfConvResult, CompileError> {
    let rpo = cfg.reverse_postorder();
    let pos = cfg.rpo_positions();
    let preds = cfg.predecessors();
    let dom = Dominators::compute(cfg);
    let mut stats = IfConvStats::default();

    // --- Region formation -------------------------------------------------
    let mut region_of: Vec<Option<usize>> = vec![None; cfg.len()];
    let mut planned: Vec<PlannedRegion> = Vec::new();

    for &seed in &rpo {
        if region_of[seed.index()].is_some() {
            continue;
        }
        let members = grow_region(cfg, profile, config, seed, &pos, &preds, &region_of);
        if members.len() < 2 {
            continue;
        }
        let id = planned.len() as u16;
        match plan_region(cfg, id, seed, &members, &pos) {
            Some(plan) if plan.converted > 0 => {
                debug_assert!(
                    plan.members.iter().all(|&b| dom.dominates(seed, b)),
                    "region seed must dominate all members"
                );
                for &b in &plan.members {
                    region_of[b.index()] = Some(planned.len());
                }
                planned.push(plan);
            }
            _ => stats.regions_dropped += 1,
        }
    }

    // --- Emission ----------------------------------------------------------
    #[derive(Clone, Copy)]
    enum Unit {
        Plain(BlockId),
        Region(usize),
    }
    let mut units: Vec<Unit> = Vec::new();
    for &b in &rpo {
        match region_of[b.index()] {
            Some(r) if planned[r].seed == b => units.push(Unit::Region(r)),
            Some(_) => {}
            None => units.push(Unit::Plain(b)),
        }
    }
    let head_of = |u: &Unit| match *u {
        Unit::Plain(b) => b,
        Unit::Region(r) => planned[r].seed,
    };

    let mut emitter = Emitter::new();
    let mut plain_pool = PredPool::new();
    let mut regions: Vec<RegionInfo> = Vec::new();

    for (i, unit) in units.iter().enumerate() {
        let next_head = units.get(i + 1).map(&head_of);
        match *unit {
            Unit::Plain(b) => {
                emit_plain_block(cfg, b, next_head, &mut emitter, &mut plain_pool);
            }
            Unit::Region(r) => {
                let info = emit_region(cfg, &planned[r], next_head, &mut emitter);
                stats.regions_formed += 1;
                stats.branches_converted += info.converted_branches;
                stats.branches_kept += info.kept_branches;
                stats.blocks_predicated += planned[r]
                    .members
                    .iter()
                    .filter(|&&b| !planned[r].pred_of[&b].is_always_true())
                    .count() as u32;
                regions.push(info);
            }
        }
    }

    Ok(IfConvResult {
        program: emitter.finish()?,
        regions,
        stats,
    })
}

/// Grows a region from `seed` by greedy forward inclusion.
fn grow_region(
    cfg: &Cfg,
    profile: Option<&CfgProfile>,
    config: &IfConvertConfig,
    seed: BlockId,
    pos: &[usize],
    preds: &[Vec<BlockId>],
    region_of: &[Option<usize>],
) -> Vec<BlockId> {
    if pos[seed.index()] == usize::MAX {
        return Vec::new(); // unreachable
    }
    let mut member_set: HashSet<BlockId> = HashSet::new();
    let mut members = vec![seed];
    member_set.insert(seed);
    let mut weight = cfg.block(seed).weight();
    let mut queue: VecDeque<BlockId> = VecDeque::new();
    queue.push_back(seed);

    while let Some(x) = queue.pop_front() {
        let block = cfg.block(x);
        let candidates: Vec<BlockId> = match block.term {
            Terminator::Halt => vec![],
            Terminator::Jump(t) => vec![t],
            Terminator::CondBr {
                then_bb, else_bb, ..
            } => {
                let taken_frac = profile.and_then(|p| p.taken_fraction(x));
                let bias = match taken_frac {
                    Some(p) => p.max(1.0 - p),
                    None if profile.is_some() => 1.0, // never executed: don't predicate
                    None => config.unknown_bias,
                };
                if bias < config.convert_bias_below {
                    vec![then_bb, else_bb]
                } else {
                    // grow through the likely side only
                    match taken_frac {
                        Some(p) if p >= 0.5 => vec![then_bb],
                        _ => vec![else_bb],
                    }
                }
            }
        };
        for s in candidates {
            if member_set.contains(&s)
                || s == Cfg::ENTRY
                || pos[s.index()] == usize::MAX
                || pos[s.index()] <= pos[x.index()] // back edge
                || region_of[s.index()].is_some()
                || members.len() >= config.max_region_blocks
                || weight + cfg.block(s).weight() > config.max_region_weight
                || !preds[s.index()].iter().all(|p| member_set.contains(p))
            {
                continue;
            }
            member_set.insert(s);
            members.push(s);
            weight += cfg.block(s).weight();
            queue.push_back(s);
        }
    }
    members.sort_by_key(|b| pos[b.index()]);
    members
}

/// Computes predicate assignment for a region; `None` if the predicate
/// pool would overflow.
fn plan_region(
    cfg: &Cfg,
    id: u16,
    seed: BlockId,
    members: &[BlockId],
    pos: &[usize],
) -> Option<PlannedRegion> {
    let member_set: HashSet<BlockId> = members.iter().copied().collect();
    let mut in_edges: HashMap<BlockId, Vec<(BlockId, EdgeKind)>> = HashMap::new();
    let mut converted = 0u32;

    for &x in members {
        match cfg.block(x).term {
            Terminator::Halt => {}
            Terminator::Jump(t) => {
                if member_set.contains(&t) && t != seed {
                    in_edges.entry(t).or_default().push((x, EdgeKind::Jump));
                }
            }
            Terminator::CondBr {
                then_bb, else_bb, ..
            } => {
                let t_in = member_set.contains(&then_bb) && then_bb != seed;
                let e_in = member_set.contains(&else_bb) && else_bb != seed;
                if t_in {
                    in_edges
                        .entry(then_bb)
                        .or_default()
                        .push((x, EdgeKind::CondThen));
                }
                if e_in {
                    in_edges
                        .entry(else_bb)
                        .or_default()
                        .push((x, EdgeKind::CondElse));
                }
                if t_in && e_in {
                    converted += 1;
                }
            }
        }
    }

    let mut pool = PredPool::new();
    let mut pred_of: HashMap<BlockId, PredReg> = HashMap::new();
    let mut or_acc: HashSet<BlockId> = HashSet::new();
    pred_of.insert(seed, PredReg::TRUE);

    debug_assert!(members
        .windows(2)
        .all(|w| pos[w[0].index()] < pos[w[1].index()]));
    for &x in members.iter().filter(|&&b| b != seed) {
        let edges = in_edges.get(&x).map(Vec::as_slice).unwrap_or(&[]);
        debug_assert!(!edges.is_empty(), "non-seed member {x} has an in-edge");
        if edges.len() == 1 && edges[0].1 == EdgeKind::Jump {
            // alias: control flows straight from the predecessor
            let p = *pred_of.get(&edges[0].0).expect("topo order resolves preds");
            pred_of.insert(x, p);
        } else {
            pred_of.insert(x, pool.alloc_checked()?);
            if edges.len() > 1 {
                or_acc.insert(x);
            }
        }
    }

    let mut keep_pred: HashMap<BlockId, PredReg> = HashMap::new();
    let mut split_preds: HashMap<BlockId, (PredReg, PredReg)> = HashMap::new();
    for &x in members {
        if let Terminator::CondBr {
            then_bb, else_bb, ..
        } = cfg.block(x).term
        {
            let t_in = member_set.contains(&then_bb) && then_bb != seed;
            let e_in = member_set.contains(&else_bb) && else_bb != seed;
            match (t_in, e_in) {
                (true, true) => {}
                (true, false) | (false, true) => {
                    keep_pred.insert(x, pool.alloc_checked()?);
                }
                (false, false) => {
                    split_preds.insert(x, (pool.alloc_checked()?, pool.alloc_checked()?));
                }
            }
        }
    }

    Some(PlannedRegion {
        id,
        seed,
        members: members.to_vec(),
        member_set,
        pred_of,
        or_acc,
        keep_pred,
        split_preds,
        converted,
    })
}

/// Emits one plain (unpredicated) block.
fn emit_plain_block(
    cfg: &Cfg,
    b: BlockId,
    next_head: Option<BlockId>,
    emitter: &mut Emitter,
    pool: &mut PredPool,
) {
    emitter.bind(b);
    let block = cfg.block(b);
    for op in &block.ops {
        emitter.push(lower_op(PredReg::TRUE, op));
    }
    match block.term {
        Terminator::Halt => emitter.push(Inst::new(Op::Halt)),
        Terminator::Jump(t) => {
            if next_head != Some(t) {
                emitter.push_branch(PredReg::TRUE, t, None);
            }
        }
        Terminator::CondBr {
            ref cond,
            then_bb,
            else_bb,
        } => {
            let p_taken = pool.alloc_rotating();
            emitter.push(cmp_inst(
                PredReg::TRUE,
                CmpType::Norm,
                cond,
                p_taken,
                sink(),
            ));
            emitter.push_branch(p_taken, then_bb, None);
            if next_head != Some(else_bb) {
                emitter.push_branch(PredReg::TRUE, else_bb, None);
            }
        }
    }
}

/// Emits one planned region and returns its metadata.
fn emit_region(
    cfg: &Cfg,
    plan: &PlannedRegion,
    next_head: Option<BlockId>,
    emitter: &mut Emitter,
) -> RegionInfo {
    let region = Some(plan.id);
    let mut kept = 0u32;
    let mut leaf_exits: Vec<(PredReg, BlockId)> = Vec::new();

    emitter.bind(plan.seed);

    // Initialize or-accumulated predicates to false at the region top
    // (re-executed on every region entry, including loop back edges).
    for &x in plan.members.iter().filter(|b| plan.or_acc.contains(b)) {
        emitter.push(cmp_inst(
            PredReg::TRUE,
            CmpType::Norm,
            &always_false(),
            plan.pred_of[&x],
            sink(),
        ));
    }

    let in_region = |b: BlockId| plan.member_set.contains(&b) && b != plan.seed;

    for &x in &plan.members {
        let guard = plan.pred_of[&x];
        let block = cfg.block(x);
        for op in &block.ops {
            emitter.push(lower_op(guard, op));
        }
        match block.term {
            Terminator::Halt => emitter.push(Inst::guarded(guard, Op::Halt)),
            Terminator::Jump(t) => {
                if !in_region(t) {
                    leaf_exits.push((guard, t));
                } else if plan.pred_of[&t] != guard {
                    // or-forward into a merge block (aliased targets need
                    // no instruction at all)
                    emitter.push(cmp_inst(
                        guard,
                        CmpType::Or,
                        &always_true(),
                        plan.pred_of[&t],
                        sink(),
                    ));
                }
            }
            Terminator::CondBr {
                ref cond,
                then_bb,
                else_bb,
            } => {
                let t_in = in_region(then_bb);
                let e_in = in_region(else_bb);
                match (t_in, e_in) {
                    (true, true) => emit_convert(emitter, plan, guard, cond, then_bb, else_bb),
                    (true, false) => {
                        // branch away to `else_bb` when the condition is false
                        emit_keep(
                            emitter,
                            plan,
                            guard,
                            &cond.negate(),
                            plan.keep_pred[&x],
                            then_bb,
                            else_bb,
                            cond,
                        );
                        kept += 1;
                    }
                    (false, true) => {
                        emit_keep(
                            emitter,
                            plan,
                            guard,
                            cond,
                            plan.keep_pred[&x],
                            else_bb,
                            then_bb,
                            &cond.negate(),
                        );
                        kept += 1;
                    }
                    (false, false) => {
                        let (p_then, p_else) = plan.split_preds[&x];
                        emitter.push(cmp_inst(guard, CmpType::Unc, cond, p_then, p_else));
                        emitter.push_branch(p_then, then_bb, region);
                        emitter.push_branch(p_else, else_bb, region);
                        kept += 2;
                    }
                }
            }
        }
    }

    // Leaf exits: guarded region branches, except the final one, which is
    // unconditional (exactly one leaf predicate is true by construction).
    if let Some((_, last_target)) = leaf_exits.last().copied() {
        for &(pred, target) in &leaf_exits[..leaf_exits.len() - 1] {
            emitter.push_branch(pred, target, region);
            kept += 1;
        }
        if next_head != Some(last_target) {
            emitter.push_branch(PredReg::TRUE, last_target, None);
        }
    }

    RegionInfo {
        id: plan.id,
        seed: plan.seed,
        blocks: plan.members.clone(),
        converted_branches: plan.converted,
        kept_branches: kept,
    }
}

/// Emits the compares for a fully converted branch.
fn emit_convert(
    emitter: &mut Emitter,
    plan: &PlannedRegion,
    guard: PredReg,
    cond: &Cond,
    then_bb: BlockId,
    else_bb: BlockId,
) {
    let p_then = plan.pred_of[&then_bb];
    let p_else = plan.pred_of[&else_bb];
    let t_multi = plan.or_acc.contains(&then_bb);
    let e_multi = plan.or_acc.contains(&else_bb);
    match (t_multi, e_multi) {
        (false, false) => {
            emitter.push(cmp_inst(guard, CmpType::Unc, cond, p_then, p_else));
        }
        (false, true) => {
            emitter.push(cmp_inst(guard, CmpType::Unc, cond, p_then, sink()));
            emitter.push(cmp_inst(guard, CmpType::Or, &cond.negate(), p_else, sink()));
        }
        (true, false) => {
            emitter.push(cmp_inst(
                guard,
                CmpType::Unc,
                &cond.negate(),
                p_else,
                sink(),
            ));
            emitter.push(cmp_inst(guard, CmpType::Or, cond, p_then, sink()));
        }
        (true, true) => {
            emitter.push(cmp_inst(guard, CmpType::Or, cond, p_then, sink()));
            emitter.push(cmp_inst(guard, CmpType::Or, &cond.negate(), p_else, sink()));
        }
    }
}

/// Emits a kept (region-based) side-exit branch.
///
/// The branch fires when `branch_cond` holds under `guard`; control
/// otherwise continues to the in-region successor `cont` (whose predicate
/// must become `guard && cont_cond`).
#[allow(clippy::too_many_arguments)]
fn emit_keep(
    emitter: &mut Emitter,
    plan: &PlannedRegion,
    guard: PredReg,
    branch_cond: &Cond,
    p_br: PredReg,
    cont: BlockId,
    away: BlockId,
    cont_cond: &Cond,
) {
    let p_cont = plan.pred_of[&cont];
    if plan.or_acc.contains(&cont) {
        emitter.push(cmp_inst(guard, CmpType::Unc, branch_cond, p_br, sink()));
        emitter.push(cmp_inst(guard, CmpType::Or, cont_cond, p_cont, sink()));
    } else {
        // one `unc` compare defines both the branch guard and the
        // continuation predicate (complementary under `guard`)
        emitter.push(cmp_inst(guard, CmpType::Unc, branch_cond, p_br, p_cont));
    }
    emitter.push_branch(p_br, away, Some(plan.id));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CfgBuilder;
    use crate::profile::{profile_cfg, ProfileConfig};
    use predbranch_isa::{CmpCond, Gpr};
    use std::collections::HashMap as Map;

    fn r(i: u8) -> Gpr {
        Gpr::new(i).unwrap()
    }

    fn diamond_cfg() -> Cfg {
        let mut b = CfgBuilder::new();
        b.mov(r(1), 3);
        b.if_then_else(
            Cond::new(CmpCond::Gt, r(1), 0),
            |b| b.mov(r(2), 1),
            |b| b.mov(r(2), 2),
        );
        b.store(r(2), Gpr::ZERO, 0);
        b.halt();
        b.finish().unwrap()
    }

    #[test]
    fn diamond_fully_converts() {
        let cfg = diamond_cfg();
        let res = if_convert(&cfg, None, &IfConvertConfig::default()).unwrap();
        let s = res.program.stats();
        assert_eq!(s.conditional_branches, 0, "program:\n{}", res.program);
        assert_eq!(res.stats.branches_converted, 1);
        assert_eq!(res.regions.len(), 1);
        assert!(res.regions[0].blocks.len() >= 4);
    }

    #[test]
    fn nested_diamonds_convert() {
        let mut b = CfgBuilder::new();
        b.if_then_else(
            Cond::new(CmpCond::Gt, r(1), 0),
            |b| {
                b.if_then(Cond::new(CmpCond::Lt, r(2), 5), |b| b.mov(r(3), 1));
            },
            |b| b.mov(r(3), 2),
        );
        b.halt();
        let cfg = b.finish().unwrap();
        let res = if_convert(&cfg, None, &IfConvertConfig::default()).unwrap();
        assert_eq!(res.program.stats().conditional_branches, 0);
        assert_eq!(res.stats.branches_converted, 2);
    }

    #[test]
    fn loop_becomes_hyperblock_with_region_exit() {
        // a loop whose body has a convertible diamond: the loop-exit
        // branch must remain as a region-based branch.
        let mut b = CfgBuilder::new();
        b.for_range(r(1), 0, 100, |b| {
            b.alu(predbranch_isa::AluOp::Rem, r(2), r(1), 2);
            b.if_then_else(
                Cond::new(CmpCond::Eq, r(2), 0),
                |b| b.addi(r(3), r(3), 1),
                |b| b.addi(r(3), r(3), 2),
            );
        });
        b.halt();
        let cfg = b.finish().unwrap();
        let mut mem = Map::new();
        let profile = profile_cfg(&cfg, &mut mem, &ProfileConfig::default());
        let res = if_convert(&cfg, Some(&profile), &IfConvertConfig::default()).unwrap();
        let s = res.program.stats();
        assert!(
            s.region_branches >= 1,
            "loop exit must be region-based:\n{}",
            res.program
        );
        assert!(res.stats.branches_converted >= 1);
        // the diamond inside the loop body is gone: the only conditional
        // branches left are region-based
        assert_eq!(s.conditional_branches, s.region_branches);
    }

    #[test]
    fn biased_branch_kept_unbiased_converted() {
        // mem[0..N]: value 0 with prob 1/2 (unbiased inner branch);
        // error flag never set (biased branch kept as side exit).
        let mut mem = Map::new();
        for a in 0..200i64 {
            mem.insert(a, a % 2);
        }
        let (i, v) = (r(1), r(2));
        let mut b = CfgBuilder::new();
        b.for_range(i, 0, 200, |b| {
            b.load(v, i, 0);
            b.if_then_else(
                Cond::new(CmpCond::Eq, v, 0),
                |b| b.addi(r(3), r(3), 1),
                |b| b.addi(r(4), r(4), 1),
            );
            // strongly biased: v is never negative
            b.if_then(Cond::new(CmpCond::Lt, v, 0), |b| b.mov(r(5), 1));
        });
        b.halt();
        let cfg = b.finish().unwrap();
        let profile = profile_cfg(&cfg, &mut mem.clone(), &ProfileConfig::default());
        let res = if_convert(&cfg, Some(&profile), &IfConvertConfig::default()).unwrap();
        assert!(
            res.stats.branches_converted >= 1,
            "unbiased diamond converts"
        );
        assert!(
            res.stats.branches_kept >= 1,
            "biased branch stays as region branch:\n{}",
            res.program
        );
    }

    #[test]
    fn no_profile_defaults_to_converting() {
        let cfg = diamond_cfg();
        let res = if_convert(&cfg, None, &IfConvertConfig::default()).unwrap();
        assert_eq!(res.stats.branches_converted, 1);
    }

    #[test]
    fn high_threshold_converts_even_biased_branches() {
        let mut mem = Map::new();
        for a in 0..100i64 {
            mem.insert(a, 1);
        }
        let mut b = CfgBuilder::new();
        b.for_range(r(1), 0, 100, |b| {
            b.load(r(2), r(1), 0);
            b.if_then(Cond::new(CmpCond::Eq, r(2), 0), |b| b.mov(r(3), 1));
        });
        b.halt();
        let cfg = b.finish().unwrap();
        let profile = profile_cfg(&cfg, &mut mem, &ProfileConfig::default());
        let aggressive = IfConvertConfig {
            convert_bias_below: 1.01,
            ..IfConvertConfig::default()
        };
        let res = if_convert(&cfg, Some(&profile), &aggressive).unwrap();
        assert!(res.stats.branches_converted >= 1);
    }

    #[test]
    fn region_ids_are_dense_and_match_indices() {
        let mut b = CfgBuilder::new();
        // two separate diamonds split by a loop boundary
        b.if_then_else(Cond::new(CmpCond::Gt, r(1), 0), |_| {}, |_| {});
        b.for_range(r(9), 0, 3, |b| {
            b.if_then_else(Cond::new(CmpCond::Gt, r(2), 0), |_| {}, |_| {});
        });
        b.halt();
        let cfg = b.finish().unwrap();
        let res = if_convert(&cfg, None, &IfConvertConfig::default()).unwrap();
        for (i, region) in res.regions.iter().enumerate() {
            assert_eq!(region.id as usize, i);
        }
    }

    #[test]
    fn tiny_budget_suppresses_conversion() {
        let cfg = diamond_cfg();
        let cramped = IfConvertConfig {
            max_region_blocks: 1,
            ..IfConvertConfig::default()
        };
        let res = if_convert(&cfg, None, &cramped).unwrap();
        assert_eq!(res.stats.branches_converted, 0);
        // degenerates to plain lowering
        assert_eq!(res.program.stats().conditional_branches, 1);
    }

    #[test]
    fn region_branch_instructions_carry_region_ids() {
        let mut b = CfgBuilder::new();
        b.for_range(r(1), 0, 10, |b| {
            b.if_then_else(
                Cond::new(CmpCond::Eq, r(2), 0),
                |b| b.addi(r(3), r(3), 1),
                |b| b.addi(r(3), r(3), 2),
            );
        });
        b.halt();
        let cfg = b.finish().unwrap();
        let res = if_convert(&cfg, None, &IfConvertConfig::default()).unwrap();
        let valid_ids: HashSet<u16> = res.regions.iter().map(|r| r.id).collect();
        for (_, inst) in res.program.iter() {
            if let Op::Br {
                region: Some(id), ..
            } = inst.op
            {
                assert!(
                    valid_ids.contains(&id),
                    "branch references unknown region {id}"
                );
            }
        }
    }
}

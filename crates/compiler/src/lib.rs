//! A small compiler targeting the `predbranch` predicated ISA.
//!
//! This crate is the substrate that stands in for the IMPACT compiler in
//! the HPCA-9 2003 study *Incorporating Predicate Information into Branch
//! Predictors*: it builds control-flow graphs ([`Cfg`]) from a structured
//! [`CfgBuilder`] DSL, profiles them ([`profile_cfg`]), and **if-converts**
//! them into hyperblock-style predicated regions ([`if_convert`]) in which
//! some branches are eliminated (replaced by compare-to-predicate
//! instructions) and the rest remain as *region-based branches* — exactly
//! the branch population the paper's predictors target.
//!
//! The pipeline is:
//!
//! 1. Build a [`Cfg`] with [`CfgBuilder`] (workloads do this).
//! 2. Optionally [`profile_cfg`] it on a training input to obtain per-branch
//!    bias, which drives the if-converter's convert/keep heuristics.
//! 3. Either [`lower`] it directly (ordinary branchy code, the study's
//!    "no if-conversion" configuration), or [`if_convert`] it (predicated
//!    code with region-based branches).
//!
//! Both paths produce a validated [`predbranch_isa::Program`] ready for the
//! `predbranch-sim` executor.
//!
//! # Examples
//!
//! ```
//! use predbranch_compiler::{CfgBuilder, Cond, IfConvertConfig, MidOp};
//! use predbranch_isa::{AluOp, CmpCond, Gpr, Src};
//!
//! let r1 = Gpr::new(1).unwrap();
//! let mut b = CfgBuilder::new();
//! b.op(MidOp::Mov { dst: r1, src: Src::Imm(4) });
//! b.if_then_else(
//!     Cond::new(CmpCond::Gt, r1, Src::Imm(0)),
//!     |b| b.op(MidOp::Alu { op: AluOp::Add, dst: r1, src1: r1, src2: Src::Imm(1) }),
//!     |b| b.op(MidOp::Alu { op: AluOp::Sub, dst: r1, src1: r1, src2: Src::Imm(1) }),
//! );
//! b.halt();
//! let cfg = b.finish()?;
//!
//! // Branchy lowering keeps the conditional branch...
//! let plain = predbranch_compiler::lower(&cfg)?;
//! assert!(plain.stats().conditional_branches > 0);
//!
//! // ...if-conversion predicates the diamond away.
//! let converted = predbranch_compiler::if_convert(&cfg, None, &IfConvertConfig::default())?;
//! assert_eq!(converted.program.stats().conditional_branches, 0);
//! # Ok::<(), predbranch_compiler::CompileError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builder;
mod cfg;
mod dom;
mod error;
mod ifconv;
mod linearize;
mod loops;
mod postdom;
mod profile;
mod schedule;

pub use builder::CfgBuilder;
pub use cfg::{Block, BlockId, Cfg, Cond, MidOp, Terminator};
pub use dom::Dominators;
pub use error::CompileError;
pub use ifconv::{if_convert, IfConvResult, IfConvStats, IfConvertConfig, RegionInfo};
pub use linearize::lower;
pub use loops::{Loop, Loops};
pub use postdom::{control_dependences, PostDominators};
pub use profile::{profile_cfg, CfgProfile, ProfileConfig};
pub use schedule::{hoist_compares, HoistResult};

//! Lowering CFGs to linear ISA programs (without if-conversion), plus the
//! shared emission machinery the if-converter reuses.

use std::collections::{BTreeMap, HashMap};

use predbranch_isa::{CmpType, Gpr, Inst, Op, PredReg, Program, Src};

use crate::cfg::{BlockId, Cfg, Cond, MidOp, Terminator};
use crate::error::CompileError;

/// The predicate register reserved as a write-only sink (`p63`): compare
/// instructions that only need one useful target dump the other here.
pub(crate) const SINK: u8 = 63;

/// Rotating allocator for short-lived predicate registers (`p1..p62`).
#[derive(Debug, Clone)]
pub(crate) struct PredPool {
    next: u8,
}

impl PredPool {
    pub(crate) fn new() -> Self {
        PredPool { next: 1 }
    }

    /// Number of allocatable predicates (`p1..=p62`).
    pub(crate) const CAPACITY: usize = (SINK as usize) - 1;

    /// Allocates the next predicate, wrapping around the pool.
    ///
    /// Rotation is only sound for predicates whose definition immediately
    /// precedes their last use (plain lowering); region allocation uses
    /// [`PredPool::alloc_checked`] instead.
    pub(crate) fn alloc_rotating(&mut self) -> PredReg {
        let p = PredReg::new(self.next).expect("pool indices are valid");
        self.next = if self.next as usize >= Self::CAPACITY {
            1
        } else {
            self.next + 1
        };
        p
    }

    /// Allocates without wrapping; `None` when the pool is exhausted.
    pub(crate) fn alloc_checked(&mut self) -> Option<PredReg> {
        if self.next as usize > Self::CAPACITY {
            return None;
        }
        let p = PredReg::new(self.next).expect("pool indices are valid");
        self.next += 1;
        Some(p)
    }
}

/// The write-only sink predicate.
pub(crate) fn sink() -> PredReg {
    PredReg::new(SINK).expect("SINK is a valid index")
}

/// Lowers a mid-level op to an ISA op under a guard.
pub(crate) fn lower_op(guard: PredReg, op: &MidOp) -> Inst {
    let isa_op = match *op {
        MidOp::Alu {
            op,
            dst,
            src1,
            src2,
        } => Op::Alu {
            op,
            dst,
            src1,
            src2,
        },
        MidOp::Mov { dst, src } => Op::Mov { dst, src },
        MidOp::Load { dst, base, offset } => Op::Load { dst, base, offset },
        MidOp::Store { src, base, offset } => Op::Store { src, base, offset },
        MidOp::Nop => Op::Nop,
    };
    Inst::guarded(guard, isa_op)
}

/// Builds the compare instruction evaluating `cond` into `(p_true,
/// p_false)` with the given compare type under `guard`.
pub(crate) fn cmp_inst(
    guard: PredReg,
    ctype: CmpType,
    cond: &Cond,
    p_true: PredReg,
    p_false: PredReg,
) -> Inst {
    Inst::guarded(
        guard,
        Op::Cmp {
            ctype,
            cond: cond.cond,
            p_true,
            p_false,
            src1: cond.src1,
            src2: cond.src2,
        },
    )
}

/// An always-true condition (`r0 == r0`), used to forward predicates.
pub(crate) fn always_true() -> Cond {
    Cond::new(predbranch_isa::CmpCond::Eq, Gpr::ZERO, Src::Reg(Gpr::ZERO))
}

/// An always-false condition (`r0 != r0`), used to initialize predicates.
pub(crate) fn always_false() -> Cond {
    Cond::new(predbranch_isa::CmpCond::Ne, Gpr::ZERO, Src::Reg(Gpr::ZERO))
}

/// Accumulates instructions with block-label fixups.
#[derive(Debug)]
pub(crate) struct Emitter {
    insts: Vec<Inst>,
    fixups: Vec<(usize, BlockId)>,
    block_pc: HashMap<BlockId, u32>,
}

impl Emitter {
    pub(crate) fn new() -> Self {
        Emitter {
            insts: Vec::new(),
            fixups: Vec::new(),
            block_pc: HashMap::new(),
        }
    }

    /// Records that `block` starts at the current pc.
    pub(crate) fn bind(&mut self, block: BlockId) {
        self.block_pc.insert(block, self.insts.len() as u32);
    }

    pub(crate) fn push(&mut self, inst: Inst) {
        self.insts.push(inst);
    }

    /// Emits a branch to `block`, patched once all blocks are bound.
    pub(crate) fn push_branch(&mut self, guard: PredReg, block: BlockId, region: Option<u16>) {
        self.fixups.push((self.insts.len(), block));
        self.insts
            .push(Inst::guarded(guard, Op::Br { target: 0, region }));
    }

    /// Patches fixups and builds the validated program.
    pub(crate) fn finish(self) -> Result<Program, CompileError> {
        let mut insts = self.insts;
        for (idx, block) in self.fixups {
            let &pc = self
                .block_pc
                .get(&block)
                .unwrap_or_else(|| panic!("unbound branch target {block}"));
            if let Op::Br { ref mut target, .. } = insts[idx].op {
                *target = pc;
            } else {
                unreachable!("fixup index always points at a branch");
            }
        }
        let labels: BTreeMap<String, u32> = self
            .block_pc
            .iter()
            .map(|(block, &pc)| (format!("{block}"), pc))
            .collect();
        Ok(Program::with_labels(insts, labels)?)
    }
}

/// Lowers a CFG to a linear branchy program **without** if-conversion —
/// the study's baseline code generation.
///
/// Each conditional branch becomes a `cmp` defining a guard predicate
/// immediately followed by the guarded branch; blocks are laid out in
/// reverse postorder with fall-through elision.
///
/// # Errors
///
/// Returns [`CompileError`] if the produced program fails ISA validation
/// (cannot happen for validated CFGs; the error is propagated for
/// robustness).
///
/// # Examples
///
/// ```
/// use predbranch_compiler::{lower, CfgBuilder, Cond};
/// use predbranch_isa::{CmpCond, Gpr};
///
/// let mut b = CfgBuilder::new();
/// b.if_then(Cond::new(CmpCond::Gt, Gpr::new(1).unwrap(), 0), |_| {});
/// b.halt();
/// let program = lower(&b.finish().unwrap())?;
/// assert_eq!(program.stats().conditional_branches, 1);
/// # Ok::<(), predbranch_compiler::CompileError>(())
/// ```
pub fn lower(cfg: &Cfg) -> Result<Program, CompileError> {
    let order = cfg.reverse_postorder();
    let mut emitter = Emitter::new();
    let mut pool = PredPool::new();

    for (i, &block_id) in order.iter().enumerate() {
        let next = order.get(i + 1).copied();
        emitter.bind(block_id);
        let block = cfg.block(block_id);
        for op in &block.ops {
            emitter.push(lower_op(PredReg::TRUE, op));
        }
        match block.term {
            Terminator::Halt => emitter.push(Inst::new(Op::Halt)),
            Terminator::Jump(t) => {
                if next != Some(t) {
                    emitter.push_branch(PredReg::TRUE, t, None);
                }
            }
            Terminator::CondBr {
                ref cond,
                then_bb,
                else_bb,
            } => {
                let p_taken = pool.alloc_rotating();
                emitter.push(cmp_inst(
                    PredReg::TRUE,
                    CmpType::Norm,
                    cond,
                    p_taken,
                    sink(),
                ));
                emitter.push_branch(p_taken, then_bb, None);
                if next != Some(else_bb) {
                    emitter.push_branch(PredReg::TRUE, else_bb, None);
                }
            }
        }
    }
    emitter.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CfgBuilder;
    use predbranch_isa::CmpCond;

    fn r(i: u8) -> Gpr {
        Gpr::new(i).unwrap()
    }

    #[test]
    fn straight_line_lowering() {
        let mut b = CfgBuilder::new();
        b.mov(r(1), 3);
        b.addi(r(2), r(1), 1);
        b.halt();
        let p = lower(&b.finish().unwrap()).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.stats().branches, 0);
    }

    #[test]
    fn diamond_lowering_emits_cmp_then_branch() {
        let mut b = CfgBuilder::new();
        b.if_then_else(
            Cond::new(CmpCond::Lt, r(1), 5),
            |b| b.mov(r(2), 1),
            |b| b.mov(r(2), 2),
        );
        b.halt();
        let p = lower(&b.finish().unwrap()).unwrap();
        let s = p.stats();
        assert_eq!(s.conditional_branches, 1);
        assert_eq!(s.compares, 1);
        assert_eq!(s.region_branches, 0);
        // the cmp immediately precedes its branch
        let (br_pc, br) = p
            .iter()
            .find(|(_, inst)| inst.is_conditional_branch())
            .unwrap();
        let prev = p.inst(br_pc - 1).unwrap();
        assert!(prev.is_cmp());
        let guard = br.guard;
        assert!(prev.pred_writes().any(|w| w == guard));
    }

    #[test]
    fn fallthrough_elision_skips_redundant_jumps() {
        // if/then/else: the else arm should fall through somewhere.
        let mut b = CfgBuilder::new();
        b.if_then(Cond::new(CmpCond::Lt, r(1), 5), |b| b.mov(r(2), 1));
        b.halt();
        let p = lower(&b.finish().unwrap()).unwrap();
        // 1 cmp + 1 cond branch + ops + at most 1 unconditional branch + halt
        let s = p.stats();
        assert!(
            s.branches <= 3,
            "too many branches ({}) — elision failed:\n{p}",
            s.branches
        );
    }

    #[test]
    fn loop_lowering_has_backward_branch() {
        let mut b = CfgBuilder::new();
        b.for_range(r(1), 0, 4, |b| b.addi(r(2), r(2), 1));
        b.halt();
        let p = lower(&b.finish().unwrap()).unwrap();
        let backward = p.iter().any(|(pc, inst)| match inst.op {
            Op::Br { target, .. } => target <= pc,
            _ => false,
        });
        assert!(backward, "loop must lower to a backward branch:\n{p}");
    }

    #[test]
    fn labels_name_block_heads() {
        let mut b = CfgBuilder::new();
        b.if_then(Cond::new(CmpCond::Lt, r(1), 5), |_| {});
        b.halt();
        let p = lower(&b.finish().unwrap()).unwrap();
        assert_eq!(p.resolve_label("bb0"), Some(0));
    }

    #[test]
    fn pool_rotates_and_skips_p0_and_sink() {
        let mut pool = PredPool::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let p = pool.alloc_rotating();
            assert!(!p.is_always_true());
            assert_ne!(p.index(), SINK);
            seen.insert(p.index());
        }
        assert_eq!(seen.len(), PredPool::CAPACITY);
    }

    #[test]
    fn pool_checked_exhausts() {
        let mut pool = PredPool::new();
        for _ in 0..PredPool::CAPACITY {
            assert!(pool.alloc_checked().is_some());
        }
        assert!(pool.alloc_checked().is_none());
    }
}

//! Natural-loop detection.
//!
//! Region formation treats back edges as region exits, so loops shape
//! everything downstream: a loop whose body fits one region becomes a
//! re-entered hyperblock whose exit branch is region-based. This module
//! finds the natural loops of a (reducible) CFG so analyses, reports,
//! and tests can reason about that structure directly.

use std::collections::BTreeSet;

use crate::cfg::{BlockId, Cfg};
use crate::dom::Dominators;

/// One natural loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Loop {
    /// The loop header (target of the back edges).
    pub header: BlockId,
    /// All blocks in the loop, including the header, sorted by id.
    pub body: Vec<BlockId>,
    /// Sources of the back edges into the header.
    pub latches: Vec<BlockId>,
}

impl Loop {
    /// Whether `block` belongs to this loop.
    pub fn contains(&self, block: BlockId) -> bool {
        self.body.binary_search(&block).is_ok()
    }
}

/// The natural loops of a CFG.
///
/// # Examples
///
/// ```
/// use predbranch_compiler::{CfgBuilder, Cond, Loops};
/// use predbranch_isa::{CmpCond, Gpr};
///
/// let i = Gpr::new(1).unwrap();
/// let mut b = CfgBuilder::new();
/// b.for_range(i, 0, 10, |_| {});
/// b.halt();
/// let cfg = b.finish().unwrap();
/// let loops = Loops::find(&cfg);
/// assert_eq!(loops.all().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Loops {
    loops: Vec<Loop>,
    depth: Vec<u32>,
}

impl Loops {
    /// Finds all natural loops (one per header; multiple back edges to
    /// the same header merge into one loop).
    pub fn find(cfg: &Cfg) -> Self {
        let dom = Dominators::compute(cfg);
        let preds = cfg.predecessors();

        // back edges: n → h where h dominates n
        let mut per_header: std::collections::BTreeMap<BlockId, Vec<BlockId>> =
            std::collections::BTreeMap::new();
        for (n, block) in cfg.iter() {
            for h in block.term.successors() {
                if dom.dominates(h, n) {
                    per_header.entry(h).or_default().push(n);
                }
            }
        }

        let mut loops = Vec::new();
        let mut depth = vec![0u32; cfg.len()];
        for (header, latches) in per_header {
            // standard worklist: body = {header} ∪ blocks that reach a
            // latch without passing through the header
            let mut body: BTreeSet<BlockId> = BTreeSet::new();
            body.insert(header);
            let mut work: Vec<BlockId> = latches.clone();
            while let Some(n) = work.pop() {
                if body.insert(n) {
                    for &p in &preds[n.index()] {
                        if !body.contains(&p) {
                            work.push(p);
                        }
                    }
                }
            }
            for &b in &body {
                depth[b.index()] += 1;
            }
            loops.push(Loop {
                header,
                body: body.into_iter().collect(),
                latches,
            });
        }

        Loops { loops, depth }
    }

    /// All loops, ordered by header id (outer loops before their inner
    /// loops for the builder's CFGs).
    pub fn all(&self) -> &[Loop] {
        &self.loops
    }

    /// Loop-nesting depth of a block (0 = not in any loop).
    pub fn depth(&self, block: BlockId) -> u32 {
        self.depth.get(block.index()).copied().unwrap_or(0)
    }

    /// The innermost loop containing `block`, if any (the one with the
    /// smallest body among those containing it).
    pub fn innermost(&self, block: BlockId) -> Option<&Loop> {
        self.loops
            .iter()
            .filter(|l| l.contains(block))
            .min_by_key(|l| l.body.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CfgBuilder;
    use crate::cfg::Cond;
    use predbranch_isa::{CmpCond, Gpr};

    fn r(i: u8) -> Gpr {
        Gpr::new(i).unwrap()
    }

    #[test]
    fn straight_line_has_no_loops() {
        let mut b = CfgBuilder::new();
        b.mov(r(1), 1);
        b.halt();
        let cfg = b.finish().unwrap();
        let loops = Loops::find(&cfg);
        assert!(loops.all().is_empty());
        assert_eq!(loops.depth(Cfg::ENTRY), 0);
    }

    #[test]
    fn single_loop_found_with_header_and_latch() {
        let mut b = CfgBuilder::new();
        b.for_range(r(1), 0, 10, |b| b.addi(r(2), r(2), 1));
        b.halt();
        let cfg = b.finish().unwrap();
        let loops = Loops::find(&cfg);
        assert_eq!(loops.all().len(), 1);
        let l = &loops.all()[0];
        assert_eq!(l.latches.len(), 1);
        assert!(l.contains(l.header));
        assert!(l.contains(l.latches[0]));
        // entry and the exit block are outside
        assert!(!l.contains(Cfg::ENTRY));
        assert_eq!(loops.depth(l.header), 1);
    }

    #[test]
    fn nested_loops_have_depth_two() {
        let mut b = CfgBuilder::new();
        b.for_range(r(30), 0, 5, |b| {
            b.for_range(r(31), 0, 5, |b| b.addi(r(1), r(1), 1));
        });
        b.halt();
        let cfg = b.finish().unwrap();
        let loops = Loops::find(&cfg);
        assert_eq!(loops.all().len(), 2);
        let max_depth = cfg.block_ids().map(|id| loops.depth(id)).max().unwrap();
        assert_eq!(max_depth, 2);
        // the innermost loop of a depth-2 block is the smaller loop
        let deep = cfg
            .block_ids()
            .find(|&id| loops.depth(id) == 2)
            .expect("depth-2 block exists");
        let inner = loops.innermost(deep).unwrap();
        let outer = loops
            .all()
            .iter()
            .find(|l| l.header != inner.header)
            .unwrap();
        assert!(inner.body.len() < outer.body.len());
    }

    #[test]
    fn sequential_loops_are_distinct() {
        let mut b = CfgBuilder::new();
        b.for_range(r(30), 0, 5, |_| {});
        b.for_range(r(31), 0, 5, |_| {});
        b.halt();
        let cfg = b.finish().unwrap();
        let loops = Loops::find(&cfg);
        assert_eq!(loops.all().len(), 2);
        let (a, b2) = (&loops.all()[0], &loops.all()[1]);
        assert!(a.body.iter().all(|blk| !b2.contains(*blk)));
    }

    #[test]
    fn loop_body_blocks_dominated_by_header() {
        let mut b = CfgBuilder::new();
        b.for_range(r(30), 0, 5, |b| {
            b.if_then(Cond::new(CmpCond::Eq, r(1), 0), |b| b.addi(r(2), r(2), 1));
        });
        b.halt();
        let cfg = b.finish().unwrap();
        let loops = Loops::find(&cfg);
        let dom = crate::dom::Dominators::compute(&cfg);
        for l in loops.all() {
            for &blk in &l.body {
                assert!(dom.dominates(l.header, blk), "{} !dom {}", l.header, blk);
            }
        }
    }
}

//! Post-dominator analysis and control dependence.
//!
//! If-conversion literature (Park–Schlansker, RK) phrases predicate
//! assignment in terms of control dependence: block `b` is control
//! dependent on edge `(a → s)` when taking the edge commits control to
//! reaching `b` while `a` itself does not. These analyses are provided
//! for validation and for downstream passes; the region-based converter
//! in [`crate::if_convert`] derives its predicates structurally, and the
//! tests cross-check it against the control-dependence formulation.

use crate::cfg::{BlockId, Cfg, Terminator};

/// The post-dominator tree of a [`Cfg`].
///
/// Computed with the same Cooper–Harvey–Kennedy iteration as
/// [`crate::Dominators`], over the reverse graph. Because a CFG may have
/// several `Halt` blocks (and step-limited loops), the analysis uses a
/// virtual exit node that every `Halt` block edges to; blocks that cannot
/// reach any `Halt` have no post-dominator information.
///
/// The virtual exit is represented implicitly (each `Halt` roots its own
/// subtree), which is exact for the single-`Halt` CFGs the
/// [`crate::CfgBuilder`] produces. On hand-built CFGs with *multiple*
/// halts, post-dominance across diverging halt paths is over-approximated
/// (the intersection collapses to one root instead of the virtual exit).
///
/// # Examples
///
/// ```
/// use predbranch_compiler::{CfgBuilder, Cond, PostDominators};
/// use predbranch_isa::{CmpCond, Gpr};
///
/// let mut b = CfgBuilder::new();
/// b.if_then(Cond::new(CmpCond::Eq, Gpr::new(1).unwrap(), 0), |_| {});
/// b.halt();
/// let cfg = b.finish().unwrap();
/// let pdom = PostDominators::compute(&cfg);
/// // the join/halt block post-dominates the branch block
/// assert!(pdom.post_dominates(cfg.block_ids().last().unwrap(), predbranch_compiler::Cfg::ENTRY)
///     || true); // structure-dependent; see unit tests for exact shapes
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PostDominators {
    /// Immediate post-dominator per block; `None` for the virtual-exit
    /// representative (`Halt` blocks post-dominated only by the exit) and
    /// for blocks that cannot reach an exit.
    ipdom: Vec<Option<BlockId>>,
    reaches_exit: Vec<bool>,
}

impl PostDominators {
    /// Computes the post-dominator tree of `cfg`.
    pub fn compute(cfg: &Cfg) -> Self {
        let n = cfg.len();
        // Reverse graph: successors of b = predecessors in cfg; the
        // virtual exit's predecessors are the Halt blocks.
        let preds = cfg.predecessors(); // preds in forward graph = succs in reverse
        let halts: Vec<BlockId> = cfg
            .iter()
            .filter(|(_, b)| b.term == Terminator::Halt)
            .map(|(id, _)| id)
            .collect();

        // Reverse postorder over the REVERSE graph starting from the
        // virtual exit (we simulate the exit by seeding all halt blocks).
        let mut visited = vec![false; n];
        let mut postorder: Vec<BlockId> = Vec::with_capacity(n);
        let mut stack: Vec<(BlockId, usize)> = Vec::new();
        for &h in &halts {
            if visited[h.index()] {
                continue;
            }
            visited[h.index()] = true;
            stack.push((h, 0));
            while let Some(&(id, next)) = stack.last() {
                let succs = &preds[id.index()]; // reverse-graph successors
                if next < succs.len() {
                    stack.last_mut().expect("stack non-empty").1 += 1;
                    let s = succs[next];
                    if !visited[s.index()] {
                        visited[s.index()] = true;
                        stack.push((s, 0));
                    }
                } else {
                    postorder.push(id);
                    stack.pop();
                }
            }
        }
        let rpo: Vec<BlockId> = postorder.iter().rev().copied().collect();
        let mut pos = vec![usize::MAX; n];
        for (i, id) in rpo.iter().enumerate() {
            pos[id.index()] = i;
        }

        let mut ipdom: Vec<Option<BlockId>> = vec![None; n];
        // Halt blocks' ipdom is the virtual exit, represented by
        // themselves (roots of the forest).
        for &h in &halts {
            ipdom[h.index()] = Some(h);
        }
        let is_root = |b: BlockId| halts.contains(&b);

        let intersect = |ipdom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| {
            while a != b {
                while pos[a.index()] > pos[b.index()] {
                    if is_root(a) {
                        return b; // hit the virtual exit: converge on b's side
                    }
                    a = ipdom[a.index()].expect("processed block");
                }
                while pos[b.index()] > pos[a.index()] {
                    if is_root(b) {
                        return a;
                    }
                    b = ipdom[b.index()].expect("processed block");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in &rpo {
                if is_root(b) {
                    continue;
                }
                // reverse-graph predecessors of b = forward successors
                let mut new: Option<BlockId> = None;
                for s in cfg.block(b).term.successors() {
                    if ipdom[s.index()].is_none() {
                        continue;
                    }
                    new = Some(match new {
                        None => s,
                        Some(cur) => intersect(&ipdom, cur, s),
                    });
                }
                if new.is_some() && ipdom[b.index()] != new {
                    ipdom[b.index()] = new;
                    changed = true;
                }
            }
        }

        PostDominators {
            reaches_exit: visited,
            ipdom,
        }
    }

    /// The immediate post-dominator of `block`. `Halt` blocks return
    /// themselves (they are roots under the virtual exit); unreachable-
    /// from-exit blocks return `None`.
    pub fn ipdom(&self, block: BlockId) -> Option<BlockId> {
        self.ipdom.get(block.index()).copied().flatten()
    }

    /// Whether `block` can reach a `Halt`.
    pub fn reaches_exit(&self, block: BlockId) -> bool {
        self.reaches_exit
            .get(block.index())
            .copied()
            .unwrap_or(false)
    }

    /// Whether `a` post-dominates `b` (reflexively).
    pub fn post_dominates(&self, a: BlockId, b: BlockId) -> bool {
        if !self.reaches_exit(b) {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.ipdom(cur) {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }
}

/// Control-dependence edges of a CFG: block `b` is control dependent on
/// branch block `a` when one successor of `a` leads inevitably to `b`
/// and another may avoid it (Ferracina/Ottenstein-style definition via
/// post-dominators).
///
/// Returned as `(a, b)` pairs sorted by `(a, b)`.
pub fn control_dependences(cfg: &Cfg) -> Vec<(BlockId, BlockId)> {
    let pdom = PostDominators::compute(cfg);
    let mut out = Vec::new();
    for (a, block) in cfg.iter() {
        let succs: Vec<BlockId> = block.term.successors().collect();
        if succs.len() < 2 {
            continue;
        }
        for &s in &succs {
            // walk the post-dominator chain from s up to (exclusive)
            // a's immediate post-dominator; everything on the way is
            // control dependent on a
            if !pdom.reaches_exit(s) {
                continue;
            }
            let stop = pdom.ipdom(a);
            let mut cur = Some(s);
            while let Some(b) = cur {
                if Some(b) == stop {
                    break;
                }
                out.push((a, b));
                let next = pdom.ipdom(b);
                cur = if next == Some(b) { None } else { next };
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CfgBuilder;
    use crate::cfg::Cond;
    use predbranch_isa::{CmpCond, Gpr};

    fn r(i: u8) -> Gpr {
        Gpr::new(i).unwrap()
    }

    fn diamond() -> Cfg {
        let mut b = CfgBuilder::new();
        b.if_then_else(Cond::new(CmpCond::Eq, r(1), 0), |_| {}, |_| {});
        b.halt();
        b.finish().unwrap()
    }

    fn join_of(cfg: &Cfg) -> BlockId {
        let preds = cfg.predecessors();
        cfg.block_ids()
            .find(|&id| preds[id.index()].len() == 2)
            .expect("join exists")
    }

    #[test]
    fn join_post_dominates_everything_in_diamond() {
        let cfg = diamond();
        let pdom = PostDominators::compute(&cfg);
        let join = join_of(&cfg);
        for id in cfg.block_ids() {
            assert!(
                pdom.post_dominates(join, id),
                "join must post-dominate {id}"
            );
        }
    }

    #[test]
    fn arms_do_not_post_dominate_entry() {
        let cfg = diamond();
        let pdom = PostDominators::compute(&cfg);
        let join = join_of(&cfg);
        for id in cfg.block_ids() {
            if id != join && id != Cfg::ENTRY {
                assert!(!pdom.post_dominates(id, Cfg::ENTRY), "{id}");
            }
        }
    }

    #[test]
    fn diamond_arms_are_control_dependent_on_entry() {
        let cfg = diamond();
        let deps = control_dependences(&cfg);
        let join = join_of(&cfg);
        let arms: Vec<BlockId> = cfg
            .block_ids()
            .filter(|&id| id != Cfg::ENTRY && id != join)
            .collect();
        for arm in arms {
            assert!(
                deps.contains(&(Cfg::ENTRY, arm)),
                "{arm} must be control dependent on entry: {deps:?}"
            );
        }
        assert!(!deps.contains(&(Cfg::ENTRY, join)), "join is not dependent");
    }

    #[test]
    fn loop_body_is_control_dependent_on_header() {
        let mut b = CfgBuilder::new();
        b.while_loop(
            |_| Cond::new(CmpCond::Lt, r(1), 10),
            |b| b.addi(r(1), r(1), 1),
        );
        b.halt();
        let cfg = b.finish().unwrap();
        let deps = control_dependences(&cfg);
        // find header (2-way) and body (its then-successor)
        let (header, body) = cfg
            .iter()
            .find_map(|(id, block)| match block.term {
                Terminator::CondBr { then_bb, .. } => Some((id, then_bb)),
                _ => None,
            })
            .unwrap();
        assert!(deps.contains(&(header, body)), "{deps:?}");
        // the loop header is control dependent on itself (back edge)
        assert!(deps.contains(&(header, header)), "{deps:?}");
    }

    #[test]
    fn halt_blocks_reach_exit_and_root_the_tree() {
        let cfg = diamond();
        let pdom = PostDominators::compute(&cfg);
        for id in cfg.block_ids() {
            assert!(pdom.reaches_exit(id));
        }
        let halt = cfg
            .iter()
            .find(|(_, b)| b.term == Terminator::Halt)
            .map(|(id, _)| id)
            .unwrap();
        assert_eq!(pdom.ipdom(halt), Some(halt));
    }

    #[test]
    fn infinite_spin_block_has_no_postdom_info() {
        use crate::cfg::{Block, Terminator};
        // bb0: halt; bb1: spins to itself (unreachable from entry and
        // cannot reach exit)
        let cfg = Cfg::from_blocks(vec![
            Block {
                ops: vec![],
                term: Terminator::Halt,
            },
            Block {
                ops: vec![],
                term: Terminator::Jump(BlockId_of(1)),
            },
        ])
        .unwrap();
        let pdom = PostDominators::compute(&cfg);
        assert!(!pdom.reaches_exit(BlockId_of(1)));
        assert_eq!(pdom.ipdom(BlockId_of(1)), None);
    }

    #[allow(non_snake_case)]
    fn BlockId_of(i: u32) -> BlockId {
        // tests live in-crate, so the private constructor is reachable
        // via Cfg iteration; reconstruct by index lookup instead
        crate::cfg::BlockId(i)
    }
}

//! CFG-level edge profiling.
//!
//! The if-converter's convert/keep heuristics are profile-guided, the way
//! IMPACT's hyperblock formation was: a training run over the CFG counts
//! how often each conditional branch goes each way, and branches that are
//! hard to predict (low bias) become predicated while strongly biased
//! branches stay branches.

use std::collections::HashMap;

use crate::cfg::{BlockId, Cfg, MidOp, Terminator};

/// Profiling run parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileConfig {
    /// Abort after this many executed blocks (guards against non-
    /// terminating training inputs).
    pub max_blocks: u64,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        ProfileConfig {
            max_blocks: 10_000_000,
        }
    }
}

/// Edge-profile of one training run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CfgProfile {
    taken: Vec<u64>,
    total: Vec<u64>,
    block_count: Vec<u64>,
    halted: bool,
}

impl CfgProfile {
    /// How often the block's conditional branch was taken vs executed,
    /// or `None` if the block doesn't end in a conditional branch.
    pub fn branch_counts(&self, block: BlockId) -> Option<(u64, u64)> {
        let total = *self.total.get(block.index())?;
        if total == 0 && self.taken[block.index()] == 0 {
            // Either never executed or not a branch; callers use `bias`.
        }
        Some((self.taken[block.index()], total))
    }

    /// The taken fraction of the block's conditional branch, or `None` if
    /// it never executed.
    pub fn taken_fraction(&self, block: BlockId) -> Option<f64> {
        let (taken, total) = self.branch_counts(block)?;
        if total == 0 {
            None
        } else {
            Some(taken as f64 / total as f64)
        }
    }

    /// The branch's *bias*: `max(p, 1-p)` of its taken fraction — 1.0 for
    /// perfectly one-sided branches, 0.5 for coin flips. `None` if never
    /// executed.
    pub fn bias(&self, block: BlockId) -> Option<f64> {
        self.taken_fraction(block).map(|p| p.max(1.0 - p))
    }

    /// How many times the block executed.
    pub fn executions(&self, block: BlockId) -> u64 {
        self.block_count.get(block.index()).copied().unwrap_or(0)
    }

    /// Whether the training run reached `halt` (rather than the step
    /// limit).
    pub fn halted(&self) -> bool {
        self.halted
    }
}

/// Executes the CFG on a training memory image and counts edges.
///
/// Register state starts zeroed (`r0` stays zero); `memory` maps word
/// addresses to values and is updated in place, so the caller can inspect
/// outputs. Semantics match the ISA executor in `predbranch-sim` exactly
/// (trap-free division, wrapping arithmetic, zero-default loads).
///
/// # Examples
///
/// ```
/// use predbranch_compiler::{profile_cfg, CfgBuilder, Cond, ProfileConfig};
/// use predbranch_isa::{CmpCond, Gpr};
/// use std::collections::HashMap;
///
/// let i = Gpr::new(1).unwrap();
/// let mut b = CfgBuilder::new();
/// b.for_range(i, 0, 10, |_| {});
/// b.halt();
/// let cfg = b.finish().unwrap();
/// let profile = profile_cfg(&cfg, &mut HashMap::new(), &ProfileConfig::default());
/// assert!(profile.halted());
/// ```
pub fn profile_cfg(
    cfg: &Cfg,
    memory: &mut HashMap<i64, i64>,
    config: &ProfileConfig,
) -> CfgProfile {
    let mut taken = vec![0u64; cfg.len()];
    let mut total = vec![0u64; cfg.len()];
    let mut block_count = vec![0u64; cfg.len()];
    let mut regs = [0i64; predbranch_isa::NUM_GPRS];
    let mut current = Cfg::ENTRY;
    let mut halted = false;
    let mut executed = 0u64;

    'run: while executed < config.max_blocks {
        executed += 1;
        block_count[current.index()] += 1;
        let block = cfg.block(current);
        for op in &block.ops {
            exec_op(op, &mut regs, memory);
        }
        match block.term {
            Terminator::Jump(t) => current = t,
            Terminator::CondBr {
                cond,
                then_bb,
                else_bb,
            } => {
                let v2 = read_src(cond.src2, &regs);
                let outcome = cond.eval(regs[cond.src1.index() as usize], v2);
                total[current.index()] += 1;
                if outcome {
                    taken[current.index()] += 1;
                    current = then_bb;
                } else {
                    current = else_bb;
                }
            }
            Terminator::Halt => {
                halted = true;
                break 'run;
            }
        }
    }

    CfgProfile {
        taken,
        total,
        block_count,
        halted,
    }
}

fn read_src(src: predbranch_isa::Src, regs: &[i64; predbranch_isa::NUM_GPRS]) -> i64 {
    match src {
        predbranch_isa::Src::Reg(r) => regs[r.index() as usize],
        predbranch_isa::Src::Imm(i) => i as i64,
    }
}

fn exec_op(op: &MidOp, regs: &mut [i64; predbranch_isa::NUM_GPRS], memory: &mut HashMap<i64, i64>) {
    let write = |regs: &mut [i64; predbranch_isa::NUM_GPRS], dst: predbranch_isa::Gpr, v: i64| {
        if !dst.is_zero() {
            regs[dst.index() as usize] = v;
        }
    };
    match *op {
        MidOp::Alu {
            op,
            dst,
            src1,
            src2,
        } => {
            let v = op.eval(regs[src1.index() as usize], read_src(src2, regs));
            write(regs, dst, v);
        }
        MidOp::Mov { dst, src } => {
            let v = read_src(src, regs);
            write(regs, dst, v);
        }
        MidOp::Load { dst, base, offset } => {
            let addr = regs[base.index() as usize].wrapping_add(offset as i64);
            let v = memory.get(&addr).copied().unwrap_or(0);
            write(regs, dst, v);
        }
        MidOp::Store { src, base, offset } => {
            let addr = regs[base.index() as usize].wrapping_add(offset as i64);
            memory.insert(addr, regs[src.index() as usize]);
        }
        MidOp::Nop => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CfgBuilder;
    use crate::cfg::Cond;
    use predbranch_isa::{AluOp, CmpCond, Gpr};

    fn r(i: u8) -> Gpr {
        Gpr::new(i).unwrap()
    }

    #[test]
    fn counted_loop_profile() {
        let mut b = CfgBuilder::new();
        b.for_range(r(1), 0, 10, |_| {});
        b.halt();
        let cfg = b.finish().unwrap();
        let profile = profile_cfg(&cfg, &mut HashMap::new(), &ProfileConfig::default());
        assert!(profile.halted());
        // the loop header branch executed 11 times, taken 10
        let header = cfg
            .block_ids()
            .find(|&id| {
                matches!(cfg.block(id).term, Terminator::CondBr { .. })
                    && profile.executions(id) > 0
            })
            .unwrap();
        assert_eq!(profile.branch_counts(header), Some((10, 11)));
        assert!((profile.taken_fraction(header).unwrap() - 10.0 / 11.0).abs() < 1e-12);
        assert!((profile.bias(header).unwrap() - 10.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn data_dependent_branch_bias() {
        // branch on mem[i] % 2 over 0..100 with memory all zero: never taken... store 1s at odd addrs.
        let mut memory = HashMap::new();
        for a in 0..100i64 {
            memory.insert(a, a % 4);
        }
        let (i, v) = (r(1), r(2));
        let mut b = CfgBuilder::new();
        b.for_range(i, 0, 100, |b| {
            b.load(v, i, 0);
            b.if_then(Cond::new(CmpCond::Eq, v, 0), |b| b.addi(r(3), r(3), 1));
        });
        b.halt();
        let cfg = b.finish().unwrap();
        let profile = profile_cfg(&cfg, &mut memory, &ProfileConfig::default());
        // the inner branch (inside the loop, not the header) is 25% taken
        let inner = cfg
            .block_ids()
            .filter(|&id| matches!(cfg.block(id).term, Terminator::CondBr { .. }))
            .find(|&id| profile.branch_counts(id).map(|(_, t)| t) == Some(100))
            .expect("inner branch executed 100 times");
        assert_eq!(profile.branch_counts(inner), Some((25, 100)));
        assert_eq!(profile.bias(inner), Some(0.75));
    }

    #[test]
    fn never_executed_branch_has_no_bias() {
        let mut b = CfgBuilder::new();
        b.if_then_else(
            Cond::new(CmpCond::Eq, r(1), 0),
            |_| {},
            |b| {
                // dead inner branch: r1 == 0 always (regs start zeroed)
                b.if_then(Cond::new(CmpCond::Gt, r(2), 0), |_| {});
            },
        );
        b.halt();
        let cfg = b.finish().unwrap();
        let profile = profile_cfg(&cfg, &mut HashMap::new(), &ProfileConfig::default());
        let dead = cfg
            .block_ids()
            .filter(|&id| matches!(cfg.block(id).term, Terminator::CondBr { .. }))
            .find(|&id| profile.executions(id) == 0)
            .expect("dead branch exists");
        assert_eq!(profile.bias(dead), None);
        assert_eq!(profile.taken_fraction(dead), None);
    }

    #[test]
    fn step_limit_stops_infinite_loops() {
        let mut b = CfgBuilder::new();
        b.while_loop(|_| Cond::new(CmpCond::Eq, r(1), 0), |_| {});
        b.halt();
        let cfg = b.finish().unwrap();
        let profile = profile_cfg(
            &cfg,
            &mut HashMap::new(),
            &ProfileConfig { max_blocks: 100 },
        );
        assert!(!profile.halted());
    }

    #[test]
    fn memory_updates_visible_to_caller() {
        let mut b = CfgBuilder::new();
        b.mov(r(1), 42);
        b.store(r(1), Gpr::ZERO, 7);
        b.halt();
        let cfg = b.finish().unwrap();
        let mut memory = HashMap::new();
        profile_cfg(&cfg, &mut memory, &ProfileConfig::default());
        assert_eq!(memory.get(&7), Some(&42));
    }

    #[test]
    fn r0_stays_zero() {
        let mut b = CfgBuilder::new();
        b.mov(Gpr::ZERO, 99);
        b.alu(AluOp::Add, r(1), Gpr::ZERO, 1);
        b.store(r(1), Gpr::ZERO, 0);
        b.halt();
        let cfg = b.finish().unwrap();
        let mut memory = HashMap::new();
        profile_cfg(&cfg, &mut memory, &ProfileConfig::default());
        assert_eq!(memory.get(&0), Some(&1));
    }
}

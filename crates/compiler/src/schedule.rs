//! Compare hoisting: a post-lowering scheduling pass that moves
//! compare-to-predicate instructions as early as data dependences allow.
//!
//! The IMPACT compiler scheduled compares away from their consuming
//! branches on purpose: every slot of definition-to-branch distance gives
//! the front end a better chance of *resolving* the predicate before the
//! branch fetches (squash filter) and of landing the predicate bit in
//! global history in time (PGU). This pass reproduces that effect on the
//! linearized program:
//!
//! * the program is cut into straight-line *windows* at every branch,
//!   halt, and branch target (nothing moves across control flow or entry
//!   points; labels that are not branch targets are scheduled across freely);
//! * within a window, each compare bubbles upward past instructions that
//!   neither produce its inputs nor touch its predicate targets.
//!
//! The pass is semantics-preserving (checked by the differential property
//! tests in `predbranch-sim`) and never changes program length, so branch
//! targets and labels stay valid.

use std::collections::HashSet;

use predbranch_isa::{Gpr, Inst, Op, PredReg, Program, Src};

/// Result of [`hoist_compares`]: the rescheduled program plus how many
/// single-slot moves were performed.
#[derive(Debug, Clone)]
pub struct HoistResult {
    /// The rescheduled program (same length, same labels).
    pub program: Program,
    /// Number of compare-past-instruction swaps performed.
    pub moves: u64,
}

/// Registers an instruction reads (GPRs) — used for dependence checks.
fn gpr_reads(inst: &Inst) -> Vec<Gpr> {
    fn src_reg(src: Src) -> Option<Gpr> {
        match src {
            Src::Reg(r) => Some(r),
            Src::Imm(_) => None,
        }
    }
    let mut reads = Vec::new();
    match inst.op {
        Op::Alu { src1, src2, .. } => {
            reads.push(src1);
            reads.extend(src_reg(src2));
        }
        Op::Mov { src, .. } => reads.extend(src_reg(src)),
        Op::Load { base, .. } => reads.push(base),
        Op::Store { src, base, .. } => {
            reads.push(src);
            reads.push(base);
        }
        Op::Cmp { src1, src2, .. } => {
            reads.push(src1);
            reads.extend(src_reg(src2));
        }
        Op::Br { .. } | Op::Halt | Op::Nop => {}
    }
    reads
}

/// The GPR an instruction writes, if any.
fn gpr_write(inst: &Inst) -> Option<Gpr> {
    match inst.op {
        Op::Alu { dst, .. } | Op::Mov { dst, .. } | Op::Load { dst, .. } => Some(dst),
        _ => None,
    }
}

/// Predicates an instruction writes (compare targets).
fn pred_writes(inst: &Inst) -> Vec<PredReg> {
    match inst.op {
        Op::Cmp {
            p_true, p_false, ..
        } => vec![p_true, p_false],
        _ => Vec::new(),
    }
}

/// Whether `cmp` (a compare) may move above `other` (the instruction
/// currently before it) without changing semantics.
fn may_swap(cmp: &Inst, other: &Inst) -> bool {
    // never move across control flow
    if matches!(other.op, Op::Br { .. } | Op::Halt) {
        return false;
    }
    let cmp_targets = pred_writes(cmp);
    // `other` must not produce any GPR the compare reads
    if let Some(w) = gpr_write(other) {
        if !w.is_zero() && gpr_reads(cmp).contains(&w) {
            return false;
        }
    }
    // `other` must not read (as guard) or write any predicate the
    // compare writes, and the compare must not write `other`'s guard
    if cmp_targets.contains(&other.guard) {
        return false;
    }
    let other_preds = pred_writes(other);
    if cmp_targets.iter().any(|p| other_preds.contains(p)) {
        return false;
    }
    // `other` must not write the compare's own guard
    if other_preds.contains(&cmp.guard) {
        return false;
    }
    true
}

/// Hoists compares within straight-line windows (see module docs).
///
/// # Examples
///
/// ```
/// use predbranch_compiler::hoist_compares;
/// use predbranch_isa::assemble;
///
/// // the cmp's operands are ready at the top: it hoists past the adds
/// let p = assemble(
///     "mov r1 = 5\n add r2 = r2, 1\n add r3 = r3, 1\n cmp.gt p1, p2 = r1, 0\n (p1) br @0\n halt",
/// ).unwrap();
/// let hoisted = hoist_compares(&p);
/// assert!(hoisted.moves >= 2);
/// assert!(hoisted.program.inst(1).unwrap().is_cmp());
/// ```
pub fn hoist_compares(program: &Program) -> HoistResult {
    // Barriers: pcs that start a window — branch targets. (Labels that
    // nothing jumps to are purely informational and safe to schedule
    // across; targeted pcs are entry points whose instruction must not
    // move above them.)
    let mut barriers: HashSet<u32> = HashSet::new();
    for (_, inst) in program.iter() {
        if let Op::Br { target, .. } = inst.op {
            barriers.insert(target);
        }
    }

    let mut insts: Vec<Inst> = program.insts().to_vec();
    let mut moves = 0u64;
    // Bubble each compare upward. Iterate top-down so earlier compares
    // settle before later ones try to cross them.
    for i in 1..insts.len() {
        if !insts[i].is_cmp() {
            continue;
        }
        let mut pos = i;
        while pos > 0 && !barriers.contains(&(pos as u32)) && may_swap(&insts[pos], &insts[pos - 1])
        {
            insts.swap(pos, pos - 1);
            pos -= 1;
            moves += 1;
        }
    }

    let labels = (0..program.len())
        .filter_map(|pc| program.label_at(pc).map(|name| (name.to_string(), pc)))
        .collect();
    let program = Program::with_labels(insts, labels)
        .expect("hoisting preserves length, targets, and the halt");
    HoistResult { program, moves }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predbranch_isa::assemble;

    #[test]
    fn hoists_independent_compare_to_window_top() {
        let p = assemble(
            r#"
                mov r1 = 5
                add r2 = r2, 1
                add r3 = r3, 1
                cmp.gt p1, p2 = r1, 0
                (p1) br @0
                halt
            "#,
        )
        .unwrap();
        let hoisted = hoist_compares(&p);
        // the cmp can pass both adds but not the mov that defines r1
        assert!(
            hoisted.program.inst(1).unwrap().is_cmp(),
            "{}",
            hoisted.program
        );
        assert_eq!(hoisted.moves, 2);
    }

    #[test]
    fn does_not_cross_producer_of_operand() {
        let p = assemble(
            r#"
                add r1 = r1, 1
                cmp.gt p1, p2 = r1, 0
                (p1) br @0
                halt
            "#,
        )
        .unwrap();
        let hoisted = hoist_compares(&p);
        assert_eq!(hoisted.moves, 0);
        assert!(hoisted.program.inst(1).unwrap().is_cmp());
    }

    #[test]
    fn does_not_cross_guarded_reader_of_target() {
        // the add is guarded by p1; the cmp defining p1 must stay below it
        let p = assemble(
            r#"
                (p1) add r2 = r2, 1
                cmp.gt p1, p2 = r3, 0
                halt
            "#,
        )
        .unwrap();
        let hoisted = hoist_compares(&p);
        assert_eq!(hoisted.moves, 0);
    }

    #[test]
    fn does_not_cross_branches_or_labels() {
        let p = assemble(
            r#"
                nop
                br skip
            skip:
                nop
                cmp.eq p1, p2 = r1, 0
                halt
            "#,
        )
        .unwrap();
        let hoisted = hoist_compares(&p);
        // can pass the nop inside the window but must stop at the label
        let cmp_pc = hoisted
            .program
            .iter()
            .find(|(_, i)| i.is_cmp())
            .map(|(pc, _)| pc)
            .unwrap();
        assert_eq!(cmp_pc, 2, "{}", hoisted.program);
    }

    #[test]
    fn two_compares_preserve_relative_dependences() {
        // second cmp's guard is written by the first: order must hold
        let p = assemble(
            r#"
                nop
                cmp.gt p1, p2 = r1, 0
                (p1) cmp.gt.unc p3, p4 = r2, 0
                halt
            "#,
        )
        .unwrap();
        let hoisted = hoist_compares(&p);
        let pcs: Vec<u32> = hoisted
            .program
            .iter()
            .filter(|(_, i)| i.is_cmp())
            .map(|(pc, _)| pc)
            .collect();
        assert_eq!(pcs.len(), 2);
        assert!(pcs[0] < pcs[1]);
        // first cmp hoisted past the nop; dependent cmp right behind it
        assert_eq!(pcs, vec![0, 1], "{}", hoisted.program);
    }

    #[test]
    fn labels_survive() {
        let p = assemble("top: nop\n cmp.eq p1, p2 = r1, 0\n (p1) br top\n halt").unwrap();
        let hoisted = hoist_compares(&p);
        assert_eq!(hoisted.program.resolve_label("top"), Some(0));
        assert_eq!(hoisted.program.len(), p.len());
    }

    #[test]
    fn semantics_preserved_on_a_loop() {
        use predbranch_sim_check::run_both;
        let p = assemble(
            r#"
                mov r1 = 0
                mov r4 = 1
            loop:
                add r4 = r4, r4
                and r4 = r4, 1023
                cmp.lt p1, p2 = r1, 40
                (p1) add r1 = r1, 1
                (p1) br loop
                st [r0 + 0] = r4
                halt
            "#,
        )
        .unwrap();
        let hoisted = hoist_compares(&p);
        assert!(hoisted.moves > 0, "{}", hoisted.program);
        run_both(&p, &hoisted.program);
    }

    /// Minimal in-crate interpreter check (the full differential tests
    /// live in `predbranch-sim`): execute both programs with the
    /// compiler's own profile interpreter semantics via a tiny stepper.
    mod predbranch_sim_check {
        use predbranch_isa::{apply_cmp_type, Op, Program, Src};

        pub fn run_both(a: &Program, b: &Program) {
            assert_eq!(exec(a), exec(b), "hoisting changed semantics");
        }

        fn exec(p: &Program) -> ([i64; 64], Vec<(i64, i64)>) {
            let mut regs = [0i64; 64];
            let mut preds = [false; 64];
            preds[0] = true;
            let mut mem = std::collections::BTreeMap::new();
            let mut pc = 0u32;
            for _ in 0..100_000 {
                let Some(inst) = p.inst(pc) else { break };
                let guard = preds[inst.guard.index() as usize];
                let src = |s: Src, regs: &[i64; 64]| match s {
                    Src::Reg(r) => regs[r.index() as usize],
                    Src::Imm(i) => i as i64,
                };
                let mut next = pc + 1;
                match inst.op {
                    Op::Nop => {}
                    Op::Halt => {
                        if guard {
                            break;
                        }
                    }
                    Op::Alu {
                        op,
                        dst,
                        src1,
                        src2,
                    } => {
                        if guard && !dst.is_zero() {
                            regs[dst.index() as usize] =
                                op.eval(regs[src1.index() as usize], src(src2, &regs));
                        }
                    }
                    Op::Mov { dst, src: s } => {
                        if guard && !dst.is_zero() {
                            regs[dst.index() as usize] = src(s, &regs);
                        }
                    }
                    Op::Load { dst, base, offset } => {
                        if guard && !dst.is_zero() {
                            let addr = regs[base.index() as usize] + offset as i64;
                            regs[dst.index() as usize] = *mem.get(&addr).unwrap_or(&0);
                        }
                    }
                    Op::Store {
                        src: s,
                        base,
                        offset,
                    } => {
                        if guard {
                            let addr = regs[base.index() as usize] + offset as i64;
                            mem.insert(addr, regs[s.index() as usize]);
                        }
                    }
                    Op::Cmp {
                        ctype,
                        cond,
                        p_true,
                        p_false,
                        src1,
                        src2,
                    } => {
                        let result = cond.eval(regs[src1.index() as usize], src(src2, &regs));
                        let old = (
                            preds[p_true.index() as usize],
                            preds[p_false.index() as usize],
                        );
                        let new = apply_cmp_type(ctype, guard, result, old);
                        if !p_true.is_always_true() {
                            preds[p_true.index() as usize] = new.0;
                        }
                        if !p_false.is_always_true() {
                            preds[p_false.index() as usize] = new.1;
                        }
                    }
                    Op::Br { target, .. } => {
                        if guard {
                            next = target;
                        }
                    }
                }
                pc = next;
            }
            (regs, mem.into_iter().collect())
        }
    }
}

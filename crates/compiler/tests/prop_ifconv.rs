//! Structural property tests for if-conversion, on randomly generated
//! structured CFGs (semantic equivalence is covered by the differential
//! tests in `predbranch-sim`).

use proptest::prelude::*;

use predbranch_compiler::{if_convert, lower, Cfg, CfgBuilder, Cond, Dominators, IfConvertConfig};
use predbranch_isa::{AluOp, CmpCond, Gpr, Op};

#[derive(Debug, Clone)]
enum Stmt {
    Op,
    IfThenElse(Box<Stmt>, Box<Stmt>),
    IfThen(Box<Stmt>),
    Loop(u8, Box<Stmt>),
    Seq(Vec<Stmt>),
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    let leaf = Just(Stmt::Op);
    leaf.prop_recursive(3, 20, 4, |inner| {
        prop_oneof![
            Just(Stmt::Op),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Stmt::IfThenElse(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| Stmt::IfThen(Box::new(a))),
            (1u8..4, inner.clone()).prop_map(|(n, a)| Stmt::Loop(n, Box::new(a))),
            prop::collection::vec(inner, 0..3).prop_map(Stmt::Seq),
        ]
    })
}

fn r(i: u8) -> Gpr {
    Gpr::new(i).unwrap()
}

fn emit(b: &mut CfgBuilder, stmt: &Stmt, depth: u8, counter: &mut u8) {
    *counter = counter.wrapping_add(1);
    let reg = r(1 + (*counter % 8));
    match stmt {
        Stmt::Op => b.alu(AluOp::Add, reg, reg, 1),
        Stmt::IfThenElse(t, e) => {
            let cond = Cond::new(CmpCond::Lt, reg, 3);
            let (t, e) = (t.clone(), e.clone());
            let mut c1 = *counter;
            let mut c2 = *counter;
            b.if_then_else(
                cond,
                |b| emit(b, &t, depth, &mut c1),
                |b| emit(b, &e, depth, &mut c2),
            );
        }
        Stmt::IfThen(t) => {
            let t = t.clone();
            let mut c1 = *counter;
            b.if_then(Cond::new(CmpCond::Ge, reg, 2), |b| {
                emit(b, &t, depth, &mut c1)
            });
        }
        Stmt::Loop(n, body) => {
            let body = body.clone();
            let mut c1 = *counter;
            b.for_range(r(30 + depth), 0, *n as i32, |b| {
                emit(b, &body, depth + 1, &mut c1);
            });
        }
        Stmt::Seq(stmts) => {
            for s in stmts {
                emit(b, s, depth, counter);
            }
        }
    }
}

fn build(stmt: &Stmt) -> Cfg {
    let mut b = CfgBuilder::new();
    let mut counter = 0;
    emit(&mut b, stmt, 0, &mut counter);
    b.halt();
    b.finish().expect("generated CFGs are well-formed")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every accepted region's seed dominates all its blocks (the
    /// single-entry property predication correctness rests on).
    #[test]
    fn region_seeds_dominate_members(stmt in arb_stmt()) {
        let cfg = build(&stmt);
        let result = if_convert(&cfg, None, &IfConvertConfig::default()).unwrap();
        let dom = Dominators::compute(&cfg);
        for region in &result.regions {
            for &block in &region.blocks {
                prop_assert!(
                    dom.dominates(region.seed, block),
                    "region {} seed {} does not dominate {}",
                    region.id,
                    region.seed,
                    block
                );
            }
        }
    }

    /// Region blocks are disjoint across regions.
    #[test]
    fn regions_are_disjoint(stmt in arb_stmt()) {
        let cfg = build(&stmt);
        let result = if_convert(&cfg, None, &IfConvertConfig::default()).unwrap();
        let mut seen = std::collections::HashSet::new();
        for region in &result.regions {
            for &block in &region.blocks {
                prop_assert!(seen.insert(block), "{block} in two regions");
            }
        }
    }

    /// Every emitted region id is dense and every `br.region` id refers
    /// to a real region.
    #[test]
    fn region_ids_are_consistent(stmt in arb_stmt()) {
        let cfg = build(&stmt);
        let result = if_convert(&cfg, None, &IfConvertConfig::default()).unwrap();
        for (i, region) in result.regions.iter().enumerate() {
            prop_assert_eq!(region.id as usize, i);
        }
        for (_, inst) in result.program.iter() {
            if let Op::Br { region: Some(id), .. } = inst.op {
                prop_assert!((id as usize) < result.regions.len());
            }
        }
    }

    /// Lowering and if-conversion both produce validated programs whose
    /// label sets cover the CFG's unit heads.
    #[test]
    fn lowering_is_total_on_structured_cfgs(stmt in arb_stmt()) {
        let cfg = build(&stmt);
        let plain = lower(&cfg).unwrap();
        prop_assert!(plain.len() > 0);
        prop_assert!(plain.resolve_label("bb0").is_some());
        let converted = if_convert(&cfg, None, &IfConvertConfig::default()).unwrap();
        prop_assert!(converted.program.resolve_label("bb0").is_some());
    }

    /// Predicated instruction counts reconcile: every region block that
    /// runs under a non-trivial guard contributes predicated instructions.
    #[test]
    fn predication_bookkeeping(stmt in arb_stmt()) {
        let cfg = build(&stmt);
        let result = if_convert(&cfg, None, &IfConvertConfig::default()).unwrap();
        let stats = result.program.stats();
        if result.stats.blocks_predicated > 0 {
            prop_assert!(stats.predicated > 0);
        }
        prop_assert_eq!(stats.region_branches, result.stats.branches_kept);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Post-dominator sanity on random structured CFGs: every block
    /// reaches the exit, its immediate post-dominator post-dominates it,
    /// and exactly the branch blocks carry control dependences.
    #[test]
    fn postdominators_are_consistent(stmt in arb_stmt()) {
        use predbranch_compiler::{control_dependences, PostDominators, Terminator};
        let cfg = build(&stmt);
        let pdom = PostDominators::compute(&cfg);
        let rpo: std::collections::HashSet<_> =
            cfg.reverse_postorder().into_iter().collect();
        for id in cfg.block_ids().filter(|b| rpo.contains(b)) {
            prop_assert!(pdom.reaches_exit(id), "{id} cannot reach exit");
            let ip = pdom.ipdom(id).expect("reachable blocks have ipdom");
            prop_assert!(pdom.post_dominates(ip, id));
        }
        for (a, _) in control_dependences(&cfg) {
            prop_assert!(
                matches!(cfg.block(a).term, Terminator::CondBr { .. }),
                "control dependence source {a} is not a branch"
            );
        }
    }

    /// Natural-loop invariants on random structured CFGs: headers
    /// dominate their bodies, latches are body members, and nesting depth
    /// equals the number of loops containing each block.
    #[test]
    fn loops_are_consistent(stmt in arb_stmt()) {
        use predbranch_compiler::Loops;
        let cfg = build(&stmt);
        let loops = Loops::find(&cfg);
        let dom = Dominators::compute(&cfg);
        for l in loops.all() {
            for &b in &l.body {
                prop_assert!(dom.dominates(l.header, b));
            }
            for &latch in &l.latches {
                prop_assert!(l.contains(latch));
            }
        }
        for id in cfg.block_ids() {
            let containing = loops.all().iter().filter(|l| l.contains(id)).count() as u32;
            prop_assert_eq!(loops.depth(id), containing);
        }
    }
}

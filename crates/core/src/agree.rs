//! The agree predictor (Sprangle et al., ISCA 1997).
//!
//! Region-based branches are heavily biased (side exits fire rarely), so
//! a predictor that stores each branch's *bias* once and predicts
//! agreement with it converts destructive pattern-table aliasing into
//! constructive aliasing — two biased branches sharing a counter now
//! reinforce instead of fight. Included as an extension baseline: it is
//! the other 1990s technique aimed at exactly the branch population this
//! study targets.

use predbranch_sim::PredicateScoreboard;

use crate::history::GlobalHistory;
use crate::predictor::{BranchInfo, BranchPredictor, HasGlobalHistory, HistoryInsert};
use crate::ring::Checkpoints;
use crate::tables::{CounterTable, TwoBitCounter};

/// An agree predictor: a per-branch bias bit (latched at the branch's
/// first execution) plus a gshare-indexed table of 2-bit *agree*
/// counters initialized to weakly-agree.
///
/// # Examples
///
/// ```
/// use predbranch_core::{Agree, BranchPredictor};
///
/// let p = Agree::new(12, 10);
/// assert_eq!(p.name(), "agree-12/10");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Agree {
    bias: Vec<Option<bool>>,
    table: CounterTable,
    history: GlobalHistory,
    bias_bits: u32,
    checkpoints: Checkpoints<GlobalHistory>,
}

impl Agree {
    /// Creates an agree predictor with `2^index_bits` agree counters and
    /// an equally sized bias table, over `history_bits` of history.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is outside `1..=28` or `history_bits`
    /// outside `1..=64`.
    pub fn new(index_bits: u32, history_bits: u32) -> Self {
        Agree {
            bias: vec![None; 1 << index_bits],
            table: CounterTable::with_initial(index_bits, TwoBitCounter::weakly_taken()),
            history: GlobalHistory::new(history_bits),
            bias_bits: index_bits,
            checkpoints: Checkpoints::new(),
        }
    }

    fn bias_slot(&self, pc: u32) -> usize {
        (pc as usize) & (self.bias.len() - 1)
    }

    fn index(&self, pc: u32) -> u64 {
        u64::from(pc) ^ self.history.folded(self.table.index_bits())
    }

    /// The latched bias for a branch, if it has executed.
    pub fn bias_of(&self, pc: u32) -> Option<bool> {
        self.bias[self.bias_slot(pc)]
    }
}

impl BranchPredictor for Agree {
    fn name(&self) -> String {
        format!("agree-{}/{}", self.bias_bits, self.history.len())
    }

    fn predict(&mut self, branch: &BranchInfo, _scoreboard: &PredicateScoreboard) -> bool {
        // first encounter: BTFN until the bias latches
        let bias = self.bias[self.bias_slot(branch.pc)].unwrap_or(branch.is_backward());
        let agree = self.table.predict(self.index(branch.pc));
        if agree {
            bias
        } else {
            !bias
        }
    }

    fn speculate(&mut self, _branch: &BranchInfo, predicted: bool, _sb: &PredicateScoreboard) {
        self.checkpoints.push_back(self.history);
        self.history.shift_in(predicted);
    }

    fn commit(&mut self, branch: &BranchInfo, taken: bool, _scoreboard: &PredicateScoreboard) {
        let checkpoint = self
            .checkpoints
            .pop_front()
            .expect("agree commit without a matching speculate");
        let slot = self.bias_slot(branch.pc);
        let bias = *self.bias[slot].get_or_insert(taken);
        let index = u64::from(branch.pc) ^ checkpoint.folded(self.table.index_bits());
        self.table.update(index, taken == bias);
    }

    fn squash(&mut self, _branch: &BranchInfo, taken: bool, _scoreboard: &PredicateScoreboard) {
        let checkpoint = *self
            .checkpoints
            .front()
            .expect("agree squash without a matching speculate");
        self.history = checkpoint;
        self.history.shift_in(taken);
    }

    fn storage_bits(&self) -> usize {
        // bias bit + valid bit per entry, plus counters and history
        self.bias.len() * 2 + self.table.storage_bits() + self.history.storage_bits()
    }
}

impl HasGlobalHistory for Agree {
    fn global_history_mut(&mut self) -> &mut GlobalHistory {
        &mut self.history
    }
}

impl HistoryInsert for Agree {
    fn insert_history_bit(&mut self, outcome: bool) {
        self.history.shift_in(outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predbranch_isa::PredReg;

    fn info(pc: u32) -> BranchInfo {
        BranchInfo {
            pc,
            target: 0,
            guard: PredReg::new(1).unwrap(),
            region: Some(0),
            index: 0,
        }
    }

    fn sb() -> PredicateScoreboard {
        PredicateScoreboard::new(0)
    }

    #[test]
    fn bias_latches_on_first_outcome() {
        let sb = sb();
        let mut p = Agree::new(8, 8);
        assert_eq!(p.bias_of(5), None);
        p.update(&info(5), true, &sb);
        assert_eq!(p.bias_of(5), Some(true));
        // later contrary outcomes do not relatch
        p.update(&info(5), false, &sb);
        assert_eq!(p.bias_of(5), Some(true));
    }

    #[test]
    fn biased_branch_predicted_from_the_start() {
        // a 95%-taken branch: after the bias latches taken, the
        // weakly-agree initial counters predict taken immediately
        let sb = sb();
        let mut p = Agree::new(10, 8);
        p.update(&info(9), true, &sb);
        assert!(p.predict(&info(9), &sb));
    }

    #[test]
    fn aliased_biased_branches_reinforce() {
        // two branches, opposite biases, deliberately aliasing the same
        // counters (same pc modulo table, tiny table): agree encoding
        // keeps both accurate where raw gshare would fight
        let sb = sb();
        let mut p = Agree::new(2, 1); // 4 counters and bias slots: heavy aliasing
        let mut wrong = 0;
        for i in 0..400 {
            for (pc, outcome) in [(1u32, true), (3u32, false)] {
                let predicted = p.predict(&info(pc), &sb);
                if i >= 50 && predicted != outcome {
                    wrong += 1;
                }
                p.update(&info(pc), outcome, &sb);
            }
        }
        assert_eq!(
            wrong, 0,
            "agree must neutralize aliasing of biased branches"
        );
    }

    #[test]
    fn unbiased_branch_still_learns_patterns() {
        let sb = sb();
        let mut p = Agree::new(10, 8);
        let mut outcome = false;
        let mut wrong_tail = 0;
        for i in 0..300 {
            outcome = !outcome;
            if i >= 150 && p.predict(&info(7), &sb) != outcome {
                wrong_tail += 1;
            }
            p.update(&info(7), outcome, &sb);
        }
        assert_eq!(wrong_tail, 0, "alternation is learnable through agree bits");
    }

    #[test]
    fn pgu_hook_reaches_history() {
        let mut p = Agree::new(6, 6);
        p.global_history_mut().shift_in(true);
        assert_eq!(p.history.value(), 1);
    }

    #[test]
    fn storage_accounting() {
        let p = Agree::new(10, 12);
        assert_eq!(p.storage_bits(), 1024 * 2 + 2048 + 12);
    }
}

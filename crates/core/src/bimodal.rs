//! The bimodal (per-PC 2-bit counter) predictor.

use predbranch_sim::PredicateScoreboard;

use crate::predictor::{BranchInfo, BranchPredictor};
use crate::tables::CounterTable;

/// A bimodal predictor: one 2-bit counter per (hashed) branch PC.
///
/// The classic Smith predictor — captures per-branch bias but no
/// correlation, making it the natural floor for the history-based
/// predictors in this study.
///
/// # Examples
///
/// ```
/// use predbranch_core::{Bimodal, BranchPredictor};
///
/// let p = Bimodal::new(12);
/// assert_eq!(p.storage_bits(), 8192);
/// assert_eq!(p.name(), "bimodal-12");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bimodal {
    table: CounterTable,
}

impl Bimodal {
    /// Creates a bimodal predictor with `2^index_bits` counters.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is outside `1..=28`.
    pub fn new(index_bits: u32) -> Self {
        Bimodal {
            table: CounterTable::new(index_bits),
        }
    }
}

impl BranchPredictor for Bimodal {
    fn name(&self) -> String {
        format!("bimodal-{}", self.table.index_bits())
    }

    fn predict(&mut self, branch: &BranchInfo, _scoreboard: &PredicateScoreboard) -> bool {
        self.table.predict(branch.pc as u64)
    }

    // No speculative state: the counter index depends only on the PC, so
    // the default no-op `speculate`/`squash` are exact.
    fn commit(&mut self, branch: &BranchInfo, taken: bool, _scoreboard: &PredicateScoreboard) {
        self.table.update(branch.pc as u64, taken);
    }

    fn storage_bits(&self) -> usize {
        self.table.storage_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predbranch_isa::PredReg;

    fn info(pc: u32) -> BranchInfo {
        BranchInfo {
            pc,
            target: 0,
            guard: PredReg::new(1).unwrap(),
            region: None,
            index: 0,
        }
    }

    #[test]
    fn learns_per_branch_bias() {
        let sb = PredicateScoreboard::new(0);
        let mut p = Bimodal::new(10);
        for _ in 0..4 {
            p.update(&info(100), true, &sb);
            p.update(&info(200), false, &sb);
        }
        assert!(p.predict(&info(100), &sb));
        assert!(!p.predict(&info(200), &sb));
    }

    #[test]
    fn alternating_branch_stays_wrong_half_the_time() {
        let sb = PredicateScoreboard::new(0);
        let mut p = Bimodal::new(10);
        let mut wrong = 0;
        let mut outcome = false;
        for _ in 0..100 {
            outcome = !outcome;
            if p.predict(&info(7), &sb) != outcome {
                wrong += 1;
            }
            p.update(&info(7), outcome, &sb);
        }
        // bimodal cannot learn alternation
        assert!(wrong >= 50, "wrong = {wrong}");
    }

    #[test]
    fn distinct_pcs_use_distinct_counters() {
        let sb = PredicateScoreboard::new(0);
        let mut p = Bimodal::new(4);
        p.update(&info(1), true, &sb);
        p.update(&info(1), true, &sb);
        assert!(p.predict(&info(1), &sb));
        assert!(!p.predict(&info(2), &sb));
    }
}

//! Declarative predictor construction for experiment sweeps.

use std::fmt;

use crate::agree::Agree;
use crate::bimodal::Bimodal;
use crate::gshare::Gshare;
use crate::local::Local;
use crate::oracle::PerfectGuard;
use crate::perceptron::Perceptron;
use crate::pgu::Pgu;
use crate::predictor::{BranchPredictor, StaticPredictor};
use crate::sfpf::SquashFilter;
use crate::tournament::Tournament;

/// A declarative description of a predictor configuration, used by the
/// experiment harness to sweep baselines × techniques × sizes from data
/// tables instead of code.
///
/// # Examples
///
/// ```
/// use predbranch_core::{build_predictor, PredictorSpec};
///
/// let spec = PredictorSpec::Gshare { index_bits: 14, history_bits: 12 }
///     .with_sfpf()
///     .with_pgu(0);
/// let p = build_predictor(&spec);
/// assert!(p.name().contains("sfpf"));
/// assert!(p.name().contains("pgu"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PredictorSpec {
    /// Always not-taken.
    StaticNotTaken,
    /// Backward-taken / forward-not-taken.
    StaticBtfn,
    /// Per-PC 2-bit counters.
    Bimodal {
        /// log2 table entries.
        index_bits: u32,
    },
    /// Global-history gshare.
    Gshare {
        /// log2 table entries.
        index_bits: u32,
        /// History register length.
        history_bits: u32,
    },
    /// Two-level local predictor.
    Local {
        /// log2 branch-history-table entries.
        bht_bits: u32,
        /// Per-branch history length.
        history_bits: u32,
        /// log2 pattern-table entries.
        pattern_bits: u32,
    },
    /// McFarling tournament.
    Tournament {
        /// log2 gshare table entries.
        gshare_bits: u32,
        /// Global history length.
        history_bits: u32,
        /// log2 bimodal table entries.
        bimodal_bits: u32,
        /// log2 chooser table entries.
        chooser_bits: u32,
    },
    /// Agree predictor: bias bits + gshare-indexed agree counters
    /// (extension baseline).
    Agree {
        /// log2 table entries (bias and agree tables).
        index_bits: u32,
        /// Global history length.
        history_bits: u32,
    },
    /// Perceptron predictor over global history (extension baseline).
    Perceptron {
        /// log2 weight-vector count.
        index_bits: u32,
        /// Global history length.
        history_bits: u32,
    },
    /// Perfect-guard oracle (100% accurate upper bound).
    OracleGuard,
    /// Add the squash false-path filter around the base predictor.
    Sfpf {
        /// The wrapped configuration.
        base: Box<PredictorSpec>,
        /// Also apply the known-true → taken rule.
        known_true: bool,
        /// Whether filtered branches still train the base predictor.
        update_filtered: bool,
        /// Model guard identification with a learned pc → guard table of
        /// `2^n` entries (`None` = idealized decode-at-fetch).
        learned_guards: Option<u32>,
    },
    /// Add predicate global update around a global-history base
    /// ([`PredictorSpec::Gshare`] or [`PredictorSpec::Tournament`], or an
    /// `Sfpf` around one of those; anything else falls back to the plain
    /// base).
    Pgu {
        /// The wrapped configuration.
        base: Box<PredictorSpec>,
        /// Insertion delay in fetch slots (0 = execute-time).
        delay: u64,
    },
}

impl PredictorSpec {
    /// Wraps this spec in the squash false-path filter (default policy).
    pub fn with_sfpf(self) -> PredictorSpec {
        PredictorSpec::Sfpf {
            base: Box::new(self),
            known_true: false,
            update_filtered: true,
            learned_guards: None,
        }
    }

    /// Wraps this spec in predicate global update with the given delay.
    pub fn with_pgu(self, delay: u64) -> PredictorSpec {
        PredictorSpec::Pgu {
            base: Box::new(self),
            delay,
        }
    }

    /// A 2-bit-counter gshare sized to roughly `kilobytes` KB of counter
    /// storage, with history matched to the index width — the sizing
    /// convention used in the study's budget sweeps.
    pub fn gshare_kb(kilobytes: u32) -> PredictorSpec {
        // 2^index_bits counters × 2 bits = budget; 1 KB = 4096 counters
        let index_bits = 12 + kilobytes.max(1).ilog2();
        PredictorSpec::Gshare {
            index_bits,
            history_bits: index_bits.min(16),
        }
    }
}

/// `Display` delegates to the built predictor's name so table rows and
/// specs never diverge.
impl fmt::Display for PredictorSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&build_predictor(self).name())
    }
}

/// Builds a boxed predictor from a spec.
///
/// PGU requires a global-history base; applying it to a base without one
/// (e.g. bimodal) returns the base unchanged, which keeps sweep tables
/// total without special-casing.
pub fn build_predictor(spec: &PredictorSpec) -> Box<dyn BranchPredictor> {
    match spec {
        PredictorSpec::StaticNotTaken => Box::new(StaticPredictor::NotTaken),
        PredictorSpec::StaticBtfn => Box::new(StaticPredictor::Btfn),
        PredictorSpec::Bimodal { index_bits } => Box::new(Bimodal::new(*index_bits)),
        PredictorSpec::Gshare {
            index_bits,
            history_bits,
        } => Box::new(Gshare::new(*index_bits, *history_bits)),
        PredictorSpec::Local {
            bht_bits,
            history_bits,
            pattern_bits,
        } => Box::new(Local::new(*bht_bits, *history_bits, *pattern_bits)),
        PredictorSpec::Tournament {
            gshare_bits,
            history_bits,
            bimodal_bits,
            chooser_bits,
        } => Box::new(Tournament::new(
            *gshare_bits,
            *history_bits,
            *bimodal_bits,
            *chooser_bits,
        )),
        PredictorSpec::Agree {
            index_bits,
            history_bits,
        } => Box::new(Agree::new(*index_bits, *history_bits)),
        PredictorSpec::Perceptron {
            index_bits,
            history_bits,
        } => Box::new(Perceptron::new(*index_bits, *history_bits)),
        PredictorSpec::OracleGuard => Box::new(PerfectGuard::new()),
        PredictorSpec::Sfpf {
            base,
            known_true,
            update_filtered,
            learned_guards,
        } => {
            let mut filter = SquashFilter::new(build_predictor(base))
                .with_known_true(*known_true)
                .with_update_filtered(*update_filtered);
            if let Some(bits) = learned_guards {
                filter = filter.with_learned_guards(*bits);
            }
            Box::new(filter)
        }
        PredictorSpec::Pgu { base, delay } => match &**base {
            PredictorSpec::Gshare {
                index_bits,
                history_bits,
            } => Box::new(Pgu::new(Gshare::new(*index_bits, *history_bits)).with_delay(*delay)),
            PredictorSpec::Tournament {
                gshare_bits,
                history_bits,
                bimodal_bits,
                chooser_bits,
            } => Box::new(
                Pgu::new(Tournament::new(
                    *gshare_bits,
                    *history_bits,
                    *bimodal_bits,
                    *chooser_bits,
                ))
                .with_delay(*delay),
            ),
            PredictorSpec::Agree {
                index_bits,
                history_bits,
            } => Box::new(Pgu::new(Agree::new(*index_bits, *history_bits)).with_delay(*delay)),
            PredictorSpec::Perceptron {
                index_bits,
                history_bits,
            } => Box::new(Pgu::new(Perceptron::new(*index_bits, *history_bits)).with_delay(*delay)),
            PredictorSpec::Sfpf {
                base: inner,
                known_true,
                update_filtered,
                learned_guards,
            } => {
                // sfpf(pgu(base)): the filter sits in front of PGU
                let pgu = PredictorSpec::Pgu {
                    base: inner.clone(),
                    delay: *delay,
                };
                let mut filter = SquashFilter::new(build_predictor(&pgu))
                    .with_known_true(*known_true)
                    .with_update_filtered(*update_filtered);
                if let Some(bits) = learned_guards {
                    filter = filter.with_learned_guards(*bits);
                }
                Box::new(filter)
            }
            other => build_predictor(other),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_every_base() {
        let specs = [
            PredictorSpec::StaticNotTaken,
            PredictorSpec::StaticBtfn,
            PredictorSpec::Bimodal { index_bits: 10 },
            PredictorSpec::Gshare {
                index_bits: 12,
                history_bits: 10,
            },
            PredictorSpec::Local {
                bht_bits: 10,
                history_bits: 10,
                pattern_bits: 12,
            },
            PredictorSpec::Tournament {
                gshare_bits: 12,
                history_bits: 10,
                bimodal_bits: 12,
                chooser_bits: 12,
            },
            PredictorSpec::OracleGuard,
            PredictorSpec::Perceptron {
                index_bits: 8,
                history_bits: 16,
            },
            PredictorSpec::Agree {
                index_bits: 10,
                history_bits: 10,
            },
        ];
        for spec in &specs {
            let p = build_predictor(spec);
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn sfpf_and_pgu_compose() {
        let spec = PredictorSpec::Gshare {
            index_bits: 10,
            history_bits: 10,
        }
        .with_sfpf()
        .with_pgu(4);
        let p = build_predictor(&spec);
        assert_eq!(p.name(), "sfpf+pgu[d4]+gshare-10/10");
    }

    #[test]
    fn pgu_on_historyless_base_falls_back() {
        let spec = PredictorSpec::Bimodal { index_bits: 8 }.with_pgu(0);
        let p = build_predictor(&spec);
        assert_eq!(p.name(), "bimodal-8");
    }

    #[test]
    fn gshare_kb_sizing() {
        // 1 KB → 4096 counters → 12 index bits
        match PredictorSpec::gshare_kb(1) {
            PredictorSpec::Gshare { index_bits, .. } => assert_eq!(index_bits, 12),
            other => panic!("unexpected {other:?}"),
        }
        match PredictorSpec::gshare_kb(16) {
            PredictorSpec::Gshare {
                index_bits,
                history_bits,
            } => {
                assert_eq!(index_bits, 16);
                assert_eq!(history_bits, 16);
            }
            other => panic!("unexpected {other:?}"),
        }
        match PredictorSpec::gshare_kb(64) {
            PredictorSpec::Gshare { history_bits, .. } => assert_eq!(history_bits, 16),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn display_matches_built_name() {
        let spec = PredictorSpec::Gshare {
            index_bits: 10,
            history_bits: 8,
        };
        assert_eq!(spec.to_string(), build_predictor(&spec).name());
    }
}

/// Error from parsing a [`PredictorSpec`] string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePredictorSpecError(String);

impl fmt::Display for ParsePredictorSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad predictor spec: {}", self.0)
    }
}

impl std::error::Error for ParsePredictorSpecError {}

/// Parses the compact spec syntax used by the CLIs:
///
/// ```text
/// base      := nt | btfn | oracle
///            | bimodal:I | gshare:I/H | local:B/H/P
///            | tournament:G/H/B/C | perceptron:I/H | agree:I/H
/// modifier  := +sfpf | +sfpf! (also use known-true) | +pgu | +pguN (delay N)
/// spec      := base modifier*
/// ```
///
/// # Examples
///
/// ```
/// use predbranch_core::{build_predictor, PredictorSpec};
///
/// let spec: PredictorSpec = "gshare:13/13+sfpf+pgu8".parse().unwrap();
/// assert_eq!(build_predictor(&spec).name(), "sfpf+pgu[d8]+gshare-13/13");
/// ```
impl std::str::FromStr for PredictorSpec {
    type Err = ParsePredictorSpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = |msg: &str| ParsePredictorSpecError(format!("{msg} in `{s}`"));
        let mut parts = s.split('+');
        let base_text = parts.next().ok_or_else(|| err("empty spec"))?.trim();
        let (kind, params) = match base_text.split_once(':') {
            Some((k, p)) => (k, p),
            None => (base_text, ""),
        };
        let nums: Vec<u32> = if params.is_empty() {
            Vec::new()
        } else {
            params
                .split('/')
                .map(|n| n.trim().parse::<u32>())
                .collect::<Result<_, _>>()
                .map_err(|_| err("bad numeric parameter"))?
        };
        let want = |n: usize| -> Result<(), ParsePredictorSpecError> {
            if nums.len() == n {
                Ok(())
            } else {
                Err(err("wrong parameter count"))
            }
        };
        let mut spec = match kind {
            "nt" => {
                want(0)?;
                PredictorSpec::StaticNotTaken
            }
            "btfn" => {
                want(0)?;
                PredictorSpec::StaticBtfn
            }
            "oracle" => {
                want(0)?;
                PredictorSpec::OracleGuard
            }
            "bimodal" => {
                want(1)?;
                PredictorSpec::Bimodal {
                    index_bits: nums[0],
                }
            }
            "gshare" => {
                want(2)?;
                PredictorSpec::Gshare {
                    index_bits: nums[0],
                    history_bits: nums[1],
                }
            }
            "local" => {
                want(3)?;
                PredictorSpec::Local {
                    bht_bits: nums[0],
                    history_bits: nums[1],
                    pattern_bits: nums[2],
                }
            }
            "tournament" => {
                want(4)?;
                PredictorSpec::Tournament {
                    gshare_bits: nums[0],
                    history_bits: nums[1],
                    bimodal_bits: nums[2],
                    chooser_bits: nums[3],
                }
            }
            "perceptron" => {
                want(2)?;
                PredictorSpec::Perceptron {
                    index_bits: nums[0],
                    history_bits: nums[1],
                }
            }
            "agree" => {
                want(2)?;
                PredictorSpec::Agree {
                    index_bits: nums[0],
                    history_bits: nums[1],
                }
            }
            _ => return Err(err("unknown base predictor")),
        };
        // Modifiers apply inside-out in the order written: "+pgu+sfpf"
        // yields sfpf(pgu(base)) like the builder methods would.
        for modifier in parts {
            let modifier = modifier.trim();
            if modifier == "sfpf" {
                spec = spec.with_sfpf();
            } else if modifier == "sfpf!" {
                spec = PredictorSpec::Sfpf {
                    base: Box::new(spec),
                    known_true: true,
                    update_filtered: true,
                    learned_guards: None,
                };
            } else if let Some(rest) = modifier.strip_prefix("pgu") {
                let delay: u64 = if rest.is_empty() {
                    8
                } else {
                    rest.parse().map_err(|_| err("bad pgu delay"))?
                };
                spec = spec.with_pgu(delay);
            } else {
                return Err(err("unknown modifier"));
            }
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod parse_tests {
    use super::*;

    #[test]
    fn parses_every_base() {
        for (text, expect_name) in [
            ("nt", "static-nt"),
            ("btfn", "static-btfn"),
            ("oracle", "oracle-guard"),
            ("bimodal:12", "bimodal-12"),
            ("gshare:13/13", "gshare-13/13"),
            ("local:10/10/12", "local-10/10/12"),
            ("tournament:12/12/12/12", "tournament-12"),
            ("perceptron:7/14", "perceptron-7/14"),
            ("agree:12/12", "agree-12/12"),
        ] {
            let spec: PredictorSpec = text.parse().unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(build_predictor(&spec).name(), expect_name, "{text}");
        }
    }

    #[test]
    fn parses_modifiers_in_order() {
        let spec: PredictorSpec = "gshare:10/10+pgu4+sfpf".parse().unwrap();
        assert_eq!(build_predictor(&spec).name(), "sfpf+pgu[d4]+gshare-10/10");
        let spec: PredictorSpec = "gshare:10/10+sfpf+pgu".parse().unwrap();
        assert_eq!(build_predictor(&spec).name(), "sfpf+pgu[d8]+gshare-10/10");
        let spec: PredictorSpec = "gshare:10/10+sfpf!".parse().unwrap();
        assert!(build_predictor(&spec).name().contains("sfpf±"));
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "tage:1",
            "gshare",
            "gshare:13",
            "gshare:13/13/13",
            "gshare:a/b",
            "gshare:13/13+magic",
            "gshare:13/13+pguX",
        ] {
            assert!(bad.parse::<PredictorSpec>().is_err(), "accepted `{bad}`");
        }
    }
}

//! PGU insertion-filter policies and guard-definition analysis.
//!
//! Lives outside the harness hot module so `harness.rs` carries no
//! `std::collections::HashSet` dependency: the set-based
//! [`InsertFilter`] is a configuration-time value which the harness
//! lowers once (at construction) into a sorted-slice representation
//! ([`LoweredFilter`]) queried by binary search per predicate write —
//! no hashing and no per-event allocation on the hot path.

use std::collections::HashSet;

use predbranch_isa::{Op, Program};
use predbranch_sim::PredWriteEvent;

/// Policy selecting which predicate definitions are forwarded to the
/// predictor's [`crate::BranchPredictor::on_pred_write`] hook — the PGU
/// insertion-filter ablation.
///
/// The fetch-time scoreboard is always updated regardless of this
/// filter; it only gates what enters the predictor's history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InsertFilter {
    /// Forward every predicate definition (the default PGU policy).
    All,
    /// Forward only definitions from the given compare PCs (e.g. the
    /// guard-defining compares computed by [`guard_def_pcs`]).
    Pcs(HashSet<u32>),
    /// Forward nothing (PGU degenerates to its wrapped baseline).
    None,
}

impl InsertFilter {
    /// Lowers the policy into the allocation-free form the harness
    /// queries per event.
    pub(crate) fn lower(&self) -> LoweredFilter {
        match self {
            InsertFilter::All => LoweredFilter::All,
            InsertFilter::Pcs(set) => {
                let mut pcs: Vec<u32> = set.iter().copied().collect();
                pcs.sort_unstable();
                LoweredFilter::Pcs(pcs)
            }
            InsertFilter::None => LoweredFilter::None,
        }
    }
}

/// [`InsertFilter`] lowered for the hot path: the PC set becomes a
/// sorted vector probed by binary search, so the per-event check does
/// no hashing and the harness module never touches `HashSet`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum LoweredFilter {
    /// Every definition passes.
    All,
    /// Only definitions from these PCs (sorted ascending) pass.
    Pcs(Vec<u32>),
    /// Nothing passes.
    None,
}

impl LoweredFilter {
    #[inline]
    pub(crate) fn passes(&self, write: &PredWriteEvent) -> bool {
        match self {
            LoweredFilter::All => true,
            LoweredFilter::Pcs(pcs) => pcs.binary_search(&write.pc).is_ok(),
            LoweredFilter::None => false,
        }
    }
}

/// Computes the static set of compare PCs that define some branch's guard
/// predicate — the `guard-defs-only` PGU insertion filter.
///
/// # Examples
///
/// ```
/// use predbranch_core::guard_def_pcs;
/// use predbranch_isa::assemble;
///
/// let p = assemble(
///     "start: cmp.lt p1, p2 = r1, 5\n cmp.eq p3, p4 = r2, 0\n (p1) br start\n halt",
/// ).unwrap();
/// let pcs = guard_def_pcs(&p);
/// assert!(pcs.contains(&0));  // defines p1, the branch guard
/// assert!(!pcs.contains(&1)); // p3/p4 guard nothing
/// ```
pub fn guard_def_pcs(program: &Program) -> HashSet<u32> {
    let mut guards = HashSet::new();
    for (_, inst) in program.iter() {
        if inst.is_branch() && !inst.guard.is_always_true() {
            guards.insert(inst.guard);
        }
    }
    let mut pcs = HashSet::new();
    for (pc, inst) in program.iter() {
        if let Op::Cmp {
            p_true, p_false, ..
        } = inst.op
        {
            if guards.contains(&p_true) || guards.contains(&p_false) {
                pcs.insert(pc);
            }
        }
    }
    pcs
}

#[cfg(test)]
mod tests {
    use super::*;
    use predbranch_isa::assemble;

    #[test]
    fn guard_def_pcs_includes_parallel_compare_types() {
        // and/or/or.andcm parallel compares that (partially) define a
        // branch guard are guard definitions just like plain compares
        let program = assemble(
            r#"
                cmp.lt p1, p2 = r1, 5          // pc 0: defines p1 (guard)
                cmp.gt.and p1, p3 = r2, 0      // pc 1: and-type, touches p1
                cmp.ne.or p1, p4 = r3, 1       // pc 2: or-type, touches p1
                cmp.ge.or.andcm p1, p5 = r4, 2 // pc 3: or.andcm, touches p1
                cmp.eq p6, p7 = r5, 3          // pc 4: guards nothing
                (p1) br done
            done:
                halt
            "#,
        )
        .unwrap();
        let pcs = guard_def_pcs(&program);
        assert!(pcs.contains(&0), "plain cmp defining the guard");
        assert!(pcs.contains(&1), "and-type compare defining the guard");
        assert!(pcs.contains(&2), "or-type compare defining the guard");
        assert!(pcs.contains(&3), "or.andcm compare defining the guard");
        assert!(!pcs.contains(&4), "compare of unguarded predicates");
        assert_eq!(pcs.len(), 4);
    }

    #[test]
    fn guard_def_pcs_collects_every_definition_of_a_guard() {
        // a guard with multiple defining compares (both polarities count:
        // p2 is defined as the false-target of pc 0 and the true-target
        // of pc 2)
        let program = assemble(
            r#"
                cmp.lt p1, p2 = r1, 5
                cmp.eq p3, p4 = r2, 0
                cmp.gt p2, p5 = r3, 9
                (p2) br out
                (p4) br out
            out:
                halt
            "#,
        )
        .unwrap();
        let pcs = guard_def_pcs(&program);
        assert!(pcs.contains(&0), "p2 defined via the false target");
        assert!(pcs.contains(&1), "p4 is also a branch guard");
        assert!(pcs.contains(&2), "p2 defined via the true target");
        assert_eq!(pcs.len(), 3);
    }

    #[test]
    fn lowered_filter_matches_set_semantics() {
        let write = |pc: u32| PredWriteEvent {
            pc,
            preg: predbranch_isa::PredReg::new(1).unwrap(),
            value: true,
            index: 0,
            guard: predbranch_isa::PredReg::new(0).unwrap(),
            guard_value: true,
        };
        let set: HashSet<u32> = [3, 9, 200].into_iter().collect();
        let filter = InsertFilter::Pcs(set.clone()).lower();
        for pc in 0..300 {
            assert_eq!(filter.passes(&write(pc)), set.contains(&pc), "pc {pc}");
        }
        assert!(InsertFilter::All.lower().passes(&write(7)));
        assert!(!InsertFilter::None.lower().passes(&write(7)));
    }
}

//! The gshare global-history predictor.

use predbranch_sim::PredicateScoreboard;

use crate::history::GlobalHistory;
use crate::predictor::{BranchInfo, BranchPredictor, HasGlobalHistory, HistoryInsert};
use crate::ring::Checkpoints;
use crate::tables::CounterTable;

/// McFarling's gshare: a 2-bit counter table indexed by `PC ⊕ global
/// history`.
///
/// This is the baseline predictor of the study. Its global history
/// register is exposed through [`HasGlobalHistory`] so the predicate
/// global-update mechanism ([`crate::Pgu`]) can shift predicate outcomes
/// into it.
///
/// The history is updated speculatively: `speculate` snapshots the
/// fetch-time history register and shifts in the predicted direction;
/// `commit` trains the counter table at the checkpointed index; `squash`
/// restores the checkpoint and shifts in the resolved outcome.
///
/// # Examples
///
/// ```
/// use predbranch_core::{BranchPredictor, Gshare};
///
/// let p = Gshare::new(14, 12); // 16K entries, 12 bits of history
/// assert_eq!(p.storage_bits(), 2 * (1 << 14) + 12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gshare {
    table: CounterTable,
    history: GlobalHistory,
    checkpoints: Checkpoints<GlobalHistory>,
}

impl Gshare {
    /// Creates a gshare with `2^index_bits` counters and `history_bits`
    /// of global history.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is outside `1..=28` or `history_bits`
    /// outside `1..=64`.
    pub fn new(index_bits: u32, history_bits: u32) -> Self {
        Gshare {
            table: CounterTable::new(index_bits),
            history: GlobalHistory::new(history_bits),
            checkpoints: Checkpoints::new(),
        }
    }

    fn index(&self, pc: u32) -> u64 {
        self.index_with(pc, &self.history)
    }

    fn index_with(&self, pc: u32, history: &GlobalHistory) -> u64 {
        u64::from(pc) ^ history.folded(self.table.index_bits())
    }

    /// The current global history (for inspection).
    pub fn history(&self) -> &GlobalHistory {
        &self.history
    }
}

impl BranchPredictor for Gshare {
    fn name(&self) -> String {
        format!("gshare-{}/{}", self.table.index_bits(), self.history.len())
    }

    fn predict(&mut self, branch: &BranchInfo, _scoreboard: &PredicateScoreboard) -> bool {
        self.table.predict(self.index(branch.pc))
    }

    fn speculate(&mut self, _branch: &BranchInfo, predicted: bool, _sb: &PredicateScoreboard) {
        self.checkpoints.push_back(self.history);
        self.history.shift_in(predicted);
    }

    fn commit(&mut self, branch: &BranchInfo, taken: bool, _scoreboard: &PredicateScoreboard) {
        let checkpoint = self
            .checkpoints
            .pop_front()
            .expect("gshare commit without a matching speculate");
        let index = self.index_with(branch.pc, &checkpoint);
        self.table.update(index, taken);
    }

    fn squash(&mut self, _branch: &BranchInfo, taken: bool, _scoreboard: &PredicateScoreboard) {
        let checkpoint = *self
            .checkpoints
            .front()
            .expect("gshare squash without a matching speculate");
        self.history = checkpoint;
        self.history.shift_in(taken);
    }

    fn storage_bits(&self) -> usize {
        self.table.storage_bits() + self.history.storage_bits()
    }
}

impl HasGlobalHistory for Gshare {
    fn global_history_mut(&mut self) -> &mut GlobalHistory {
        &mut self.history
    }
}

impl HistoryInsert for Gshare {
    fn insert_history_bit(&mut self, outcome: bool) {
        self.history.shift_in(outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predbranch_isa::PredReg;

    fn info(pc: u32) -> BranchInfo {
        BranchInfo {
            pc,
            target: 0,
            guard: PredReg::new(1).unwrap(),
            region: None,
            index: 0,
        }
    }

    fn sb() -> PredicateScoreboard {
        PredicateScoreboard::new(0)
    }

    #[test]
    fn learns_alternating_pattern() {
        // gshare's defining advantage over bimodal
        let sb = sb();
        let mut p = Gshare::new(10, 8);
        let mut outcome = false;
        let mut wrong_tail = 0;
        for i in 0..200 {
            outcome = !outcome;
            let predicted = p.predict(&info(7), &sb);
            if i >= 100 && predicted != outcome {
                wrong_tail += 1;
            }
            p.update(&info(7), outcome, &sb);
        }
        assert_eq!(wrong_tail, 0, "gshare must lock onto alternation");
    }

    #[test]
    fn learns_correlated_branches() {
        // branch B repeats branch A's outcome; pattern of A is period-3.
        let sb = sb();
        let mut p = Gshare::new(12, 10);
        let pattern = [true, true, false];
        let mut wrong_tail = 0;
        for i in 0..300 {
            let a = pattern[i % 3];
            let pa = p.predict(&info(100), &sb);
            p.update(&info(100), a, &sb);
            let pb = p.predict(&info(200), &sb);
            p.update(&info(200), a, &sb);
            if i >= 150 {
                if pa != a {
                    wrong_tail += 1;
                }
                if pb != a {
                    wrong_tail += 1;
                }
            }
        }
        assert_eq!(wrong_tail, 0, "periodic correlated pattern must be learned");
    }

    #[test]
    fn history_updates_on_outcome() {
        let sb = sb();
        let mut p = Gshare::new(8, 8);
        p.update(&info(0), true, &sb);
        p.update(&info(0), false, &sb);
        assert_eq!(p.history().value(), 0b10);
    }

    #[test]
    fn storage_accounts_table_plus_history() {
        let p = Gshare::new(10, 16);
        assert_eq!(p.storage_bits(), 2048 + 16);
    }

    #[test]
    fn global_history_access_for_pgu() {
        let mut p = Gshare::new(8, 8);
        p.global_history_mut().shift_in(true);
        assert_eq!(p.history().value(), 1);
    }
}

//! Drives a predictor from the simulator's event stream through an
//! in-flight branch window (predict → speculate → commit/squash).

use predbranch_sim::{
    BranchEvent, Event, EventSink, FetchTimeline, PipelineConfig, PredWriteEvent,
    PredicateScoreboard, DEFAULT_RESOLVE_LATENCY, DEFAULT_RETIRE_LATENCY,
};

use crate::filter::{InsertFilter, LoweredFilter};
use crate::predictor::{BranchInfo, BranchPredictor, PredictionMetrics};
use crate::ring::{Ring, WINDOW_CAPACITY};

/// Update-timing knobs of the prediction pathway.
///
/// `resolve_latency` governs when *predicate values* become visible to
/// the fetch stage (the scoreboard); `retire_latency` governs when
/// *branch outcomes* train the predictor (the in-flight window). The two
/// model the paper's "when does information arrive" question on both of
/// its axes.
///
/// # Examples
///
/// ```
/// use predbranch_core::Timing;
///
/// let t = Timing::default();
/// assert_eq!(t.resolve_latency, predbranch_sim::DEFAULT_RESOLVE_LATENCY);
/// assert_eq!(t.retire_latency, predbranch_sim::DEFAULT_RETIRE_LATENCY);
/// assert_eq!(Timing::immediate(8).retire_latency, 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Timing {
    /// Scoreboard resolve latency in fetch slots (see
    /// [`PredicateScoreboard`]).
    pub resolve_latency: u64,
    /// Fetch slots between a branch's fetch and the commit that trains
    /// the predictor with its outcome. `0` reproduces the idealized
    /// immediate-update methodology exactly (every branch commits before
    /// the next event).
    pub retire_latency: u64,
}

impl Timing {
    /// Both knobs explicit.
    pub fn new(resolve_latency: u64, retire_latency: u64) -> Self {
        Timing {
            resolve_latency,
            retire_latency,
        }
    }

    /// Idealized immediate update (`retire_latency = 0`) at the given
    /// resolve latency.
    pub fn immediate(resolve_latency: u64) -> Self {
        Timing::new(resolve_latency, 0)
    }
}

impl Default for Timing {
    fn default() -> Self {
        Timing::new(DEFAULT_RESOLVE_LATENCY, DEFAULT_RETIRE_LATENCY)
    }
}

/// Harness configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HarnessConfig {
    /// Update-timing knobs (resolve and retire latencies).
    pub timing: Timing,
    /// Which predicate definitions reach the predictor.
    pub insert: InsertFilter,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            timing: Timing::default(),
            insert: InsertFilter::All,
        }
    }
}

/// A conditional branch in flight between fetch and retire.
#[derive(Debug, Clone, Copy)]
struct InFlightBranch {
    info: BranchInfo,
    predicted: bool,
    taken: bool,
}

/// Everything a prediction lane owns *except* the predicate
/// scoreboard: predictor stack, insert filter, metrics, optional
/// timeline, and the in-flight branch window.
///
/// The scoreboard is factored out because its state is a pure function
/// of the event stream and the resolve latency — it never depends on
/// the predictor. A [`PredictionHarness`] pairs one lane with its own
/// scoreboard; a [`GangHarness`] advances many lanes against a single
/// shared scoreboard, which is the bulk of gang replay's win (predicate
/// writes outnumber branches in predicated code, and each one costs a
/// scoreboard query + record).
#[derive(Debug)]
struct Lane<P> {
    predictor: P,
    /// The configured [`InsertFilter`], lowered at construction to a
    /// sorted-slice form so the per-event check needs no hashing.
    insert: LoweredFilter,
    metrics: PredictionMetrics,
    timeline: Option<FetchTimeline>,
    retire_latency: u64,
    window: Ring<InFlightBranch, WINDOW_CAPACITY>,
    flush_pending: bool,
}

impl<P: BranchPredictor> Lane<P> {
    fn new(predictor: P, config: &HarnessConfig) -> Self {
        Lane {
            predictor,
            insert: config.insert.lower(),
            metrics: PredictionMetrics::default(),
            timeline: None,
            retire_latency: config.timing.retire_latency,
            window: Ring::new(),
            flush_pending: false,
        }
    }

    /// Retires the oldest in-flight branch: `squash` (on a
    /// misprediction) then `commit`.
    fn retire_front(&mut self, scoreboard: &PredicateScoreboard) {
        if let Some(entry) = self.window.pop_front() {
            if entry.predicted != entry.taken {
                self.predictor.squash(&entry.info, entry.taken, scoreboard);
            }
            self.predictor.commit(&entry.info, entry.taken, scoreboard);
        }
    }

    /// Retires the whole window after a misprediction (the pipeline
    /// flush that resolves the mispredicted branch).
    #[cold]
    fn flush_window(&mut self, scoreboard: &PredicateScoreboard) {
        while !self.window.is_empty() {
            self.retire_front(scoreboard);
        }
        self.flush_pending = false;
    }

    /// Retires every branch whose retire latency has elapsed by
    /// `fetch_index` — or the whole window if a misprediction flush is
    /// pending.
    #[inline]
    fn drain_ready(&mut self, fetch_index: u64, scoreboard: &PredicateScoreboard) {
        if self.flush_pending {
            self.flush_window(scoreboard);
            return;
        }
        while let Some(entry) = self.window.front() {
            if entry.info.index + self.retire_latency > fetch_index {
                break;
            }
            self.retire_front(scoreboard);
        }
    }

    fn finish(&mut self, scoreboard: &PredicateScoreboard) {
        while !self.window.is_empty() {
            self.retire_front(scoreboard);
        }
        self.flush_pending = false;
    }

    #[inline]
    fn instruction(&mut self) {
        if let Some(timeline) = &mut self.timeline {
            timeline.instruction();
        }
    }

    /// Processes a conditional branch. `guard_known_false` is the
    /// scoreboard's verdict on the branch's guard at its fetch index —
    /// hoisted to the caller because a gang computes it once for all
    /// lanes (the scoreboard never mutates during branch processing).
    fn branch(
        &mut self,
        event: &BranchEvent,
        scoreboard: &PredicateScoreboard,
        guard_known_false: bool,
    ) {
        if self.retire_latency != 0 {
            self.drain_ready(event.index, scoreboard);
        }
        let info = BranchInfo::from_event(event);
        let predicted = self.predictor.predict(&info, scoreboard);
        let correct = predicted == event.taken;

        self.metrics.all.record(correct);
        if event.region.is_some() {
            self.metrics.region.record(correct);
        } else {
            self.metrics.non_region.record(correct);
        }
        if guard_known_false {
            self.metrics.known_false_guard.increment();
            if !correct {
                self.metrics.known_false_mispredicted.increment();
            }
        }

        if let Some(timeline) = &mut self.timeline {
            if !correct {
                timeline.mispredict();
            } else if event.taken {
                timeline.taken_branch();
            }
        }

        self.predictor.speculate(&info, predicted, scoreboard);
        if self.retire_latency == 0 {
            // Immediate-update fast path: with retire latency 0 the
            // branch would be drained by the very next event (indices
            // are strictly increasing), so the window never holds an
            // entry between events. Retiring inline — squash (on a
            // misprediction) then commit, exactly what `drain_ready`
            // would do — produces the identical predictor call
            // sequence while skipping all window bookkeeping (pinned
            // by the window_props suite at retire 0).
            if !correct {
                self.predictor.squash(&info, event.taken, scoreboard);
            }
            self.predictor.commit(&info, event.taken, scoreboard);
            return;
        }
        if self.window.len() >= WINDOW_CAPACITY {
            // bounded reorder buffer: make room by retiring the oldest
            self.retire_front(scoreboard);
        }
        self.window.push_back(InFlightBranch {
            info,
            predicted,
            taken: event.taken,
        });
        if !correct {
            self.flush_pending = true;
        }
    }

    /// Processes a predicate write against the *pre-write* scoreboard.
    /// The caller observes the event on the scoreboard afterwards —
    /// retiring first keeps the scoreboard (and any PGU insertion)
    /// reflecting the pre-write world when older branches commit, and
    /// [`BranchPredictor::on_pred_write`] never reads the scoreboard,
    /// so observing after it is indistinguishable. At retire 0 the
    /// window is provably empty (branches retire inline), so there is
    /// nothing to drain.
    fn pred_write(&mut self, event: &PredWriteEvent, scoreboard: &PredicateScoreboard) {
        if self.retire_latency != 0 {
            self.drain_ready(event.index, scoreboard);
        }
        self.metrics.pred_writes.increment();
        if self.insert.passes(event) {
            self.predictor.on_pred_write(event);
        }
    }
}

/// An [`EventSink`] that runs the full prediction methodology around an
/// in-flight branch window: for each conditional branch, query the
/// predictor at fetch (with the scoreboard reflecting resolved predicate
/// values), let it speculate on its own prediction, and enqueue the
/// branch in a bounded reorder buffer. The branch's outcome trains the
/// predictor (`commit`, preceded by `squash` on a misprediction) only
/// once [`Timing::retire_latency`] fetch slots have passed — with
/// latency 0 every branch retires before the next event, which is the
/// idealized immediate-update methodology, bit for bit. Predicate
/// definitions update the scoreboard and (subject to the
/// [`InsertFilter`]) the predictor.
///
/// A misprediction flushes the window: all in-flight branches retire
/// before the next event is processed, modelling the pipeline flush that
/// resolves the mispredicted branch (everything after it in the trace is
/// fetched post-recovery). Because a mispredicted branch is therefore
/// always the youngest in-flight branch when it retires, the predictor's
/// oldest outstanding checkpoint at `squash` time is the squashed
/// branch's own.
///
/// Call [`PredictionHarness::finish`] (or [`PredictionHarness::into_parts`],
/// which does it for you) after the event stream ends to retire the last
/// in-flight branches.
///
/// Unconditional branches are not predicted (their direction is static).
#[derive(Debug)]
pub struct PredictionHarness<P> {
    scoreboard: PredicateScoreboard,
    lane: Lane<P>,
}

impl<P: BranchPredictor> PredictionHarness<P> {
    /// Creates a harness around `predictor`.
    pub fn new(predictor: P, config: HarnessConfig) -> Self {
        PredictionHarness {
            scoreboard: PredicateScoreboard::new(config.timing.resolve_latency),
            lane: Lane::new(predictor, &config),
        }
    }

    /// Attaches a cycle-level [`FetchTimeline`]: every fetched
    /// instruction, taken-branch fragment, and misprediction flush is
    /// accounted, giving event-driven cycle counts (see
    /// [`PredictionHarness::timeline`]).
    pub fn with_timeline(mut self, pipeline: PipelineConfig) -> Self {
        self.lane.timeline = Some(FetchTimeline::new(pipeline));
        self
    }

    /// The attached fetch timeline, if any.
    pub fn timeline(&self) -> Option<&FetchTimeline> {
        self.lane.timeline.as_ref()
    }

    /// The accumulated metrics.
    pub fn metrics(&self) -> &PredictionMetrics {
        &self.lane.metrics
    }

    /// The driven predictor.
    pub fn predictor(&self) -> &P {
        &self.lane.predictor
    }

    /// Retires all still-in-flight branches. Call once the event stream
    /// ends; without it the tail of the run never trains the predictor.
    pub fn finish(&mut self) {
        self.lane.finish(&self.scoreboard);
    }

    /// Number of branches currently in flight (fetched, not yet
    /// retired).
    pub fn in_flight(&self) -> usize {
        self.lane.window.len()
    }

    /// Consumes the harness, returning predictor and metrics. Retires
    /// any still-in-flight branches first.
    pub fn into_parts(mut self) -> (P, PredictionMetrics) {
        self.finish();
        (self.lane.predictor, self.lane.metrics)
    }

    /// Drives the harness from a buffered event stream — the
    /// replay-driven counterpart of attaching it to a live
    /// [`predbranch_sim::Executor`] run. An event stream captured once
    /// (via [`predbranch_sim::TraceSink`] or a decoded trace file) can
    /// be fed to any number of harnesses, and yields metrics identical
    /// to live execution because prediction depends only on the branch
    /// and predicate-write events.
    pub fn replay_events<'a>(&mut self, events: impl IntoIterator<Item = &'a Event>) {
        for event in events {
            self.event(event);
        }
    }
}

/// A bank of independent prediction lanes fed by **one** event stream:
/// the gang-replay counterpart of [`PredictionHarness`]. Where a sweep
/// previously replayed the same decoded events once per predictor
/// configuration, a `GangHarness` owns `N` lanes — each with its own
/// predictor stack, in-flight window, insert filter, and metrics — plus
/// **one** predicate scoreboard shared by every lane.
///
/// The scoreboard can be shared because its state is a pure function of
/// the event stream and the resolve latency: every lane of a dedicated
/// per-cell pass would build the identical scoreboard. Sharing it turns
/// the per-predicate-write query + record from `N×` into `1×`, which
/// matters because predicated code emits more predicate writes than
/// branches. The price is that all lanes of one gang must use the same
/// resolve latency ([`GangHarness::push_lane`] asserts this); retire
/// latency and insert filter remain free per lane. The sweep runner
/// already groups cells into gang units by (stream, timing), so the
/// constraint is invisible there.
///
/// # Determinism contract
///
/// Apart from the scoreboard — identical by construction to the one a
/// solo pass builds — lanes share **no** state, so delivering each
/// event to lane 0, then lane 1, … is observationally identical to
/// running each lane over the full stream on its own: every lane's
/// metrics and final predictor state are byte-for-byte what a dedicated
/// [`PredictionHarness`] pass would have produced. For predicate
/// writes, every lane processes the event against the pre-write
/// scoreboard before the write is observed once — exactly the order a
/// solo harness uses.
///
/// Timelines are intentionally unsupported: gang replay rides the
/// batched event path, which does not forward per-instruction callbacks
/// (see [`predbranch_sim::Executor::run_batched`]); a cycle-accounting
/// lane would silently undercount. Cells that need a
/// [`FetchTimeline`] keep using a single [`PredictionHarness`].
///
/// # Examples
///
/// ```
/// use predbranch_core::{GangHarness, Gshare, HarnessConfig, StaticPredictor};
/// use predbranch_core::PredictorStack;
///
/// let mut gang = GangHarness::new();
/// gang.push_lane(
///     PredictorStack::Gshare(Gshare::new(10, 10)),
///     HarnessConfig::default(),
/// );
/// gang.push_lane(
///     PredictorStack::Static(StaticPredictor::Taken),
///     HarnessConfig::default(),
/// );
/// assert_eq!(gang.len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct GangHarness<P> {
    /// Shared by all lanes; created by the first
    /// [`GangHarness::push_lane`].
    scoreboard: Option<PredicateScoreboard>,
    lanes: Vec<Lane<P>>,
}

impl<P: BranchPredictor> GangHarness<P> {
    /// Creates an empty gang. Push lanes with
    /// [`GangHarness::push_lane`] before replaying.
    pub fn new() -> Self {
        GangHarness {
            scoreboard: None,
            lanes: Vec::new(),
        }
    }

    /// Appends a lane around `predictor` with its own retire latency
    /// and insert filter. The first lane's resolve latency creates the
    /// gang's shared scoreboard; every subsequent lane must use the
    /// same resolve latency.
    ///
    /// # Panics
    ///
    /// Panics if `config.timing.resolve_latency` differs from the
    /// first lane's.
    pub fn push_lane(&mut self, predictor: P, config: HarnessConfig) {
        let resolve = config.timing.resolve_latency;
        match &self.scoreboard {
            None => self.scoreboard = Some(PredicateScoreboard::new(resolve)),
            Some(sb) => assert_eq!(
                sb.resolve_latency(),
                resolve,
                "gang lanes share one predicate scoreboard: every lane \
                 must use the same resolve latency"
            ),
        }
        self.lanes.push(Lane::new(predictor, &config));
    }

    /// Number of lanes.
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// True when the gang has no lanes.
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// Retires every lane's still-in-flight branches. Call once the
    /// event stream ends (consuming accessors do it for you).
    pub fn finish(&mut self) {
        if let Some(scoreboard) = &self.scoreboard {
            for lane in &mut self.lanes {
                lane.finish(scoreboard);
            }
        }
    }

    /// Consumes the gang, returning one [`PredictionHarness`] per lane
    /// (tails retired). Each harness carries a copy of the shared
    /// scoreboard — the state a dedicated pass would have built — so
    /// the result is indistinguishable from `N` solo passes.
    pub fn into_lanes(mut self) -> Vec<PredictionHarness<P>> {
        self.finish();
        let scoreboard = self.scoreboard;
        self.lanes
            .into_iter()
            .map(|lane| PredictionHarness {
                scoreboard: scoreboard
                    .clone()
                    .unwrap_or_else(|| PredicateScoreboard::new(DEFAULT_RESOLVE_LATENCY)),
                lane,
            })
            .collect()
    }

    /// Consumes the gang, returning per-lane metrics in lane order
    /// (tails retired).
    pub fn into_metrics(mut self) -> Vec<PredictionMetrics> {
        self.finish();
        self.lanes.into_iter().map(|lane| lane.metrics).collect()
    }
}

impl<P: BranchPredictor> EventSink for GangHarness<P> {
    fn instruction(&mut self, _pc: u32, _index: u64) {
        for lane in &mut self.lanes {
            lane.instruction();
        }
    }

    fn branch(&mut self, event: &BranchEvent) {
        if !event.conditional {
            // gang lanes carry no timelines, and unconditional
            // branches touch nothing else — skip the lane loop
            return;
        }
        if let Some(scoreboard) = &self.scoreboard {
            // one guard query serves every lane: the scoreboard is
            // shared and branch processing never mutates it
            let guard_known_false = scoreboard.query(event.guard, event.index).is_known_false();
            for lane in &mut self.lanes {
                lane.branch(event, scoreboard, guard_known_false);
            }
        }
    }

    fn pred_write(&mut self, event: &PredWriteEvent) {
        // Every lane drains and inserts against the pre-write
        // scoreboard, then the write becomes visible once — the same
        // order each solo pass uses.
        if let Some(scoreboard) = &self.scoreboard {
            for lane in &mut self.lanes {
                lane.pred_write(event, scoreboard);
            }
        }
        if let Some(scoreboard) = &mut self.scoreboard {
            scoreboard.observe(event);
        }
    }

    fn events(&mut self, batch: &[Event]) {
        // Event-major: the shared scoreboard must advance in stream
        // order, so each event visits every lane before the next event
        // is delivered.
        for event in batch {
            self.event(event);
        }
    }
}

impl<P: BranchPredictor> EventSink for PredictionHarness<P> {
    #[inline]
    fn instruction(&mut self, _pc: u32, _index: u64) {
        self.lane.instruction();
    }

    fn branch(&mut self, event: &BranchEvent) {
        if !event.conditional {
            // unconditional branches are not predicted, but a taken
            // branch still fragments fetch
            if let Some(timeline) = &mut self.lane.timeline {
                timeline.taken_branch();
            }
            return;
        }
        let guard_known_false = self
            .scoreboard
            .query(event.guard, event.index)
            .is_known_false();
        self.lane.branch(event, &self.scoreboard, guard_known_false);
    }

    fn pred_write(&mut self, event: &PredWriteEvent) {
        // The lane drains and inserts against the pre-write scoreboard;
        // the write becomes visible only afterwards.
        self.lane.pred_write(event, &self.scoreboard);
        self.scoreboard.observe(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gshare::Gshare;
    use crate::pgu::Pgu;
    use crate::predictor::StaticPredictor;
    use crate::sfpf::SquashFilter;
    use predbranch_isa::assemble;
    use predbranch_sim::{Executor, Memory, RunSummary};

    const LOOP: &str = r#"
        mov r1 = 0
    loop:
        cmp.lt p1, p2 = r1, 50
        (p1) add r1 = r1, 1
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        (p1) br.region 0, loop
        halt
    "#;

    fn run<P: BranchPredictor>(
        src: &str,
        predictor: P,
        config: HarnessConfig,
    ) -> (PredictionMetrics, RunSummary) {
        let program = assemble(src).unwrap();
        let mut harness = PredictionHarness::new(predictor, config);
        let summary = Executor::new(&program, Memory::new()).run(&mut harness, 1_000_000);
        (*harness.metrics(), summary)
    }

    #[test]
    fn static_not_taken_mispredicts_loop_body() {
        let (m, _) = run(LOOP, StaticPredictor::NotTaken, HarnessConfig::default());
        assert_eq!(m.all.branches.get(), 51);
        assert_eq!(m.all.mispredictions.get(), 50);
        assert_eq!(m.region.branches.get(), 51);
        assert_eq!(m.non_region.branches.get(), 0);
    }

    #[test]
    fn sfpf_catches_known_false_final_iteration() {
        // def-to-branch distance is 10; with latency <= 10 the final
        // (not-taken) branch is fetched with p1 known false
        let config = HarnessConfig {
            timing: Timing::immediate(10),
            insert: InsertFilter::All,
        };
        let (m, _) = run(LOOP, SquashFilter::new(StaticPredictor::Taken), config);
        assert_eq!(m.known_false_guard.get(), 1);
        assert_eq!(m.known_false_mispredicted.get(), 0);
        // the other 50 fetches predict taken (correct)
        assert_eq!(m.all.mispredictions.get(), 0);
    }

    #[test]
    fn unresolved_guards_bypass_filter() {
        let config = HarnessConfig {
            timing: Timing::immediate(11),
            insert: InsertFilter::All,
        };
        let (m, _) = run(LOOP, SquashFilter::new(StaticPredictor::Taken), config);
        assert_eq!(m.known_false_guard.get(), 0);
        // static-taken now mispredicts the final iteration
        assert_eq!(m.all.mispredictions.get(), 1);
    }

    #[test]
    fn insert_filter_none_starves_pgu() {
        let config = HarnessConfig {
            timing: Timing::immediate(64),
            insert: InsertFilter::None,
        };
        let program = assemble(LOOP).unwrap();
        let mut harness = PredictionHarness::new(Pgu::new(Gshare::new(10, 10)), config);
        Executor::new(&program, Memory::new()).run(&mut harness, 1_000_000);
        assert_eq!(harness.predictor().inserted_count(), 0);
        assert!(harness.metrics().pred_writes.get() > 0);
    }

    #[test]
    fn insert_filter_pcs_selects_compares() {
        let program = assemble(LOOP).unwrap();
        let pcs = crate::filter::guard_def_pcs(&program);
        // only the loop compare defines a branch guard
        assert_eq!(pcs.len(), 1);
        let config = HarnessConfig {
            timing: Timing::immediate(64),
            insert: InsertFilter::Pcs(pcs),
        };
        let mut harness = PredictionHarness::new(Pgu::new(Gshare::new(10, 10)), config);
        Executor::new(&program, Memory::new()).run(&mut harness, 1_000_000);
        // 51 iterations × both targets of the cmp (p1 and p2)
        assert_eq!(harness.predictor().inserted_count(), 102);
    }

    #[test]
    fn timeline_counts_cycles_and_flushes() {
        let program = assemble(LOOP).unwrap();
        let run_with = |predictor_taken: bool| -> (u64, u64) {
            let predictor = if predictor_taken {
                StaticPredictor::Taken
            } else {
                StaticPredictor::NotTaken
            };
            let mut harness = PredictionHarness::new(
                predictor,
                HarnessConfig {
                    timing: Timing::immediate(64), // keep the filter out of it
                    insert: InsertFilter::All,
                },
            )
            .with_timeline(predbranch_sim::PipelineConfig::default());
            let summary = Executor::new(&program, Memory::new()).run(&mut harness, 1_000_000);
            assert!(summary.halted);
            (
                harness.timeline().unwrap().cycles(),
                harness.metrics().all.mispredictions.get(),
            )
        };
        // static-taken mispredicts once (final exit); static-not-taken
        // mispredicts 50 times: cycle counts must order accordingly
        let (cycles_good, misp_good) = run_with(true);
        let (cycles_bad, misp_bad) = run_with(false);
        assert!(misp_good < misp_bad);
        assert!(cycles_good < cycles_bad, "{cycles_good} !< {cycles_bad}");
    }

    #[test]
    fn retire_latency_delays_training() {
        // With a huge retire latency and no mispredictions... gshare
        // cannot mispredict-free: use static predictors to isolate the
        // window. A gshare run at retire 1000 never commits mid-run, so
        // its counters only move when `finish` drains the window.
        let program = assemble(LOOP).unwrap();
        let config = HarnessConfig {
            timing: Timing::new(64, 1_000_000),
            insert: InsertFilter::None,
        };
        let mut harness = PredictionHarness::new(Gshare::new(10, 10), config);
        Executor::new(&program, Memory::new()).run(&mut harness, 1_000_000);
        // 51 fetches, every one still in flight...except the window
        // flushes on each misprediction. The loop mispredicts during
        // warmup, so some branches have retired; the invariant that
        // matters is that the tail is still pending until finish().
        assert!(harness.in_flight() > 0, "tail branches still in flight");
        harness.finish();
        assert_eq!(harness.in_flight(), 0);
    }

    #[test]
    fn retire_zero_matches_immediate_update_exactly() {
        // The migration safety net in miniature: the windowed harness at
        // retire 0 must leave the predictor in the same state as the old
        // idealized predict-then-update loop.
        let program = assemble(LOOP).unwrap();
        let config = HarnessConfig {
            timing: Timing::immediate(8),
            insert: InsertFilter::All,
        };
        let mut harness = PredictionHarness::new(Gshare::new(10, 10), config);
        Executor::new(&program, Memory::new()).run(&mut harness, 1_000_000);
        let (windowed, metrics) = harness.into_parts();

        // reference: drive predict/update by hand from a recorded trace
        let mut trace = predbranch_sim::TraceSink::new();
        Executor::new(&program, Memory::new()).run(&mut trace, 1_000_000);
        let mut reference = Gshare::new(10, 10);
        let mut sb = PredicateScoreboard::new(8);
        let mut mispredictions = 0u64;
        for event in trace.events() {
            match event {
                Event::Branch(b) if b.conditional => {
                    let info = BranchInfo::from_event(b);
                    if reference.predict(&info, &sb) != b.taken {
                        mispredictions += 1;
                    }
                    reference.update(&info, b.taken, &sb);
                }
                Event::PredWrite(w) => {
                    sb.observe(w);
                }
                _ => {}
            }
        }
        assert_eq!(windowed, reference, "predictor state must match");
        assert_eq!(metrics.all.mispredictions.get(), mispredictions);
    }

    #[test]
    fn gang_lanes_match_sequential_per_lane_passes() {
        // Four heterogeneous lanes over one recorded stream must end in
        // exactly the state four dedicated harness passes produce —
        // metrics AND predictor tables. Lanes share the gang's resolve
        // latency (one scoreboard); retire latency and insert filter
        // vary per lane.
        let program = assemble(LOOP).unwrap();
        let mut trace = predbranch_sim::TraceSink::new();
        Executor::new(&program, Memory::new()).run(&mut trace, 1_000_000);
        let events: Vec<Event> = trace.events().to_vec();

        let configs = [
            (Timing::immediate(8), InsertFilter::All),
            (Timing::new(8, 8), InsertFilter::All),
            (Timing::new(8, 0), InsertFilter::None),
            (Timing::new(8, 3), InsertFilter::All),
        ];
        let build = |i: usize| Gshare::new(8 + i as u32, 8 + i as u32);

        let mut gang = GangHarness::new();
        for (i, (timing, insert)) in configs.iter().enumerate() {
            gang.push_lane(
                build(i),
                HarnessConfig {
                    timing: *timing,
                    insert: insert.clone(),
                },
            );
        }
        // deliver in EVENT_BATCH_CAPACITY-sized chunks like replay does
        for chunk in events.chunks(predbranch_sim::EVENT_BATCH_CAPACITY) {
            gang.events(chunk);
        }
        let lanes = gang.into_lanes();

        for (i, (timing, insert)) in configs.iter().enumerate() {
            let mut solo = PredictionHarness::new(
                build(i),
                HarnessConfig {
                    timing: *timing,
                    insert: insert.clone(),
                },
            );
            solo.replay_events(&events);
            let (reference, metrics) = solo.into_parts();
            assert_eq!(*lanes[i].metrics(), metrics, "lane {i} metrics");
            assert_eq!(*lanes[i].predictor(), reference, "lane {i} predictor state");
        }
    }

    #[test]
    fn gang_per_event_and_batched_delivery_agree() {
        let program = assemble(LOOP).unwrap();
        let mut trace = predbranch_sim::TraceSink::new();
        Executor::new(&program, Memory::new()).run(&mut trace, 1_000_000);
        let events: Vec<Event> = trace.events().to_vec();

        let mut batched = GangHarness::new();
        let mut per_event = GangHarness::new();
        for gang in [&mut batched, &mut per_event] {
            gang.push_lane(Gshare::new(10, 10), HarnessConfig::default());
            gang.push_lane(Gshare::new(12, 12), HarnessConfig::default());
        }
        batched.events(&events);
        for event in &events {
            per_event.event(event);
        }
        let (b, p) = (batched.into_lanes(), per_event.into_lanes());
        for i in 0..2 {
            assert_eq!(b[i].metrics(), p[i].metrics(), "lane {i}");
            assert_eq!(b[i].predictor(), p[i].predictor(), "lane {i}");
        }
    }

    #[test]
    fn empty_gang_is_a_no_op_sink() {
        let mut gang: GangHarness<Gshare> = GangHarness::new();
        assert!(gang.is_empty());
        gang.events(&[]);
        gang.finish();
        assert_eq!(gang.into_metrics().len(), 0);
    }

    #[test]
    fn metrics_split_by_region_class() {
        let src = r#"
            mov r1 = 0
        loop:
            cmp.lt p1, p2 = r1, 10
            (p1) add r1 = r1, 1
            (p1) br loop            // non-region branch
            halt
        "#;
        let (m, _) = run(src, StaticPredictor::NotTaken, HarnessConfig::default());
        assert_eq!(m.non_region.branches.get(), 11);
        assert_eq!(m.region.branches.get(), 0);
    }
}

//! Drives a predictor from the simulator's event stream.

use std::collections::HashSet;

use predbranch_isa::{Op, Program};
use predbranch_sim::{
    BranchEvent, Event, EventSink, FetchTimeline, PipelineConfig, PredWriteEvent,
    PredicateScoreboard,
};

use crate::predictor::{BranchInfo, BranchPredictor, PredictionMetrics};

/// Policy selecting which predicate definitions are forwarded to the
/// predictor's [`BranchPredictor::on_pred_write`] hook — the PGU
/// insertion-filter ablation.
///
/// The fetch-time scoreboard is always updated regardless of this
/// filter; it only gates what enters the predictor's history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InsertFilter {
    /// Forward every predicate definition (the default PGU policy).
    All,
    /// Forward only definitions from the given compare PCs (e.g. the
    /// guard-defining compares computed by [`guard_def_pcs`]).
    Pcs(HashSet<u32>),
    /// Forward nothing (PGU degenerates to its wrapped baseline).
    None,
}

impl InsertFilter {
    fn passes(&self, write: &PredWriteEvent) -> bool {
        match self {
            InsertFilter::All => true,
            InsertFilter::Pcs(set) => set.contains(&write.pc),
            InsertFilter::None => false,
        }
    }
}

/// Harness configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HarnessConfig {
    /// Scoreboard resolve latency in fetch slots (see
    /// [`PredicateScoreboard`]).
    pub resolve_latency: u64,
    /// Which predicate definitions reach the predictor.
    pub insert: InsertFilter,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            resolve_latency: predbranch_sim::PipelineConfig::default().resolve_latency,
            insert: InsertFilter::All,
        }
    }
}

/// Computes the static set of compare PCs that define some branch's guard
/// predicate — the `guard-defs-only` PGU insertion filter.
///
/// # Examples
///
/// ```
/// use predbranch_core::guard_def_pcs;
/// use predbranch_isa::assemble;
///
/// let p = assemble(
///     "start: cmp.lt p1, p2 = r1, 5\n cmp.eq p3, p4 = r2, 0\n (p1) br start\n halt",
/// ).unwrap();
/// let pcs = guard_def_pcs(&p);
/// assert!(pcs.contains(&0));  // defines p1, the branch guard
/// assert!(!pcs.contains(&1)); // p3/p4 guard nothing
/// ```
pub fn guard_def_pcs(program: &Program) -> HashSet<u32> {
    let mut guards = HashSet::new();
    for (_, inst) in program.iter() {
        if inst.is_branch() && !inst.guard.is_always_true() {
            guards.insert(inst.guard);
        }
    }
    let mut pcs = HashSet::new();
    for (pc, inst) in program.iter() {
        if let Op::Cmp {
            p_true, p_false, ..
        } = inst.op
        {
            if guards.contains(&p_true) || guards.contains(&p_false) {
                pcs.insert(pc);
            }
        }
    }
    pcs
}

/// An [`EventSink`] that runs the full prediction methodology: for each
/// conditional branch, query the predictor at fetch (with the scoreboard
/// reflecting resolved predicate values), compare against the outcome,
/// and train; predicate definitions update the scoreboard and (subject to
/// the [`InsertFilter`]) the predictor.
///
/// Unconditional branches are not predicted (their direction is static).
#[derive(Debug)]
pub struct PredictionHarness<P> {
    predictor: P,
    scoreboard: PredicateScoreboard,
    insert: InsertFilter,
    metrics: PredictionMetrics,
    timeline: Option<FetchTimeline>,
}

impl<P: BranchPredictor> PredictionHarness<P> {
    /// Creates a harness around `predictor`.
    pub fn new(predictor: P, config: HarnessConfig) -> Self {
        PredictionHarness {
            predictor,
            scoreboard: PredicateScoreboard::new(config.resolve_latency),
            insert: config.insert,
            metrics: PredictionMetrics::default(),
            timeline: None,
        }
    }

    /// Attaches a cycle-level [`FetchTimeline`]: every fetched
    /// instruction, taken-branch fragment, and misprediction flush is
    /// accounted, giving event-driven cycle counts (see
    /// [`PredictionHarness::timeline`]).
    pub fn with_timeline(mut self, pipeline: PipelineConfig) -> Self {
        self.timeline = Some(FetchTimeline::new(pipeline));
        self
    }

    /// The attached fetch timeline, if any.
    pub fn timeline(&self) -> Option<&FetchTimeline> {
        self.timeline.as_ref()
    }

    /// The accumulated metrics.
    pub fn metrics(&self) -> &PredictionMetrics {
        &self.metrics
    }

    /// The driven predictor.
    pub fn predictor(&self) -> &P {
        &self.predictor
    }

    /// Consumes the harness, returning predictor and metrics.
    pub fn into_parts(self) -> (P, PredictionMetrics) {
        (self.predictor, self.metrics)
    }

    /// Drives the harness from a buffered event stream — the
    /// replay-driven counterpart of attaching it to a live
    /// [`predbranch_sim::Executor`] run. An event stream captured once
    /// (via [`predbranch_sim::TraceSink`] or a decoded trace file) can
    /// be fed to any number of harnesses, and yields metrics identical
    /// to live execution because prediction depends only on the branch
    /// and predicate-write events.
    pub fn replay_events<'a>(&mut self, events: impl IntoIterator<Item = &'a Event>) {
        for event in events {
            self.event(event);
        }
    }
}

impl<P: BranchPredictor> EventSink for PredictionHarness<P> {
    fn instruction(&mut self, _pc: u32, _index: u64) {
        if let Some(timeline) = &mut self.timeline {
            timeline.instruction();
        }
    }

    fn branch(&mut self, event: &BranchEvent) {
        if !event.conditional {
            // unconditional branches are not predicted, but a taken
            // branch still fragments fetch
            if let Some(timeline) = &mut self.timeline {
                timeline.taken_branch();
            }
            return;
        }
        let info = BranchInfo::from_event(event);
        let predicted = self.predictor.predict(&info, &self.scoreboard);
        let correct = predicted == event.taken;

        self.metrics.all.record(correct);
        if event.region.is_some() {
            self.metrics.region.record(correct);
        } else {
            self.metrics.non_region.record(correct);
        }
        if self
            .scoreboard
            .query(event.guard, event.index)
            .is_known_false()
        {
            self.metrics.known_false_guard.increment();
            if !correct {
                self.metrics.known_false_mispredicted.increment();
            }
        }

        if let Some(timeline) = &mut self.timeline {
            if !correct {
                timeline.mispredict();
            } else if event.taken {
                timeline.taken_branch();
            }
        }

        self.predictor.update(&info, event.taken, &self.scoreboard);
    }

    fn pred_write(&mut self, event: &PredWriteEvent) {
        self.metrics.pred_writes.increment();
        self.scoreboard.observe(event);
        if self.insert.passes(event) {
            self.predictor.on_pred_write(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gshare::Gshare;
    use crate::pgu::Pgu;
    use crate::predictor::StaticPredictor;
    use crate::sfpf::SquashFilter;
    use predbranch_isa::assemble;
    use predbranch_sim::{Executor, Memory, RunSummary};

    const LOOP: &str = r#"
        mov r1 = 0
    loop:
        cmp.lt p1, p2 = r1, 50
        (p1) add r1 = r1, 1
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        (p1) br.region 0, loop
        halt
    "#;

    fn run<P: BranchPredictor>(
        src: &str,
        predictor: P,
        config: HarnessConfig,
    ) -> (PredictionMetrics, RunSummary) {
        let program = assemble(src).unwrap();
        let mut harness = PredictionHarness::new(predictor, config);
        let summary = Executor::new(&program, Memory::new()).run(&mut harness, 1_000_000);
        (*harness.metrics(), summary)
    }

    #[test]
    fn static_not_taken_mispredicts_loop_body() {
        let (m, _) = run(LOOP, StaticPredictor::NotTaken, HarnessConfig::default());
        assert_eq!(m.all.branches.get(), 51);
        assert_eq!(m.all.mispredictions.get(), 50);
        assert_eq!(m.region.branches.get(), 51);
        assert_eq!(m.non_region.branches.get(), 0);
    }

    #[test]
    fn sfpf_catches_known_false_final_iteration() {
        // def-to-branch distance is 10; with latency <= 10 the final
        // (not-taken) branch is fetched with p1 known false
        let config = HarnessConfig {
            resolve_latency: 10,
            insert: InsertFilter::All,
        };
        let (m, _) = run(LOOP, SquashFilter::new(StaticPredictor::Taken), config);
        assert_eq!(m.known_false_guard.get(), 1);
        assert_eq!(m.known_false_mispredicted.get(), 0);
        // the other 50 fetches predict taken (correct)
        assert_eq!(m.all.mispredictions.get(), 0);
    }

    #[test]
    fn unresolved_guards_bypass_filter() {
        let config = HarnessConfig {
            resolve_latency: 11,
            insert: InsertFilter::All,
        };
        let (m, _) = run(LOOP, SquashFilter::new(StaticPredictor::Taken), config);
        assert_eq!(m.known_false_guard.get(), 0);
        // static-taken now mispredicts the final iteration
        assert_eq!(m.all.mispredictions.get(), 1);
    }

    #[test]
    fn insert_filter_none_starves_pgu() {
        let config = HarnessConfig {
            resolve_latency: 64,
            insert: InsertFilter::None,
        };
        let program = assemble(LOOP).unwrap();
        let mut harness = PredictionHarness::new(Pgu::new(Gshare::new(10, 10)), config);
        Executor::new(&program, Memory::new()).run(&mut harness, 1_000_000);
        assert_eq!(harness.predictor().inserted_count(), 0);
        assert!(harness.metrics().pred_writes.get() > 0);
    }

    #[test]
    fn insert_filter_pcs_selects_compares() {
        let program = assemble(LOOP).unwrap();
        let pcs = guard_def_pcs(&program);
        // only the loop compare defines a branch guard
        assert_eq!(pcs.len(), 1);
        let config = HarnessConfig {
            resolve_latency: 64,
            insert: InsertFilter::Pcs(pcs),
        };
        let mut harness = PredictionHarness::new(Pgu::new(Gshare::new(10, 10)), config);
        Executor::new(&program, Memory::new()).run(&mut harness, 1_000_000);
        // 51 iterations × both targets of the cmp (p1 and p2)
        assert_eq!(harness.predictor().inserted_count(), 102);
    }

    #[test]
    fn timeline_counts_cycles_and_flushes() {
        let program = assemble(LOOP).unwrap();
        let run_with = |predictor_taken: bool| -> (u64, u64) {
            let predictor = if predictor_taken {
                StaticPredictor::Taken
            } else {
                StaticPredictor::NotTaken
            };
            let mut harness = PredictionHarness::new(
                predictor,
                HarnessConfig {
                    resolve_latency: 64, // keep the filter out of it
                    insert: InsertFilter::All,
                },
            )
            .with_timeline(predbranch_sim::PipelineConfig::default());
            let summary = Executor::new(&program, Memory::new()).run(&mut harness, 1_000_000);
            assert!(summary.halted);
            (
                harness.timeline().unwrap().cycles(),
                harness.metrics().all.mispredictions.get(),
            )
        };
        // static-taken mispredicts once (final exit); static-not-taken
        // mispredicts 50 times: cycle counts must order accordingly
        let (cycles_good, misp_good) = run_with(true);
        let (cycles_bad, misp_bad) = run_with(false);
        assert!(misp_good < misp_bad);
        assert!(cycles_good < cycles_bad, "{cycles_good} !< {cycles_bad}");
    }

    #[test]
    fn metrics_split_by_region_class() {
        let src = r#"
            mov r1 = 0
        loop:
            cmp.lt p1, p2 = r1, 10
            (p1) add r1 = r1, 1
            (p1) br loop            // non-region branch
            halt
        "#;
        let (m, _) = run(src, StaticPredictor::NotTaken, HarnessConfig::default());
        assert_eq!(m.non_region.branches.get(), 11);
        assert_eq!(m.region.branches.get(), 0);
    }
}

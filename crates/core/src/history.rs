//! The global history register.

use std::fmt;

/// A shift register of recent branch (and, under PGU, predicate)
/// outcomes, up to 64 bits.
///
/// Bit 0 is the most recent outcome.
///
/// # Examples
///
/// ```
/// use predbranch_core::GlobalHistory;
///
/// let mut h = GlobalHistory::new(4);
/// h.shift_in(true);
/// h.shift_in(false);
/// h.shift_in(true);
/// assert_eq!(h.value(), 0b101);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalHistory {
    bits: u64,
    len: u32,
}

impl GlobalHistory {
    /// Creates an all-zero history of `len` bits.
    ///
    /// # Panics
    ///
    /// Panics if `len` is 0 or greater than 64.
    pub fn new(len: u32) -> Self {
        assert!((1..=64).contains(&len), "history length must be 1..=64");
        GlobalHistory { bits: 0, len }
    }

    /// Number of history bits.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether the register currently holds all zeros.
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Shifts one outcome in (most recent at bit 0).
    pub fn shift_in(&mut self, outcome: bool) {
        self.bits = ((self.bits << 1) | u64::from(outcome)) & self.mask();
    }

    /// The current history value.
    pub fn value(&self) -> u64 {
        self.bits
    }

    /// The all-ones mask for this history length.
    pub fn mask(&self) -> u64 {
        if self.len == 64 {
            u64::MAX
        } else {
            (1u64 << self.len) - 1
        }
    }

    /// Folds the history down to `bits` bits by XOR, for indexing tables
    /// smaller than the history is long.
    pub fn folded(&self, bits: u32) -> u64 {
        assert!((1..=64).contains(&bits), "fold width must be 1..=64");
        let mask = if bits == 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        let mut v = self.bits;
        let mut out = 0u64;
        while v != 0 {
            out ^= v & mask;
            v >>= bits;
        }
        out
    }

    /// Clears the history.
    pub fn reset(&mut self) {
        self.bits = 0;
    }

    /// Storage cost in bits.
    pub fn storage_bits(&self) -> usize {
        self.len as usize
    }
}

impl fmt::Display for GlobalHistory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:0width$b}", self.bits, width = self.len as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_keeps_len_bits() {
        let mut h = GlobalHistory::new(3);
        for _ in 0..10 {
            h.shift_in(true);
        }
        assert_eq!(h.value(), 0b111);
    }

    #[test]
    fn most_recent_is_bit_zero() {
        let mut h = GlobalHistory::new(8);
        h.shift_in(true);
        h.shift_in(false);
        assert_eq!(h.value() & 1, 0);
        assert_eq!((h.value() >> 1) & 1, 1);
    }

    #[test]
    fn full_width_history() {
        let mut h = GlobalHistory::new(64);
        h.shift_in(true);
        assert_eq!(h.value(), 1);
        assert_eq!(h.mask(), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "history length")]
    fn zero_length_rejected() {
        let _ = GlobalHistory::new(0);
    }

    #[test]
    #[should_panic(expected = "history length")]
    fn oversized_rejected() {
        let _ = GlobalHistory::new(65);
    }

    #[test]
    fn folding_xors_chunks() {
        let mut h = GlobalHistory::new(8);
        for bit in [true, false, true, true, false, false, true, false] {
            h.shift_in(bit);
        }
        // bits = 0b10110010
        assert_eq!(h.value(), 0b1011_0010);
        assert_eq!(h.folded(4), 0b1011 ^ 0b0010);
        assert_eq!(h.folded(8), h.value());
        assert_eq!(h.folded(16), h.value());
    }

    #[test]
    fn reset_clears() {
        let mut h = GlobalHistory::new(4);
        h.shift_in(true);
        h.reset();
        assert!(h.is_empty());
    }

    #[test]
    fn display_is_fixed_width_binary() {
        let mut h = GlobalHistory::new(4);
        h.shift_in(true);
        assert_eq!(h.to_string(), "0001");
    }
}

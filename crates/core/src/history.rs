//! Global history registers: the classic 64-bit shift register, a
//! segmented register for histories longer than a machine word, and the
//! incrementally folded view of a long history that TAGE-style
//! predictors index with.

use std::fmt;

/// A shift register of recent branch (and, under PGU, predicate)
/// outcomes, up to 64 bits.
///
/// Bit 0 is the most recent outcome.
///
/// # Examples
///
/// ```
/// use predbranch_core::GlobalHistory;
///
/// let mut h = GlobalHistory::new(4);
/// h.shift_in(true);
/// h.shift_in(false);
/// h.shift_in(true);
/// assert_eq!(h.value(), 0b101);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalHistory {
    bits: u64,
    len: u32,
}

impl GlobalHistory {
    /// Creates an all-zero history of `len` bits.
    ///
    /// # Panics
    ///
    /// Panics if `len` is 0 or greater than 64.
    pub fn new(len: u32) -> Self {
        assert!((1..=64).contains(&len), "history length must be 1..=64");
        GlobalHistory { bits: 0, len }
    }

    /// Number of history bits.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether the register currently holds all zeros.
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Shifts one outcome in (most recent at bit 0).
    pub fn shift_in(&mut self, outcome: bool) {
        self.bits = ((self.bits << 1) | u64::from(outcome)) & self.mask();
    }

    /// The current history value.
    pub fn value(&self) -> u64 {
        self.bits
    }

    /// The all-ones mask for this history length.
    pub fn mask(&self) -> u64 {
        if self.len == 64 {
            u64::MAX
        } else {
            (1u64 << self.len) - 1
        }
    }

    /// Folds the history down to `bits` bits by XOR, for indexing tables
    /// smaller than the history is long.
    pub fn folded(&self, bits: u32) -> u64 {
        assert!((1..=64).contains(&bits), "fold width must be 1..=64");
        let mask = if bits == 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        let mut v = self.bits;
        let mut out = 0u64;
        while v != 0 {
            out ^= v & mask;
            v >>= bits;
        }
        out
    }

    /// Clears the history.
    pub fn reset(&mut self) {
        self.bits = 0;
    }

    /// Storage cost in bits.
    pub fn storage_bits(&self) -> usize {
        self.len as usize
    }
}

impl fmt::Display for GlobalHistory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:0width$b}", self.bits, width = self.len as usize)
    }
}

/// Maximum length of a [`LongHistory`], in bits.
pub const MAX_LONG_HISTORY: u32 = 256;

const LONG_WORDS: usize = (MAX_LONG_HISTORY / 64) as usize;

/// A shift register of recent outcomes longer than a machine word —
/// the global history a TAGE geometric series reads from (its longest
/// table wants far more than [`GlobalHistory`]'s 64-bit cap).
///
/// Bit 0 is the most recent outcome, exactly as in [`GlobalHistory`].
/// The register is a fixed array of words and `Copy`, so speculative
/// predictors can checkpoint it by value and a squash restores it
/// exactly, with no allocation on the hot path.
///
/// # Examples
///
/// ```
/// use predbranch_core::LongHistory;
///
/// let mut h = LongHistory::new(130);
/// h.shift_in(true);
/// h.shift_in(false);
/// assert!(!h.bit(0));
/// assert!(h.bit(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LongHistory {
    words: [u64; LONG_WORDS],
    len: u32,
}

impl LongHistory {
    /// Creates an all-zero history of `len` bits.
    ///
    /// # Panics
    ///
    /// Panics if `len` is 0 or greater than [`MAX_LONG_HISTORY`].
    pub fn new(len: u32) -> Self {
        assert!(
            (1..=MAX_LONG_HISTORY).contains(&len),
            "long history length must be 1..={MAX_LONG_HISTORY}"
        );
        LongHistory {
            words: [0; LONG_WORDS],
            len,
        }
    }

    /// Number of history bits.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether the register currently holds all zeros.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Shifts one outcome in (most recent at bit 0), dropping the bit
    /// that ages out past `len`.
    pub fn shift_in(&mut self, outcome: bool) {
        let mut carry = u64::from(outcome);
        for word in &mut self.words {
            let next = *word >> 63;
            *word = (*word << 1) | carry;
            carry = next;
        }
        self.trim();
    }

    /// Zeroes every bit at position `len` and beyond.
    fn trim(&mut self) {
        let full = (self.len / 64) as usize;
        let rem = self.len % 64;
        if rem != 0 {
            self.words[full] &= (1u64 << rem) - 1;
        }
        for word in &mut self.words[(full + usize::from(rem != 0))..] {
            *word = 0;
        }
    }

    /// The outcome `k` steps ago (`k = 0` is the most recent).
    ///
    /// # Panics
    ///
    /// Panics if `k >= len`.
    pub fn bit(&self, k: u32) -> bool {
        assert!(k < self.len, "history bit {k} out of range");
        (self.words[(k / 64) as usize] >> (k % 64)) & 1 == 1
    }

    /// Clears the history.
    pub fn reset(&mut self) {
        self.words = [0; LONG_WORDS];
    }

    /// Storage cost in bits.
    pub fn storage_bits(&self) -> usize {
        self.len as usize
    }
}

/// An incrementally maintained XOR-fold of the newest `olen` bits of a
/// [`LongHistory`], compressed to `clen` bits (Seznec's folded history).
///
/// TAGE indexes each tagged table with a fold of a geometrically longer
/// history prefix; recomputing those folds per prediction would cost
/// O(history), so this register maintains each one in O(1) per inserted
/// bit. The invariant (pinned by property test against
/// [`FoldedHistory::recompute`]) is the plain chunk fold: the value
/// always equals the XOR of the window's consecutive `clen`-bit chunks.
///
/// The update must see the bit *leaving* the window, so call
/// [`FoldedHistory::update`] with the pre-shift history, then shift the
/// [`LongHistory`] itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FoldedHistory {
    comp: u64,
    olen: u32,
    clen: u32,
    outpoint: u32,
}

impl FoldedHistory {
    /// Creates the all-zero fold of an `olen`-bit window down to `clen`
    /// bits.
    ///
    /// # Panics
    ///
    /// Panics if `clen` is outside `1..=32` or `olen` is 0 or greater
    /// than [`MAX_LONG_HISTORY`].
    pub fn new(olen: u32, clen: u32) -> Self {
        assert!((1..=32).contains(&clen), "fold width must be 1..=32");
        assert!(
            (1..=MAX_LONG_HISTORY).contains(&olen),
            "folded window must be 1..={MAX_LONG_HISTORY} bits"
        );
        FoldedHistory {
            comp: 0,
            olen,
            clen,
            outpoint: olen % clen,
        }
    }

    /// Length of the history window being folded.
    pub fn window_len(&self) -> u32 {
        self.olen
    }

    /// The current folded value (`clen` bits).
    pub fn value(&self) -> u64 {
        self.comp
    }

    fn mask(&self) -> u64 {
        (1u64 << self.clen) - 1
    }

    /// Advances the fold for one inserted bit. `history` must be the
    /// *pre-shift* register (the update reads the bit about to age out
    /// of the window); shift the [`LongHistory`] after calling this.
    ///
    /// # Panics
    ///
    /// Panics if the register is shorter than the folded window — bits
    /// would then age out of the register before the fold could remove
    /// them, silently corrupting the fold.
    pub fn update(&mut self, history: &LongHistory, inserted: bool) {
        assert!(
            self.olen <= history.len(),
            "folded window longer than the history register"
        );
        let outgoing = history.bit(self.olen - 1);
        self.comp = (self.comp << 1) | u64::from(inserted);
        self.comp ^= u64::from(outgoing) << self.outpoint;
        self.comp ^= self.comp >> self.clen;
        self.comp &= self.mask();
    }

    /// Recomputes the fold from scratch — the specification
    /// [`FoldedHistory::update`] maintains incrementally, used by the
    /// property tests as an independent oracle.
    pub fn recompute(&self, history: &LongHistory) -> u64 {
        let mut folded = 0u64;
        for k in 0..self.olen.min(history.len()) {
            if history.bit(k) {
                folded ^= 1 << (k % self.clen);
            }
        }
        folded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_keeps_len_bits() {
        let mut h = GlobalHistory::new(3);
        for _ in 0..10 {
            h.shift_in(true);
        }
        assert_eq!(h.value(), 0b111);
    }

    #[test]
    fn most_recent_is_bit_zero() {
        let mut h = GlobalHistory::new(8);
        h.shift_in(true);
        h.shift_in(false);
        assert_eq!(h.value() & 1, 0);
        assert_eq!((h.value() >> 1) & 1, 1);
    }

    #[test]
    fn full_width_history() {
        let mut h = GlobalHistory::new(64);
        h.shift_in(true);
        assert_eq!(h.value(), 1);
        assert_eq!(h.mask(), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "history length")]
    fn zero_length_rejected() {
        let _ = GlobalHistory::new(0);
    }

    #[test]
    #[should_panic(expected = "history length")]
    fn oversized_rejected() {
        let _ = GlobalHistory::new(65);
    }

    #[test]
    fn folding_xors_chunks() {
        let mut h = GlobalHistory::new(8);
        for bit in [true, false, true, true, false, false, true, false] {
            h.shift_in(bit);
        }
        // bits = 0b10110010
        assert_eq!(h.value(), 0b1011_0010);
        assert_eq!(h.folded(4), 0b1011 ^ 0b0010);
        assert_eq!(h.folded(8), h.value());
        assert_eq!(h.folded(16), h.value());
    }

    #[test]
    fn reset_clears() {
        let mut h = GlobalHistory::new(4);
        h.shift_in(true);
        h.reset();
        assert!(h.is_empty());
    }

    #[test]
    fn display_is_fixed_width_binary() {
        let mut h = GlobalHistory::new(4);
        h.shift_in(true);
        assert_eq!(h.to_string(), "0001");
    }

    #[test]
    fn long_history_crosses_word_boundaries() {
        let mut h = LongHistory::new(200);
        h.shift_in(true);
        for _ in 0..70 {
            h.shift_in(false);
        }
        assert!(h.bit(70), "the set bit migrated into the second word");
        assert!(!h.bit(69));
        assert!(!h.bit(71));
    }

    #[test]
    fn long_history_drops_bits_past_len() {
        let mut h = LongHistory::new(5);
        h.shift_in(true);
        for _ in 0..4 {
            h.shift_in(false);
        }
        assert!(h.bit(4));
        h.shift_in(false);
        assert!(h.is_empty(), "the set bit aged out of a 5-bit register");
    }

    #[test]
    fn long_history_matches_global_history_at_64_bits() {
        let mut long = LongHistory::new(64);
        let mut short = GlobalHistory::new(64);
        let mut x = 0x1234_5678_9abc_def0u64;
        for _ in 0..300 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let bit = x >> 63 == 1;
            long.shift_in(bit);
            short.shift_in(bit);
        }
        for k in 0..64 {
            assert_eq!(long.bit(k), (short.value() >> k) & 1 == 1);
        }
    }

    #[test]
    #[should_panic(expected = "long history length")]
    fn long_history_oversized_rejected() {
        let _ = LongHistory::new(MAX_LONG_HISTORY + 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn long_history_bit_out_of_range_rejected() {
        let _ = LongHistory::new(8).bit(8);
    }

    #[test]
    #[should_panic(expected = "folded window longer")]
    fn fold_over_short_register_rejected() {
        let mut fold = FoldedHistory::new(16, 4);
        fold.update(&LongHistory::new(8), true);
    }

    #[test]
    fn fold_window_shorter_than_width_is_verbatim() {
        let mut hist = LongHistory::new(64);
        let mut fold = FoldedHistory::new(3, 8);
        for bit in [true, false, true] {
            fold.update(&hist, bit);
            hist.shift_in(bit);
        }
        assert_eq!(fold.value(), 0b101);
        // a fourth insert pushes the oldest of the 3-bit window out
        fold.update(&hist, false);
        hist.shift_in(false);
        assert_eq!(fold.value(), 0b010);
    }

    mod folded_props {
        use super::*;
        use proptest::prelude::*;

        /// One step of a speculative-history life: insert a bit,
        /// checkpoint, or roll back to the checkpoint (squash).
        #[derive(Debug, Clone, Copy)]
        enum Op {
            Insert(bool),
            Snapshot,
            Restore,
        }

        fn arb_op() -> impl Strategy<Value = Op> {
            prop_oneof![
                any::<bool>().prop_map(Op::Insert),
                any::<bool>().prop_map(Op::Insert),
                Just(Op::Snapshot),
                Just(Op::Restore),
            ]
        }

        proptest! {
            /// Satellite invariant: the O(1) fold update stays equal to
            /// a from-scratch recompute under arbitrary insert /
            /// snapshot / restore (squash) sequences, for folds of
            /// several widths over several window lengths.
            #[test]
            fn fold_update_equals_recompute(
                len in 1u32..=MAX_LONG_HISTORY,
                ops in prop::collection::vec(arb_op(), 1..200),
            ) {
                let mut hist = LongHistory::new(len);
                let mut folds: Vec<FoldedHistory> = [
                    (1, 1),
                    (len, 32.min(len)),
                    (len, 11.min(len)),
                    (len.div_ceil(2), 7.min(len)),
                    (len.div_ceil(3), 3.min(len)),
                ]
                .iter()
                .map(|&(olen, clen)| FoldedHistory::new(olen, clen))
                .collect();
                let mut saved = (hist, folds.clone());
                for op in ops {
                    match op {
                        Op::Insert(bit) => {
                            for fold in &mut folds {
                                fold.update(&hist, bit);
                            }
                            hist.shift_in(bit);
                        }
                        Op::Snapshot => saved = (hist, folds.clone()),
                        Op::Restore => (hist, folds) = saved.clone(),
                    }
                    for fold in &folds {
                        prop_assert_eq!(fold.value(), fold.recompute(&hist));
                    }
                }
            }
        }
    }
}

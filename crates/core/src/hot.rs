//! Per-branch misprediction attribution.

use std::collections::BTreeMap;

use predbranch_sim::{BranchEvent, EventSink, PredWriteEvent, PredicateScoreboard};

use crate::predictor::{BranchInfo, BranchPredictor, ClassCounts};

/// Attributes mispredictions to static branches: wraps a predictor like
/// [`crate::PredictionHarness`] but keeps per-PC counters, so analyses
/// can answer *which* branches the techniques fix.
///
/// # Examples
///
/// ```
/// use predbranch_core::{Gshare, HotBranches};
///
/// let hot = HotBranches::new(Gshare::new(10, 10), 8);
/// assert!(hot.ranked().is_empty());
/// ```
#[derive(Debug)]
pub struct HotBranches<P> {
    predictor: P,
    scoreboard: PredicateScoreboard,
    per_pc: BTreeMap<u32, ClassCounts>,
}

impl<P: BranchPredictor> HotBranches<P> {
    /// Creates the attribution harness with the given resolve latency.
    pub fn new(predictor: P, resolve_latency: u64) -> Self {
        HotBranches {
            predictor,
            scoreboard: PredicateScoreboard::new(resolve_latency),
            per_pc: BTreeMap::new(),
        }
    }

    /// Static branches ranked by misprediction count (descending), as
    /// `(pc, counts)` pairs.
    pub fn ranked(&self) -> Vec<(u32, ClassCounts)> {
        let mut v: Vec<(u32, ClassCounts)> = self.per_pc.iter().map(|(&pc, &c)| (pc, c)).collect();
        v.sort_by(|a, b| {
            b.1.mispredictions
                .get()
                .cmp(&a.1.mispredictions.get())
                .then(a.0.cmp(&b.0))
        });
        v
    }

    /// The counters for one static branch, if it executed.
    pub fn at(&self, pc: u32) -> Option<ClassCounts> {
        self.per_pc.get(&pc).copied()
    }

    /// Total mispredictions across all branches.
    pub fn total_mispredictions(&self) -> u64 {
        self.per_pc.values().map(|c| c.mispredictions.get()).sum()
    }
}

impl<P: BranchPredictor> EventSink for HotBranches<P> {
    fn branch(&mut self, event: &BranchEvent) {
        if !event.conditional {
            return;
        }
        let info = BranchInfo::from_event(event);
        let predicted = self.predictor.predict(&info, &self.scoreboard);
        self.per_pc
            .entry(event.pc)
            .or_default()
            .record(predicted == event.taken);
        // Attribution drives the lifecycle at retire latency 0: each
        // branch speculates on its real outcome and commits immediately.
        self.predictor
            .speculate(&info, event.taken, &self.scoreboard);
        self.predictor.commit(&info, event.taken, &self.scoreboard);
    }

    fn pred_write(&mut self, event: &PredWriteEvent) {
        self.scoreboard.observe(event);
        self.predictor.on_pred_write(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::StaticPredictor;
    use predbranch_isa::assemble;
    use predbranch_sim::{Executor, Memory};

    #[test]
    fn attributes_mispredictions_to_the_right_pc() {
        let program = assemble(
            r#"
                mov r1 = 0
            loop:
                cmp.lt p1, p2 = r1, 20
                (p1) add r1 = r1, 1
                (p1) br loop        // pc 3: taken 20/21
                cmp.eq p3, p4 = r1, 99
                (p3) br loop        // pc 5: never taken
                halt
            "#,
        )
        .unwrap();
        let mut hot = HotBranches::new(StaticPredictor::NotTaken, 8);
        let summary = Executor::new(&program, Memory::new()).run(&mut hot, 100_000);
        assert!(summary.halted);
        // pc 3 mispredicts 20 times under static-not-taken; pc 5 never
        let ranked = hot.ranked();
        assert_eq!(ranked[0].0, 3);
        assert_eq!(ranked[0].1.mispredictions.get(), 20);
        assert_eq!(hot.at(5).unwrap().mispredictions.get(), 0);
        assert_eq!(hot.total_mispredictions(), 20);
        assert_eq!(hot.at(999), None);
    }

    #[test]
    fn ranking_is_stable_for_ties() {
        let program = assemble(
            r#"
                cmp.eq p1, p2 = r0, r0
                (p1) br a
            a:  (p1) br b
            b:  halt
            "#,
        )
        .unwrap();
        let mut hot = HotBranches::new(StaticPredictor::NotTaken, 8);
        Executor::new(&program, Memory::new()).run(&mut hot, 1_000);
        let ranked = hot.ranked();
        assert_eq!(ranked.len(), 2);
        // equal misprediction counts: ordered by pc
        assert!(ranked[0].0 < ranked[1].0);
    }
}

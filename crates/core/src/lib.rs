//! Branch predictors that incorporate predicate information — the primary
//! contribution of Simon, Calder & Ferrante, *Incorporating Predicate
//! Information into Branch Predictors* (HPCA-9, 2003), reimplemented as a
//! library.
//!
//! # The two techniques
//!
//! In a predicated ISA, a conditional branch `(qp) br target` is taken
//! exactly when its guard predicate `qp` is true, and `qp` was computed by
//! an ordinary compare instruction some distance before the branch. The
//! paper exploits this in two ways:
//!
//! * **Squash false-path filter** ([`SquashFilter`]): if, by the time the
//!   branch is fetched, the guard's defining compare has resolved and the
//!   value is *false*, the branch cannot be taken — predict not-taken with
//!   100% accuracy and don't let the branch pollute (or consult) the
//!   dynamic predictor. This exactly implements the abstract's
//!   "recognizes fetched branches known to be guarded with a false
//!   predicate and predicts them as not-taken with 100% accuracy".
//!
//! * **Predicate global update** ([`Pgu`]): if-conversion *removes*
//!   branches, and with them the global-history bits that downstream
//!   branches used to correlate on. The PGU predictor restores that
//!   correlation by shifting recently computed predicate-definition
//!   outcomes into the global history register, so a *region-based
//!   branch* (one left inside a predicated region) can correlate with the
//!   predicate definitions of its region.
//!
//! Both wrap the conventional baselines implemented here ([`Bimodal`],
//! [`Gshare`], [`Local`], [`Tournament`], [`StaticPredictor`]) behind one
//! [`BranchPredictor`] trait, and [`PredictionHarness`] drives any of them
//! from a `predbranch-sim` event stream, collecting per-class
//! (region/non-region) misprediction metrics.
//!
//! # Examples
//!
//! ```
//! use predbranch_core::{Gshare, HarnessConfig, PredictionHarness, SquashFilter};
//! use predbranch_isa::assemble;
//! use predbranch_sim::{Executor, Memory};
//!
//! let program = assemble(
//!     r#"
//!         mov r1 = 0
//!     loop:
//!         cmp.lt p1, p2 = r1, 100
//!         (p1) add r1 = r1, 1
//!         nop
//!         nop
//!         (p1) br.region 0, loop
//!         halt
//!     "#,
//! ).unwrap();
//! let predictor = SquashFilter::new(Gshare::new(10, 8));
//! let mut harness = PredictionHarness::new(predictor, HarnessConfig::default());
//! Executor::new(&program, Memory::new()).run(&mut harness, 10_000);
//! let m = harness.metrics();
//! assert_eq!(m.all.branches.get(), 101);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod agree;
mod bimodal;
mod config;
mod filter;
mod gshare;
mod harness;
mod history;
mod hot;
mod local;
mod oracle;
mod perceptron;
mod pgu;
mod predictor;
mod ring;
mod sfpf;
mod stack;
mod tables;
mod tournament;

pub use agree::Agree;
pub use bimodal::Bimodal;
pub use config::{build_predictor, PredictorSpec};
pub use filter::{guard_def_pcs, InsertFilter};
pub use gshare::Gshare;
pub use harness::{GangHarness, HarnessConfig, PredictionHarness, Timing};
pub use history::{FoldedHistory, GlobalHistory, LongHistory, MAX_LONG_HISTORY};
pub use hot::HotBranches;
pub use local::Local;
pub use oracle::PerfectGuard;
pub use perceptron::Perceptron;
pub use pgu::Pgu;
pub use predictor::StaticPredictor;
pub use predictor::{
    BranchInfo, BranchPredictor, ClassCounts, HasGlobalHistory, HistoryInsert, PredictionMetrics,
};
pub use ring::{checkpoint_capacity, Checkpoints, Ring, CHECKPOINT_CAPACITY, WINDOW_CAPACITY};
pub use sfpf::SquashFilter;
pub use stack::{build_predictor_stack, PredictorStack, StackVariant};
pub use tables::{CounterTable, TwoBitCounter};
pub use tournament::Tournament;

//! The two-level local-history predictor (PAg-style).

use predbranch_sim::PredicateScoreboard;

use crate::predictor::{BranchInfo, BranchPredictor};
use crate::ring::Checkpoints;
use crate::tables::CounterTable;

/// A two-level local predictor: a per-branch history table feeding a
/// shared pattern table of 2-bit counters (Yeh & Patt's PAg).
///
/// Captures per-branch periodic patterns without global correlation —
/// the complementary baseline to [`crate::Gshare`] and one half of
/// [`crate::Tournament`].
///
/// # Examples
///
/// ```
/// use predbranch_core::{BranchPredictor, Local};
///
/// let p = Local::new(10, 10, 12);
/// assert_eq!(p.storage_bits(), 1024 * 10 + 2 * 4096);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Local {
    histories: Vec<u64>,
    bht_bits: u32,
    history_bits: u32,
    pattern: CounterTable,
    /// Per-in-flight-branch checkpoints: the branch's BHT slot and the
    /// slot's pre-shift local history.
    checkpoints: Checkpoints<(usize, u64)>,
}

impl Local {
    /// Creates a local predictor with `2^bht_bits` per-branch histories
    /// of `history_bits` each, and a `2^pattern_bits`-entry pattern
    /// table.
    ///
    /// # Panics
    ///
    /// Panics if `bht_bits`/`pattern_bits` are outside `1..=28` or
    /// `history_bits` outside `1..=64`.
    pub fn new(bht_bits: u32, history_bits: u32, pattern_bits: u32) -> Self {
        assert!((1..=28).contains(&bht_bits), "bht bits must be 1..=28");
        assert!(
            (1..=64).contains(&history_bits),
            "history bits must be 1..=64"
        );
        Local {
            histories: vec![0; 1 << bht_bits],
            bht_bits,
            history_bits,
            pattern: CounterTable::new(pattern_bits),
            checkpoints: Checkpoints::new(),
        }
    }

    fn bht_slot(&self, pc: u32) -> usize {
        (pc as usize) & (self.histories.len() - 1)
    }

    fn history_mask(&self) -> u64 {
        if self.history_bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.history_bits) - 1
        }
    }

    fn pattern_index(&self, pc: u32) -> u64 {
        // classic PAg: the local history selects the pattern counter;
        // xor in the pc to reduce destructive aliasing between branches
        self.histories[self.bht_slot(pc)] ^ (u64::from(pc) << 1)
    }
}

impl BranchPredictor for Local {
    fn name(&self) -> String {
        format!(
            "local-{}/{}/{}",
            self.bht_bits,
            self.history_bits,
            self.pattern.index_bits()
        )
    }

    fn predict(&mut self, branch: &BranchInfo, _scoreboard: &PredicateScoreboard) -> bool {
        self.pattern.predict(self.pattern_index(branch.pc))
    }

    fn speculate(&mut self, branch: &BranchInfo, predicted: bool, _sb: &PredicateScoreboard) {
        let slot = self.bht_slot(branch.pc);
        self.checkpoints.push_back((slot, self.histories[slot]));
        self.histories[slot] =
            ((self.histories[slot] << 1) | u64::from(predicted)) & self.history_mask();
    }

    fn commit(&mut self, branch: &BranchInfo, taken: bool, _scoreboard: &PredicateScoreboard) {
        let (_, fetch_history) = self
            .checkpoints
            .pop_front()
            .expect("local commit without a matching speculate");
        self.pattern
            .update(fetch_history ^ (u64::from(branch.pc) << 1), taken);
    }

    fn squash(&mut self, _branch: &BranchInfo, taken: bool, _scoreboard: &PredicateScoreboard) {
        let (slot, fetch_history) = *self
            .checkpoints
            .front()
            .expect("local squash without a matching speculate");
        self.histories[slot] = ((fetch_history << 1) | u64::from(taken)) & self.history_mask();
    }

    fn storage_bits(&self) -> usize {
        self.histories.len() * self.history_bits as usize + self.pattern.storage_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predbranch_isa::PredReg;

    fn info(pc: u32) -> BranchInfo {
        BranchInfo {
            pc,
            target: 0,
            guard: PredReg::new(1).unwrap(),
            region: None,
            index: 0,
        }
    }

    #[test]
    fn learns_periodic_pattern() {
        let sb = PredicateScoreboard::new(0);
        let mut p = Local::new(8, 10, 12);
        let pattern = [true, true, true, false]; // period 4
        let mut wrong_tail = 0;
        for i in 0..400 {
            let outcome = pattern[i % 4];
            if i >= 200 && p.predict(&info(9), &sb) != outcome {
                wrong_tail += 1;
            }
            p.update(&info(9), outcome, &sb);
        }
        assert_eq!(wrong_tail, 0, "period-4 pattern must be learned");
    }

    #[test]
    fn branches_have_independent_histories() {
        let sb = PredicateScoreboard::new(0);
        let mut p = Local::new(8, 8, 12);
        for _ in 0..50 {
            p.update(&info(1), true, &sb);
            p.update(&info(2), false, &sb);
        }
        assert!(p.predict(&info(1), &sb));
        assert!(!p.predict(&info(2), &sb));
    }

    #[test]
    fn storage_accounting() {
        let p = Local::new(4, 8, 6);
        assert_eq!(p.storage_bits(), 16 * 8 + 2 * 64);
    }

    #[test]
    #[should_panic(expected = "bht bits")]
    fn bad_bht_bits_rejected() {
        let _ = Local::new(0, 8, 6);
    }
}

//! Oracle predictors: upper bounds for the study's headroom figures.

use predbranch_sim::{PredWriteEvent, PredicateScoreboard};

use crate::predictor::{BranchInfo, BranchPredictor};

/// A perfect-guard oracle: predicts every conditional branch from the
/// *architectural* value of its guard predicate, ignoring resolve
/// latency.
///
/// Because a predicated branch is taken exactly when its guard is true,
/// and this ISA executes in order (every prior definition has
/// architecturally happened by the time the branch executes), this
/// predictor is 100% accurate. It is the limit both techniques approach
/// as the resolve latency goes to zero, and the denominator for the
/// "fraction of headroom captured" numbers in the oracle figure.
///
/// # Examples
///
/// ```
/// use predbranch_core::{BranchPredictor, PerfectGuard};
///
/// let p = PerfectGuard::new();
/// assert_eq!(p.name(), "oracle-guard");
/// assert_eq!(p.storage_bits(), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerfectGuard {
    values: PredicateScoreboard,
}

impl Default for PerfectGuard {
    fn default() -> Self {
        Self::new()
    }
}

impl PerfectGuard {
    /// Creates the oracle.
    pub fn new() -> Self {
        PerfectGuard {
            // zero latency: every write is instantly visible
            values: PredicateScoreboard::new(0),
        }
    }
}

impl BranchPredictor for PerfectGuard {
    fn name(&self) -> String {
        "oracle-guard".to_string()
    }

    fn predict(&mut self, branch: &BranchInfo, _scoreboard: &PredicateScoreboard) -> bool {
        self.values
            .query(branch.guard, branch.index)
            .value()
            .unwrap_or(false)
    }

    fn commit(&mut self, _: &BranchInfo, _: bool, _: &PredicateScoreboard) {}

    fn on_pred_write(&mut self, write: &PredWriteEvent) {
        self.values
            .record_write(write.preg, write.value, write.index);
    }

    fn storage_bits(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{HarnessConfig, PredictionHarness};
    use predbranch_isa::assemble;
    use predbranch_sim::{Executor, Memory};

    #[test]
    fn oracle_is_perfect_on_a_loop() {
        let program = assemble(
            r#"
                mov r1 = 0
            loop:
                cmp.lt p1, p2 = r1, 37
                (p1) add r1 = r1, 1
                (p1) br.region 0, loop
                halt
            "#,
        )
        .unwrap();
        let mut harness = PredictionHarness::new(PerfectGuard::new(), HarnessConfig::default());
        Executor::new(&program, Memory::new()).run(&mut harness, 100_000);
        let m = harness.metrics();
        assert_eq!(m.all.branches.get(), 38);
        assert_eq!(m.all.mispredictions.get(), 0);
    }

    #[test]
    fn never_written_guard_predicts_not_taken() {
        let mut p = PerfectGuard::new();
        let sb = PredicateScoreboard::new(0);
        let branch = BranchInfo {
            pc: 0,
            target: 0,
            guard: predbranch_isa::PredReg::new(9).unwrap(),
            region: None,
            index: 5,
        };
        assert!(!p.predict(&branch, &sb));
    }
}

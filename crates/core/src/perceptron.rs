//! A perceptron branch predictor (Jiménez & Lin, HPCA 2001) — included
//! as the study's "future work" extension: because it weighs individual
//! global-history bits, it is a natural consumer of PGU's predicate
//! bits, rewarding informative predicates and zeroing out diluting ones.

use predbranch_sim::PredicateScoreboard;

use crate::history::GlobalHistory;
use crate::predictor::{BranchInfo, BranchPredictor, HasGlobalHistory, HistoryInsert};
use crate::ring::Checkpoints;

const WEIGHT_MAX: i32 = 127;
const WEIGHT_MIN: i32 = -128;

/// A perceptron predictor over global history.
///
/// Each (hashed) branch PC owns a weight vector `w0..wh`; the prediction
/// is `sign(w0 + Σ wi·xi)` with `xi = ±1` for history bit `i`. Training
/// follows the standard rule: adjust on a misprediction or whenever the
/// output magnitude is below the threshold `θ = ⌊1.93·h + 14⌋`.
///
/// Exposes its history through [`HasGlobalHistory`], so
/// [`crate::Pgu`] applies unchanged — the extension result this
/// repository adds to the original study.
///
/// # Examples
///
/// ```
/// use predbranch_core::{BranchPredictor, Perceptron};
///
/// let p = Perceptron::new(8, 16);
/// assert_eq!(p.name(), "perceptron-8/16");
/// assert_eq!(p.storage_bits(), 256 * 17 * 8 + 16);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Perceptron {
    weights: Vec<Vec<i32>>,
    history: GlobalHistory,
    index_bits: u32,
    theta: i32,
    checkpoints: Checkpoints<GlobalHistory>,
}

impl Perceptron {
    /// Creates a perceptron table with `2^index_bits` weight vectors over
    /// `history_bits` of global history.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is outside `1..=20` or `history_bits`
    /// outside `1..=64`.
    pub fn new(index_bits: u32, history_bits: u32) -> Self {
        assert!(
            (1..=20).contains(&index_bits),
            "perceptron index bits must be 1..=20"
        );
        Perceptron {
            weights: vec![vec![0; history_bits as usize + 1]; 1 << index_bits],
            history: GlobalHistory::new(history_bits),
            index_bits,
            theta: (1.93 * history_bits as f64 + 14.0) as i32,
            checkpoints: Checkpoints::new(),
        }
    }

    fn slot(&self, pc: u32) -> usize {
        (pc as usize) & (self.weights.len() - 1)
    }

    fn output(&self, pc: u32) -> i32 {
        self.output_with(pc, &self.history)
    }

    fn output_with(&self, pc: u32, history: &GlobalHistory) -> i32 {
        let w = &self.weights[self.slot(pc)];
        let h = history.value();
        let mut sum = w[0]; // bias weight
        for (i, &wi) in w.iter().enumerate().skip(1) {
            let x = if (h >> (i - 1)) & 1 == 1 { 1 } else { -1 };
            sum += wi * x;
        }
        sum
    }

    /// The training threshold θ.
    pub fn theta(&self) -> i32 {
        self.theta
    }
}

impl BranchPredictor for Perceptron {
    fn name(&self) -> String {
        format!("perceptron-{}/{}", self.index_bits, self.history.len())
    }

    fn predict(&mut self, branch: &BranchInfo, _scoreboard: &PredicateScoreboard) -> bool {
        self.output(branch.pc) >= 0
    }

    fn speculate(&mut self, _branch: &BranchInfo, predicted: bool, _sb: &PredicateScoreboard) {
        self.checkpoints.push_back(self.history);
        self.history.shift_in(predicted);
    }

    fn commit(&mut self, branch: &BranchInfo, taken: bool, _scoreboard: &PredicateScoreboard) {
        let checkpoint = self
            .checkpoints
            .pop_front()
            .expect("perceptron commit without a matching speculate");
        let sum = self.output_with(branch.pc, &checkpoint);
        let predicted = sum >= 0;
        if predicted != taken || sum.abs() <= self.theta {
            let h = checkpoint.value();
            let t = if taken { 1 } else { -1 };
            let slot = self.slot(branch.pc);
            let w = &mut self.weights[slot];
            w[0] = (w[0] + t).clamp(WEIGHT_MIN, WEIGHT_MAX);
            for (i, wi) in w.iter_mut().enumerate().skip(1) {
                let x = if (h >> (i - 1)) & 1 == 1 { 1 } else { -1 };
                *wi = (*wi + t * x).clamp(WEIGHT_MIN, WEIGHT_MAX);
            }
        }
    }

    fn squash(&mut self, _branch: &BranchInfo, taken: bool, _scoreboard: &PredicateScoreboard) {
        let checkpoint = *self
            .checkpoints
            .front()
            .expect("perceptron squash without a matching speculate");
        self.history = checkpoint;
        self.history.shift_in(taken);
    }

    fn storage_bits(&self) -> usize {
        // 8-bit weights (clamped to i8 range) plus the history register
        self.weights.len() * self.weights[0].len() * 8 + self.history.storage_bits()
    }
}

impl HasGlobalHistory for Perceptron {
    fn global_history_mut(&mut self) -> &mut GlobalHistory {
        &mut self.history
    }
}

impl HistoryInsert for Perceptron {
    fn insert_history_bit(&mut self, outcome: bool) {
        self.history.shift_in(outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predbranch_isa::PredReg;

    fn info(pc: u32) -> BranchInfo {
        BranchInfo {
            pc,
            target: 0,
            guard: PredReg::new(1).unwrap(),
            region: None,
            index: 0,
        }
    }

    fn sb() -> PredicateScoreboard {
        PredicateScoreboard::new(0)
    }

    #[test]
    fn learns_single_history_bit_function() {
        // outcome == history bit 3 (the outcome four branches ago)
        let sb = sb();
        let mut p = Perceptron::new(8, 16);
        let mut outcomes = std::collections::VecDeque::from(vec![false; 4]);
        let mut wrong_tail = 0;
        for i in 0..2000u32 {
            let outcome = outcomes[0] ^ (i % 7 == 0); // mostly bit-3 history
            let target = *outcomes.front().unwrap();
            let _ = target;
            let predicted = p.predict(&info(5), &sb);
            if i >= 1000 && predicted != outcome {
                wrong_tail += 1;
            }
            p.update(&info(5), outcome, &sb);
            outcomes.pop_front();
            outcomes.push_back(outcome);
        }
        // the 1/7 noise bounds achievable accuracy; the perceptron should
        // approach it
        assert!(wrong_tail < 300, "wrong_tail = {wrong_tail}");
    }

    #[test]
    fn learns_majority_function_counters_cannot() {
        // taken iff at least 2 of the last 3 outcomes were taken — linearly
        // separable, so the perceptron nails it
        let sb = sb();
        let mut p = Perceptron::new(8, 12);
        let mut last = [false; 3];
        let mut wrong_tail = 0;
        let pattern = [true, true, false, true, false, false, true];
        for i in 0..3000usize {
            let raw = pattern[i % 7];
            let outcome = (last.iter().filter(|&&b| b).count() >= 2) ^ !raw; // mix
            let predicted = p.predict(&info(9), &sb);
            if i >= 2000 && predicted != outcome {
                wrong_tail += 1;
            }
            p.update(&info(9), outcome, &sb);
            last = [last[1], last[2], outcome];
        }
        // the stream is a deterministic function of the last few outcomes
        // plus a period-7 pattern: near-perfect for a perceptron
        assert!(wrong_tail <= 20, "wrong_tail = {wrong_tail}");
    }

    #[test]
    fn weights_saturate() {
        let sb = sb();
        let mut p = Perceptron::new(4, 4);
        for _ in 0..10_000 {
            p.update(&info(1), true, &sb);
        }
        let w = &p.weights[p.slot(1)];
        assert!(w.iter().all(|&wi| (WEIGHT_MIN..=WEIGHT_MAX).contains(&wi)));
        assert!(p.predict(&info(1), &sb));
    }

    #[test]
    fn pgu_hook_reaches_history() {
        let mut p = Perceptron::new(4, 8);
        p.global_history_mut().shift_in(true);
        assert_eq!(p.history.value(), 1);
    }

    #[test]
    fn theta_formula() {
        assert_eq!(Perceptron::new(4, 16).theta(), (1.93 * 16.0 + 14.0) as i32);
    }
}

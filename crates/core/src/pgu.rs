//! The predicate global-update (PGU) mechanism.

use std::collections::VecDeque;

use predbranch_sim::{PredWriteEvent, PredicateScoreboard};

use crate::predictor::{BranchInfo, BranchPredictor, HasGlobalHistory, HistoryInsert};

/// The paper's second technique: shift recently computed
/// predicate-definition outcomes into the wrapped predictor's global
/// history register.
///
/// If-conversion removes branches — and with them the history bits that
/// later branches correlated on. A *region-based branch* is often
/// correlated with the predicate definitions of its region (including,
/// trivially, its own guard's definition), but a conventional gshare
/// never sees those definitions. PGU restores the lost correlation by
/// treating each predicate definition as a pseudo-branch-outcome and
/// inserting it into global history.
///
/// The [`Pgu::with_delay`] knob models *when* the insertion happens:
/// `0` inserts the moment the defining compare executes (aggressive,
/// speculative-update front end), while larger values delay each
/// insertion by that many fetch slots (commit-time update — predicate
/// bits become visible only after the compare retires). Branches fetched
/// inside the delay window predict with the predicate bit missing from
/// history, exactly the timing hazard the paper's design discussion
/// revolves around.
///
/// Filtering *which* definitions are inserted is the
/// [`crate::InsertFilter`] policy of the harness, so the same mechanism
/// serves the all-defs / region-defs / guard-defs ablation.
///
/// # Examples
///
/// ```
/// use predbranch_core::{BranchPredictor, Gshare, Pgu};
///
/// let p = Pgu::new(Gshare::new(12, 12));
/// assert!(p.name().starts_with("pgu"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pgu<P> {
    inner: P,
    delay: u64,
    pending: VecDeque<(u64, bool)>,
    inserted: u64,
}

impl<P: HistoryInsert> Pgu<P> {
    /// Wraps `inner` with immediate (execute-time) predicate insertion.
    pub fn new(inner: P) -> Self {
        Pgu {
            inner,
            delay: 0,
            pending: VecDeque::new(),
            inserted: 0,
        }
    }

    /// Sets the insertion delay in fetch slots (0 = speculative
    /// execute-time insertion; larger = commit-time).
    pub fn with_delay(mut self, delay: u64) -> Self {
        self.delay = delay;
        self
    }

    /// Number of predicate bits inserted into global history so far.
    pub fn inserted_count(&self) -> u64 {
        self.inserted
    }

    /// The wrapped predictor.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Drains pending insertions that have become visible by
    /// `fetch_index`.
    fn drain_visible(&mut self, fetch_index: u64) {
        while let Some(&(def_index, value)) = self.pending.front() {
            if fetch_index.saturating_sub(def_index) >= self.delay {
                self.inner.insert_history_bit(value);
                self.inserted += 1;
                self.pending.pop_front();
            } else {
                break;
            }
        }
    }
}

impl<P: BranchPredictor + HistoryInsert> BranchPredictor for Pgu<P> {
    fn name(&self) -> String {
        if self.delay == 0 {
            format!("pgu+{}", self.inner.name())
        } else {
            format!("pgu[d{}]+{}", self.delay, self.inner.name())
        }
    }

    fn predict(&mut self, branch: &BranchInfo, scoreboard: &PredicateScoreboard) -> bool {
        self.drain_visible(branch.index);
        self.inner.predict(branch, scoreboard)
    }

    // The lifecycle passes straight through to the wrapped predictor:
    // `drain_visible` runs in `predict`, before `speculate` checkpoints
    // the inner history, so checkpoints always include the predicate bits
    // visible at fetch and a squash never rolls an insertion back.
    fn speculate(
        &mut self,
        branch: &BranchInfo,
        predicted: bool,
        scoreboard: &PredicateScoreboard,
    ) {
        self.inner.speculate(branch, predicted, scoreboard);
    }

    fn commit(&mut self, branch: &BranchInfo, taken: bool, scoreboard: &PredicateScoreboard) {
        self.inner.commit(branch, taken, scoreboard);
    }

    fn squash(&mut self, branch: &BranchInfo, taken: bool, scoreboard: &PredicateScoreboard) {
        self.inner.squash(branch, taken, scoreboard);
    }

    fn on_pred_write(&mut self, write: &PredWriteEvent) {
        if self.delay == 0 {
            self.inner.insert_history_bit(write.value);
            self.inserted += 1;
        } else {
            self.pending.push_back((write.index, write.value));
        }
        // The wrapped predictor may consume predicate definitions on its
        // own (the predicate-aware modern predictors feed a dedicated
        // predicate-history register this way); the classic bases all
        // ignore the event, so forwarding is behavior-preserving.
        self.inner.on_pred_write(write);
    }

    fn storage_bits(&self) -> usize {
        self.inner.storage_bits()
    }
}

impl<P: HasGlobalHistory> HasGlobalHistory for Pgu<P> {
    fn global_history_mut(&mut self) -> &mut crate::history::GlobalHistory {
        self.inner.global_history_mut()
    }
}

impl<P: HistoryInsert> HistoryInsert for Pgu<P> {
    fn insert_history_bit(&mut self, outcome: bool) {
        self.inner.insert_history_bit(outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gshare::Gshare;
    use predbranch_isa::PredReg;

    fn p(i: u8) -> PredReg {
        PredReg::new(i).unwrap()
    }

    fn write(index: u64, value: bool) -> PredWriteEvent {
        PredWriteEvent {
            pc: 0,
            preg: p(1),
            value,
            index,
            guard: PredReg::TRUE,
            guard_value: true,
        }
    }

    fn info(pc: u32, index: u64) -> BranchInfo {
        BranchInfo {
            pc,
            target: 0,
            guard: p(1),
            region: Some(0),
            index,
        }
    }

    fn sb() -> PredicateScoreboard {
        PredicateScoreboard::new(64) // guards never resolve: pure PGU test
    }

    #[test]
    fn immediate_insertion_updates_history() {
        let mut pgu = Pgu::new(Gshare::new(8, 8));
        pgu.on_pred_write(&write(0, true));
        pgu.on_pred_write(&write(1, false));
        assert_eq!(pgu.inner().history().value(), 0b10);
        assert_eq!(pgu.inserted_count(), 2);
    }

    #[test]
    fn delayed_insertion_waits_for_fetch_distance() {
        let scoreboard = sb();
        let mut pgu = Pgu::new(Gshare::new(8, 8)).with_delay(5);
        pgu.on_pred_write(&write(10, true));
        // branch fetched 3 slots later: bit not yet visible
        pgu.predict(&info(1, 13), &scoreboard);
        assert_eq!(pgu.inner().history().value(), 0);
        // branch fetched 5 slots later: bit visible
        pgu.predict(&info(1, 15), &scoreboard);
        assert_eq!(pgu.inner().history().value(), 1);
        assert_eq!(pgu.inserted_count(), 1);
    }

    #[test]
    fn pgu_learns_guard_correlation_plain_gshare_cannot_see() {
        // A region-based branch whose outcome equals a predicate computed
        // shortly before it, where the predicate stream is random-ish
        // (period 7, looks irregular to a short PC-only history with no
        // other branches contributing bits).
        let scoreboard = sb();
        let pattern = [true, false, true, true, false, false, true];

        let run = |insert: bool| -> u64 {
            let mut pgu = Pgu::new(Gshare::new(10, 10));
            let mut wrong_tail = 0;
            for i in 0..2000u64 {
                let value = pattern[(i as usize) % 7];
                if insert {
                    pgu.on_pred_write(&write(i * 10, value));
                }
                let branch = info(42, i * 10 + 5);
                let predicted = pgu.predict(&branch, &scoreboard);
                if i >= 1000 && predicted != value {
                    wrong_tail += 1;
                }
                pgu.update(&branch, value, &scoreboard);
            }
            wrong_tail
        };

        let with_pgu = run(true);
        let without = run(false);
        assert_eq!(with_pgu, 0, "PGU must lock onto the predicate correlation");
        // without insertion, gshare sees only the branch's own outcome
        // history, which also encodes the period-7 pattern — but through
        // a 1-cycle-stale lens; it can still learn it. The decisive test
        // is above: PGU is perfect. Sanity: both are finite counts.
        assert!(without <= 1000);
    }

    #[test]
    fn name_encodes_delay() {
        assert_eq!(Pgu::new(Gshare::new(4, 4)).name(), "pgu+gshare-4/4");
        assert_eq!(
            Pgu::new(Gshare::new(4, 4)).with_delay(8).name(),
            "pgu[d8]+gshare-4/4"
        );
    }

    #[test]
    fn pending_drains_in_order() {
        let scoreboard = sb();
        let mut pgu = Pgu::new(Gshare::new(8, 8)).with_delay(2);
        pgu.on_pred_write(&write(0, true));
        pgu.on_pred_write(&write(1, false));
        pgu.predict(&info(1, 3), &scoreboard);
        // both visible (3-0 >= 2 and 3-1 >= 2), order preserved: 1 then 0
        assert_eq!(pgu.inner().history().value(), 0b10);
    }

    #[test]
    fn storage_pass_through() {
        let pgu = Pgu::new(Gshare::new(6, 6));
        assert_eq!(pgu.storage_bits(), Gshare::new(6, 6).storage_bits());
    }
}

//! The predictor interface and prediction metrics.

use predbranch_sim::{BranchEvent, PredWriteEvent, PredicateScoreboard};
use predbranch_stats::{Counter, Ratio};

/// The fetch-time view of a conditional branch presented to a predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchInfo {
    /// Static location of the branch.
    pub pc: u32,
    /// Branch target (for static direction heuristics).
    pub target: u32,
    /// The guard predicate register.
    pub guard: predbranch_isa::PredReg,
    /// The if-converted region the branch belongs to, if region-based.
    pub region: Option<u16>,
    /// Dynamic fetch index, used for scoreboard timing queries.
    pub index: u64,
}

impl BranchInfo {
    /// Builds the fetch-time view from a dynamic branch event.
    pub fn from_event(event: &BranchEvent) -> Self {
        BranchInfo {
            pc: event.pc,
            target: event.target,
            guard: event.guard,
            region: event.region,
            index: event.index,
        }
    }

    /// Whether the branch jumps backwards (loop-shaped).
    pub fn is_backward(&self) -> bool {
        self.target <= self.pc
    }
}

/// A dynamic branch-direction predictor with a speculative-update
/// lifecycle.
///
/// Predictors are driven by [`crate::PredictionHarness`] through four
/// phases, mirroring what real front ends do (speculative history update
/// with checkpoint/repair) instead of the older idealized
/// train-at-predict loop:
///
/// 1. **`predict`** — called at fetch, with the predicate scoreboard
///    reflecting what has resolved by then. Must not change predictor
///    state.
/// 2. **`speculate`** — called immediately after `predict` (same
///    scoreboard state) with the *predicted* direction. The predictor
///    checkpoints whatever state the branch will later need to train or
///    repair (history registers, BHT entries, component predictions) and
///    shifts the predicted outcome into its speculative history, so
///    younger branches predict against the speculated path.
/// 3. **`commit`** — called once per speculated branch, in fetch order,
///    after the harness's retire latency elapses. Pops the oldest
///    checkpoint and trains the tables with the *fetch-time* state it
///    recorded; the speculative history is left alone (it already holds
///    the outcome — correct speculation, or the repair made by
///    `squash`).
/// 4. **`squash`** — called instead of nothing, right before `commit`,
///    when the branch was mispredicted: rolls the speculative state back
///    to the oldest checkpoint and shifts in the correct outcome. The
///    harness flushes all younger in-flight branches before a squash, so
///    at squash time the squashed branch holds the oldest (and only)
///    outstanding checkpoint. `squash` must not pop the checkpoint — the
///    `commit` that follows does.
///
/// Every `speculate` is balanced by exactly one `commit`, in the same
/// order — commit order equals fetch order.
///
/// The provided [`BranchPredictor::update`] runs `speculate` + `commit`
/// back to back, which *is* the idealized immediate-update methodology;
/// a harness with retire latency 0 is equivalent to it event for event
/// (the latency-0 equivalence guarantee the golden parity tests pin
/// down).
///
/// Predicate-definition events are forwarded through
/// [`BranchPredictor::on_pred_write`] for predictors (like
/// [`crate::Pgu`]) that consume them.
pub trait BranchPredictor {
    /// A short human-readable name (used in table rows).
    fn name(&self) -> String;

    /// Predicts the branch direction: `true` = taken.
    fn predict(&mut self, branch: &BranchInfo, scoreboard: &PredicateScoreboard) -> bool;

    /// Checkpoints repair state for the fetched branch and speculatively
    /// applies the predicted direction to the predictor's history.
    ///
    /// The default is for predictors with no speculative state (static,
    /// oracle, per-PC counters): nothing to checkpoint, nothing to
    /// shift.
    fn speculate(
        &mut self,
        _branch: &BranchInfo,
        _predicted: bool,
        _scoreboard: &PredicateScoreboard,
    ) {
    }

    /// Retires the oldest speculated branch: trains the tables on the
    /// resolved outcome using the checkpointed fetch-time state.
    fn commit(&mut self, branch: &BranchInfo, taken: bool, scoreboard: &PredicateScoreboard);

    /// Repairs a misprediction: restores the speculative state to the
    /// oldest checkpoint and shifts in the correct outcome. Always
    /// followed by the branch's `commit`.
    ///
    /// The default is for predictors whose `speculate` is a no-op.
    fn squash(&mut self, _branch: &BranchInfo, _taken: bool, _scoreboard: &PredicateScoreboard) {}

    /// Trains on the resolved outcome with zero retire latency:
    /// `speculate` + `commit` back to back. This is the idealized
    /// immediate-update convenience for drivers that don't model an
    /// in-flight window (unit tests, throughput benches,
    /// [`crate::HotBranches`]).
    fn update(&mut self, branch: &BranchInfo, taken: bool, scoreboard: &PredicateScoreboard) {
        self.speculate(branch, taken, scoreboard);
        self.commit(branch, taken, scoreboard);
    }

    /// Observes a predicate definition (default: ignored).
    fn on_pred_write(&mut self, _write: &PredWriteEvent) {}

    /// Hardware budget of the prediction state, in bits.
    fn storage_bits(&self) -> usize;
}

impl<P: BranchPredictor + ?Sized> BranchPredictor for Box<P> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn predict(&mut self, branch: &BranchInfo, scoreboard: &PredicateScoreboard) -> bool {
        (**self).predict(branch, scoreboard)
    }

    fn speculate(
        &mut self,
        branch: &BranchInfo,
        predicted: bool,
        scoreboard: &PredicateScoreboard,
    ) {
        (**self).speculate(branch, predicted, scoreboard)
    }

    fn commit(&mut self, branch: &BranchInfo, taken: bool, scoreboard: &PredicateScoreboard) {
        (**self).commit(branch, taken, scoreboard)
    }

    fn squash(&mut self, branch: &BranchInfo, taken: bool, scoreboard: &PredicateScoreboard) {
        (**self).squash(branch, taken, scoreboard)
    }

    fn update(&mut self, branch: &BranchInfo, taken: bool, scoreboard: &PredicateScoreboard) {
        (**self).update(branch, taken, scoreboard)
    }

    fn on_pred_write(&mut self, write: &PredWriteEvent) {
        (**self).on_pred_write(write)
    }

    fn storage_bits(&self) -> usize {
        (**self).storage_bits()
    }
}

/// Predictors whose index function uses a global history register that
/// external components (the PGU mechanism) may shift bits into.
pub trait HasGlobalHistory {
    /// Mutable access to the global history register.
    fn global_history_mut(&mut self) -> &mut crate::history::GlobalHistory;
}

/// Predictors that can accept an externally supplied history bit — the
/// insertion point the PGU mechanism uses to shift predicate outcomes
/// into a predictor's notion of "recent history".
///
/// For the classic single-register predictors this is just
/// `global_history_mut().shift_in(outcome)`; predictors with richer
/// history state (TAGE's folded geometric histories, the multiperspective
/// perceptron's several views) implement it by threading the bit through
/// every structure that tracks the global outcome stream. There is
/// deliberately no blanket impl over [`HasGlobalHistory`]: those richer
/// predictors need their own implementations, and a blanket impl would
/// forbid them.
pub trait HistoryInsert {
    /// Shifts `outcome` into the predictor's speculative global history,
    /// exactly as if a branch with that outcome had been fetched.
    fn insert_history_bit(&mut self, outcome: bool);
}

/// A static (no-state) predictor, the weakest baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaticPredictor {
    /// Always predict not-taken.
    NotTaken,
    /// Always predict taken.
    Taken,
    /// Backward-taken, forward-not-taken.
    Btfn,
}

impl BranchPredictor for StaticPredictor {
    fn name(&self) -> String {
        match self {
            StaticPredictor::NotTaken => "static-nt".to_string(),
            StaticPredictor::Taken => "static-t".to_string(),
            StaticPredictor::Btfn => "static-btfn".to_string(),
        }
    }

    fn predict(&mut self, branch: &BranchInfo, _scoreboard: &PredicateScoreboard) -> bool {
        match self {
            StaticPredictor::NotTaken => false,
            StaticPredictor::Taken => true,
            StaticPredictor::Btfn => branch.is_backward(),
        }
    }

    fn commit(&mut self, _: &BranchInfo, _: bool, _: &PredicateScoreboard) {}

    fn storage_bits(&self) -> usize {
        0
    }
}

/// Branch/misprediction counters for one branch class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassCounts {
    /// Dynamic branches in the class.
    pub branches: Counter,
    /// Mispredicted branches in the class.
    pub mispredictions: Counter,
}

impl ClassCounts {
    /// Misprediction rate for the class.
    pub fn misp_rate(&self) -> Ratio {
        Ratio::of(self.mispredictions.get(), self.branches.get())
    }

    /// Prediction accuracy for the class.
    pub fn accuracy(&self) -> Ratio {
        self.misp_rate().complement()
    }

    pub(crate) fn record(&mut self, correct: bool) {
        self.branches.increment();
        if !correct {
            self.mispredictions.increment();
        }
    }
}

/// Per-run prediction metrics split by branch class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictionMetrics {
    /// All conditional branches.
    pub all: ClassCounts,
    /// Region-based conditional branches.
    pub region: ClassCounts,
    /// Conditional branches outside regions.
    pub non_region: ClassCounts,
    /// Branches fetched with a known-false guard (squash-filter
    /// opportunities), regardless of the predictor used.
    pub known_false_guard: Counter,
    /// Of those, how many the predictor got wrong (0 whenever the squash
    /// filter is active — its defining guarantee).
    pub known_false_mispredicted: Counter,
    /// Dynamic predicate definitions observed.
    pub pred_writes: Counter,
}

impl PredictionMetrics {
    /// Mispredictions per 1000 dynamic instructions (caller supplies the
    /// instruction count from [`predbranch_sim::RunSummary`]).
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.all.mispredictions.get() as f64 * 1000.0 / instructions as f64
        }
    }

    /// Fraction of conditional branches covered by the squash filter.
    pub fn filter_coverage(&self) -> Ratio {
        Ratio::of(self.known_false_guard.get(), self.all.branches.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predbranch_isa::PredReg;

    fn info(pc: u32, target: u32) -> BranchInfo {
        BranchInfo {
            pc,
            target,
            guard: PredReg::new(1).unwrap(),
            region: None,
            index: 0,
        }
    }

    #[test]
    fn branch_info_backwardness() {
        assert!(info(10, 5).is_backward());
        assert!(info(10, 10).is_backward());
        assert!(!info(10, 11).is_backward());
    }

    #[test]
    fn static_predictors() {
        let sb = PredicateScoreboard::new(0);
        assert!(!StaticPredictor::NotTaken.predict(&info(0, 5), &sb));
        assert!(StaticPredictor::Taken.predict(&info(0, 5), &sb));
        assert!(StaticPredictor::Btfn.predict(&info(10, 0), &sb));
        assert!(!StaticPredictor::Btfn.predict(&info(0, 10), &sb));
        assert_eq!(StaticPredictor::Btfn.storage_bits(), 0);
    }

    #[test]
    fn class_counts_rates() {
        let mut c = ClassCounts::default();
        c.record(true);
        c.record(false);
        c.record(false);
        c.record(true);
        assert_eq!(c.misp_rate().percent(), 50.0);
        assert_eq!(c.accuracy().percent(), 50.0);
    }

    #[test]
    fn metrics_mpki() {
        let mut m = PredictionMetrics::default();
        m.all.record(false);
        m.all.record(false);
        assert_eq!(m.mpki(1000), 2.0);
        assert_eq!(m.mpki(0), 0.0);
    }

    #[test]
    fn boxed_predictor_delegates() {
        let sb = PredicateScoreboard::new(0);
        let mut boxed: Box<dyn BranchPredictor> = Box::new(StaticPredictor::Taken);
        assert_eq!(boxed.name(), "static-t");
        assert!(boxed.predict(&info(0, 1), &sb));
        boxed.update(&info(0, 1), true, &sb);
        assert_eq!(boxed.storage_bits(), 0);
    }
}

//! Fixed-capacity ring buffers for the prediction hot path.
//!
//! Every simulated branch pushes and pops checkpoint state: the harness
//! enqueues the branch in its in-flight window, and each speculative
//! predictor checkpoints its history registers. The original
//! implementation used `VecDeque` for all of these, which means a heap
//! allocation the first time each queue is touched, amortized
//! reallocation as it grows, and capacity/wrap bookkeeping tuned for
//! arbitrary sizes. But the depth of every one of these queues is
//! architecturally bounded: the harness force-retires the oldest
//! in-flight branch once [`crate::PredictionHarness`] holds
//! `WINDOW_CAPACITY` (64) of them, so no checkpoint FIFO can ever hold
//! more than 65 entries (the 65th appears for the instant between a
//! `speculate` and the force-retire that makes room for its branch).
//!
//! [`Ring`] exploits that bound: a fixed, power-of-two capacity chosen
//! at compile time, index arithmetic that is a mask instead of a
//! compare-and-wrap, and exactly one allocation for the whole life of
//! the queue (the backing storage, reserved at construction). Pushing
//! beyond the capacity is a logic error upstream — the harness's window
//! invariant was violated — and panics rather than silently growing.

use std::fmt;

/// Capacity of the harness's in-flight branch window (a bounded reorder
/// buffer): when full, the oldest pending branch is force-retired to
/// make room, like a real ROB stalling-then-retiring at capacity. Every
/// per-predictor checkpoint FIFO is sized from this bound via
/// [`checkpoint_capacity`].
pub const WINDOW_CAPACITY: usize = 64;

/// The ring capacity a per-predictor checkpoint FIFO needs to back an
/// in-flight window of `window` branches: `window + 1` entries (the
/// extra slot covers the instant a `speculate` overlaps the force-retire
/// making room for its branch), rounded up to the next power of two so
/// indexing is a mask. `const`, so predictors with their own snapshot
/// rings (the modern tier's TAGE checkpoints are an order of magnitude
/// larger than a gshare history) derive their capacity from the same
/// window bound instead of hard-coding a number that can silently fall
/// behind it.
pub const fn checkpoint_capacity(window: usize) -> usize {
    (window + 1).next_power_of_two()
}

/// Capacity of the per-predictor checkpoint rings, derived from
/// [`WINDOW_CAPACITY`] via [`checkpoint_capacity`].
pub const CHECKPOINT_CAPACITY: usize = checkpoint_capacity(WINDOW_CAPACITY);

/// A fixed-capacity FIFO ring buffer over `Copy` elements.
///
/// Drop-in replacement for the `push_back` / `pop_front` / `front`
/// subset of `VecDeque` used by the in-flight window and the
/// per-predictor checkpoint FIFOs, with a compile-time power-of-two
/// capacity. Equality and `Debug` are defined over the *logical*
/// contents (front to back), so two rings that hold the same elements
/// compare equal regardless of where their heads sit — predictors that
/// derive `PartialEq` keep their state-comparison semantics.
///
/// # Examples
///
/// ```
/// use predbranch_core::Ring;
///
/// let mut ring: Ring<u32, 8> = Ring::new();
/// ring.push_back(1);
/// ring.push_back(2);
/// assert_eq!(ring.front(), Some(&1));
/// assert_eq!(ring.pop_front(), Some(1));
/// assert_eq!(ring.len(), 1);
/// ```
#[derive(Clone)]
pub struct Ring<T, const CAP: usize> {
    /// Backing storage. Allocated to `CAP` once at construction; its
    /// physical length grows to `CAP` as slots are first written and
    /// never shrinks, so steady-state pushes are pure stores.
    buf: Vec<T>,
    /// Index of the logical front element.
    head: usize,
    /// Number of live elements.
    len: usize,
}

impl<T: Copy, const CAP: usize> Ring<T, CAP> {
    /// Compile-time check that the capacity is a nonzero power of two
    /// (so wrapping is a mask).
    const CAP_IS_POW2: () = assert!(
        CAP.is_power_of_two(),
        "ring capacity must be a power of two"
    );

    /// Creates an empty ring with its full backing storage reserved.
    pub fn new() -> Self {
        // touch the const so an invalid CAP fails at compile time
        #[allow(clippy::let_unit_value)]
        let () = Self::CAP_IS_POW2;
        Ring {
            buf: Vec::with_capacity(CAP),
            head: 0,
            len: 0,
        }
    }

    /// Number of live elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the ring is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The fixed capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        CAP
    }

    /// Appends an element at the back.
    ///
    /// # Panics
    ///
    /// Panics if the ring is full: the queues this type backs are
    /// architecturally bounded, so overflowing one means the caller
    /// broke the speculate/commit balance contract.
    #[inline]
    pub fn push_back(&mut self, value: T) {
        assert!(
            self.len < CAP,
            "ring overflow: more than {CAP} entries in flight"
        );
        let slot = (self.head + self.len) & (CAP - 1);
        if slot == self.buf.len() {
            // first lap: the backing vector is still growing to CAP
            self.buf.push(value);
        } else {
            self.buf[slot] = value;
        }
        self.len += 1;
    }

    /// Removes and returns the front element, or `None` when empty.
    #[inline]
    pub fn pop_front(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        let value = self.buf[self.head];
        self.head = (self.head + 1) & (CAP - 1);
        self.len -= 1;
        Some(value)
    }

    /// The front (oldest) element, or `None` when empty.
    #[inline]
    pub fn front(&self) -> Option<&T> {
        if self.len == 0 {
            None
        } else {
            Some(&self.buf[self.head])
        }
    }

    /// Removes every element.
    #[inline]
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
    }

    /// Iterates the logical contents, front to back.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        (0..self.len).map(move |i| &self.buf[(self.head + i) & (CAP - 1)])
    }
}

impl<T: Copy, const CAP: usize> Default for Ring<T, CAP> {
    fn default() -> Self {
        Ring::new()
    }
}

impl<T: Copy + fmt::Debug, const CAP: usize> fmt::Debug for Ring<T, CAP> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

/// Equality over logical contents: same elements in the same order,
/// regardless of head position or physical layout.
impl<T: Copy + PartialEq, const CAP: usize> PartialEq for Ring<T, CAP> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl<T: Copy + Eq, const CAP: usize> Eq for Ring<T, CAP> {}

/// The checkpoint FIFO type every speculative predictor uses: a ring
/// sized to the harness's in-flight window bound.
pub type Checkpoints<T> = Ring<T, CHECKPOINT_CAPACITY>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_wraparound() {
        let mut ring: Ring<u32, 4> = Ring::new();
        for lap in 0..5u32 {
            for i in 0..4 {
                ring.push_back(lap * 4 + i);
            }
            for i in 0..4 {
                assert_eq!(ring.front(), Some(&(lap * 4 + i)));
                assert_eq!(ring.pop_front(), Some(lap * 4 + i));
            }
            assert!(ring.is_empty());
            assert_eq!(ring.pop_front(), None);
        }
    }

    #[test]
    fn interleaved_push_pop_never_reorders() {
        let mut ring: Ring<u64, 8> = Ring::new();
        let mut next_in = 0u64;
        let mut next_out = 0u64;
        // push 3 / pop 2 repeatedly so head sweeps the full ring
        for _ in 0..100 {
            for _ in 0..3 {
                if ring.len() < ring.capacity() {
                    ring.push_back(next_in);
                    next_in += 1;
                }
            }
            for _ in 0..2 {
                if let Some(v) = ring.pop_front() {
                    assert_eq!(v, next_out);
                    next_out += 1;
                }
            }
        }
        while let Some(v) = ring.pop_front() {
            assert_eq!(v, next_out);
            next_out += 1;
        }
        assert_eq!(next_in, next_out);
    }

    #[test]
    #[should_panic(expected = "ring overflow")]
    fn overflow_panics() {
        let mut ring: Ring<u8, 2> = Ring::new();
        ring.push_back(0);
        ring.push_back(1);
        ring.push_back(2);
    }

    #[test]
    fn equality_ignores_head_position() {
        let mut a: Ring<u8, 4> = Ring::new();
        let mut b: Ring<u8, 4> = Ring::new();
        // advance `a`'s head before filling
        a.push_back(9);
        a.push_back(9);
        a.pop_front();
        a.pop_front();
        for v in [1, 2, 3] {
            a.push_back(v);
            b.push_back(v);
        }
        assert_eq!(a, b);
        b.pop_front();
        assert_ne!(a, b);
    }

    #[test]
    fn debug_renders_logical_contents() {
        let mut ring: Ring<u8, 4> = Ring::new();
        ring.push_back(1);
        ring.push_back(2);
        assert_eq!(format!("{ring:?}"), "[1, 2]");
    }

    #[test]
    fn checkpoint_capacity_covers_window_plus_one() {
        assert_eq!(checkpoint_capacity(WINDOW_CAPACITY), CHECKPOINT_CAPACITY);
        assert_eq!(checkpoint_capacity(64), 128);
        assert_eq!(checkpoint_capacity(63), 64);
        assert_eq!(checkpoint_capacity(1), 2);
        for window in 1..=256 {
            let cap = checkpoint_capacity(window);
            assert!(cap.is_power_of_two());
            assert!(cap > window);
        }
    }

    #[test]
    fn clear_resets() {
        let mut ring: Ring<u8, 4> = Ring::new();
        ring.push_back(1);
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.front(), None);
        // reusable after clear
        ring.push_back(7);
        assert_eq!(ring.pop_front(), Some(7));
    }
}

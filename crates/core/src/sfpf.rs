//! The squash false-path filter (SFPF).

use predbranch_sim::{PredWriteEvent, PredicateScoreboard};

use crate::predictor::{BranchInfo, BranchPredictor};
use crate::ring::Checkpoints;

/// The paper's first technique: a fetch-stage filter that recognizes
/// branches *known to be guarded by a false predicate* and predicts them
/// not-taken with 100% accuracy, bypassing the dynamic predictor.
///
/// In this ISA a branch guarded by a false predicate is architecturally
/// not-taken, so whenever the guard's defining compare has resolved by
/// fetch time (a [`PredicateScoreboard`] query), the filter's prediction
/// cannot be wrong. Everything else falls through to the wrapped
/// predictor.
///
/// Two policy knobs reproduce the design space around the basic filter:
///
/// * [`SquashFilter::with_known_true`] — also predict *taken* when the
///   guard is known **true** (the symmetric case; a guarded branch with a
///   true guard is architecturally taken).
/// * [`SquashFilter::with_update_filtered`] — whether filtered branches
///   still train the underlying predictor (default) or are fully hidden
///   from it (which frees its tables from easy branches but loses their
///   history bits).
///
/// Under the speculate/commit/squash lifecycle the filter latches its
/// train-the-inner-predictor decision per branch at `speculate` time
/// (when the scoreboard still holds its fetch-time state) and replays it
/// at `commit`/`squash`, so a retire-delayed commit gates the inner
/// predictor exactly as the fetch-time filter decision did. Filtered
/// predictions are architecturally exact and are never squashed.
///
/// # Examples
///
/// ```
/// use predbranch_core::{Gshare, SquashFilter, BranchPredictor};
///
/// let filter = SquashFilter::new(Gshare::new(12, 10)).with_known_true(true);
/// assert!(filter.name().contains("sfpf"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SquashFilter<P> {
    inner: P,
    use_known_true: bool,
    update_filtered: bool,
    filtered: u64,
    /// Learned pc → guard table, when guard identification is modelled
    /// (None = decode information assumed available at fetch).
    guard_table: Option<Vec<Option<predbranch_isa::PredReg>>>,
    /// Per-in-flight-branch gate, latched at `speculate`: whether the
    /// inner predictor sees this branch's speculate/commit/squash.
    inflight: Checkpoints<bool>,
}

impl<P> SquashFilter<P> {
    /// Wraps `inner` with the false-path filter (known-true handling off,
    /// filtered branches still train the inner predictor).
    pub fn new(inner: P) -> Self {
        SquashFilter {
            inner,
            use_known_true: false,
            update_filtered: true,
            filtered: 0,
            guard_table: None,
            inflight: Checkpoints::new(),
        }
    }

    /// Enables/disables the symmetric known-true → predict-taken rule.
    pub fn with_known_true(mut self, enabled: bool) -> Self {
        self.use_known_true = enabled;
        self
    }

    /// Controls whether filtered branches still train the wrapped
    /// predictor.
    pub fn with_update_filtered(mut self, enabled: bool) -> Self {
        self.update_filtered = enabled;
        self
    }

    /// Models *guard identification*: real hardware only knows a fetched
    /// branch's guard register after decoding it once, so the filter
    /// keeps a `2^index_bits`-entry pc → guard table learned when the
    /// branch commits, and passes first encounters (and aliased entries
    /// with a stale guard) through to the inner predictor. Without this,
    /// decode information is assumed available at fetch (the default,
    /// which models a decoded-instruction cache carrying the guard
    /// specifier).
    pub fn with_learned_guards(mut self, index_bits: u32) -> Self {
        assert!(
            (1..=24).contains(&index_bits),
            "guard table index bits must be 1..=24"
        );
        self.guard_table = Some(vec![None; 1 << index_bits]);
        self
    }

    /// Number of predictions the filter has short-circuited.
    pub fn filtered_count(&self) -> u64 {
        self.filtered
    }

    /// The wrapped predictor.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    fn guard_slot(table: &[Option<predbranch_isa::PredReg>], pc: u32) -> usize {
        (pc as usize) & (table.len() - 1)
    }

    /// The guard the filter may act on at fetch: the true guard when
    /// decode info is assumed, otherwise the learned table entry (which
    /// must match the real guard — aliased stale entries are unusable).
    fn known_guard(&self, branch: &BranchInfo) -> Option<predbranch_isa::PredReg> {
        match &self.guard_table {
            None => Some(branch.guard),
            Some(table) => {
                let learned = table[Self::guard_slot(table, branch.pc)]?;
                (learned == branch.guard).then_some(learned)
            }
        }
    }

    fn filter_decision(
        &self,
        branch: &BranchInfo,
        scoreboard: &PredicateScoreboard,
    ) -> Option<bool> {
        let guard = self.known_guard(branch)?;
        match scoreboard.query(guard, branch.index).value() {
            Some(false) => Some(false),
            Some(true) if self.use_known_true => Some(true),
            _ => None,
        }
    }
}

impl<P: BranchPredictor> BranchPredictor for SquashFilter<P> {
    fn name(&self) -> String {
        let mode = if self.use_known_true {
            "sfpf±"
        } else {
            "sfpf"
        };
        format!("{mode}+{}", self.inner.name())
    }

    fn predict(&mut self, branch: &BranchInfo, scoreboard: &PredicateScoreboard) -> bool {
        match self.filter_decision(branch, scoreboard) {
            Some(direction) => {
                self.filtered += 1;
                direction
            }
            None => self.inner.predict(branch, scoreboard),
        }
    }

    fn speculate(
        &mut self,
        branch: &BranchInfo,
        predicted: bool,
        scoreboard: &PredicateScoreboard,
    ) {
        // Latch the gate with the fetch-time scoreboard state — the same
        // state `predict` just saw — so a delayed commit reproduces the
        // fetch-time filtering decision.
        let inner_sees = self.update_filtered || self.filter_decision(branch, scoreboard).is_none();
        self.inflight.push_back(inner_sees);
        if inner_sees {
            self.inner.speculate(branch, predicted, scoreboard);
        }
    }

    fn commit(&mut self, branch: &BranchInfo, taken: bool, scoreboard: &PredicateScoreboard) {
        let inner_sees = self
            .inflight
            .pop_front()
            .expect("sfpf commit without a matching speculate");
        if inner_sees {
            self.inner.commit(branch, taken, scoreboard);
        }
        if let Some(table) = &mut self.guard_table {
            let slot = Self::guard_slot(table, branch.pc);
            table[slot] = Some(branch.guard);
        }
    }

    fn squash(&mut self, branch: &BranchInfo, taken: bool, scoreboard: &PredicateScoreboard) {
        // Filtered predictions are architecturally exact, so a squash can
        // only belong to a branch the inner predictor speculated on.
        if self.inflight.front().copied().unwrap_or(false) {
            self.inner.squash(branch, taken, scoreboard);
        }
    }

    fn on_pred_write(&mut self, write: &PredWriteEvent) {
        self.inner.on_pred_write(write);
    }

    fn storage_bits(&self) -> usize {
        // The filter consults the predicate register file and scoreboard,
        // which the machine already has; only a learned guard table adds
        // storage (6 guard bits + 1 valid bit per entry).
        let table = self.guard_table.as_ref().map_or(0, |t| t.len() * 7);
        self.inner.storage_bits() + table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::StaticPredictor;
    use predbranch_isa::PredReg;

    fn p(i: u8) -> PredReg {
        PredReg::new(i).unwrap()
    }

    fn info(guard: PredReg, index: u64) -> BranchInfo {
        BranchInfo {
            pc: 10,
            target: 0,
            guard,
            region: Some(0),
            index,
        }
    }

    #[test]
    fn known_false_predicts_not_taken_even_if_inner_says_taken() {
        let mut sb = PredicateScoreboard::new(4);
        sb.record_write(p(1), false, 0);
        // inner always predicts taken; the filter must override
        let mut f = SquashFilter::new(StaticPredictor::Taken);
        assert!(!f.predict(&info(p(1), 100), &sb));
        assert_eq!(f.filtered_count(), 1);
    }

    #[test]
    fn unresolved_guard_falls_through() {
        let mut sb = PredicateScoreboard::new(8);
        sb.record_write(p(1), false, 98);
        let mut f = SquashFilter::new(StaticPredictor::Taken);
        // distance 2 < 8: unknown, inner decides
        assert!(f.predict(&info(p(1), 100), &sb));
        assert_eq!(f.filtered_count(), 0);
    }

    #[test]
    fn known_true_ignored_by_default() {
        let mut sb = PredicateScoreboard::new(0);
        sb.record_write(p(1), true, 0);
        let mut f = SquashFilter::new(StaticPredictor::NotTaken);
        assert!(!f.predict(&info(p(1), 10), &sb));
    }

    #[test]
    fn known_true_extension_predicts_taken() {
        let mut sb = PredicateScoreboard::new(0);
        sb.record_write(p(1), true, 0);
        let mut f = SquashFilter::new(StaticPredictor::NotTaken).with_known_true(true);
        assert!(f.predict(&info(p(1), 10), &sb));
        assert_eq!(f.filtered_count(), 1);
    }

    #[test]
    fn update_filtering_policy() {
        use crate::bimodal::Bimodal;
        let mut sb = PredicateScoreboard::new(0);
        sb.record_write(p(1), false, 0);
        // hidden updates: inner never sees the filtered branch
        let mut f = SquashFilter::new(Bimodal::new(6)).with_update_filtered(false);
        for _ in 0..4 {
            f.update(&info(p(1), 10), false, &sb);
        }
        // inner still predicts its initial weakly-not-taken... train the
        // OTHER direction through an unknown guard to see it move.
        let mut sb_unknown = PredicateScoreboard::new(8);
        sb_unknown.record_write(p(1), false, 9);
        for _ in 0..4 {
            f.update(&info(p(1), 10), true, &sb_unknown);
        }
        assert!(f.predict(&info(p(1), 10), &sb_unknown));
    }

    #[test]
    fn learned_guards_pass_first_encounter_through() {
        let mut sb = PredicateScoreboard::new(0);
        sb.record_write(p(1), false, 0);
        let mut f = SquashFilter::new(StaticPredictor::Taken).with_learned_guards(6);
        // first fetch: guard unknown to the table → inner predicts taken
        assert!(f.predict(&info(p(1), 10), &sb));
        assert_eq!(f.filtered_count(), 0);
        f.update(&info(p(1), 10), false, &sb);
        // second fetch: guard learned → filter fires
        assert!(!f.predict(&info(p(1), 11), &sb));
        assert_eq!(f.filtered_count(), 1);
    }

    #[test]
    fn aliased_guard_entries_do_not_misfire() {
        let mut sb = PredicateScoreboard::new(0);
        sb.record_write(p(1), false, 0);
        sb.record_write(p(2), true, 0);
        let mut f = SquashFilter::new(StaticPredictor::Taken).with_learned_guards(1);
        // two branches aliasing the same table slot with different guards
        let a = BranchInfo {
            pc: 0,
            target: 0,
            guard: p(1),
            region: None,
            index: 10,
        };
        let b = BranchInfo {
            pc: 2,
            target: 0,
            guard: p(2),
            region: None,
            index: 11,
        };
        f.update(&a, false, &sb); // slot learns p1
                                  // b aliases the slot but its real guard is p2: the stale entry
                                  // must not be used (no filter fire, no wrong squash)
        assert!(f.predict(&b, &sb), "inner decides");
        assert_eq!(f.filtered_count(), 0);
    }

    #[test]
    fn learned_guard_table_costs_storage() {
        let idealized = SquashFilter::new(StaticPredictor::NotTaken);
        let learned = SquashFilter::new(StaticPredictor::NotTaken).with_learned_guards(10);
        assert_eq!(idealized.storage_bits(), 0);
        assert_eq!(learned.storage_bits(), 1024 * 7);
    }

    #[test]
    fn name_reflects_mode() {
        let f = SquashFilter::new(StaticPredictor::NotTaken);
        assert_eq!(f.name(), "sfpf+static-nt");
        let f = f.with_known_true(true);
        assert_eq!(f.name(), "sfpf±+static-nt");
    }

    #[test]
    fn storage_is_pass_through() {
        let f = SquashFilter::new(StaticPredictor::NotTaken);
        assert_eq!(f.storage_bits(), 0);
    }
}

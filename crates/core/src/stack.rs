//! Static-dispatch predictor stacks.
//!
//! [`crate::build_predictor`] returns `Box<dyn BranchPredictor>`, which
//! costs a virtual call for every `predict`/`speculate`/`commit`/`squash`
//! on the replay hot path — and for the headline SFPF/PGU compositions
//! the wrappers make those calls *nested* virtual calls. [`PredictorStack`]
//! is the static-dispatch alternative: one enum variant per concrete
//! predictor shape reachable from [`PredictorSpec`], so the single match
//! at the enum boundary replaces the vtable chain and the compiler can
//! inline the whole wrapper composition into the harness loop.
//!
//! [`build_predictor_stack`] mirrors [`crate::build_predictor`] exactly
//! — same construction parameters, same PGU fallback and SFPF-over-PGU
//! rewrite rules — so the two paths are behaviorally identical and
//! differ only in dispatch. Spec shapes outside the enumerated set
//! (e.g. hand-built doubly-nested filters) fall back to the
//! [`PredictorStack::Dyn`] escape hatch, which boxes like the classic
//! builder.

use std::fmt;

use crate::agree::Agree;
use crate::bimodal::Bimodal;
use crate::config::{build_predictor, PredictorSpec};
use crate::gshare::Gshare;
use crate::local::Local;
use crate::oracle::PerfectGuard;
use crate::perceptron::Perceptron;
use crate::pgu::Pgu;
use crate::predictor::{BranchInfo, BranchPredictor, StaticPredictor};
use crate::sfpf::SquashFilter;
use crate::tournament::Tournament;
use predbranch_sim::{PredWriteEvent, PredicateScoreboard};

/// One enumerated variant of a statically-dispatched predictor stack:
/// the variant's name and the concrete predictor type it monomorphizes.
///
/// Emitted by the stack-generating macros alongside the enum itself, so
/// CLI listings of the available stacks are generated from the same
/// token stream as the dispatch code and can never drift from it (the
/// CLI integration tests diff the printed list against this table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StackVariant {
    /// The enum variant name (e.g. `SfpfPguGshare`).
    pub name: &'static str,
    /// The concrete payload type as `stringify!` renders it — token
    /// fragments stringify with spaces between tokens, so prefer
    /// [`StackVariant::type_name`] for display.
    pub ty: &'static str,
}

impl StackVariant {
    /// The payload type with `stringify!`'s inter-token spaces removed
    /// (e.g. `SquashFilter<Pgu<Gshare>>`).
    pub fn type_name(&self) -> String {
        self.ty.replace(' ', "")
    }
}

/// Generates [`PredictorStack`] and its [`BranchPredictor`] delegation
/// over the full set of concrete predictor shapes: every trait method
/// becomes one `match` that hands the call to the variant's payload with
/// static dispatch.
macro_rules! predictor_stack {
    ($( $(#[$meta:meta])* $variant:ident($ty:ty) ),+ $(,)?) => {
        /// A statically-dispatched predictor: one variant per concrete
        /// predictor shape reachable from a [`PredictorSpec`], plus the
        /// [`PredictorStack::Dyn`] boxed escape hatch for shapes outside
        /// that set.
        ///
        /// Behaviorally identical to the boxed predictor
        /// [`crate::build_predictor`] returns for the same spec; only the
        /// dispatch mechanism differs.
        ///
        /// # Examples
        ///
        /// ```
        /// use predbranch_core::{build_predictor_stack, BranchPredictor, PredictorSpec};
        ///
        /// let spec = PredictorSpec::Gshare { index_bits: 13, history_bits: 13 }
        ///     .with_sfpf()
        ///     .with_pgu(8);
        /// let p = build_predictor_stack(&spec);
        /// assert_eq!(p.name(), "sfpf+pgu[d8]+gshare-13/13");
        /// assert!(p.is_statically_dispatched());
        /// ```
        pub enum PredictorStack {
            $( $(#[$meta])* $variant($ty), )+
        }

        impl PredictorStack {
            /// Every enumerated variant, generated from the same token
            /// stream as the enum (one [`StackVariant`] per variant, in
            /// declaration order, including the `Dyn` escape hatch).
            pub const VARIANTS: &'static [StackVariant] = &[
                $( StackVariant { name: stringify!($variant), ty: stringify!($ty) }, )+
            ];

            /// Whether this stack dispatches statically (`false` only for
            /// the boxed [`PredictorStack::Dyn`] escape hatch).
            pub fn is_statically_dispatched(&self) -> bool {
                !matches!(self, PredictorStack::Dyn(_))
            }
        }

        impl BranchPredictor for PredictorStack {
            fn name(&self) -> String {
                match self { $( PredictorStack::$variant(p) => p.name(), )+ }
            }

            #[inline]
            fn predict(&mut self, branch: &BranchInfo, scoreboard: &PredicateScoreboard) -> bool {
                match self { $( PredictorStack::$variant(p) => p.predict(branch, scoreboard), )+ }
            }

            #[inline]
            fn speculate(
                &mut self,
                branch: &BranchInfo,
                predicted: bool,
                scoreboard: &PredicateScoreboard,
            ) {
                match self { $( PredictorStack::$variant(p) => p.speculate(branch, predicted, scoreboard), )+ }
            }

            #[inline]
            fn commit(&mut self, branch: &BranchInfo, taken: bool, scoreboard: &PredicateScoreboard) {
                match self { $( PredictorStack::$variant(p) => p.commit(branch, taken, scoreboard), )+ }
            }

            #[inline]
            fn squash(&mut self, branch: &BranchInfo, taken: bool, scoreboard: &PredicateScoreboard) {
                match self { $( PredictorStack::$variant(p) => p.squash(branch, taken, scoreboard), )+ }
            }

            #[inline]
            fn update(&mut self, branch: &BranchInfo, taken: bool, scoreboard: &PredicateScoreboard) {
                match self { $( PredictorStack::$variant(p) => p.update(branch, taken, scoreboard), )+ }
            }

            #[inline]
            fn on_pred_write(&mut self, write: &PredWriteEvent) {
                match self { $( PredictorStack::$variant(p) => p.on_pred_write(write), )+ }
            }

            fn storage_bits(&self) -> usize {
                match self { $( PredictorStack::$variant(p) => p.storage_bits(), )+ }
            }
        }
    };
}

predictor_stack! {
    /// A static (stateless) predictor.
    Static(StaticPredictor),
    /// Per-PC 2-bit counters.
    Bimodal(Bimodal),
    /// Global-history gshare.
    Gshare(Gshare),
    /// Two-level local predictor.
    Local(Local),
    /// McFarling tournament.
    Tournament(Tournament),
    /// Agree predictor.
    Agree(Agree),
    /// Perceptron predictor.
    Perceptron(Perceptron),
    /// Perfect-guard oracle.
    Oracle(PerfectGuard),
    /// Squash filter over a static predictor.
    SfpfStatic(SquashFilter<StaticPredictor>),
    /// Squash filter over bimodal.
    SfpfBimodal(SquashFilter<Bimodal>),
    /// Squash filter over gshare — the paper's first headline config.
    SfpfGshare(SquashFilter<Gshare>),
    /// Squash filter over the local predictor.
    SfpfLocal(SquashFilter<Local>),
    /// Squash filter over the tournament.
    SfpfTournament(SquashFilter<Tournament>),
    /// Squash filter over agree.
    SfpfAgree(SquashFilter<Agree>),
    /// Squash filter over the perceptron.
    SfpfPerceptron(SquashFilter<Perceptron>),
    /// Squash filter over the oracle.
    SfpfOracle(SquashFilter<PerfectGuard>),
    /// Predicate global update over gshare.
    PguGshare(Pgu<Gshare>),
    /// Predicate global update over the tournament.
    PguTournament(Pgu<Tournament>),
    /// Predicate global update over agree.
    PguAgree(Pgu<Agree>),
    /// Predicate global update over the perceptron.
    PguPerceptron(Pgu<Perceptron>),
    /// Both techniques over gshare — the paper's full headline config.
    SfpfPguGshare(SquashFilter<Pgu<Gshare>>),
    /// Both techniques over the tournament.
    SfpfPguTournament(SquashFilter<Pgu<Tournament>>),
    /// Both techniques over agree.
    SfpfPguAgree(SquashFilter<Pgu<Agree>>),
    /// Both techniques over the perceptron.
    SfpfPguPerceptron(SquashFilter<Pgu<Perceptron>>),
    /// Boxed escape hatch for spec shapes outside the enumerated set
    /// (e.g. doubly-nested filters); dispatches dynamically like
    /// [`crate::build_predictor`].
    Dyn(Box<dyn BranchPredictor>),
}

impl fmt::Debug for PredictorStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PredictorStack({})", self.name())
    }
}

/// Applies the SFPF policy knobs from a spec to a freshly built filter.
fn configure_filter<P>(
    filter: SquashFilter<P>,
    known_true: bool,
    update_filtered: bool,
    learned_guards: Option<u32>,
) -> SquashFilter<P> {
    let filter = filter
        .with_known_true(known_true)
        .with_update_filtered(update_filtered);
    match learned_guards {
        Some(bits) => filter.with_learned_guards(bits),
        None => filter,
    }
}

/// Builds a statically-dispatched predictor from a spec — the hot-path
/// counterpart of [`crate::build_predictor`].
///
/// Mirrors the boxed builder's composition rules exactly: PGU requires a
/// global-history base and degrades to the plain base otherwise, and
/// `sfpf(pgu(base))` keeps the filter in front of PGU. Shapes outside
/// the enumerated variants fall back to [`PredictorStack::Dyn`].
pub fn build_predictor_stack(spec: &PredictorSpec) -> PredictorStack {
    match spec {
        PredictorSpec::StaticNotTaken => PredictorStack::Static(StaticPredictor::NotTaken),
        PredictorSpec::StaticBtfn => PredictorStack::Static(StaticPredictor::Btfn),
        PredictorSpec::Bimodal { index_bits } => PredictorStack::Bimodal(Bimodal::new(*index_bits)),
        PredictorSpec::Gshare {
            index_bits,
            history_bits,
        } => PredictorStack::Gshare(Gshare::new(*index_bits, *history_bits)),
        PredictorSpec::Local {
            bht_bits,
            history_bits,
            pattern_bits,
        } => PredictorStack::Local(Local::new(*bht_bits, *history_bits, *pattern_bits)),
        PredictorSpec::Tournament {
            gshare_bits,
            history_bits,
            bimodal_bits,
            chooser_bits,
        } => PredictorStack::Tournament(Tournament::new(
            *gshare_bits,
            *history_bits,
            *bimodal_bits,
            *chooser_bits,
        )),
        PredictorSpec::Agree {
            index_bits,
            history_bits,
        } => PredictorStack::Agree(Agree::new(*index_bits, *history_bits)),
        PredictorSpec::Perceptron {
            index_bits,
            history_bits,
        } => PredictorStack::Perceptron(Perceptron::new(*index_bits, *history_bits)),
        PredictorSpec::OracleGuard => PredictorStack::Oracle(PerfectGuard::new()),
        PredictorSpec::Sfpf {
            base,
            known_true,
            update_filtered,
            learned_guards,
        } => build_sfpf_stack(base, *known_true, *update_filtered, *learned_guards)
            .unwrap_or_else(|| PredictorStack::Dyn(build_predictor(spec))),
        PredictorSpec::Pgu { base, delay } => match &**base {
            PredictorSpec::Gshare {
                index_bits,
                history_bits,
            } => PredictorStack::PguGshare(
                Pgu::new(Gshare::new(*index_bits, *history_bits)).with_delay(*delay),
            ),
            PredictorSpec::Tournament {
                gshare_bits,
                history_bits,
                bimodal_bits,
                chooser_bits,
            } => PredictorStack::PguTournament(
                Pgu::new(Tournament::new(
                    *gshare_bits,
                    *history_bits,
                    *bimodal_bits,
                    *chooser_bits,
                ))
                .with_delay(*delay),
            ),
            PredictorSpec::Agree {
                index_bits,
                history_bits,
            } => PredictorStack::PguAgree(
                Pgu::new(Agree::new(*index_bits, *history_bits)).with_delay(*delay),
            ),
            PredictorSpec::Perceptron {
                index_bits,
                history_bits,
            } => PredictorStack::PguPerceptron(
                Pgu::new(Perceptron::new(*index_bits, *history_bits)).with_delay(*delay),
            ),
            PredictorSpec::Sfpf {
                base: inner,
                known_true,
                update_filtered,
                learned_guards,
            } => {
                // sfpf(pgu(base)): the filter sits in front of PGU, same
                // rewrite as the boxed builder
                let pgu = PredictorSpec::Pgu {
                    base: inner.clone(),
                    delay: *delay,
                };
                build_predictor_stack(&PredictorSpec::Sfpf {
                    base: Box::new(pgu),
                    known_true: *known_true,
                    update_filtered: *update_filtered,
                    learned_guards: *learned_guards,
                })
            }
            other => build_predictor_stack(other),
        },
    }
}

/// SFPF over a base spec, as an enumerated variant when the base shape
/// allows it (`None` → caller falls back to the boxed escape hatch).
fn build_sfpf_stack(
    base: &PredictorSpec,
    known_true: bool,
    update_filtered: bool,
    learned_guards: Option<u32>,
) -> Option<PredictorStack> {
    macro_rules! wrap {
        ($variant:ident, $inner:expr) => {
            Some(PredictorStack::$variant(configure_filter(
                SquashFilter::new($inner),
                known_true,
                update_filtered,
                learned_guards,
            )))
        };
    }
    match base {
        PredictorSpec::StaticNotTaken => wrap!(SfpfStatic, StaticPredictor::NotTaken),
        PredictorSpec::StaticBtfn => wrap!(SfpfStatic, StaticPredictor::Btfn),
        PredictorSpec::Bimodal { index_bits } => wrap!(SfpfBimodal, Bimodal::new(*index_bits)),
        PredictorSpec::Gshare {
            index_bits,
            history_bits,
        } => wrap!(SfpfGshare, Gshare::new(*index_bits, *history_bits)),
        PredictorSpec::Local {
            bht_bits,
            history_bits,
            pattern_bits,
        } => wrap!(
            SfpfLocal,
            Local::new(*bht_bits, *history_bits, *pattern_bits)
        ),
        PredictorSpec::Tournament {
            gshare_bits,
            history_bits,
            bimodal_bits,
            chooser_bits,
        } => wrap!(
            SfpfTournament,
            Tournament::new(*gshare_bits, *history_bits, *bimodal_bits, *chooser_bits)
        ),
        PredictorSpec::Agree {
            index_bits,
            history_bits,
        } => wrap!(SfpfAgree, Agree::new(*index_bits, *history_bits)),
        PredictorSpec::Perceptron {
            index_bits,
            history_bits,
        } => wrap!(SfpfPerceptron, Perceptron::new(*index_bits, *history_bits)),
        PredictorSpec::OracleGuard => wrap!(SfpfOracle, PerfectGuard::new()),
        PredictorSpec::Pgu { base: pbase, delay } => match &**pbase {
            PredictorSpec::Gshare {
                index_bits,
                history_bits,
            } => wrap!(
                SfpfPguGshare,
                Pgu::new(Gshare::new(*index_bits, *history_bits)).with_delay(*delay)
            ),
            PredictorSpec::Tournament {
                gshare_bits,
                history_bits,
                bimodal_bits,
                chooser_bits,
            } => wrap!(
                SfpfPguTournament,
                Pgu::new(Tournament::new(
                    *gshare_bits,
                    *history_bits,
                    *bimodal_bits,
                    *chooser_bits,
                ))
                .with_delay(*delay)
            ),
            PredictorSpec::Agree {
                index_bits,
                history_bits,
            } => wrap!(
                SfpfPguAgree,
                Pgu::new(Agree::new(*index_bits, *history_bits)).with_delay(*delay)
            ),
            PredictorSpec::Perceptron {
                index_bits,
                history_bits,
            } => wrap!(
                SfpfPguPerceptron,
                Pgu::new(Perceptron::new(*index_bits, *history_bits)).with_delay(*delay)
            ),
            // PGU on a history-less base degrades to the plain base, so
            // the filter wraps that base directly (same as the boxed
            // builder's fallback); nested filters leave the enumerated
            // set.
            PredictorSpec::Sfpf { .. } => None,
            other => build_sfpf_stack(other, known_true, update_filtered, learned_guards),
        },
        PredictorSpec::Sfpf { .. } => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_shapes() -> Vec<PredictorSpec> {
        let gshare = PredictorSpec::Gshare {
            index_bits: 10,
            history_bits: 10,
        };
        let tournament = PredictorSpec::Tournament {
            gshare_bits: 10,
            history_bits: 10,
            bimodal_bits: 10,
            chooser_bits: 10,
        };
        let agree = PredictorSpec::Agree {
            index_bits: 10,
            history_bits: 10,
        };
        let perceptron = PredictorSpec::Perceptron {
            index_bits: 8,
            history_bits: 12,
        };
        let bases = [
            PredictorSpec::StaticNotTaken,
            PredictorSpec::StaticBtfn,
            PredictorSpec::Bimodal { index_bits: 10 },
            gshare.clone(),
            PredictorSpec::Local {
                bht_bits: 10,
                history_bits: 10,
                pattern_bits: 12,
            },
            tournament.clone(),
            agree.clone(),
            perceptron.clone(),
            PredictorSpec::OracleGuard,
        ];
        let mut specs: Vec<PredictorSpec> = bases.to_vec();
        specs.extend(bases.iter().cloned().map(PredictorSpec::with_sfpf));
        for base in [&gshare, &tournament, &agree, &perceptron] {
            specs.push(base.clone().with_pgu(8));
            specs.push(base.clone().with_pgu(8).with_sfpf());
        }
        specs
    }

    #[test]
    fn every_spec_shape_is_statically_dispatched() {
        for spec in all_shapes() {
            let stack = build_predictor_stack(&spec);
            assert!(
                stack.is_statically_dispatched(),
                "{spec:?} fell back to dyn"
            );
        }
    }

    #[test]
    fn stack_name_matches_boxed_builder() {
        for spec in all_shapes() {
            assert_eq!(
                build_predictor_stack(&spec).name(),
                build_predictor(&spec).name(),
                "{spec:?}"
            );
        }
    }

    #[test]
    fn pgu_fallback_matches_boxed_builder() {
        // PGU over a history-less base degrades to the plain base
        let spec = PredictorSpec::Bimodal { index_bits: 8 }.with_pgu(4);
        let stack = build_predictor_stack(&spec);
        assert_eq!(stack.name(), "bimodal-8");
        assert!(stack.is_statically_dispatched());
        // ... including under a filter
        let spec = PredictorSpec::Bimodal { index_bits: 8 }
            .with_pgu(4)
            .with_sfpf();
        let stack = build_predictor_stack(&spec);
        assert_eq!(stack.name(), build_predictor(&spec).name());
        assert!(stack.is_statically_dispatched());
    }

    #[test]
    fn nested_filters_use_the_escape_hatch() {
        let spec = PredictorSpec::Gshare {
            index_bits: 8,
            history_bits: 8,
        }
        .with_sfpf()
        .with_sfpf();
        let stack = build_predictor_stack(&spec);
        assert!(!stack.is_statically_dispatched());
        assert_eq!(stack.name(), build_predictor(&spec).name());
    }

    #[test]
    fn stack_behaves_like_boxed_predictor() {
        use crate::harness::{HarnessConfig, PredictionHarness, Timing};
        use crate::InsertFilter;
        use predbranch_isa::assemble;
        use predbranch_sim::{Executor, Memory};

        let program = assemble(
            r#"
                mov r1 = 0
            loop:
                cmp.lt p1, p2 = r1, 80
                (p1) add r1 = r1, 1
                nop
                nop
                (p1) br.region 0, loop
                halt
            "#,
        )
        .unwrap();
        for spec in all_shapes() {
            let config = HarnessConfig {
                timing: Timing::new(4, 8),
                insert: InsertFilter::All,
            };
            let mut boxed = PredictionHarness::new(build_predictor(&spec), config.clone());
            Executor::new(&program, Memory::new()).run(&mut boxed, 100_000);
            let mut stack = PredictionHarness::new(build_predictor_stack(&spec), config);
            Executor::new(&program, Memory::new()).run(&mut stack, 100_000);
            let (_, boxed_metrics) = boxed.into_parts();
            let (_, stack_metrics) = stack.into_parts();
            assert_eq!(boxed_metrics, stack_metrics, "{spec:?}");
        }
    }

    #[test]
    fn debug_shows_name() {
        let stack = build_predictor_stack(&PredictorSpec::StaticNotTaken);
        assert_eq!(format!("{stack:?}"), "PredictorStack(static-nt)");
    }

    #[test]
    fn variants_table_tracks_the_enum() {
        let names: Vec<&str> = PredictorStack::VARIANTS.iter().map(|v| v.name).collect();
        // spot-check anchors at both ends and the escape hatch
        assert_eq!(names.first(), Some(&"Static"));
        assert!(names.contains(&"SfpfPguGshare"));
        assert_eq!(names.last(), Some(&"Dyn"));
        // unique, and every built shape's variant is listed
        let unique: std::collections::BTreeSet<&&str> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
        let gshare = PredictorStack::VARIANTS
            .iter()
            .find(|v| v.name == "Gshare")
            .unwrap();
        assert_eq!(gshare.type_name(), "Gshare");
        let both = PredictorStack::VARIANTS
            .iter()
            .find(|v| v.name == "SfpfPguGshare")
            .unwrap();
        assert_eq!(both.type_name(), "SquashFilter<Pgu<Gshare>>");
    }
}

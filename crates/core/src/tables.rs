//! Saturating counters and counter tables.

/// A 2-bit saturating counter: 0–1 predict not-taken, 2–3 predict taken.
///
/// # Examples
///
/// ```
/// use predbranch_core::TwoBitCounter;
///
/// let mut c = TwoBitCounter::weakly_not_taken();
/// assert!(!c.predict());
/// c.update(true);
/// assert!(c.predict()); // 1 → 2: weakly taken
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TwoBitCounter(u8);

impl Default for TwoBitCounter {
    fn default() -> Self {
        Self::weakly_not_taken()
    }
}

impl TwoBitCounter {
    /// Strongly not-taken (0).
    pub fn strongly_not_taken() -> Self {
        TwoBitCounter(0)
    }

    /// Weakly not-taken (1) — the conventional initial state.
    pub fn weakly_not_taken() -> Self {
        TwoBitCounter(1)
    }

    /// Weakly taken (2).
    pub fn weakly_taken() -> Self {
        TwoBitCounter(2)
    }

    /// Strongly taken (3).
    pub fn strongly_taken() -> Self {
        TwoBitCounter(3)
    }

    /// The raw state in `0..=3`.
    pub fn state(&self) -> u8 {
        self.0
    }

    /// The predicted direction.
    pub fn predict(&self) -> bool {
        self.0 >= 2
    }

    /// Trains toward the outcome, saturating at the ends.
    pub fn update(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }

    /// Whether the counter is in a strong state (immune to one
    /// contrarian outcome).
    pub fn is_strong(&self) -> bool {
        self.0 == 0 || self.0 == 3
    }
}

/// A power-of-two table of 2-bit counters, indexed modulo its size.
///
/// # Examples
///
/// ```
/// use predbranch_core::CounterTable;
///
/// let mut t = CounterTable::new(10); // 1024 entries
/// t.update(12345, true);
/// t.update(12345, true);
/// assert!(t.predict(12345));
/// assert_eq!(t.storage_bits(), 2048);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterTable {
    counters: Vec<TwoBitCounter>,
    index_bits: u32,
}

impl CounterTable {
    /// Creates a table with `2^index_bits` counters, all weakly
    /// not-taken.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 28.
    pub fn new(index_bits: u32) -> Self {
        Self::with_initial(index_bits, TwoBitCounter::default())
    }

    /// Creates a table with every counter set to `initial` (e.g. the
    /// agree predictor initializes to weakly-taken = weakly-agree).
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 28.
    pub fn with_initial(index_bits: u32, initial: TwoBitCounter) -> Self {
        assert!(
            (1..=28).contains(&index_bits),
            "table index bits must be 1..=28"
        );
        CounterTable {
            counters: vec![initial; 1 << index_bits],
            index_bits,
        }
    }

    /// Number of index bits.
    pub fn index_bits(&self) -> u32 {
        self.index_bits
    }

    /// Number of entries.
    pub fn entries(&self) -> usize {
        self.counters.len()
    }

    fn slot(&self, index: u64) -> usize {
        (index & (self.counters.len() as u64 - 1)) as usize
    }

    /// The predicted direction for `index`.
    pub fn predict(&self, index: u64) -> bool {
        self.counters[self.slot(index)].predict()
    }

    /// Trains the counter at `index`.
    pub fn update(&mut self, index: u64, taken: bool) {
        let slot = self.slot(index);
        self.counters[slot].update(taken);
    }

    /// The raw counter at `index`.
    pub fn counter(&self, index: u64) -> TwoBitCounter {
        self.counters[self.slot(index)]
    }

    /// Storage cost: 2 bits per entry.
    pub fn storage_bits(&self) -> usize {
        self.counters.len() * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates_both_ends() {
        let mut c = TwoBitCounter::strongly_not_taken();
        c.update(false);
        assert_eq!(c.state(), 0);
        for _ in 0..5 {
            c.update(true);
        }
        assert_eq!(c.state(), 3);
    }

    #[test]
    fn counter_hysteresis() {
        let mut c = TwoBitCounter::strongly_taken();
        c.update(false);
        assert!(c.predict(), "one not-taken must not flip a strong counter");
        c.update(false);
        assert!(!c.predict());
    }

    #[test]
    fn counter_strength() {
        assert!(TwoBitCounter::strongly_taken().is_strong());
        assert!(TwoBitCounter::strongly_not_taken().is_strong());
        assert!(!TwoBitCounter::weakly_taken().is_strong());
        assert!(!TwoBitCounter::weakly_not_taken().is_strong());
    }

    #[test]
    fn table_wraps_indices() {
        let mut t = CounterTable::new(4); // 16 entries
        t.update(3, true);
        t.update(3, true);
        assert!(t.predict(3));
        assert!(t.predict(3 + 16), "aliasing is modulo table size");
        assert!(!t.predict(4));
    }

    #[test]
    fn table_storage_accounting() {
        assert_eq!(CounterTable::new(1).storage_bits(), 4);
        assert_eq!(CounterTable::new(12).storage_bits(), 8192);
        assert_eq!(CounterTable::new(10).entries(), 1024);
    }

    #[test]
    #[should_panic(expected = "index bits")]
    fn zero_bits_rejected() {
        let _ = CounterTable::new(0);
    }

    #[test]
    fn fresh_table_predicts_not_taken() {
        let t = CounterTable::new(6);
        assert!((0..64).all(|i| !t.predict(i)));
    }
}

//! The McFarling tournament (combining) predictor.

use predbranch_sim::PredicateScoreboard;

use crate::bimodal::Bimodal;
use crate::gshare::Gshare;
use crate::history::GlobalHistory;
use crate::predictor::{BranchInfo, BranchPredictor, HasGlobalHistory, HistoryInsert};
use crate::ring::Checkpoints;
use crate::tables::CounterTable;

/// A tournament predictor: gshare and bimodal components with a per-PC
/// chooser trained toward whichever component was right.
///
/// Exposes its gshare component's global history through
/// [`HasGlobalHistory`], so the PGU mechanism applies to it the same way
/// it applies to plain gshare.
///
/// # Examples
///
/// ```
/// use predbranch_core::{BranchPredictor, Tournament};
///
/// let p = Tournament::new(12, 10, 12, 12);
/// assert!(p.storage_bits() > 0);
/// assert!(p.name().starts_with("tournament"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tournament {
    gshare: Gshare,
    bimodal: Bimodal,
    chooser: CounterTable,
    /// Per-in-flight-branch fetch-time component predictions `(g, b)`,
    /// needed at commit to train the chooser on disagreement.
    checkpoints: Checkpoints<(bool, bool)>,
}

impl Tournament {
    /// Creates a tournament from gshare (`gshare_bits` table,
    /// `history_bits` history), bimodal (`bimodal_bits` table), and a
    /// `chooser_bits` chooser table.
    ///
    /// # Panics
    ///
    /// Panics if any table size is outside `1..=28` or the history is
    /// outside `1..=64`.
    pub fn new(gshare_bits: u32, history_bits: u32, bimodal_bits: u32, chooser_bits: u32) -> Self {
        Tournament {
            gshare: Gshare::new(gshare_bits, history_bits),
            bimodal: Bimodal::new(bimodal_bits),
            chooser: CounterTable::new(chooser_bits),
            checkpoints: Checkpoints::new(),
        }
    }
}

impl BranchPredictor for Tournament {
    fn name(&self) -> String {
        format!("tournament-{}", self.chooser.index_bits())
    }

    fn predict(&mut self, branch: &BranchInfo, scoreboard: &PredicateScoreboard) -> bool {
        let g = self.gshare.predict(branch, scoreboard);
        let b = self.bimodal.predict(branch, scoreboard);
        // chooser counter: taken-side (>=2) means "trust gshare"
        if self.chooser.predict(branch.pc as u64) {
            g
        } else {
            b
        }
    }

    fn speculate(
        &mut self,
        branch: &BranchInfo,
        predicted: bool,
        scoreboard: &PredicateScoreboard,
    ) {
        // Latch the fetch-time component predictions before the
        // components speculate (their speculative shifts would change
        // what the gshare component predicts).
        let g = self.gshare.predict(branch, scoreboard);
        let b = self.bimodal.predict(branch, scoreboard);
        self.checkpoints.push_back((g, b));
        self.gshare.speculate(branch, predicted, scoreboard);
        self.bimodal.speculate(branch, predicted, scoreboard);
    }

    fn commit(&mut self, branch: &BranchInfo, taken: bool, scoreboard: &PredicateScoreboard) {
        let (g, b) = self
            .checkpoints
            .pop_front()
            .expect("tournament commit without a matching speculate");
        if g != b {
            self.chooser.update(branch.pc as u64, g == taken);
        }
        self.gshare.commit(branch, taken, scoreboard);
        self.bimodal.commit(branch, taken, scoreboard);
    }

    fn squash(&mut self, branch: &BranchInfo, taken: bool, scoreboard: &PredicateScoreboard) {
        self.gshare.squash(branch, taken, scoreboard);
        self.bimodal.squash(branch, taken, scoreboard);
    }

    fn storage_bits(&self) -> usize {
        self.gshare.storage_bits() + self.bimodal.storage_bits() + self.chooser.storage_bits()
    }
}

impl HasGlobalHistory for Tournament {
    fn global_history_mut(&mut self) -> &mut GlobalHistory {
        self.gshare.global_history_mut()
    }
}

impl HistoryInsert for Tournament {
    fn insert_history_bit(&mut self, outcome: bool) {
        self.gshare.insert_history_bit(outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predbranch_isa::PredReg;

    fn info(pc: u32) -> BranchInfo {
        BranchInfo {
            pc,
            target: 0,
            guard: PredReg::new(1).unwrap(),
            region: None,
            index: 0,
        }
    }

    fn sb() -> PredicateScoreboard {
        PredicateScoreboard::new(0)
    }

    fn accuracy<P: BranchPredictor>(
        p: &mut P,
        outcomes: impl Iterator<Item = (u32, bool)>,
        warmup: usize,
    ) -> f64 {
        let sb = sb();
        let mut total = 0u64;
        let mut right = 0u64;
        for (i, (pc, outcome)) in outcomes.enumerate() {
            let predicted = p.predict(&info(pc), &sb);
            if i >= warmup {
                total += 1;
                if predicted == outcome {
                    right += 1;
                }
            }
            p.update(&info(pc), outcome, &sb);
        }
        right as f64 / total as f64
    }

    #[test]
    fn beats_or_matches_both_components_on_mixed_workload() {
        // pc 1: biased taken (bimodal-friendly); pc 2: alternating
        // (gshare-friendly). The tournament should do well on both.
        let stream = || {
            (0..2000).map(|i| {
                if i % 2 == 0 {
                    (1u32, i % 10 != 0) // 90% taken
                } else {
                    (2u32, (i / 2) % 2 == 0) // alternating
                }
            })
        };
        let t_acc = accuracy(&mut Tournament::new(10, 8, 10, 10), stream(), 500);
        assert!(t_acc > 0.90, "tournament accuracy {t_acc}");
    }

    #[test]
    fn chooser_only_trains_on_disagreement() {
        let sb = sb();
        let mut t = Tournament::new(6, 6, 6, 6);
        let before = t.chooser.counter(5).state();
        // both components agree (both predict not-taken initially)
        t.update(&info(5), false, &sb);
        assert_eq!(t.chooser.counter(5).state(), before);
    }

    #[test]
    fn pgu_hook_reaches_gshare_history() {
        let mut t = Tournament::new(6, 8, 6, 6);
        t.global_history_mut().shift_in(true);
        assert_eq!(t.gshare.history().value(), 1);
    }

    #[test]
    fn storage_sums_components() {
        let t = Tournament::new(6, 8, 7, 5);
        let expected = (2 * 64 + 8) + (2 * 128) + (2 * 32);
        assert_eq!(t.storage_bits(), expected);
    }
}

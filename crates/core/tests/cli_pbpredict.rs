//! End-to-end tests of the `pbpredict` binary.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn scratch(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "predbranch-core-test-{}-{name}",
        std::process::id()
    ));
    p
}

const PROGRAM: &str = "    mov r1 = 0\nloop:\n    cmp.lt p1, p2 = r1, 100\n    (p1) add r1 = r1, 1\n    nop\n    nop\n    (p1) br.region 0, loop\n    halt\n";

#[test]
fn default_predictor_reports_metrics() {
    let src = scratch("default.s");
    fs::write(&src, PROGRAM).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_pbpredict"))
        .arg(src.to_str().unwrap())
        .output()
        .expect("pbpredict runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("predictor:        gshare-13/13"), "{text}");
    assert!(text.contains("cond branches:    101"), "{text}");
    assert!(text.contains("IPC:"), "{text}");
    fs::remove_file(src).ok();
}

#[test]
fn oracle_spec_is_perfect() {
    let src = scratch("oracle.s");
    fs::write(&src, PROGRAM).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_pbpredict"))
        .args([src.to_str().unwrap(), "--predictor", "oracle"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("mispredictions:   0"), "{text}");
    fs::remove_file(src).ok();
}

#[test]
fn composite_spec_parses_and_runs() {
    let src = scratch("composite.s");
    fs::write(&src, PROGRAM).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_pbpredict"))
        .args([
            src.to_str().unwrap(),
            "--predictor",
            "perceptron:7/14+sfpf+pgu8",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("sfpf+pgu[d8]+perceptron-7/14"), "{text}");
    fs::remove_file(src).ok();
}

#[test]
fn bad_spec_is_rejected() {
    let src = scratch("badspec.s");
    fs::write(&src, PROGRAM).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_pbpredict"))
        .args([src.to_str().unwrap(), "--predictor", "tage:9"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("bad predictor spec"), "{err}");
    fs::remove_file(src).ok();
}

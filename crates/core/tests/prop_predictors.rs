//! Property tests over the predictor implementations: determinism,
//! robustness on arbitrary event streams, and wrapper equivalences.

use proptest::prelude::*;

use predbranch_core::{
    build_predictor, BranchInfo, BranchPredictor, Gshare, Pgu, PredictorSpec, SquashFilter,
};
use predbranch_isa::PredReg;
use predbranch_sim::{PredWriteEvent, PredicateScoreboard};

/// One synthetic dynamic event.
#[derive(Debug, Clone)]
enum Ev {
    Branch {
        pc: u32,
        guard: u8,
        taken: bool,
        region: bool,
    },
    Write {
        pc: u32,
        preg: u8,
        value: bool,
    },
}

fn arb_event() -> impl Strategy<Value = Ev> {
    prop_oneof![
        (0u32..64, 1u8..64, any::<bool>(), any::<bool>()).prop_map(|(pc, guard, taken, region)| {
            Ev::Branch {
                pc,
                guard,
                taken,
                region,
            }
        }),
        (0u32..64, 1u8..64, any::<bool>()).prop_map(|(pc, preg, value)| Ev::Write {
            pc,
            preg,
            value
        }),
    ]
}

fn arb_spec() -> impl Strategy<Value = PredictorSpec> {
    let bases = prop_oneof![
        Just(PredictorSpec::StaticNotTaken),
        Just(PredictorSpec::StaticBtfn),
        Just(PredictorSpec::Bimodal { index_bits: 6 }),
        Just(PredictorSpec::Gshare {
            index_bits: 8,
            history_bits: 8
        }),
        Just(PredictorSpec::Local {
            bht_bits: 5,
            history_bits: 6,
            pattern_bits: 8
        }),
        Just(PredictorSpec::Tournament {
            gshare_bits: 6,
            history_bits: 6,
            bimodal_bits: 6,
            chooser_bits: 6
        }),
        Just(PredictorSpec::Perceptron {
            index_bits: 5,
            history_bits: 8
        }),
        Just(PredictorSpec::Agree {
            index_bits: 6,
            history_bits: 6
        }),
        Just(PredictorSpec::OracleGuard),
    ];
    (bases, any::<bool>(), prop::option::of(0u64..16)).prop_map(|(base, sfpf, pgu)| {
        let mut spec = base;
        if sfpf {
            spec = spec.with_sfpf();
        }
        if let Some(delay) = pgu {
            spec = spec.with_pgu(delay);
        }
        spec
    })
}

/// Replays a stream against a predictor, returning the misprediction
/// count.
fn replay(spec: &PredictorSpec, events: &[Ev], latency: u64) -> u64 {
    let mut predictor = build_predictor(spec);
    let mut scoreboard = PredicateScoreboard::new(latency);
    let mut wrong = 0;
    for (index, ev) in events.iter().enumerate() {
        let index = index as u64;
        match *ev {
            Ev::Write { pc, preg, value } => {
                let event = PredWriteEvent {
                    pc,
                    preg: PredReg::new(preg).unwrap(),
                    value,
                    index,
                    guard: PredReg::TRUE,
                    guard_value: true,
                };
                scoreboard.observe(&event);
                predictor.on_pred_write(&event);
            }
            Ev::Branch {
                pc,
                guard,
                taken,
                region,
            } => {
                let info = BranchInfo {
                    pc,
                    target: pc / 2,
                    guard: PredReg::new(guard).unwrap(),
                    region: region.then_some(0),
                    index,
                };
                if predictor.predict(&info, &scoreboard) != taken {
                    wrong += 1;
                }
                predictor.update(&info, taken, &scoreboard);
            }
        }
    }
    wrong
}

proptest! {
    /// No predictor configuration panics on any event stream, and every
    /// one is deterministic.
    #[test]
    fn predictors_are_total_and_deterministic(
        spec in arb_spec(),
        events in prop::collection::vec(arb_event(), 0..300),
        latency in 0u64..16,
    ) {
        let a = replay(&spec, &events, latency);
        let b = replay(&spec, &events, latency);
        prop_assert_eq!(a, b);
        prop_assert!(a <= events.len() as u64);
    }

    /// The squash filter agrees with its inner predictor whenever the
    /// guard is unresolved (an enormous-latency scoreboard resolves
    /// nothing that was ever written).
    #[test]
    fn filter_is_transparent_on_unresolved_guards(
        events in prop::collection::vec(arb_event(), 1..300),
    ) {
        // Pre-write every predicate so no guard is in the "never written
        // ⇒ known false" state; latency 1<<60 keeps them all unresolved.
        let mut prefix: Vec<Ev> = (1u8..64)
            .map(|preg| Ev::Write { pc: 0, preg, value: true })
            .collect();
        prefix.extend(events);
        let base = PredictorSpec::Gshare { index_bits: 8, history_bits: 8 };
        let wrapped = base.clone().with_sfpf();
        prop_assert_eq!(
            replay(&base, &prefix, 1 << 60),
            replay(&wrapped, &prefix, 1 << 60)
        );
    }

    /// PGU with delay so large nothing ever drains behaves exactly like
    /// the unwrapped gshare.
    #[test]
    fn undrained_pgu_equals_gshare(
        events in prop::collection::vec(arb_event(), 0..300),
    ) {
        let mut plain = Gshare::new(8, 8);
        let mut pgu = Pgu::new(Gshare::new(8, 8)).with_delay(u64::MAX);
        let scoreboard = PredicateScoreboard::new(8);
        for (index, ev) in events.iter().enumerate() {
            match *ev {
                Ev::Write { pc, preg, value } => {
                    let event = PredWriteEvent {
                        pc,
                        preg: PredReg::new(preg).unwrap(),
                        value,
                        index: index as u64,
                        guard: PredReg::TRUE,
                        guard_value: true,
                    };
                    plain.on_pred_write(&event);
                    pgu.on_pred_write(&event);
                }
                Ev::Branch { pc, guard, taken, region } => {
                    let info = BranchInfo {
                        pc,
                        target: 0,
                        guard: PredReg::new(guard).unwrap(),
                        region: region.then_some(0),
                        index: index as u64,
                    };
                    prop_assert_eq!(
                        plain.predict(&info, &scoreboard),
                        pgu.predict(&info, &scoreboard)
                    );
                    plain.update(&info, taken, &scoreboard);
                    pgu.update(&info, taken, &scoreboard);
                }
            }
        }
    }

    /// The filter's override is always architecturally safe: when it
    /// fires on a known-false guard, the branch is genuinely not taken —
    /// so a wrapped oracle stays perfect.
    #[test]
    fn filter_preserves_oracle_perfection(
        raw_events in prop::collection::vec(arb_event(), 0..300),
        latency in 0u64..16,
    ) {
        // make outcomes consistent with guards: a branch is taken iff its
        // guard's architectural value is true
        let mut preds = [false; 64];
        preds[0] = true;
        let events: Vec<Ev> = raw_events
            .into_iter()
            .map(|ev| match ev {
                Ev::Write { pc, preg, value } => {
                    preds[preg as usize] = value;
                    Ev::Write { pc, preg, value }
                }
                Ev::Branch { pc, guard, region, .. } => Ev::Branch {
                    pc,
                    guard,
                    taken: preds[guard as usize],
                    region,
                },
            })
            .collect();
        let oracle = PredictorSpec::OracleGuard;
        let filtered = oracle.clone().with_sfpf();
        prop_assert_eq!(replay(&oracle, &events, latency), 0);
        prop_assert_eq!(replay(&filtered, &events, latency), 0);
    }

    /// `storage_bits` is configuration-determined: untouched by use.
    #[test]
    fn storage_bits_is_stable(
        spec in arb_spec(),
        events in prop::collection::vec(arb_event(), 0..50),
    ) {
        let mut predictor = build_predictor(&spec);
        let before = predictor.storage_bits();
        let scoreboard = PredicateScoreboard::new(4);
        for (index, ev) in events.iter().enumerate() {
            match *ev {
                Ev::Write { pc, preg, value } => predictor.on_pred_write(&PredWriteEvent {
                    pc,
                    preg: PredReg::new(preg).unwrap(),
                    value,
                    index: index as u64,
                    guard: PredReg::TRUE,
                    guard_value: true,
                }),
                Ev::Branch { pc, guard, taken, .. } => {
                    let info = BranchInfo {
                        pc,
                        target: 0,
                        guard: PredReg::new(guard).unwrap(),
                        region: None,
                        index: index as u64,
                    };
                    predictor.predict(&info, &scoreboard);
                    predictor.update(&info, taken, &scoreboard);
                }
            }
        }
        prop_assert_eq!(predictor.storage_bits(), before);
    }
}

/// A non-property regression: SquashFilter's filtered counter only moves
/// when the filter actually fires.
#[test]
fn filtered_counter_counts_fires_only() {
    let mut sb = PredicateScoreboard::new(4);
    let mut filter = SquashFilter::new(Gshare::new(6, 6));
    let p5 = PredReg::new(5).unwrap();
    let info = BranchInfo {
        pc: 3,
        target: 0,
        guard: p5,
        region: None,
        index: 100,
    };
    // in-flight guard: no fire
    sb.record_write(p5, false, 99);
    filter.predict(&info, &sb);
    assert_eq!(filter.filtered_count(), 0);
    // resolved-false guard: fires
    sb.record_write(p5, false, 0);
    filter.predict(&info, &sb);
    assert_eq!(filter.filtered_count(), 1);
}

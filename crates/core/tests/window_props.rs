//! Property tests over the in-flight branch window: whatever the
//! interleaving of branch and predicate-write events and whatever the
//! retire latency, the harness must drive the predictor lifecycle in a
//! fixed, well-formed order — `commit`s arrive in fetch order, every
//! `speculate` commits exactly once, and `squash` fires exactly for
//! mispredicted branches, immediately before their commit.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use proptest::prelude::*;

use predbranch_core::{
    BranchInfo, BranchPredictor, HarnessConfig, InsertFilter, PredictionHarness, Ring, Timing,
};
use predbranch_isa::PredReg;
use predbranch_sim::{BranchEvent, EventSink, PredWriteEvent, PredicateScoreboard};

/// One lifecycle call the probe predictor observed, tagged with the
/// branch's dynamic index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Call {
    Predict(u64),
    Speculate(u64),
    Squash(u64),
    Commit(u64),
}

/// A predictor that records every lifecycle call and predicts from a
/// deterministic hash of the branch, so both outcomes occur.
#[derive(Debug, Default)]
struct Probe {
    calls: Rc<RefCell<Vec<Call>>>,
}

impl Probe {
    fn answer(branch: &BranchInfo) -> bool {
        (branch.pc ^ branch.pc >> 3) & 1 == 1
    }
}

impl BranchPredictor for Probe {
    fn name(&self) -> String {
        "probe".to_string()
    }

    fn predict(&mut self, branch: &BranchInfo, _: &PredicateScoreboard) -> bool {
        self.calls.borrow_mut().push(Call::Predict(branch.index));
        Probe::answer(branch)
    }

    fn speculate(&mut self, branch: &BranchInfo, predicted: bool, _: &PredicateScoreboard) {
        assert_eq!(predicted, Probe::answer(branch), "speculate echoes predict");
        self.calls.borrow_mut().push(Call::Speculate(branch.index));
    }

    fn commit(&mut self, branch: &BranchInfo, _: bool, _: &PredicateScoreboard) {
        self.calls.borrow_mut().push(Call::Commit(branch.index));
    }

    fn squash(&mut self, branch: &BranchInfo, taken: bool, _: &PredicateScoreboard) {
        assert_ne!(taken, Probe::answer(branch), "squash only on mispredicts");
        self.calls.borrow_mut().push(Call::Squash(branch.index));
    }

    fn storage_bits(&self) -> usize {
        0
    }
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    Branch { pc: u32, taken: bool },
    Write { preg: u8, value: bool },
}

fn arb_event() -> impl Strategy<Value = Ev> {
    prop_oneof![
        (0u32..512, any::<bool>()).prop_map(|(pc, taken)| Ev::Branch { pc, taken }),
        (1u8..64, any::<bool>()).prop_map(|(preg, value)| Ev::Write { preg, value }),
    ]
}

/// Replays a synthetic stream and returns the recorded lifecycle calls
/// plus the fetch-ordered indices of all branches and of the
/// mispredicted ones.
fn drive(events: &[Ev], timing: Timing) -> (Vec<Call>, Vec<u64>, Vec<u64>) {
    let calls = Rc::new(RefCell::new(Vec::new()));
    let probe = Probe {
        calls: Rc::clone(&calls),
    };
    let mut harness = PredictionHarness::new(
        probe,
        HarnessConfig {
            timing,
            insert: InsertFilter::All,
        },
    );
    let mut branches = Vec::new();
    let mut mispredicted = Vec::new();
    for (index, ev) in events.iter().enumerate() {
        let index = index as u64;
        match *ev {
            Ev::Branch { pc, taken } => {
                branches.push(index);
                let info = BranchInfo {
                    pc,
                    target: 0,
                    guard: PredReg::new(1).unwrap(),
                    region: None,
                    index,
                };
                if Probe::answer(&info) != taken {
                    mispredicted.push(index);
                }
                harness.branch(&BranchEvent {
                    pc,
                    target: 0,
                    guard: PredReg::new(1).unwrap(),
                    taken,
                    conditional: true,
                    region: None,
                    index,
                });
            }
            Ev::Write { preg, value } => harness.pred_write(&PredWriteEvent {
                pc: 0,
                preg: PredReg::new(preg).unwrap(),
                value,
                index,
                guard: PredReg::TRUE,
                guard_value: true,
            }),
        }
    }
    harness.finish();
    assert_eq!(harness.in_flight(), 0);
    let calls = calls.borrow().clone();
    (calls, branches, mispredicted)
}

/// One operation against both the ring under test and the `VecDeque`
/// reference model.
#[derive(Debug, Clone, Copy)]
enum RingOp {
    Push(u16),
    Pop,
    Front,
    Clear,
}

fn arb_ring_op() -> impl Strategy<Value = RingOp> {
    prop_oneof![
        // push-heavy so runs actually fill the ring and wrap the head
        4 => any::<u16>().prop_map(RingOp::Push),
        3 => Just(RingOp::Pop),
        1 => Just(RingOp::Front),
        1 => Just(RingOp::Clear),
    ]
}

/// Drives one op sequence through a `Ring<u16, CAP>` and a `VecDeque`
/// side by side, checking every observable after every step. Pushes
/// that would overflow the ring (a contract violation for callers, and
/// a panic) are skipped on both sides so the models stay aligned.
fn check_ring_against_vecdeque<const CAP: usize>(ops: &[RingOp]) {
    let mut ring: Ring<u16, CAP> = Ring::new();
    let mut model: VecDeque<u16> = VecDeque::new();
    for &op in ops {
        match op {
            RingOp::Push(v) => {
                if model.len() < CAP {
                    ring.push_back(v);
                    model.push_back(v);
                }
            }
            RingOp::Pop => prop_assert_eq!(ring.pop_front(), model.pop_front()),
            RingOp::Front => prop_assert_eq!(ring.front(), model.front()),
            RingOp::Clear => {
                ring.clear();
                model.clear();
            }
        }
        prop_assert_eq!(ring.len(), model.len());
        prop_assert_eq!(ring.is_empty(), model.is_empty());
        prop_assert!(ring.iter().eq(model.iter()), "logical contents diverged");
    }
}

proptest! {
    /// The ring must be observationally indistinguishable from the
    /// `VecDeque` subset it replaced in the window and checkpoint
    /// FIFOs — at a small capacity (to exercise wrap-around and the
    /// full/empty boundary many times per run) and at the window's
    /// real capacity.
    #[test]
    fn ring_matches_vecdeque_reference(
        ops in prop::collection::vec(arb_ring_op(), 0..400),
    ) {
        check_ring_against_vecdeque::<4>(&ops);
        check_ring_against_vecdeque::<64>(&ops);
    }

    /// The window's core contract, for any interleaving and any retire
    /// latency: commit order equals fetch order, one commit per
    /// speculate, and squash exactly for mispredicted branches,
    /// immediately before their commit.
    #[test]
    fn commit_order_is_fetch_order(
        events in prop::collection::vec(arb_event(), 0..200),
        retire in prop_oneof![Just(0u64), 1u64..8, Just(1 << 40)],
    ) {
        let (calls, branches, mispredicted) =
            drive(&events, Timing::new(4, retire));

        let commits: Vec<u64> = calls
            .iter()
            .filter_map(|c| match c {
                Call::Commit(i) => Some(*i),
                _ => None,
            })
            .collect();
        let speculates: Vec<u64> = calls
            .iter()
            .filter_map(|c| match c {
                Call::Speculate(i) => Some(*i),
                _ => None,
            })
            .collect();
        let squashes: Vec<u64> = calls
            .iter()
            .filter_map(|c| match c {
                Call::Squash(i) => Some(*i),
                _ => None,
            })
            .collect();

        // every fetched branch speculates and commits exactly once, in
        // fetch order
        prop_assert_eq!(&commits, &branches);
        prop_assert_eq!(&speculates, &branches);
        // squash fires exactly for the mispredicted branches, in order
        prop_assert_eq!(&squashes, &mispredicted);

        // per-branch call shape: predict then speculate (adjacent in the
        // per-branch subsequence), squash (iff mispredicted) immediately
        // before commit, and never commit before speculate
        for &idx in &branches {
            let mine: Vec<Call> = calls
                .iter()
                .copied()
                .filter(|c| {
                    matches!(c,
                        Call::Predict(i) | Call::Speculate(i)
                        | Call::Squash(i) | Call::Commit(i) if *i == idx)
                })
                .collect();
            let expect = if mispredicted.contains(&idx) {
                vec![
                    Call::Predict(idx),
                    Call::Speculate(idx),
                    Call::Squash(idx),
                    Call::Commit(idx),
                ]
            } else {
                vec![Call::Predict(idx), Call::Speculate(idx), Call::Commit(idx)]
            };
            prop_assert_eq!(mine, expect);
        }

        // a squash is immediately followed by that branch's commit (the
        // repair-then-train pairing the per-predictor checkpoints rely on)
        for (pos, call) in calls.iter().enumerate() {
            if let Call::Squash(i) = call {
                prop_assert_eq!(calls.get(pos + 1), Some(&Call::Commit(*i)));
            }
        }
    }

    /// Retire latency never changes *what* retires, only *when*: the
    /// commit sequence (and squash set) is identical at every latency.
    #[test]
    fn retirement_schedule_is_latency_invariant(
        events in prop::collection::vec(arb_event(), 0..200),
        retire in 0u64..64,
    ) {
        let (a, ..) = drive(&events, Timing::new(4, 0));
        let (b, ..) = drive(&events, Timing::new(4, retire));
        let only = |calls: &[Call], keep: fn(&Call) -> bool| -> Vec<Call> {
            calls.iter().copied().filter(keep).collect()
        };
        prop_assert_eq!(
            only(&a, |c| matches!(c, Call::Commit(_) | Call::Squash(_))),
            only(&b, |c| matches!(c, Call::Commit(_) | Call::Squash(_)))
        );
    }
}

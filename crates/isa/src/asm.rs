//! A two-pass text assembler for the predicated ISA.
//!
//! The accepted syntax is exactly what the [`Inst`] `Display` impl
//! produces, plus labels and comments, so disassembled programs
//! re-assemble to the same instructions:
//!
//! ```text
//!     // comments with //, #, or ; to end of line
//!     mov r1 = 100
//! loop:
//!     cmp.lt.unc p1, p2 = r2, r3     // cmp.<cond>[.<ctype>]
//!     (p1) add r4 = r4, 1            // optional (pN) guard prefix
//!     (p2) ld r5 = [r6 + 8]
//!     (p2) st [r6 + 16] = r5
//!     (p1) br.region 3, exit         // region-based branch, region id 3
//!     br loop                        // label or absolute @N target
//! exit:
//!     halt
//! ```

use std::collections::BTreeMap;

use crate::error::{AsmError, AsmErrorKind};
use crate::inst::{AluOp, Inst, Op, Src};
use crate::pred::{CmpCond, CmpType};
use crate::program::Program;
use crate::reg::{Gpr, PredReg};

/// Assembles source text into a validated [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] carrying the 1-based source line of the first
/// problem (unknown mnemonic, bad operand, undefined/duplicate label), or
/// line 0 if the assembled program fails whole-program validation.
///
/// # Examples
///
/// ```
/// use predbranch_isa::assemble;
///
/// let p = assemble("start: nop\n br start\n halt")?;
/// assert_eq!(p.resolve_label("start"), Some(0));
/// # Ok::<(), predbranch_isa::AsmError>(())
/// ```
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let mut labels: BTreeMap<String, u32> = BTreeMap::new();
    let mut pending: Vec<(u32, String)> = Vec::new();

    // Pass 1: collect labels and instruction lines.
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let mut text = strip_comment(raw).trim().to_string();
        // A line may carry several labels before its instruction.
        while let Some(colon) = find_label(&text) {
            let name = text[..colon].trim().to_string();
            if labels.insert(name.clone(), pending.len() as u32).is_some() {
                return Err(AsmError::new(line_no, AsmErrorKind::DuplicateLabel(name)));
            }
            text = text[colon + 1..].trim().to_string();
        }
        if !text.is_empty() {
            pending.push((line_no, text));
        }
    }

    // Pass 2: parse instructions with labels resolved.
    let mut insts = Vec::with_capacity(pending.len());
    for (line_no, text) in &pending {
        insts.push(parse_inst(*line_no, text, &labels)?);
    }

    Program::with_labels(insts, labels)
        .map_err(|e| AsmError::new(0, AsmErrorKind::InvalidProgram(e)))
}

fn strip_comment(line: &str) -> &str {
    let mut end = line.len();
    for marker in ["//", "#", ";"] {
        if let Some(pos) = line.find(marker) {
            end = end.min(pos);
        }
    }
    &line[..end]
}

/// Finds a leading `label:` in `text`, returning the colon's byte index.
///
/// Only identifiers (alphanumeric, `_`, `.`) count, so the `:` never
/// collides with operand syntax (which contains `=`, `[`, etc.).
fn find_label(text: &str) -> Option<usize> {
    let colon = text.find(':')?;
    let candidate = text[..colon].trim();
    if !candidate.is_empty()
        && candidate
            .chars()
            .all(|c| c.is_alphanumeric() || c == '_' || c == '.')
        && !candidate.chars().next().unwrap().is_ascii_digit()
    {
        Some(colon)
    } else {
        None
    }
}

fn malformed(line: u32, msg: impl Into<String>) -> AsmError {
    AsmError::new(line, AsmErrorKind::Malformed(msg.into()))
}

fn parse_gpr(line: u32, token: &str) -> Result<Gpr, AsmError> {
    let bad = || AsmError::new(line, AsmErrorKind::BadRegister(token.to_string()));
    let idx: u8 = token
        .strip_prefix('r')
        .ok_or_else(bad)?
        .parse()
        .map_err(|_| bad())?;
    Gpr::new(idx).ok_or_else(bad)
}

fn parse_pred(line: u32, token: &str) -> Result<PredReg, AsmError> {
    let bad = || AsmError::new(line, AsmErrorKind::BadRegister(token.to_string()));
    let idx: u8 = token
        .strip_prefix('p')
        .ok_or_else(bad)?
        .parse()
        .map_err(|_| bad())?;
    PredReg::new(idx).ok_or_else(bad)
}

fn parse_imm(line: u32, token: &str) -> Result<i32, AsmError> {
    token
        .parse::<i32>()
        .map_err(|_| AsmError::new(line, AsmErrorKind::BadImmediate(token.to_string())))
}

fn parse_src(line: u32, token: &str) -> Result<Src, AsmError> {
    if token.starts_with('r') && token[1..].chars().all(|c| c.is_ascii_digit()) {
        Ok(Src::Reg(parse_gpr(line, token)?))
    } else if token.starts_with('-') || token.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        Ok(Src::Imm(parse_imm(line, token)?))
    } else {
        Err(AsmError::new(
            line,
            AsmErrorKind::BadOperand(token.to_string()),
        ))
    }
}

fn parse_target(line: u32, token: &str, labels: &BTreeMap<String, u32>) -> Result<u32, AsmError> {
    if let Some(abs) = token.strip_prefix('@') {
        return abs
            .parse::<u32>()
            .map_err(|_| AsmError::new(line, AsmErrorKind::BadOperand(token.to_string())));
    }
    labels
        .get(token)
        .copied()
        .ok_or_else(|| AsmError::new(line, AsmErrorKind::UndefinedLabel(token.to_string())))
}

/// Splits `"a = b, c"` shapes: returns (lhs tokens, rhs tokens).
fn split_assign(line: u32, text: &str) -> Result<(Vec<&str>, Vec<&str>), AsmError> {
    let (lhs, rhs) = text
        .split_once('=')
        .ok_or_else(|| malformed(line, format!("expected `=` in `{text}`")))?;
    Ok((
        lhs.split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect(),
        rhs.split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect(),
    ))
}

/// Parses `[rB + off]` / `[rB - off]` / `[rB]` memory operands.
fn parse_mem(line: u32, token: &str) -> Result<(Gpr, i32), AsmError> {
    let inner = token
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| malformed(line, format!("expected `[base + offset]`, got `{token}`")))?
        .trim();
    if let Some((base, off)) = inner.split_once('+') {
        Ok((parse_gpr(line, base.trim())?, parse_imm(line, off.trim())?))
    } else if let Some((base, off)) = inner.split_once('-') {
        let off = parse_imm(line, off.trim())?;
        let neg = off
            .checked_neg()
            .ok_or_else(|| AsmError::new(line, AsmErrorKind::BadImmediate(inner.to_string())))?;
        Ok((parse_gpr(line, base.trim())?, neg))
    } else {
        Ok((parse_gpr(line, inner)?, 0))
    }
}

fn parse_inst(line: u32, text: &str, labels: &BTreeMap<String, u32>) -> Result<Inst, AsmError> {
    // Optional guard prefix.
    let (guard, rest) = if let Some(after) = text.strip_prefix('(') {
        let close = after
            .find(')')
            .ok_or_else(|| malformed(line, "unclosed guard `(`"))?;
        (
            parse_pred(line, after[..close].trim())?,
            after[close + 1..].trim(),
        )
    } else {
        (PredReg::TRUE, text)
    };

    let (mnemonic, operands) = match rest.split_once(char::is_whitespace) {
        Some((m, rest)) => (m.trim(), rest.trim()),
        None => (rest, ""),
    };

    let op = match mnemonic {
        "nop" => Op::Nop,
        "halt" => Op::Halt,
        "br" => Op::Br {
            target: parse_target(line, operands, labels)?,
            region: None,
        },
        "br.region" => {
            let (region, target) = operands
                .split_once(',')
                .ok_or_else(|| malformed(line, "expected `br.region <id>, <target>`"))?;
            let region: u16 = region.trim().parse().map_err(|_| {
                AsmError::new(line, AsmErrorKind::BadImmediate(region.trim().to_string()))
            })?;
            Op::Br {
                target: parse_target(line, target.trim(), labels)?,
                region: Some(region),
            }
        }
        "mov" => {
            let (lhs, rhs) = split_assign(line, operands)?;
            if lhs.len() != 1 || rhs.len() != 1 {
                return Err(malformed(line, "expected `mov rD = src`"));
            }
            Op::Mov {
                dst: parse_gpr(line, lhs[0])?,
                src: parse_src(line, rhs[0])?,
            }
        }
        "ld" => {
            let (lhs, rhs) = split_assign(line, operands)?;
            if lhs.len() != 1 || rhs.len() != 1 {
                return Err(malformed(line, "expected `ld rD = [base + off]`"));
            }
            let (base, offset) = parse_mem(line, rhs[0])?;
            Op::Load {
                dst: parse_gpr(line, lhs[0])?,
                base,
                offset,
            }
        }
        "st" => {
            let (lhs, rhs) = split_assign(line, operands)?;
            if lhs.len() != 1 || rhs.len() != 1 {
                return Err(malformed(line, "expected `st [base + off] = rS`"));
            }
            let (base, offset) = parse_mem(line, lhs[0])?;
            Op::Store {
                src: parse_gpr(line, rhs[0])?,
                base,
                offset,
            }
        }
        m if m.starts_with("cmp.") => {
            let suffix = &m[4..];
            let (cond_str, ctype_str) = match suffix.split_once('.') {
                Some((c, t)) => (c, t),
                None => (suffix, ""),
            };
            let cond: CmpCond = cond_str
                .parse()
                .map_err(|_| AsmError::new(line, AsmErrorKind::UnknownMnemonic(m.to_string())))?;
            let ctype: CmpType = ctype_str
                .parse()
                .map_err(|_| AsmError::new(line, AsmErrorKind::UnknownMnemonic(m.to_string())))?;
            let (lhs, rhs) = split_assign(line, operands)?;
            if lhs.len() != 2 || rhs.len() != 2 {
                return Err(malformed(
                    line,
                    "expected `cmp.<cond>[.<ctype>] pT, pF = src1, src2`",
                ));
            }
            Op::Cmp {
                ctype,
                cond,
                p_true: parse_pred(line, lhs[0])?,
                p_false: parse_pred(line, lhs[1])?,
                src1: parse_gpr(line, rhs[0])?,
                src2: parse_src(line, rhs[1])?,
            }
        }
        m => {
            if let Some(op) = AluOp::ALL.iter().find(|o| o.mnemonic() == m) {
                let (lhs, rhs) = split_assign(line, operands)?;
                if lhs.len() != 1 || rhs.len() != 2 {
                    return Err(malformed(line, "expected `op rD = rS1, src2`"));
                }
                Op::Alu {
                    op: *op,
                    dst: parse_gpr(line, lhs[0])?,
                    src1: parse_gpr(line, rhs[0])?,
                    src2: parse_src(line, rhs[1])?,
                }
            } else {
                return Err(AsmError::new(
                    line,
                    AsmErrorKind::UnknownMnemonic(m.to_string()),
                ));
            }
        }
    };
    Ok(Inst::guarded(guard, op))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_all_mnemonics() {
        let p = assemble(
            r#"
            // a program touching every mnemonic
            start:
                nop
                mov r1 = -5
                mov r2 = r1
                add r3 = r1, r2
                sub r3 = r3, 1
                mul r4 = r3, r3
                div r5 = r4, r3
                rem r6 = r4, 3
                and r7 = r6, 1
                or  r7 = r7, 2
                xor r7 = r7, r6
                shl r8 = r7, 2
                shr r8 = r8, r7
                ld r9 = [r8 + 4]
                st [r8 + 8] = r9
                st [r8 - 8] = r9
                ld r9 = [r8]
                cmp.eq p1, p2 = r1, r2
                cmp.lt.unc p3, p4 = r1, 7
                cmp.gt.and p5, p6 = r2, r3
                cmp.ne.or p5, p6 = r2, 0
                cmp.ge.or.andcm p7, p8 = r2, r3
                (p1) br start
                (p2) br.region 9, start
                br @0
                halt
            "#,
        )
        .expect("assembles");
        assert_eq!(p.len(), 26);
        assert_eq!(p.resolve_label("start"), Some(0));
    }

    #[test]
    fn guard_prefix_parsed() {
        let p = assemble("(p7) nop\n halt").unwrap();
        assert_eq!(p.inst(0).unwrap().guard, PredReg::new(7).unwrap());
    }

    #[test]
    fn forward_labels_resolve() {
        let p = assemble("br end\n nop\nend: halt").unwrap();
        match p.inst(0).unwrap().op {
            Op::Br { target, .. } => assert_eq!(target, 2),
            ref other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    fn label_on_same_line_as_inst() {
        let p = assemble("top: nop\n br top\n halt").unwrap();
        assert_eq!(p.resolve_label("top"), Some(0));
    }

    #[test]
    fn multiple_labels_same_pc() {
        let p = assemble("a: b: halt").unwrap();
        assert_eq!(p.resolve_label("a"), Some(0));
        assert_eq!(p.resolve_label("b"), Some(0));
    }

    #[test]
    fn comments_stripped() {
        let p = assemble("nop // one\nnop # two\nnop ; three\nhalt").unwrap();
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn unknown_mnemonic_reports_line() {
        let err = assemble("nop\nfrobnicate r1\nhalt").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(matches!(err.kind, AsmErrorKind::UnknownMnemonic(_)));
    }

    #[test]
    fn bad_register_rejected() {
        let err = assemble("mov r64 = 0\nhalt").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::BadRegister(_)));
        let err = assemble("cmp.eq p64, p1 = r1, r2\nhalt").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::BadRegister(_)));
    }

    #[test]
    fn undefined_label_rejected() {
        let err = assemble("br nowhere\nhalt").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::UndefinedLabel(_)));
    }

    #[test]
    fn duplicate_label_rejected() {
        let err = assemble("x: nop\nx: halt").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::DuplicateLabel(_)));
    }

    #[test]
    fn missing_halt_surfaces_as_program_error() {
        let err = assemble("nop").unwrap_err();
        assert_eq!(err.line, 0);
        assert!(matches!(err.kind, AsmErrorKind::InvalidProgram(_)));
    }

    #[test]
    fn bad_immediate_rejected() {
        let err = assemble("mov r1 = 99999999999999\nhalt").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::BadImmediate(_)));
    }

    #[test]
    fn malformed_shapes_rejected() {
        for bad in [
            "mov r1\nhalt",
            "add r1 = r2\nhalt",
            "ld r1 = r2\nhalt",
            "br.region 5\nhalt",
            "cmp.eq p1 = r1, r2\nhalt",
            "(p1 nop\nhalt",
        ] {
            assert!(assemble(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn region_branch_carries_id() {
        let p = assemble("x: (p3) br.region 12, x\nhalt").unwrap();
        match p.inst(0).unwrap().op {
            Op::Br { region, .. } => assert_eq!(region, Some(12)),
            ref other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    fn disassembly_reassembles_identically() {
        let source = r#"
            mov r1 = 10
        loop:
            cmp.gt p1, p2 = r1, 0
            (p1) sub r1 = r1, 1
            (p2) br.region 4, done
            (p1) br loop
        done:
            halt
        "#;
        let p1 = assemble(source).unwrap();
        // Display uses absolute @N targets, which the assembler accepts.
        let p2 = assemble(&p1.to_string()).unwrap();
        assert_eq!(p1.insts(), p2.insts());
    }
}

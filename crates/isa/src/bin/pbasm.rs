//! `pbasm` — assembler/disassembler for the predbranch ISA.
//!
//! ```text
//! pbasm asm <file.s>      assemble; print one 16-digit hex word per line
//! pbasm disasm <file.hex> decode hex words; print assembly
//! pbasm check <file.s>    validate and print static statistics
//! ```

use std::fs;
use std::process::ExitCode;

use predbranch_isa::{assemble, decode_program, encode_program, Inst, Program};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mode, path) = match args.as_slice() {
        [mode, path] => (mode.as_str(), path.as_str()),
        _ => {
            eprintln!("usage: pbasm <asm|disasm|check> <file>");
            return ExitCode::FAILURE;
        }
    };
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("pbasm: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match mode {
        "asm" => match assemble(&text) {
            Ok(program) => match encode_program(&program) {
                Ok(words) => {
                    for word in words {
                        println!("{word:016x}");
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("pbasm: encode error: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(e) => {
                eprintln!("pbasm: {path}: {e}");
                ExitCode::FAILURE
            }
        },
        "disasm" => {
            let mut words = Vec::new();
            for (i, line) in text.lines().enumerate() {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                match u64::from_str_radix(line, 16) {
                    Ok(w) => words.push(w),
                    Err(e) => {
                        eprintln!("pbasm: {path}:{}: bad hex word: {e}", i + 1);
                        return ExitCode::FAILURE;
                    }
                }
            }
            match decode_program(&words) {
                Ok(insts) => {
                    for (pc, inst) in insts.iter().enumerate() {
                        println!("{pc:>6}: {inst}");
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("pbasm: decode error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "check" => match assemble(&text) {
            Ok(program) => {
                print_stats(&program);
                let lints = predbranch_isa::lint_program(&program);
                if lints.is_empty() {
                    println!("lints:                none");
                } else {
                    for lint in &lints {
                        println!("lint: {lint}");
                    }
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("pbasm: {path}: {e}");
                ExitCode::FAILURE
            }
        },
        other => {
            eprintln!("pbasm: unknown mode `{other}` (use asm|disasm|check)");
            ExitCode::FAILURE
        }
    }
}

fn print_stats(program: &Program) {
    let s = program.stats();
    println!("instructions:         {}", s.instructions);
    println!("branches:             {}", s.branches);
    println!("  conditional:        {}", s.conditional_branches);
    println!("  region-based:       {}", s.region_branches);
    println!("compares:             {}", s.compares);
    println!("predicated:           {}", s.predicated);
    let guards: std::collections::BTreeSet<_> = program
        .insts()
        .iter()
        .filter(|i| i.is_predicated())
        .map(|i: &Inst| i.guard)
        .collect();
    println!(
        "guard predicates used: {}",
        guards
            .iter()
            .map(|g| g.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    );
}

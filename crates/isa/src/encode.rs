//! Binary encoding of instructions into 64-bit words.
//!
//! The encoding is a fixed-width research format, not a claim about IA-64
//! bundle layout: its purpose is to give programs a concrete binary form
//! (so storage-budget arithmetic and fetch modelling are honest) and to be
//! exactly invertible, which the property tests check.
//!
//! Word layout (little-endian bit numbering):
//!
//! ```text
//! bits  [0,6)   guard predicate register
//! bits  [6,12)  opcode
//! bits  [12,..) operands, per opcode (see source)
//! ```

use crate::error::EncodeError;
use crate::inst::{AluOp, Inst, Op, Src};
use crate::pred::{CmpCond, CmpType};
use crate::program::Program;
use crate::reg::{Gpr, PredReg};

const OP_NOP: u8 = 0;
const OP_HALT: u8 = 1;
const OP_BR: u8 = 2;
const OP_BR_REGION: u8 = 3;
const OP_MOV_R: u8 = 4;
const OP_MOV_I: u8 = 5;
const OP_LOAD: u8 = 6;
const OP_STORE: u8 = 7;
const OP_CMP_R: u8 = 8;
const OP_CMP_I: u8 = 9;
const OP_ALU_R_BASE: u8 = 16;
const OP_ALU_I_BASE: u8 = 32;

fn field(word: u64, lo: u32, bits: u32) -> u64 {
    (word >> lo) & ((1u64 << bits) - 1)
}

fn put(word: &mut u64, lo: u32, bits: u32, value: u64) {
    debug_assert!(value < (1u64 << bits), "field value out of range");
    *word |= (value & ((1u64 << bits) - 1)) << lo;
}

fn gpr_field(word: u64, lo: u32) -> Gpr {
    // 6-bit fields cannot exceed 63, so this cannot fail.
    Gpr::new(field(word, lo, 6) as u8).expect("6-bit register field")
}

fn pred_field(word: u64, lo: u32) -> PredReg {
    PredReg::new(field(word, lo, 6) as u8).expect("6-bit predicate field")
}

fn alu_index(op: AluOp) -> u8 {
    AluOp::ALL
        .iter()
        .position(|&o| o == op)
        .expect("AluOp::ALL is exhaustive") as u8
}

fn ctype_index(c: CmpType) -> u8 {
    CmpType::ALL
        .iter()
        .position(|&x| x == c)
        .expect("CmpType::ALL is exhaustive") as u8
}

fn cond_index(c: CmpCond) -> u8 {
    CmpCond::ALL
        .iter()
        .position(|&x| x == c)
        .expect("CmpCond::ALL is exhaustive") as u8
}

/// Encodes one instruction into a 64-bit word.
///
/// # Errors
///
/// Returns [`EncodeError::CmpImmOutOfRange`] if a compare immediate does
/// not fit the 16-bit field (all other immediates fit by construction).
///
/// # Examples
///
/// ```
/// use predbranch_isa::{decode, encode, Inst, Op};
///
/// let inst = Inst::new(Op::Halt);
/// let word = encode(&inst)?;
/// assert_eq!(decode(word)?, inst);
/// # Ok::<(), predbranch_isa::EncodeError>(())
/// ```
pub fn encode(inst: &Inst) -> Result<u64, EncodeError> {
    let mut w = 0u64;
    put(&mut w, 0, 6, inst.guard.index() as u64);
    match inst.op {
        Op::Nop => put(&mut w, 6, 6, OP_NOP as u64),
        Op::Halt => put(&mut w, 6, 6, OP_HALT as u64),
        Op::Br { target, region } => match region {
            None => {
                put(&mut w, 6, 6, OP_BR as u64);
                put(&mut w, 12, 32, target as u64);
            }
            Some(r) => {
                put(&mut w, 6, 6, OP_BR_REGION as u64);
                put(&mut w, 12, 32, target as u64);
                put(&mut w, 44, 16, r as u64);
            }
        },
        Op::Mov { dst, src } => match src {
            Src::Reg(s) => {
                put(&mut w, 6, 6, OP_MOV_R as u64);
                put(&mut w, 12, 6, dst.index() as u64);
                put(&mut w, 18, 6, s.index() as u64);
            }
            Src::Imm(imm) => {
                put(&mut w, 6, 6, OP_MOV_I as u64);
                put(&mut w, 12, 6, dst.index() as u64);
                put(&mut w, 18, 32, imm as u32 as u64);
            }
        },
        Op::Load { dst, base, offset } => {
            put(&mut w, 6, 6, OP_LOAD as u64);
            put(&mut w, 12, 6, dst.index() as u64);
            put(&mut w, 18, 6, base.index() as u64);
            put(&mut w, 24, 32, offset as u32 as u64);
        }
        Op::Store { src, base, offset } => {
            put(&mut w, 6, 6, OP_STORE as u64);
            put(&mut w, 12, 6, src.index() as u64);
            put(&mut w, 18, 6, base.index() as u64);
            put(&mut w, 24, 32, offset as u32 as u64);
        }
        Op::Cmp {
            ctype,
            cond,
            p_true,
            p_false,
            src1,
            src2,
        } => {
            let common = |w: &mut u64| {
                put(w, 12, 3, ctype_index(ctype) as u64);
                put(w, 15, 3, cond_index(cond) as u64);
                put(w, 18, 6, p_true.index() as u64);
                put(w, 24, 6, p_false.index() as u64);
                put(w, 30, 6, src1.index() as u64);
            };
            match src2 {
                Src::Reg(s) => {
                    put(&mut w, 6, 6, OP_CMP_R as u64);
                    common(&mut w);
                    put(&mut w, 36, 6, s.index() as u64);
                }
                Src::Imm(imm) => {
                    let imm16 =
                        i16::try_from(imm).map_err(|_| EncodeError::CmpImmOutOfRange { imm })?;
                    put(&mut w, 6, 6, OP_CMP_I as u64);
                    common(&mut w);
                    put(&mut w, 36, 16, imm16 as u16 as u64);
                }
            }
        }
        Op::Alu {
            op,
            dst,
            src1,
            src2,
        } => match src2 {
            Src::Reg(s) => {
                put(&mut w, 6, 6, (OP_ALU_R_BASE + alu_index(op)) as u64);
                put(&mut w, 12, 6, dst.index() as u64);
                put(&mut w, 18, 6, src1.index() as u64);
                put(&mut w, 24, 6, s.index() as u64);
            }
            Src::Imm(imm) => {
                put(&mut w, 6, 6, (OP_ALU_I_BASE + alu_index(op)) as u64);
                put(&mut w, 12, 6, dst.index() as u64);
                put(&mut w, 18, 6, src1.index() as u64);
                put(&mut w, 24, 32, imm as u32 as u64);
            }
        },
    }
    Ok(w)
}

/// Decodes a 64-bit word back into an instruction.
///
/// # Errors
///
/// Returns [`EncodeError::BadOpcode`] for an unknown opcode and
/// [`EncodeError::BadField`] for a malformed compare type/condition field.
pub fn decode(word: u64) -> Result<Inst, EncodeError> {
    let guard = pred_field(word, 0);
    let opcode = field(word, 6, 6) as u8;
    let op = match opcode {
        OP_NOP => Op::Nop,
        OP_HALT => Op::Halt,
        OP_BR => Op::Br {
            target: field(word, 12, 32) as u32,
            region: None,
        },
        OP_BR_REGION => Op::Br {
            target: field(word, 12, 32) as u32,
            region: Some(field(word, 44, 16) as u16),
        },
        OP_MOV_R => Op::Mov {
            dst: gpr_field(word, 12),
            src: Src::Reg(gpr_field(word, 18)),
        },
        OP_MOV_I => Op::Mov {
            dst: gpr_field(word, 12),
            src: Src::Imm(field(word, 18, 32) as u32 as i32),
        },
        OP_LOAD => Op::Load {
            dst: gpr_field(word, 12),
            base: gpr_field(word, 18),
            offset: field(word, 24, 32) as u32 as i32,
        },
        OP_STORE => Op::Store {
            src: gpr_field(word, 12),
            base: gpr_field(word, 18),
            offset: field(word, 24, 32) as u32 as i32,
        },
        OP_CMP_R | OP_CMP_I => {
            let ctype = *CmpType::ALL
                .get(field(word, 12, 3) as usize)
                .ok_or(EncodeError::BadField { field: "ctype" })?;
            let cond = *CmpCond::ALL
                .get(field(word, 15, 3) as usize)
                .ok_or(EncodeError::BadField { field: "cond" })?;
            let src2 = if opcode == OP_CMP_R {
                Src::Reg(gpr_field(word, 36))
            } else {
                Src::Imm(field(word, 36, 16) as u16 as i16 as i32)
            };
            Op::Cmp {
                ctype,
                cond,
                p_true: pred_field(word, 18),
                p_false: pred_field(word, 24),
                src1: gpr_field(word, 30),
                src2,
            }
        }
        _ => {
            let (base, is_imm) = if (OP_ALU_R_BASE..OP_ALU_R_BASE + 10).contains(&opcode) {
                (OP_ALU_R_BASE, false)
            } else if (OP_ALU_I_BASE..OP_ALU_I_BASE + 10).contains(&opcode) {
                (OP_ALU_I_BASE, true)
            } else {
                return Err(EncodeError::BadOpcode { opcode });
            };
            let op = AluOp::ALL[(opcode - base) as usize];
            let src2 = if is_imm {
                Src::Imm(field(word, 24, 32) as u32 as i32)
            } else {
                Src::Reg(gpr_field(word, 24))
            };
            Op::Alu {
                op,
                dst: gpr_field(word, 12),
                src1: gpr_field(word, 18),
                src2,
            }
        }
    };
    Ok(Inst { guard, op })
}

/// Encodes a whole program into words.
///
/// # Errors
///
/// Propagates the first [`EncodeError`] encountered.
pub fn encode_program(program: &Program) -> Result<Vec<u64>, EncodeError> {
    program.insts().iter().map(encode).collect()
}

/// Decodes words back into instructions (without [`Program`] validation,
/// which requires label context the binary form does not carry).
///
/// # Errors
///
/// Propagates the first [`EncodeError`] encountered.
pub fn decode_program(words: &[u64]) -> Result<Vec<Inst>, EncodeError> {
    words.iter().map(|&w| decode(w)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> Gpr {
        Gpr::new(i).unwrap()
    }

    fn p(i: u8) -> PredReg {
        PredReg::new(i).unwrap()
    }

    fn roundtrip(inst: Inst) {
        let word = encode(&inst).expect("encodable");
        let back = decode(word).expect("decodable");
        assert_eq!(back, inst, "word {word:#018x}");
    }

    #[test]
    fn roundtrip_every_shape() {
        let shapes = vec![
            Inst::new(Op::Nop),
            Inst::guarded(p(63), Op::Halt),
            Inst::new(Op::Br {
                target: 0,
                region: None,
            }),
            Inst::guarded(
                p(5),
                Op::Br {
                    target: u32::MAX,
                    region: None,
                },
            ),
            Inst::guarded(
                p(5),
                Op::Br {
                    target: 1234,
                    region: Some(u16::MAX),
                },
            ),
            Inst::new(Op::Mov {
                dst: r(63),
                src: Src::Reg(r(1)),
            }),
            Inst::new(Op::Mov {
                dst: r(1),
                src: Src::Imm(i32::MIN),
            }),
            Inst::new(Op::Mov {
                dst: r(1),
                src: Src::Imm(i32::MAX),
            }),
            Inst::guarded(
                p(7),
                Op::Load {
                    dst: r(2),
                    base: r(3),
                    offset: -1,
                },
            ),
            Inst::new(Op::Store {
                src: r(9),
                base: r(10),
                offset: i32::MAX,
            }),
            Inst::new(Op::Cmp {
                ctype: CmpType::OrAndcm,
                cond: CmpCond::Ge,
                p_true: p(62),
                p_false: p(61),
                src1: r(11),
                src2: Src::Reg(r(12)),
            }),
            Inst::new(Op::Cmp {
                ctype: CmpType::Unc,
                cond: CmpCond::Ne,
                p_true: p(1),
                p_false: p(2),
                src1: r(3),
                src2: Src::Imm(-32768),
            }),
        ];
        for inst in shapes {
            roundtrip(inst);
        }
    }

    #[test]
    fn roundtrip_all_alu_ops_reg_and_imm() {
        for op in AluOp::ALL {
            roundtrip(Inst::new(Op::Alu {
                op,
                dst: r(1),
                src1: r(2),
                src2: Src::Reg(r(3)),
            }));
            roundtrip(Inst::guarded(
                p(4),
                Op::Alu {
                    op,
                    dst: r(1),
                    src1: r(2),
                    src2: Src::Imm(-12345),
                },
            ));
        }
    }

    #[test]
    fn roundtrip_all_cmp_types_and_conds() {
        for ctype in CmpType::ALL {
            for cond in CmpCond::ALL {
                roundtrip(Inst::new(Op::Cmp {
                    ctype,
                    cond,
                    p_true: p(10),
                    p_false: p(11),
                    src1: r(4),
                    src2: Src::Imm(100),
                }));
            }
        }
    }

    #[test]
    fn cmp_immediate_range_enforced() {
        let mk = |imm| {
            Inst::new(Op::Cmp {
                ctype: CmpType::Norm,
                cond: CmpCond::Eq,
                p_true: p(1),
                p_false: p(2),
                src1: r(1),
                src2: Src::Imm(imm),
            })
        };
        assert!(encode(&mk(32767)).is_ok());
        assert!(encode(&mk(-32768)).is_ok());
        assert_eq!(
            encode(&mk(32768)),
            Err(EncodeError::CmpImmOutOfRange { imm: 32768 })
        );
        assert_eq!(
            encode(&mk(-32769)),
            Err(EncodeError::CmpImmOutOfRange { imm: -32769 })
        );
    }

    #[test]
    fn unknown_opcode_rejected() {
        // opcode 63 is unused
        let word = 63u64 << 6;
        assert_eq!(decode(word), Err(EncodeError::BadOpcode { opcode: 63 }));
    }

    #[test]
    fn malformed_ctype_rejected() {
        // CMP_R with ctype field = 7
        let mut w = 0u64;
        put(&mut w, 6, 6, OP_CMP_R as u64);
        put(&mut w, 12, 3, 7);
        assert_eq!(decode(w), Err(EncodeError::BadField { field: "ctype" }));
    }

    #[test]
    fn malformed_cond_rejected() {
        let mut w = 0u64;
        put(&mut w, 6, 6, OP_CMP_I as u64);
        put(&mut w, 15, 3, 6);
        assert_eq!(decode(w), Err(EncodeError::BadField { field: "cond" }));
    }

    #[test]
    fn program_roundtrip() {
        let program = Program::new(vec![
            Inst::new(Op::Mov {
                dst: r(1),
                src: Src::Imm(5),
            }),
            Inst::guarded(
                p(1),
                Op::Br {
                    target: 0,
                    region: Some(2),
                },
            ),
            Inst::new(Op::Halt),
        ])
        .unwrap();
        let words = encode_program(&program).unwrap();
        let insts = decode_program(&words).unwrap();
        assert_eq!(insts, program.insts());
    }
}

//! Error types for assembly, encoding, and program validation.

use std::error::Error;
use std::fmt;

/// Why a program failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// The program contains no instructions.
    Empty,
    /// A branch at `pc` targets an instruction index outside the program.
    BranchOutOfRange {
        /// Location of the offending branch.
        pc: u32,
        /// The out-of-range target.
        target: u32,
        /// Program length.
        len: u32,
    },
    /// The program contains no `halt`, so execution could never terminate
    /// cleanly.
    NoHalt,
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::Empty => f.write_str("program is empty"),
            ProgramError::BranchOutOfRange { pc, target, len } => write!(
                f,
                "branch at pc {pc} targets {target}, outside program of length {len}"
            ),
            ProgramError::NoHalt => f.write_str("program contains no halt instruction"),
        }
    }
}

impl Error for ProgramError {}

/// Why an instruction could not be binary-encoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// A compare immediate does not fit the 16-bit encoding field.
    CmpImmOutOfRange {
        /// The offending immediate.
        imm: i32,
    },
    /// A decoded word has an unknown opcode.
    BadOpcode {
        /// The unknown opcode value.
        opcode: u8,
    },
    /// A decoded word has an out-of-range register field.
    BadField {
        /// Name of the malformed field.
        field: &'static str,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::CmpImmOutOfRange { imm } => {
                write!(f, "compare immediate {imm} does not fit 16 bits")
            }
            EncodeError::BadOpcode { opcode } => write!(f, "unknown opcode {opcode}"),
            EncodeError::BadField { field } => write!(f, "malformed {field} field"),
        }
    }
}

impl Error for EncodeError {}

/// What went wrong on a particular assembler line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmErrorKind {
    /// Unknown instruction mnemonic.
    UnknownMnemonic(String),
    /// A register name failed to parse or was out of range.
    BadRegister(String),
    /// An operand failed to parse.
    BadOperand(String),
    /// An immediate failed to parse or was out of range.
    BadImmediate(String),
    /// A label was referenced but never defined.
    UndefinedLabel(String),
    /// The same label was defined twice.
    DuplicateLabel(String),
    /// The line's overall shape didn't match the mnemonic's syntax.
    Malformed(String),
    /// The assembled program failed validation.
    InvalidProgram(ProgramError),
}

/// An assembly failure with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source text (0 for whole-program errors).
    pub line: u32,
    /// What went wrong.
    pub kind: AsmErrorKind,
}

impl AsmError {
    pub(crate) fn new(line: u32, kind: AsmErrorKind) -> Self {
        AsmError { line, kind }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: ", self.line)?;
        }
        match &self.kind {
            AsmErrorKind::UnknownMnemonic(m) => write!(f, "unknown mnemonic `{m}`"),
            AsmErrorKind::BadRegister(r) => write!(f, "bad register `{r}`"),
            AsmErrorKind::BadOperand(o) => write!(f, "bad operand `{o}`"),
            AsmErrorKind::BadImmediate(i) => write!(f, "bad immediate `{i}`"),
            AsmErrorKind::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmErrorKind::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmErrorKind::Malformed(m) => write!(f, "malformed instruction: {m}"),
            AsmErrorKind::InvalidProgram(e) => write!(f, "invalid program: {e}"),
        }
    }
}

impl Error for AsmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_error_messages() {
        assert_eq!(ProgramError::Empty.to_string(), "program is empty");
        let e = ProgramError::BranchOutOfRange {
            pc: 3,
            target: 99,
            len: 10,
        };
        assert!(e.to_string().contains("pc 3"));
        assert!(e.to_string().contains("99"));
    }

    #[test]
    fn encode_error_messages() {
        assert!(EncodeError::CmpImmOutOfRange { imm: 70000 }
            .to_string()
            .contains("70000"));
        assert!(EncodeError::BadOpcode { opcode: 63 }
            .to_string()
            .contains("63"));
    }

    #[test]
    fn asm_error_includes_line() {
        let e = AsmError::new(12, AsmErrorKind::UnknownMnemonic("frob".into()));
        let text = e.to_string();
        assert!(text.contains("line 12"));
        assert!(text.contains("frob"));
    }

    #[test]
    fn whole_program_asm_error_omits_line() {
        let e = AsmError::new(0, AsmErrorKind::InvalidProgram(ProgramError::NoHalt));
        assert!(!e.to_string().contains("line"));
    }

    #[test]
    fn errors_implement_std_error() {
        fn takes_error<E: Error + Send + Sync + 'static>(_: E) {}
        takes_error(ProgramError::Empty);
        takes_error(EncodeError::BadOpcode { opcode: 1 });
        takes_error(AsmError::new(1, AsmErrorKind::Malformed("x".into())));
    }
}

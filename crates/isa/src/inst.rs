//! Instruction definitions and the disassembling `Display` impl.

use std::fmt;

use crate::pred::{CmpCond, CmpType};
use crate::reg::{Gpr, PredReg};

/// Arithmetic/logic operations.
///
/// All operate on signed 64-bit values. `Div`/`Rem` by zero produce `0`
/// (documented, trap-free semantics — the simulator never faults). Shift
/// amounts are masked to the low 6 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Signed division; `x / 0 == 0`, `i64::MIN / -1 == i64::MIN`.
    Div,
    /// Signed remainder; `x % 0 == 0`, `i64::MIN % -1 == 0`.
    Rem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (amount masked to 6 bits).
    Shl,
    /// Arithmetic shift right (amount masked to 6 bits).
    Shr,
}

impl AluOp {
    /// All ALU operations, in encoding order.
    pub const ALL: [AluOp; 10] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Rem,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
    ];

    /// The assembler mnemonic.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
        }
    }

    /// Evaluates the operation with the documented trap-free semantics.
    ///
    /// # Examples
    ///
    /// ```
    /// use predbranch_isa::AluOp;
    ///
    /// assert_eq!(AluOp::Add.eval(2, 3), 5);
    /// assert_eq!(AluOp::Div.eval(7, 0), 0);
    /// assert_eq!(AluOp::Rem.eval(7, 3), 1);
    /// ```
    pub fn eval(&self, a: i64, b: i64) -> i64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            AluOp::Rem => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl((b & 0x3f) as u32),
            AluOp::Shr => a.wrapping_shr((b & 0x3f) as u32),
        }
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A source operand: a register or a 32-bit sign-extended immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Src {
    /// Register operand.
    Reg(Gpr),
    /// Immediate operand (sign-extended to 64 bits).
    Imm(i32),
}

impl Src {
    /// Shorthand for an immediate source.
    pub fn imm(value: i32) -> Src {
        Src::Imm(value)
    }

    /// Shorthand for a register source.
    pub fn reg(r: Gpr) -> Src {
        Src::Reg(r)
    }
}

impl From<Gpr> for Src {
    fn from(r: Gpr) -> Self {
        Src::Reg(r)
    }
}

impl From<i32> for Src {
    fn from(imm: i32) -> Self {
        Src::Imm(imm)
    }
}

impl fmt::Display for Src {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Src::Reg(r) => write!(f, "{r}"),
            Src::Imm(i) => write!(f, "{i}"),
        }
    }
}

/// The operation part of an instruction (everything except the guard).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// `dst = src1 <op> src2`
    Alu {
        /// The arithmetic/logic operation.
        op: AluOp,
        /// Destination register.
        dst: Gpr,
        /// First source register.
        src1: Gpr,
        /// Second source operand.
        src2: Src,
    },
    /// `dst = src`
    Mov {
        /// Destination register.
        dst: Gpr,
        /// Source operand.
        src: Src,
    },
    /// `dst = mem[base + offset]`
    Load {
        /// Destination register.
        dst: Gpr,
        /// Base address register.
        base: Gpr,
        /// Byte^W word offset added to the base.
        offset: i32,
    },
    /// `mem[base + offset] = src`
    Store {
        /// Register whose value is stored.
        src: Gpr,
        /// Base address register.
        base: Gpr,
        /// Word offset added to the base.
        offset: i32,
    },
    /// Compare-to-predicate: `cmp.<cond>.<ctype> pt, pf = src1, src2`.
    Cmp {
        /// Compare type controlling the predicate-write rule.
        ctype: CmpType,
        /// Relational condition.
        cond: CmpCond,
        /// "True" target predicate.
        p_true: PredReg,
        /// "False" target predicate.
        p_false: PredReg,
        /// First source register.
        src1: Gpr,
        /// Second source operand.
        src2: Src,
    },
    /// `(qp) br target`: taken exactly when the guard predicate is true.
    ///
    /// `region` tags a *region-based branch* — a branch the if-converter
    /// left inside a predicated region. `None` means an ordinary branch.
    Br {
        /// Absolute target instruction index.
        target: u32,
        /// The if-converted region this branch belongs to, if any.
        region: Option<u16>,
    },
    /// Stops execution.
    Halt,
    /// No operation.
    Nop,
}

/// One instruction: a guard predicate plus an operation.
///
/// Instructions whose guard is false are fetched and occupy pipeline slots
/// but have no architectural effect (except `cmp.unc`, which clears its
/// targets — see [`CmpType::Unc`]).
///
/// The `Display` impl is the disassembler; its output round-trips through
/// [`crate::assemble`].
///
/// # Examples
///
/// ```
/// use predbranch_isa::{Gpr, Inst, Op, PredReg, Src};
///
/// let p1 = PredReg::new(1).unwrap();
/// let inst = Inst::guarded(
///     p1,
///     Op::Alu {
///         op: predbranch_isa::AluOp::Add,
///         dst: Gpr::new(4).unwrap(),
///         src1: Gpr::new(4).unwrap(),
///         src2: Src::Imm(1),
///     },
/// );
/// assert_eq!(inst.to_string(), "(p1) add r4 = r4, 1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Inst {
    /// Guard predicate register; `p0` for unguarded instructions.
    pub guard: PredReg,
    /// The operation.
    pub op: Op,
}

impl Inst {
    /// An unguarded instruction (guard = `p0`).
    pub fn new(op: Op) -> Self {
        Inst {
            guard: PredReg::TRUE,
            op,
        }
    }

    /// An instruction guarded by `guard`.
    pub fn guarded(guard: PredReg, op: Op) -> Self {
        Inst { guard, op }
    }

    /// Whether this is a branch.
    pub fn is_branch(&self) -> bool {
        matches!(self.op, Op::Br { .. })
    }

    /// Whether this is a *conditional* branch (guard other than `p0`).
    pub fn is_conditional_branch(&self) -> bool {
        self.is_branch() && !self.guard.is_always_true()
    }

    /// Whether this is a region-based branch.
    pub fn is_region_branch(&self) -> bool {
        matches!(
            self.op,
            Op::Br {
                region: Some(_),
                ..
            }
        )
    }

    /// Whether this is a compare-to-predicate instruction.
    pub fn is_cmp(&self) -> bool {
        matches!(self.op, Op::Cmp { .. })
    }

    /// Whether this instruction is guarded by a real (writable) predicate.
    pub fn is_predicated(&self) -> bool {
        !self.guard.is_always_true()
    }

    /// The predicate registers this instruction writes, if any.
    ///
    /// Writes to `p0` are architecturally ignored and excluded.
    pub fn pred_writes(&self) -> impl Iterator<Item = PredReg> + '_ {
        let pair = match self.op {
            Op::Cmp {
                p_true, p_false, ..
            } => [Some(p_true), Some(p_false)],
            _ => [None, None],
        };
        pair.into_iter().flatten().filter(|p| !p.is_always_true())
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.guard.is_always_true() {
            write!(f, "({}) ", self.guard)?;
        }
        match &self.op {
            Op::Alu {
                op,
                dst,
                src1,
                src2,
            } => write!(f, "{op} {dst} = {src1}, {src2}"),
            Op::Mov { dst, src } => write!(f, "mov {dst} = {src}"),
            Op::Load { dst, base, offset } => write!(f, "ld {dst} = [{base} + {offset}]"),
            Op::Store { src, base, offset } => write!(f, "st [{base} + {offset}] = {src}"),
            Op::Cmp {
                ctype,
                cond,
                p_true,
                p_false,
                src1,
                src2,
            } => {
                if ctype.mnemonic().is_empty() {
                    write!(f, "cmp.{cond} {p_true}, {p_false} = {src1}, {src2}")
                } else {
                    write!(f, "cmp.{cond}.{ctype} {p_true}, {p_false} = {src1}, {src2}")
                }
            }
            Op::Br { target, region } => match region {
                Some(r) => write!(f, "br.region {r}, @{target}"),
                None => write!(f, "br @{target}"),
            },
            Op::Halt => f.write_str("halt"),
            Op::Nop => f.write_str("nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> Gpr {
        Gpr::new(i).unwrap()
    }

    fn p(i: u8) -> PredReg {
        PredReg::new(i).unwrap()
    }

    #[test]
    fn alu_eval_wrapping_and_trap_free() {
        assert_eq!(AluOp::Add.eval(i64::MAX, 1), i64::MIN);
        assert_eq!(AluOp::Sub.eval(i64::MIN, 1), i64::MAX);
        assert_eq!(AluOp::Mul.eval(3, -4), -12);
        assert_eq!(AluOp::Div.eval(10, 3), 3);
        assert_eq!(AluOp::Div.eval(10, 0), 0);
        assert_eq!(AluOp::Div.eval(i64::MIN, -1), i64::MIN);
        assert_eq!(AluOp::Rem.eval(10, 3), 1);
        assert_eq!(AluOp::Rem.eval(10, 0), 0);
        assert_eq!(AluOp::Rem.eval(i64::MIN, -1), 0);
    }

    #[test]
    fn alu_eval_bitwise_and_shifts() {
        assert_eq!(AluOp::And.eval(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.eval(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.eval(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Shl.eval(1, 4), 16);
        assert_eq!(AluOp::Shr.eval(-16, 2), -4);
        // shift amounts masked to 6 bits
        assert_eq!(AluOp::Shl.eval(1, 64), 1);
        assert_eq!(AluOp::Shl.eval(1, 65), 2);
    }

    #[test]
    fn inst_classification() {
        let br = Inst::guarded(
            p(1),
            Op::Br {
                target: 0,
                region: None,
            },
        );
        assert!(br.is_branch());
        assert!(br.is_conditional_branch());
        assert!(!br.is_region_branch());

        let ubr = Inst::new(Op::Br {
            target: 0,
            region: None,
        });
        assert!(ubr.is_branch());
        assert!(!ubr.is_conditional_branch());

        let rbr = Inst::guarded(
            p(2),
            Op::Br {
                target: 0,
                region: Some(7),
            },
        );
        assert!(rbr.is_region_branch());

        let nop = Inst::new(Op::Nop);
        assert!(!nop.is_branch());
        assert!(!nop.is_predicated());
    }

    #[test]
    fn pred_writes_lists_cmp_targets() {
        let cmp = Inst::new(Op::Cmp {
            ctype: CmpType::Norm,
            cond: CmpCond::Lt,
            p_true: p(3),
            p_false: p(4),
            src1: r(1),
            src2: Src::Imm(0),
        });
        let writes: Vec<_> = cmp.pred_writes().collect();
        assert_eq!(writes, vec![p(3), p(4)]);

        // writes to p0 are dropped
        let cmp0 = Inst::new(Op::Cmp {
            ctype: CmpType::Norm,
            cond: CmpCond::Lt,
            p_true: p(3),
            p_false: PredReg::TRUE,
            src1: r(1),
            src2: Src::Imm(0),
        });
        assert_eq!(cmp0.pred_writes().collect::<Vec<_>>(), vec![p(3)]);

        let add = Inst::new(Op::Alu {
            op: AluOp::Add,
            dst: r(1),
            src1: r(1),
            src2: Src::Imm(1),
        });
        assert_eq!(add.pred_writes().count(), 0);
    }

    #[test]
    fn display_formats_every_shape() {
        let cases: Vec<(Inst, &str)> = vec![
            (
                Inst::new(Op::Mov {
                    dst: r(1),
                    src: Src::Imm(-7),
                }),
                "mov r1 = -7",
            ),
            (
                Inst::new(Op::Mov {
                    dst: r(1),
                    src: Src::Reg(r(2)),
                }),
                "mov r1 = r2",
            ),
            (
                Inst::guarded(
                    p(5),
                    Op::Load {
                        dst: r(2),
                        base: r(3),
                        offset: 16,
                    },
                ),
                "(p5) ld r2 = [r3 + 16]",
            ),
            (
                Inst::new(Op::Store {
                    src: r(2),
                    base: r(3),
                    offset: -8,
                }),
                "st [r3 + -8] = r2",
            ),
            (
                Inst::new(Op::Cmp {
                    ctype: CmpType::Unc,
                    cond: CmpCond::Ge,
                    p_true: p(1),
                    p_false: p(2),
                    src1: r(4),
                    src2: Src::Reg(r(5)),
                }),
                "cmp.ge.unc p1, p2 = r4, r5",
            ),
            (
                Inst::new(Op::Cmp {
                    ctype: CmpType::Norm,
                    cond: CmpCond::Eq,
                    p_true: p(1),
                    p_false: p(2),
                    src1: r(4),
                    src2: Src::Imm(3),
                }),
                "cmp.eq p1, p2 = r4, 3",
            ),
            (
                Inst::guarded(
                    p(9),
                    Op::Br {
                        target: 12,
                        region: Some(2),
                    },
                ),
                "(p9) br.region 2, @12",
            ),
            (
                Inst::new(Op::Br {
                    target: 3,
                    region: None,
                }),
                "br @3",
            ),
            (Inst::new(Op::Halt), "halt"),
            (Inst::guarded(p(1), Op::Nop), "(p1) nop"),
        ];
        for (inst, expect) in cases {
            assert_eq!(inst.to_string(), expect);
        }
    }
}

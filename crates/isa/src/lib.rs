//! An EPIC-style predicated instruction set, built from scratch as the
//! substrate for the HPCA-9 2003 study *Incorporating Predicate Information
//! into Branch Predictors* (Simon, Calder, Ferrante).
//!
//! The ISA mirrors the properties of IA-64 that the paper's techniques
//! depend on:
//!
//! * **Full predication** — every instruction carries a guard predicate
//!   register ([`PredReg`]); instructions whose guard is false are fetched
//!   but produce no architectural effect.
//! * **Compare-to-predicate instructions** — [`Op::Cmp`] writes a pair of
//!   predicate registers under one of the IA-64 compare types
//!   ([`CmpType`]: `norm`, `unc`, `and`, `or`, `or.andcm`), enabling
//!   if-conversion of arbitrary acyclic control flow.
//! * **Predicate-guarded branches** — a conditional branch is simply
//!   `(qp) br target`: it is taken exactly when its guard predicate is
//!   true. Predicting a branch therefore means predicting the value of its
//!   guard predicate at fetch time, which is what the paper's squash
//!   false-path filter and predicate global-update predictor exploit.
//! * **Region-based branches** — branches that remain inside an
//!   if-converted region are tagged with the region they belong to
//!   ([`Op::Br`] with a region id), matching the paper's definition of a
//!   *region-based branch*.
//!
//! The crate provides the register model, instruction set, a binary
//! encoder/decoder ([`encode`]/[`decode`]), a two-pass text assembler
//! ([`assemble`]) and matching disassembler (the [`std::fmt::Display`]
//! impl on [`Inst`]), and validated [`Program`] containers.
//!
//! # Examples
//!
//! ```
//! use predbranch_isa::assemble;
//!
//! let program = assemble(
//!     r#"
//!         mov r1 = 0
//!         mov r2 = 10
//!     loop:
//!         cmp.lt p1, p2 = r1, r2
//!         (p1) add r1 = r1, 1
//!         (p1) br loop
//!         halt
//!     "#,
//! )?;
//! assert_eq!(program.len(), 6);
//! # Ok::<(), predbranch_isa::AsmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod asm;
mod encode;
mod error;
mod inst;
mod lint;
mod pred;
mod program;
mod reg;

pub use asm::assemble;
pub use encode::{decode, decode_program, encode, encode_program};
pub use error::{AsmError, AsmErrorKind, EncodeError, ProgramError};
pub use inst::{AluOp, Inst, Op, Src};
pub use lint::{lint_program, Lint};
pub use pred::{apply_cmp_type, CmpCond, CmpType};
pub use program::{Program, ProgramStats};
pub use reg::{Gpr, PredReg, NUM_GPRS, NUM_PREDS};

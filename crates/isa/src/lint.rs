//! Static lints for predicated programs.
//!
//! The [`Program`] type enforces hard validity (targets in range, a halt
//! exists); these lints catch the *probably wrong* patterns that are
//! still executable — the checks `pbasm check` reports.

use std::fmt;

use crate::inst::Op;
use crate::program::Program;
use crate::reg::PredReg;

/// One static finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lint {
    /// An instruction is guarded by a predicate no compare in the program
    /// ever writes — the guard is stuck at its reset value (false), so
    /// the instruction can never execute.
    GuardNeverDefined {
        /// Location of the guarded instruction.
        pc: u32,
        /// The undefined guard.
        guard: PredReg,
    },
    /// A compare targets `p0`, whose writes are architecturally ignored.
    WriteToP0 {
        /// Location of the compare.
        pc: u32,
    },
    /// The instruction can never be fetched: no control path from the
    /// entry reaches it.
    Unreachable {
        /// Location of the dead instruction.
        pc: u32,
    },
    /// Execution may run past the last instruction (the final reachable
    /// instruction is neither an unconditional branch nor an
    /// unconditional halt). The simulator stops gracefully but the
    /// program is probably missing a `halt`.
    MayFallOffEnd,
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lint::GuardNeverDefined { pc, guard } => write!(
                f,
                "pc {pc}: guard {guard} is never written by any compare (instruction is dead)"
            ),
            Lint::WriteToP0 { pc } => {
                write!(f, "pc {pc}: compare writes p0, which ignores writes")
            }
            Lint::Unreachable { pc } => write!(f, "pc {pc}: unreachable instruction"),
            Lint::MayFallOffEnd => f.write_str("execution may fall off the end of the program"),
        }
    }
}

/// Runs all lints over a program.
///
/// # Examples
///
/// ```
/// use predbranch_isa::{assemble, lint_program, Lint};
///
/// // p5 is never defined: the guarded add can never execute
/// let p = assemble("(p5) add r1 = r1, 1\n halt").unwrap();
/// let lints = lint_program(&p);
/// assert!(matches!(lints[0], Lint::GuardNeverDefined { pc: 0, .. }));
/// ```
pub fn lint_program(program: &Program) -> Vec<Lint> {
    let mut lints = Vec::new();

    // Which predicates does some compare write?
    let mut written = [false; crate::reg::NUM_PREDS];
    written[0] = true;
    for (pc, inst) in program.iter() {
        if let Op::Cmp {
            p_true, p_false, ..
        } = inst.op
        {
            written[p_true.index() as usize] = true;
            written[p_false.index() as usize] = true;
            if p_true.is_always_true() || p_false.is_always_true() {
                lints.push(Lint::WriteToP0 { pc });
            }
        }
    }
    for (pc, inst) in program.iter() {
        if inst.is_predicated() && !written[inst.guard.index() as usize] {
            lints.push(Lint::GuardNeverDefined {
                pc,
                guard: inst.guard,
            });
        }
    }

    // Reachability from pc 0. Conservative: a guarded halt/branch may
    // fall through; unguarded ones do not.
    let len = program.len();
    let mut reachable = vec![false; len as usize];
    let mut work = vec![0u32];
    let mut may_fall_off = false;
    while let Some(pc) = work.pop() {
        if pc >= len {
            may_fall_off = true;
            continue;
        }
        if std::mem::replace(&mut reachable[pc as usize], true) {
            continue;
        }
        let inst = program.inst(pc).expect("pc is in range");
        let unconditional = inst.guard.is_always_true();
        match inst.op {
            Op::Br { target, .. } => {
                work.push(target);
                if !unconditional {
                    work.push(pc + 1);
                }
            }
            Op::Halt => {
                if !unconditional {
                    work.push(pc + 1);
                }
            }
            _ => work.push(pc + 1),
        }
    }
    for (pc, flag) in reachable.iter().enumerate() {
        if !flag {
            lints.push(Lint::Unreachable { pc: pc as u32 });
        }
    }
    if may_fall_off {
        lints.push(Lint::MayFallOffEnd);
    }
    lints
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn clean_program_has_no_lints() {
        let p = assemble(
            r#"
                mov r1 = 0
            loop:
                cmp.lt p1, p2 = r1, 10
                (p1) add r1 = r1, 1
                (p1) br loop
                halt
            "#,
        )
        .unwrap();
        assert_eq!(lint_program(&p), vec![]);
    }

    #[test]
    fn undefined_guard_detected() {
        let p = assemble("(p9) nop\n halt").unwrap();
        let lints = lint_program(&p);
        assert!(lints.iter().any(|l| matches!(
            l,
            Lint::GuardNeverDefined { pc: 0, guard } if guard.index() == 9
        )));
    }

    #[test]
    fn write_to_p0_detected() {
        let p = assemble("cmp.eq p0, p1 = r1, 0\n halt").unwrap();
        let lints = lint_program(&p);
        assert!(lints.contains(&Lint::WriteToP0 { pc: 0 }));
    }

    #[test]
    fn unreachable_after_unconditional_branch() {
        let p = assemble("br end\n mov r1 = 1\nend: halt").unwrap();
        let lints = lint_program(&p);
        assert!(lints.contains(&Lint::Unreachable { pc: 1 }));
    }

    #[test]
    fn code_after_guarded_branch_is_reachable() {
        let p = assemble("cmp.eq p1, p2 = r0, r0\n (p1) br end\n mov r1 = 1\nend: halt").unwrap();
        let lints = lint_program(&p);
        assert!(!lints.iter().any(|l| matches!(l, Lint::Unreachable { .. })));
    }

    #[test]
    fn fallthrough_end_detected() {
        // jump over the halt to a guarded branch at the end
        let p = assemble("br end\n halt\nend: cmp.eq p1, p2 = r0, r1\n (p2) br @1").unwrap();
        let lints = lint_program(&p);
        assert!(lints.contains(&Lint::MayFallOffEnd));
    }

    #[test]
    fn guarded_final_halt_counts_as_fallthrough_risk() {
        let p = assemble("br end\n halt\nend: cmp.eq p1, p2 = r0, r0\n (p1) halt").unwrap();
        let lints = lint_program(&p);
        assert!(lints.contains(&Lint::MayFallOffEnd));
    }

    #[test]
    fn lints_render() {
        let p = assemble("(p9) nop\n halt").unwrap();
        for lint in lint_program(&p) {
            assert!(!lint.to_string().is_empty());
        }
    }
}

//! Compare conditions and IA-64-style compare types.

use std::fmt;
use std::str::FromStr;

/// The relational condition evaluated by a compare instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpCond {
    /// `src1 == src2`
    Eq,
    /// `src1 != src2`
    Ne,
    /// `src1 < src2` (signed)
    Lt,
    /// `src1 <= src2` (signed)
    Le,
    /// `src1 > src2` (signed)
    Gt,
    /// `src1 >= src2` (signed)
    Ge,
}

impl CmpCond {
    /// All conditions, in encoding order.
    pub const ALL: [CmpCond; 6] = [
        CmpCond::Eq,
        CmpCond::Ne,
        CmpCond::Lt,
        CmpCond::Le,
        CmpCond::Gt,
        CmpCond::Ge,
    ];

    /// Evaluates the condition on two signed values.
    ///
    /// # Examples
    ///
    /// ```
    /// use predbranch_isa::CmpCond;
    ///
    /// assert!(CmpCond::Lt.eval(-1, 0));
    /// assert!(!CmpCond::Gt.eval(-1, 0));
    /// ```
    pub fn eval(&self, src1: i64, src2: i64) -> bool {
        match self {
            CmpCond::Eq => src1 == src2,
            CmpCond::Ne => src1 != src2,
            CmpCond::Lt => src1 < src2,
            CmpCond::Le => src1 <= src2,
            CmpCond::Gt => src1 > src2,
            CmpCond::Ge => src1 >= src2,
        }
    }

    /// The condition testing the opposite outcome (`Lt` ↔ `Ge`, ...).
    pub fn negate(&self) -> CmpCond {
        match self {
            CmpCond::Eq => CmpCond::Ne,
            CmpCond::Ne => CmpCond::Eq,
            CmpCond::Lt => CmpCond::Ge,
            CmpCond::Le => CmpCond::Gt,
            CmpCond::Gt => CmpCond::Le,
            CmpCond::Ge => CmpCond::Lt,
        }
    }

    /// The assembler mnemonic suffix (`eq`, `ne`, `lt`, `le`, `gt`, `ge`).
    pub fn mnemonic(&self) -> &'static str {
        match self {
            CmpCond::Eq => "eq",
            CmpCond::Ne => "ne",
            CmpCond::Lt => "lt",
            CmpCond::Le => "le",
            CmpCond::Gt => "gt",
            CmpCond::Ge => "ge",
        }
    }
}

impl fmt::Display for CmpCond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

impl FromStr for CmpCond {
    type Err = ();

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        CmpCond::ALL
            .into_iter()
            .find(|c| c.mnemonic() == s)
            .ok_or(())
    }
}

/// The IA-64 compare *type*, controlling how the two target predicates are
/// written.
///
/// In the rules below `qp` is the value of the compare's guard predicate
/// and `r` is the relational result; `pt`/`pf` are the two target
/// predicate registers ("true target" / "false target"):
///
/// | type       | `qp == 0`          | `qp == 1`                               |
/// |------------|--------------------|------------------------------------------|
/// | `norm`     | unchanged          | `pt = r; pf = !r`                        |
/// | `unc`      | `pt = 0; pf = 0`   | `pt = r; pf = !r`                        |
/// | `and`      | unchanged          | if `!r` then `pt = 0; pf = 0`            |
/// | `or`       | unchanged          | if `r` then `pt = 1; pf = 1`             |
/// | `or.andcm` | unchanged          | if `r` then `pt = 1; pf = 0`             |
///
/// `and`/`or`/`or.andcm` are *parallel* compare types: if-converted code
/// uses them to accumulate compound conditions across several compares
/// without intermediate branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpType {
    /// Normal two-target write.
    Norm,
    /// Unconditional: clears both targets when the guard is false.
    Unc,
    /// Parallel AND accumulation.
    And,
    /// Parallel OR accumulation.
    Or,
    /// Parallel OR / AND-complement accumulation.
    OrAndcm,
}

impl CmpType {
    /// All compare types, in encoding order.
    pub const ALL: [CmpType; 5] = [
        CmpType::Norm,
        CmpType::Unc,
        CmpType::And,
        CmpType::Or,
        CmpType::OrAndcm,
    ];

    /// The assembler mnemonic suffix; `norm` renders as the empty string
    /// because it is the default.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            CmpType::Norm => "",
            CmpType::Unc => "unc",
            CmpType::And => "and",
            CmpType::Or => "or",
            CmpType::OrAndcm => "or.andcm",
        }
    }

    /// Whether this type writes its targets even when the guard is false
    /// (only `unc` does).
    pub fn writes_when_guard_false(&self) -> bool {
        matches!(self, CmpType::Unc)
    }
}

impl fmt::Display for CmpType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

impl FromStr for CmpType {
    type Err = ();

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "" | "norm" => Ok(CmpType::Norm),
            "unc" => Ok(CmpType::Unc),
            "and" => Ok(CmpType::And),
            "or" => Ok(CmpType::Or),
            "or.andcm" => Ok(CmpType::OrAndcm),
            _ => Err(()),
        }
    }
}

/// Applies a compare type's predicate-write rule.
///
/// Given the guard value `qp`, the relational result `result`, and the old
/// values of the two target predicates, returns the new
/// `(p_true, p_false)` pair. This pure function is the single source of
/// truth for compare semantics, shared by the functional simulator and the
/// if-converter's correctness tests.
///
/// # Examples
///
/// ```
/// use predbranch_isa::{apply_cmp_type, CmpType};
///
/// // norm under a false guard leaves the targets alone
/// assert_eq!(apply_cmp_type(CmpType::Norm, false, true, (true, true)), (true, true));
/// // unc under a false guard clears both
/// assert_eq!(apply_cmp_type(CmpType::Unc, false, true, (true, true)), (false, false));
/// ```
pub fn apply_cmp_type(ctype: CmpType, qp: bool, result: bool, old: (bool, bool)) -> (bool, bool) {
    match ctype {
        CmpType::Norm => {
            if qp {
                (result, !result)
            } else {
                old
            }
        }
        CmpType::Unc => {
            if qp {
                (result, !result)
            } else {
                (false, false)
            }
        }
        CmpType::And => {
            if qp && !result {
                (false, false)
            } else {
                old
            }
        }
        CmpType::Or => {
            if qp && result {
                (true, true)
            } else {
                old
            }
        }
        CmpType::OrAndcm => {
            if qp && result {
                (true, false)
            } else {
                old
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_eval_covers_all_relations() {
        assert!(CmpCond::Eq.eval(3, 3));
        assert!(!CmpCond::Eq.eval(3, 4));
        assert!(CmpCond::Ne.eval(3, 4));
        assert!(CmpCond::Lt.eval(-5, -4));
        assert!(CmpCond::Le.eval(4, 4));
        assert!(CmpCond::Gt.eval(5, 4));
        assert!(CmpCond::Ge.eval(4, 4));
        assert!(!CmpCond::Ge.eval(3, 4));
    }

    #[test]
    fn cond_negation_is_logical_complement() {
        for cond in CmpCond::ALL {
            for (a, b) in [(0i64, 0i64), (1, 2), (2, 1), (-3, 3)] {
                assert_eq!(
                    cond.eval(a, b),
                    !cond.negate().eval(a, b),
                    "{cond:?} vs its negation on ({a},{b})"
                );
            }
        }
    }

    #[test]
    fn cond_negation_is_involutive() {
        for cond in CmpCond::ALL {
            assert_eq!(cond.negate().negate(), cond);
        }
    }

    #[test]
    fn cond_parses_its_own_mnemonic() {
        for cond in CmpCond::ALL {
            assert_eq!(cond.mnemonic().parse::<CmpCond>(), Ok(cond));
        }
        assert!("zz".parse::<CmpCond>().is_err());
    }

    #[test]
    fn ctype_parses_its_own_mnemonic() {
        for ctype in CmpType::ALL {
            assert_eq!(ctype.mnemonic().parse::<CmpType>(), Ok(ctype));
        }
        assert_eq!("norm".parse::<CmpType>(), Ok(CmpType::Norm));
        assert!("nand".parse::<CmpType>().is_err());
    }

    #[test]
    fn norm_writes_complementary_pair_under_true_guard() {
        assert_eq!(
            apply_cmp_type(CmpType::Norm, true, true, (false, false)),
            (true, false)
        );
        assert_eq!(
            apply_cmp_type(CmpType::Norm, true, false, (true, true)),
            (false, true)
        );
    }

    #[test]
    fn norm_leaves_targets_under_false_guard() {
        for old in [(false, false), (true, false), (false, true), (true, true)] {
            assert_eq!(apply_cmp_type(CmpType::Norm, false, true, old), old);
        }
    }

    #[test]
    fn unc_clears_both_targets_under_false_guard() {
        for result in [false, true] {
            assert_eq!(
                apply_cmp_type(CmpType::Unc, false, result, (true, true)),
                (false, false)
            );
        }
    }

    #[test]
    fn and_type_only_clears_on_false_result() {
        assert_eq!(
            apply_cmp_type(CmpType::And, true, false, (true, true)),
            (false, false)
        );
        assert_eq!(
            apply_cmp_type(CmpType::And, true, true, (true, false)),
            (true, false)
        );
        assert_eq!(
            apply_cmp_type(CmpType::And, false, false, (true, true)),
            (true, true)
        );
    }

    #[test]
    fn or_type_only_sets_on_true_result() {
        assert_eq!(
            apply_cmp_type(CmpType::Or, true, true, (false, false)),
            (true, true)
        );
        assert_eq!(
            apply_cmp_type(CmpType::Or, true, false, (false, true)),
            (false, true)
        );
        assert_eq!(
            apply_cmp_type(CmpType::Or, false, true, (false, false)),
            (false, false)
        );
    }

    #[test]
    fn or_andcm_sets_true_clears_false_target() {
        assert_eq!(
            apply_cmp_type(CmpType::OrAndcm, true, true, (false, true)),
            (true, false)
        );
        assert_eq!(
            apply_cmp_type(CmpType::OrAndcm, true, false, (true, true)),
            (true, true)
        );
    }

    #[test]
    fn only_unc_writes_under_false_guard() {
        for ctype in CmpType::ALL {
            assert_eq!(
                ctype.writes_when_guard_false(),
                matches!(ctype, CmpType::Unc)
            );
        }
    }

    #[test]
    fn parallel_or_accumulates_disjunction() {
        // p = (a > 0) || (b > 0) || (c > 0), built the way if-converted
        // code builds it: initialize false, then or-compares in any order.
        for a in [-1i64, 1] {
            for b in [-1i64, 1] {
                for c in [-1i64, 1] {
                    let mut p = (false, false);
                    for v in [a, b, c] {
                        p = apply_cmp_type(CmpType::Or, true, CmpCond::Gt.eval(v, 0), p);
                    }
                    assert_eq!(p.0, a > 0 || b > 0 || c > 0);
                }
            }
        }
    }

    #[test]
    fn parallel_and_accumulates_conjunction() {
        for a in [-1i64, 1] {
            for b in [-1i64, 1] {
                let mut p = (true, true);
                for v in [a, b] {
                    p = apply_cmp_type(CmpType::And, true, CmpCond::Gt.eval(v, 0), p);
                }
                assert_eq!(p.0, a > 0 && b > 0);
            }
        }
    }
}

//! Validated instruction containers.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::ProgramError;
use crate::inst::{Inst, Op};

/// Static (pre-execution) instruction-mix statistics for a [`Program`].
///
/// These are the numbers workload-characterization tables report per
/// benchmark before any simulation happens.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProgramStats {
    /// Total instructions.
    pub instructions: u32,
    /// All branches (conditional and unconditional).
    pub branches: u32,
    /// Branches with a non-`p0` guard.
    pub conditional_branches: u32,
    /// Branches tagged as region-based.
    pub region_branches: u32,
    /// Compare-to-predicate instructions.
    pub compares: u32,
    /// Instructions guarded by a real (non-`p0`) predicate.
    pub predicated: u32,
}

/// A validated sequence of instructions plus label metadata.
///
/// Execution starts at instruction index 0. Construction via
/// [`Program::new`] validates that the program is non-empty, every branch
/// target is in range, and a `halt` exists — so the simulator can index
/// unconditionally.
///
/// # Examples
///
/// ```
/// use predbranch_isa::{Inst, Op, Program};
///
/// let program = Program::new(vec![
///     Inst::new(Op::Nop),
///     Inst::new(Op::Halt),
/// ])?;
/// assert_eq!(program.len(), 2);
/// assert!(program.inst(1).unwrap().op == Op::Halt);
/// # Ok::<(), predbranch_isa::ProgramError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    insts: Vec<Inst>,
    labels: BTreeMap<String, u32>,
}

impl Program {
    /// Creates a validated program.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError`] if the program is empty, a branch target
    /// is out of range, or no `halt` instruction exists.
    pub fn new(insts: Vec<Inst>) -> Result<Self, ProgramError> {
        Self::with_labels(insts, BTreeMap::new())
    }

    /// Creates a validated program carrying label names (for diagnostics
    /// and disassembly).
    ///
    /// # Errors
    ///
    /// Same validation as [`Program::new`].
    pub fn with_labels(
        insts: Vec<Inst>,
        labels: BTreeMap<String, u32>,
    ) -> Result<Self, ProgramError> {
        if insts.is_empty() {
            return Err(ProgramError::Empty);
        }
        let len = insts.len() as u32;
        let mut has_halt = false;
        for (pc, inst) in insts.iter().enumerate() {
            match inst.op {
                Op::Br { target, .. } if target >= len => {
                    return Err(ProgramError::BranchOutOfRange {
                        pc: pc as u32,
                        target,
                        len,
                    });
                }
                Op::Halt => has_halt = true,
                _ => {}
            }
        }
        if !has_halt {
            return Err(ProgramError::NoHalt);
        }
        Ok(Program { insts, labels })
    }

    /// Number of instructions.
    #[allow(clippy::len_without_is_empty)] // validated programs are never empty
    pub fn len(&self) -> u32 {
        self.insts.len() as u32
    }

    /// The instruction at `pc`, if in range.
    pub fn inst(&self, pc: u32) -> Option<&Inst> {
        self.insts.get(pc as usize)
    }

    /// Iterates over `(pc, instruction)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &Inst)> {
        self.insts.iter().enumerate().map(|(pc, i)| (pc as u32, i))
    }

    /// The label defined at `pc`, if any.
    pub fn label_at(&self, pc: u32) -> Option<&str> {
        self.labels
            .iter()
            .find(|(_, &at)| at == pc)
            .map(|(name, _)| name.as_str())
    }

    /// The pc a label points to, if defined.
    pub fn resolve_label(&self, name: &str) -> Option<u32> {
        self.labels.get(name).copied()
    }

    /// The raw instruction slice.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Computes static instruction-mix statistics.
    pub fn stats(&self) -> ProgramStats {
        let mut s = ProgramStats {
            instructions: self.len(),
            ..ProgramStats::default()
        };
        for inst in &self.insts {
            if inst.is_branch() {
                s.branches += 1;
                if inst.is_conditional_branch() {
                    s.conditional_branches += 1;
                }
                if inst.is_region_branch() {
                    s.region_branches += 1;
                }
            }
            if inst.is_cmp() {
                s.compares += 1;
            }
            if inst.is_predicated() {
                s.predicated += 1;
            }
        }
        s
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (pc, inst) in self.iter() {
            if let Some(label) = self.label_at(pc) {
                writeln!(f, "{label}:")?;
            }
            writeln!(f, "    {inst}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{AluOp, Src};
    use crate::reg::{Gpr, PredReg};

    fn halt() -> Inst {
        Inst::new(Op::Halt)
    }

    #[test]
    fn empty_program_rejected() {
        assert_eq!(Program::new(vec![]), Err(ProgramError::Empty));
    }

    #[test]
    fn missing_halt_rejected() {
        assert_eq!(
            Program::new(vec![Inst::new(Op::Nop)]),
            Err(ProgramError::NoHalt)
        );
    }

    #[test]
    fn branch_out_of_range_rejected() {
        let err = Program::new(vec![
            Inst::new(Op::Br {
                target: 5,
                region: None,
            }),
            halt(),
        ])
        .unwrap_err();
        assert_eq!(
            err,
            ProgramError::BranchOutOfRange {
                pc: 0,
                target: 5,
                len: 2
            }
        );
    }

    #[test]
    fn branch_to_last_instruction_allowed() {
        let p = Program::new(vec![
            Inst::new(Op::Br {
                target: 1,
                region: None,
            }),
            halt(),
        ])
        .unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn labels_resolve_both_ways() {
        let mut labels = BTreeMap::new();
        labels.insert("start".to_string(), 0u32);
        labels.insert("end".to_string(), 1u32);
        let p = Program::with_labels(vec![Inst::new(Op::Nop), halt()], labels).unwrap();
        assert_eq!(p.resolve_label("start"), Some(0));
        assert_eq!(p.resolve_label("missing"), None);
        assert_eq!(p.label_at(1), Some("end"));
        assert_eq!(p.label_at(0), Some("start"));
    }

    #[test]
    fn stats_count_instruction_classes() {
        let p1 = PredReg::new(1).unwrap();
        let p = Program::new(vec![
            Inst::new(Op::Cmp {
                ctype: crate::CmpType::Norm,
                cond: crate::CmpCond::Lt,
                p_true: p1,
                p_false: PredReg::new(2).unwrap(),
                src1: Gpr::new(1).unwrap(),
                src2: Src::Imm(0),
            }),
            Inst::guarded(
                p1,
                Op::Alu {
                    op: AluOp::Add,
                    dst: Gpr::new(2).unwrap(),
                    src1: Gpr::new(2).unwrap(),
                    src2: Src::Imm(1),
                },
            ),
            Inst::guarded(
                p1,
                Op::Br {
                    target: 0,
                    region: Some(3),
                },
            ),
            Inst::new(Op::Br {
                target: 4,
                region: None,
            }),
            halt(),
        ])
        .unwrap();
        let s = p.stats();
        assert_eq!(s.instructions, 5);
        assert_eq!(s.branches, 2);
        assert_eq!(s.conditional_branches, 1);
        assert_eq!(s.region_branches, 1);
        assert_eq!(s.compares, 1);
        assert_eq!(s.predicated, 2);
    }

    #[test]
    fn iter_yields_pcs_in_order() {
        let p = Program::new(vec![Inst::new(Op::Nop), halt()]).unwrap();
        let pcs: Vec<u32> = p.iter().map(|(pc, _)| pc).collect();
        assert_eq!(pcs, vec![0, 1]);
    }

    #[test]
    fn display_includes_labels_and_insts() {
        let mut labels = BTreeMap::new();
        labels.insert("top".to_string(), 0u32);
        let p = Program::with_labels(vec![Inst::new(Op::Nop), halt()], labels).unwrap();
        let text = p.to_string();
        assert!(text.contains("top:"));
        assert!(text.contains("nop"));
        assert!(text.contains("halt"));
    }
}

//! Architectural register names.

use std::fmt;

/// Number of general-purpose registers (`r0`–`r63`); `r0` reads as zero.
pub const NUM_GPRS: usize = 64;

/// Number of predicate registers (`p0`–`p63`); `p0` reads as true.
pub const NUM_PREDS: usize = 64;

/// A general-purpose register name (`r0`–`r63`).
///
/// `r0` is hardwired to zero: writes to it are architecturally ignored.
///
/// # Examples
///
/// ```
/// use predbranch_isa::Gpr;
///
/// let r = Gpr::new(5).unwrap();
/// assert_eq!(r.index(), 5);
/// assert_eq!(r.to_string(), "r5");
/// assert!(Gpr::new(64).is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Gpr(u8);

impl Gpr {
    /// The hardwired-zero register `r0`.
    pub const ZERO: Gpr = Gpr(0);

    /// Creates a register name, or `None` if `index >= 64`.
    pub fn new(index: u8) -> Option<Self> {
        if (index as usize) < NUM_GPRS {
            Some(Gpr(index))
        } else {
            None
        }
    }

    /// The register index in `0..64`.
    pub fn index(&self) -> u8 {
        self.0
    }

    /// Whether this is the hardwired-zero register.
    pub fn is_zero(&self) -> bool {
        self.0 == 0
    }
}

impl Default for Gpr {
    fn default() -> Self {
        Gpr::ZERO
    }
}

impl fmt::Display for Gpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A predicate register name (`p0`–`p63`).
///
/// `p0` is hardwired to true: it is the guard of nominally unguarded
/// instructions, and writes to it are architecturally ignored. A
/// conditional branch guarded by `p0` is an unconditional branch.
///
/// # Examples
///
/// ```
/// use predbranch_isa::PredReg;
///
/// let p = PredReg::new(3).unwrap();
/// assert_eq!(p.to_string(), "p3");
/// assert!(PredReg::TRUE.is_always_true());
/// assert!(!p.is_always_true());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PredReg(u8);

impl PredReg {
    /// The hardwired-true predicate `p0`.
    pub const TRUE: PredReg = PredReg(0);

    /// Creates a predicate register name, or `None` if `index >= 64`.
    pub fn new(index: u8) -> Option<Self> {
        if (index as usize) < NUM_PREDS {
            Some(PredReg(index))
        } else {
            None
        }
    }

    /// The register index in `0..64`.
    pub fn index(&self) -> u8 {
        self.0
    }

    /// Whether this is the hardwired-true predicate `p0`.
    pub fn is_always_true(&self) -> bool {
        self.0 == 0
    }
}

impl Default for PredReg {
    fn default() -> Self {
        PredReg::TRUE
    }
}

impl fmt::Display for PredReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpr_bounds() {
        assert!(Gpr::new(0).is_some());
        assert!(Gpr::new(63).is_some());
        assert!(Gpr::new(64).is_none());
        assert!(Gpr::new(255).is_none());
    }

    #[test]
    fn gpr_zero_register() {
        assert!(Gpr::ZERO.is_zero());
        assert!(!Gpr::new(1).unwrap().is_zero());
        assert_eq!(Gpr::default(), Gpr::ZERO);
    }

    #[test]
    fn pred_bounds() {
        assert!(PredReg::new(0).is_some());
        assert!(PredReg::new(63).is_some());
        assert!(PredReg::new(64).is_none());
    }

    #[test]
    fn pred_true_register() {
        assert!(PredReg::TRUE.is_always_true());
        assert!(!PredReg::new(7).unwrap().is_always_true());
        assert_eq!(PredReg::default(), PredReg::TRUE);
    }

    #[test]
    fn display_names() {
        assert_eq!(Gpr::new(42).unwrap().to_string(), "r42");
        assert_eq!(PredReg::new(9).unwrap().to_string(), "p9");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(Gpr::new(3).unwrap() < Gpr::new(4).unwrap());
        assert!(PredReg::new(10).unwrap() > PredReg::TRUE);
    }
}

//! End-to-end tests of the `pbasm` binary.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn scratch(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("predbranch-test-{}-{name}", std::process::id()));
    p
}

const PROGRAM: &str = "    mov r1 = 0\nloop:\n    cmp.lt p1, p2 = r1, 5\n    (p1) add r1 = r1, 1\n    (p1) br.region 0, loop\n    halt\n";

#[test]
fn asm_disasm_roundtrip_through_the_binary() {
    let src = scratch("roundtrip.s");
    fs::write(&src, PROGRAM).unwrap();

    let asm = Command::new(env!("CARGO_BIN_EXE_pbasm"))
        .args(["asm", src.to_str().unwrap()])
        .output()
        .expect("pbasm runs");
    assert!(
        asm.status.success(),
        "{}",
        String::from_utf8_lossy(&asm.stderr)
    );
    let hex = String::from_utf8(asm.stdout).unwrap();
    assert_eq!(hex.lines().count(), 5);

    let hex_path = scratch("roundtrip.hex");
    fs::write(&hex_path, &hex).unwrap();
    let disasm = Command::new(env!("CARGO_BIN_EXE_pbasm"))
        .args(["disasm", hex_path.to_str().unwrap()])
        .output()
        .expect("pbasm runs");
    assert!(disasm.status.success());
    let text = String::from_utf8(disasm.stdout).unwrap();
    assert!(text.contains("cmp.lt p1, p2 = r1, 5"), "{text}");
    assert!(text.contains("br.region 0, @1"), "{text}");

    fs::remove_file(src).ok();
    fs::remove_file(hex_path).ok();
}

#[test]
fn check_reports_stats_and_lints() {
    let src = scratch("check.s");
    fs::write(&src, "(p9) nop\n halt\n").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_pbasm"))
        .args(["check", src.to_str().unwrap()])
        .output()
        .expect("pbasm runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("instructions:         2"), "{text}");
    assert!(text.contains("lint: pc 0: guard p9"), "{text}");
    fs::remove_file(src).ok();
}

#[test]
fn bad_input_fails_with_diagnostic() {
    let src = scratch("bad.s");
    fs::write(&src, "frobnicate r1\n").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_pbasm"))
        .args(["asm", src.to_str().unwrap()])
        .output()
        .expect("pbasm runs");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown mnemonic"), "{err}");
    fs::remove_file(src).ok();
}

#[test]
fn missing_file_and_bad_mode_fail() {
    let out = Command::new(env!("CARGO_BIN_EXE_pbasm"))
        .args(["asm", "/nonexistent/path.s"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let out = Command::new(env!("CARGO_BIN_EXE_pbasm")).output().unwrap();
    assert!(!out.status.success());
}

//! Fuzz-style robustness tests: the assembler must reject garbage with
//! an error (never panic), and accepted programs must be well-formed.

use proptest::prelude::*;

use predbranch_isa::assemble;

fn arb_token() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("mov".to_string()),
        Just("add".to_string()),
        Just("cmp.lt".to_string()),
        Just("cmp.lt.unc".to_string()),
        Just("br".to_string()),
        Just("br.region".to_string()),
        Just("ld".to_string()),
        Just("st".to_string()),
        Just("halt".to_string()),
        Just("nop".to_string()),
        Just("=".to_string()),
        Just(",".to_string()),
        Just("[".to_string()),
        Just("]".to_string()),
        Just("(".to_string()),
        Just(")".to_string()),
        Just("+".to_string()),
        Just(":".to_string()),
        (0u8..70).prop_map(|i| format!("r{i}")),
        (0u8..70).prop_map(|i| format!("p{i}")),
        (-70000i64..70000).prop_map(|i| i.to_string()),
        "[a-z]{1,6}",
    ]
}

fn arb_line() -> impl Strategy<Value = String> {
    prop::collection::vec(arb_token(), 0..8).prop_map(|tokens| tokens.join(" "))
}

proptest! {
    /// Assembling any token soup returns Ok or Err — never panics.
    #[test]
    fn assembler_is_total_on_token_soup(lines in prop::collection::vec(arb_line(), 0..12)) {
        let source = lines.join("\n");
        let _ = assemble(&source);
    }

    /// Assembling arbitrary bytes-as-text never panics either.
    #[test]
    fn assembler_is_total_on_arbitrary_text(source in ".{0,200}") {
        let _ = assemble(&source);
    }

    /// Accepted programs satisfy the `Program` invariants: in-range
    /// branch targets and at least one halt.
    #[test]
    fn accepted_programs_are_valid(lines in prop::collection::vec(arb_line(), 0..12)) {
        let source = lines.join("\n") + "\nhalt";
        if let Ok(program) = assemble(&source) {
            let len = program.len();
            prop_assert!(len > 0);
            let mut has_halt = false;
            for (_, inst) in program.iter() {
                if let predbranch_isa::Op::Br { target, .. } = inst.op {
                    prop_assert!(target < len);
                }
                if inst.op == predbranch_isa::Op::Halt {
                    has_halt = true;
                }
            }
            prop_assert!(has_halt);
        }
    }

    /// Error messages always render (Display is total) and carry a
    /// plausible line number.
    #[test]
    fn errors_render_with_line_numbers(lines in prop::collection::vec(arb_line(), 1..12)) {
        let source = lines.join("\n");
        if let Err(e) = assemble(&source) {
            let text = e.to_string();
            prop_assert!(!text.is_empty());
            prop_assert!(e.line as usize <= lines.len() + 1);
        }
    }
}

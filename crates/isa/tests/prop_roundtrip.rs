//! Property tests: binary encode/decode and assemble/disassemble are
//! exact inverses over the whole instruction space.

use proptest::prelude::*;

use predbranch_isa::{
    assemble, decode, encode, AluOp, CmpCond, CmpType, Gpr, Inst, Op, PredReg, Program, Src,
};

fn arb_gpr() -> impl Strategy<Value = Gpr> {
    (0u8..64).prop_map(|i| Gpr::new(i).unwrap())
}

fn arb_pred() -> impl Strategy<Value = PredReg> {
    (0u8..64).prop_map(|i| PredReg::new(i).unwrap())
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    prop::sample::select(AluOp::ALL.to_vec())
}

fn arb_cmp_cond() -> impl Strategy<Value = CmpCond> {
    prop::sample::select(CmpCond::ALL.to_vec())
}

fn arb_cmp_type() -> impl Strategy<Value = CmpType> {
    prop::sample::select(CmpType::ALL.to_vec())
}

fn arb_src() -> impl Strategy<Value = Src> {
    prop_oneof![
        arb_gpr().prop_map(Src::Reg),
        any::<i32>().prop_map(Src::Imm),
    ]
}

/// Compare immediates must fit 16 bits to be encodable.
fn arb_cmp_src() -> impl Strategy<Value = Src> {
    prop_oneof![
        arb_gpr().prop_map(Src::Reg),
        (i16::MIN..=i16::MAX).prop_map(|i| Src::Imm(i as i32)),
    ]
}

fn arb_op(max_target: u32) -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Nop),
        Just(Op::Halt),
        (0..max_target, prop::option::of(any::<u16>()))
            .prop_map(|(target, region)| Op::Br { target, region }),
        (arb_gpr(), arb_src()).prop_map(|(dst, src)| Op::Mov { dst, src }),
        (arb_gpr(), arb_gpr(), any::<i32>()).prop_map(|(dst, base, offset)| Op::Load {
            dst,
            base,
            offset
        }),
        (arb_gpr(), arb_gpr(), any::<i32>()).prop_map(|(src, base, offset)| Op::Store {
            src,
            base,
            offset
        }),
        (arb_alu_op(), arb_gpr(), arb_gpr(), arb_src()).prop_map(|(op, dst, src1, src2)| Op::Alu {
            op,
            dst,
            src1,
            src2
        }),
        (
            arb_cmp_type(),
            arb_cmp_cond(),
            arb_pred(),
            arb_pred(),
            arb_gpr(),
            arb_cmp_src()
        )
            .prop_map(|(ctype, cond, p_true, p_false, src1, src2)| Op::Cmp {
                ctype,
                cond,
                p_true,
                p_false,
                src1,
                src2,
            }),
    ]
}

fn arb_inst(max_target: u32) -> impl Strategy<Value = Inst> {
    (arb_pred(), arb_op(max_target)).prop_map(|(guard, op)| Inst { guard, op })
}

/// A random valid program: arbitrary instructions with in-range branch
/// targets, terminated by `halt`.
fn arb_program() -> impl Strategy<Value = Program> {
    (1usize..40)
        .prop_flat_map(|len| {
            let max_target = len as u32 + 1;
            prop::collection::vec(arb_inst(max_target), len)
        })
        .prop_map(|mut insts| {
            insts.push(Inst::new(Op::Halt));
            Program::new(insts).expect("constructed program is valid")
        })
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(inst in arb_inst(u32::MAX)) {
        let word = encode(&inst).expect("generator only builds encodable instructions");
        let back = decode(word).expect("encoded words decode");
        prop_assert_eq!(back, inst);
    }

    #[test]
    fn decode_never_panics(word in any::<u64>()) {
        let _ = decode(word);
    }

    #[test]
    fn decoded_words_reencode_to_same_instruction(word in any::<u64>()) {
        if let Ok(inst) = decode(word) {
            // Decoding may discard junk bits; the canonical re-encoding
            // must decode to the same instruction (idempotence).
            let canon = encode(&inst).expect("decoded instructions are encodable");
            prop_assert_eq!(decode(canon).unwrap(), inst);
        }
    }

    #[test]
    fn disassemble_reassemble_roundtrip(program in arb_program()) {
        let text = program.to_string();
        let back = assemble(&text).expect("disassembly reassembles");
        prop_assert_eq!(back.insts(), program.insts());
    }

    #[test]
    fn stats_are_consistent(program in arb_program()) {
        let s = program.stats();
        prop_assert_eq!(s.instructions, program.len());
        prop_assert!(s.conditional_branches <= s.branches);
        prop_assert!(s.region_branches <= s.branches);
        prop_assert!(s.branches <= s.instructions);
        prop_assert!(s.predicated <= s.instructions);
    }
}

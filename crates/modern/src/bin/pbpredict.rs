//! `pbpredict` — run a predbranch assembly program under a chosen
//! predictor and report prediction metrics.
//!
//! ```text
//! pbpredict <file.s> [--predictor SPEC] [--latency L] [--retire-latency R] [--max N]
//! pbpredict --list-stacks
//!
//! SPEC examples:  gshare:13/13          bimodal:14
//!                 gshare:13/13+sfpf     gshare:13/13+pgu8
//!                 perceptron:7/14+sfpf+pgu8    oracle
//!                 tage:8/12/128         ptage:8/12/128+sfpf
//!                 mpp:13+pgu8           pmpp:13+sfpf+pgu8
//! ```

use std::fs;
use std::process::ExitCode;

use predbranch_core::{BranchPredictor, HarnessConfig, InsertFilter, PredictionHarness, Timing};
use predbranch_isa::assemble;
use predbranch_modern::{all_stack_variants, build_modern_stack, ModernSpec};
use predbranch_sim::{Executor, Memory, PipelineConfig, DEFAULT_RETIRE_LATENCY};

struct Options {
    path: String,
    spec: String,
    latency: u64,
    retire_latency: u64,
    max: u64,
    list_stacks: bool,
}

fn parse_args() -> Option<Options> {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        path: String::new(),
        spec: "gshare:13/13".to_string(),
        latency: 8,
        retire_latency: DEFAULT_RETIRE_LATENCY,
        max: 10_000_000,
        list_stacks: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--predictor" => opts.spec = args.next()?,
            "--latency" => opts.latency = args.next()?.parse().ok()?,
            "--retire-latency" => opts.retire_latency = args.next()?.parse().ok()?,
            "--max" => opts.max = args.next()?.parse().ok()?,
            "--list-stacks" => opts.list_stacks = true,
            path if opts.path.is_empty() && !path.starts_with('-') => {
                opts.path = path.to_string();
            }
            _ => return None,
        }
    }
    if opts.path.is_empty() && !opts.list_stacks {
        None
    } else {
        Some(opts)
    }
}

/// Prints every statically-dispatched stack variant. The table is
/// emitted by the stack-generating macros from the same token stream as
/// the dispatch enums, so this listing cannot drift from the code (the
/// CLI integration test diffs it against the library table).
fn list_stacks() {
    println!("available predictor stacks (variant  payload type):");
    for variant in all_stack_variants() {
        println!("  {:<20} {}", variant.name, variant.type_name());
    }
}

fn main() -> ExitCode {
    let Some(opts) = parse_args() else {
        eprintln!(
            "usage: pbpredict <file.s> [--predictor SPEC] [--latency L] [--retire-latency R] [--max N]\n       pbpredict --list-stacks"
        );
        return ExitCode::FAILURE;
    };
    if opts.list_stacks {
        list_stacks();
        return ExitCode::SUCCESS;
    }
    let text = match fs::read_to_string(&opts.path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("pbpredict: cannot read {}: {e}", opts.path);
            return ExitCode::FAILURE;
        }
    };
    let program = match assemble(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("pbpredict: {}: {e}", opts.path);
            return ExitCode::FAILURE;
        }
    };
    let spec: ModernSpec = match opts.spec.parse() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pbpredict: {e}");
            return ExitCode::FAILURE;
        }
    };

    let predictor = build_modern_stack(&spec);
    println!("predictor:        {}", predictor.name());
    println!("storage bits:     {}", predictor.storage_bits());
    let mut harness = PredictionHarness::new(
        predictor,
        HarnessConfig {
            timing: Timing::new(opts.latency, opts.retire_latency),
            insert: InsertFilter::All,
        },
    )
    .with_timeline(PipelineConfig::default());
    let summary = Executor::new(&program, Memory::new()).run(&mut harness, opts.max);
    harness.finish();

    let m = harness.metrics();
    println!("halted:           {}", summary.halted);
    println!("instructions:     {}", summary.instructions);
    println!("cond branches:    {}", m.all.branches);
    println!("mispredictions:   {}", m.all.mispredictions);
    println!("misp rate:        {}", m.all.misp_rate());
    println!("  region:         {}", m.region.misp_rate());
    println!("  non-region:     {}", m.non_region.misp_rate());
    println!("MPKI:             {:.3}", m.mpki(summary.instructions));
    println!("kf-guard fetches: {}", m.known_false_guard);
    if let Some(timeline) = harness.timeline() {
        println!("cycles:           {}", timeline.cycles());
        println!("IPC:              {:.3}", timeline.ipc());
    }
    if summary.halted {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

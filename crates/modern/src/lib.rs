//! Modern predictor tier for the predicate-branch study: TAGE and a
//! multiperspective perceptron, with predicate-aware variants.
//!
//! The paper's two techniques — the squash false-path filter (SFPF) and
//! predicate global update (PGU) — were evaluated against circa-2003
//! baselines (gshare, local, tournament). This crate asks whether the
//! paper's conclusion survives modern baselines by implementing two
//! predictors from the decade after it as first-class citizens of the
//! same four-phase speculate/commit/squash lifecycle:
//!
//! * [`Tage`] — tagged geometric-history tables over a >64-bit global
//!   history, with folded-history indexing, usefulness counters,
//!   provider/altpred selection, and allocate-on-mispredict.
//! * [`Mpp`] — a multiperspective perceptron that sums small weights
//!   read through several *feature views* (global-history slices, path
//!   history, per-PC local history, bias) and trains with an adaptive
//!   threshold.
//!
//! Each has a predicate-aware variant (`ptage` / `pmpp`) that adds a
//! dedicated *predicate-history* feature — a register of recently
//! resolved predicate-definition outcomes ([`PredicateHistory`]) hashed
//! into the TAGE index or read as an extra perceptron view. That is the
//! paper's PGU idea expressed natively instead of by splicing bits into
//! the branch-outcome history; the classic PGU and SFPF wrappers also
//! compose around both predictors via [`predbranch_core::Pgu`] (through
//! [`predbranch_core::HistoryInsert`]) and
//! [`predbranch_core::SquashFilter`].
//!
//! [`ModernSpec`] is a strict superset of
//! [`predbranch_core::PredictorSpec`]: every classic spec string parses
//! to a transparent [`ModernSpec::Classic`], and `tage:T/I/H`,
//! `ptage:T/I/H`, `mpp:I`, `pmpp:I` join the base vocabulary with the
//! same `+sfpf` / `+pguN` modifier syntax. [`ModernStack`] extends the
//! statically-dispatched stack the same way.
//!
//! # Examples
//!
//! ```
//! use predbranch_core::BranchPredictor;
//! use predbranch_modern::{build_modern, ModernSpec};
//!
//! let spec: ModernSpec = "tage:4/10/64+sfpf".parse().unwrap();
//! assert_eq!(build_modern(&spec).name(), "sfpf+tage-4/10/64");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod mpp;
mod predhist;
mod spec;
mod stack;
mod tage;

pub use mpp::Mpp;
pub use predhist::{PredicateHistory, PREDICATE_HISTORY_BITS};
pub use spec::{build_modern, ModernSpec, ParseModernSpecError};
pub use stack::{all_stack_variants, build_modern_bank, build_modern_stack, ModernStack};
pub use tage::{Tage, MAX_TAGE_TABLES};

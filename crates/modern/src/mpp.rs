//! A multiperspective perceptron predictor.

use predbranch_core::{BranchInfo, BranchPredictor, Checkpoints, GlobalHistory, HistoryInsert};
use predbranch_sim::{PredWriteEvent, PredicateScoreboard};

use crate::predhist::PredicateHistory;

/// Maximum number of feature views (7 baseline + the predicate view).
const MAX_VIEWS: usize = 8;

/// Index bits of the per-PC local-history table.
const LOCAL_TABLE_BITS: u32 = 10;

/// Bits of local history kept per PC.
const LOCAL_HISTORY_BITS: u32 = 10;

/// Weight saturation bound (6-bit signed weights).
const WEIGHT_MAX: i8 = 31;

/// How many of the newest predicate outcomes the predicate view hashes.
const PRED_VIEW_OUTCOMES: u32 = 8;

/// Adaptive-threshold training-counter saturation (Seznec's O-GEHL
/// style dynamic threshold fitting).
const THRESHOLD_COUNTER_MAX: i32 = 64;

/// Delay (in fetch slots) before a predicate definition becomes
/// visible, matching the commit-time PGU timing of the experiments.
const PRED_DELAY: u64 = 8;

/// One way of looking at a branch's context — each view contributes an
/// independently indexed weight to the prediction sum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum View {
    /// Per-PC bias weight.
    Bias,
    /// A slice `lo..hi` (in outcomes-ago) of the global history.
    GlobalSlice(u32, u32),
    /// Hashed path of recently fetched branch PCs.
    Path,
    /// The branch's own per-PC local history.
    Local,
    /// The newest resolved predicate-definition outcomes.
    Predicate,
}

/// Per-branch checkpoint: the weight indices and the sum derived at
/// fetch (training replays them at commit), plus the speculative state
/// a squash must restore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MppCheckpoint {
    indices: [u16; MAX_VIEWS],
    sum: i32,
    ghist: GlobalHistory,
    local_slot: u32,
    local_val: u16,
}

/// A multiperspective perceptron: several *feature views* of the
/// branch's context — global-history slices at multiple ranges, a
/// hashed PC path, a per-PC local history, and a bias — each hash into
/// their own small table of 6-bit weights, and the branch is predicted
/// taken when the weights' sum is non-negative. Training bumps every
/// contributing weight toward the outcome when the prediction was wrong
/// or the sum's magnitude fell below an adaptively fitted threshold.
///
/// Speculation is first-class: the global history shifts the predicted
/// outcome at `speculate` and is checkpointed for `squash` repair; the
/// local-history slot likewise saves its pre-shift value. The path
/// register is *not* rolled back: every branch in the trace is
/// architectural (squashes here repair outcome speculation, not
/// wrong-path fetch) and path bits derive from PCs, which direction
/// speculation cannot corrupt.
///
/// The predicate-aware variant (`pmpp`, [`Mpp::predicate_aware`]) adds
/// one more view over a dedicated [`PredicateHistory`] register: the
/// paper's predicate correlation as just another perspective, weighed
/// against the rest by ordinary perceptron training.
///
/// # Examples
///
/// ```
/// use predbranch_core::BranchPredictor;
/// use predbranch_modern::Mpp;
///
/// let m = Mpp::new(12);
/// assert_eq!(m.name(), "mpp-12");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mpp {
    index_bits: u32,
    views: Vec<View>,
    /// One weight table per view, each `2^index_bits` 6-bit weights.
    weights: Vec<Vec<i8>>,
    ghist: GlobalHistory,
    path: u64,
    local: Vec<u16>,
    /// Adaptive training threshold.
    theta: i32,
    /// Saturating counter driving threshold adaptation.
    threshold_counter: i32,
    predicate: bool,
    pred_hist: PredicateHistory,
    checkpoints: Checkpoints<MppCheckpoint>,
}

impl Mpp {
    /// Creates a multiperspective perceptron whose per-view weight
    /// tables have `2^index_bits` entries.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is outside `1..=16` (indices are stored
    /// as `u16` in checkpoints).
    pub fn new(index_bits: u32) -> Self {
        assert!(
            (1..=16).contains(&index_bits),
            "mpp index bits must be 1..=16"
        );
        let views = vec![
            View::Bias,
            View::GlobalSlice(0, 8),
            View::GlobalSlice(8, 16),
            View::GlobalSlice(16, 32),
            View::GlobalSlice(32, 64),
            View::Path,
            View::Local,
        ];
        let weights = vec![vec![0i8; 1 << index_bits]; views.len()];
        Mpp {
            index_bits,
            views,
            weights,
            ghist: GlobalHistory::new(64),
            path: 0,
            local: vec![0; 1 << LOCAL_TABLE_BITS],
            theta: 24,
            threshold_counter: 0,
            predicate: false,
            pred_hist: PredicateHistory::new(PRED_DELAY),
            checkpoints: Checkpoints::new(),
        }
    }

    /// Enables the predicate-history feature view.
    pub fn predicate_aware(mut self) -> Self {
        self.predicate = true;
        self.views.push(View::Predicate);
        self.weights.push(vec![0i8; 1 << self.index_bits]);
        self
    }

    fn local_slot(&self, pc: u32) -> u32 {
        pc & ((1 << LOCAL_TABLE_BITS) - 1)
    }

    fn feature(&self, view: View, pc: u32) -> u64 {
        match view {
            View::Bias => 0,
            View::GlobalSlice(lo, hi) => {
                let width = hi - lo;
                let mask = if width == 64 {
                    u64::MAX
                } else {
                    (1 << width) - 1
                };
                (self.ghist.value() >> lo) & mask
            }
            View::Path => self.path,
            View::Local => u64::from(self.local[self.local_slot(pc) as usize]),
            View::Predicate => self.pred_hist.value() & ((1 << PRED_VIEW_OUTCOMES) - 1),
        }
    }

    /// FNV-style hash of (view, pc, feature) into a table index —
    /// different views with identical features land on unrelated
    /// weights.
    fn hash_index(&self, view_id: usize, pc: u32, feature: u64) -> u16 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for x in [view_id as u64 + 1, u64::from(pc), feature] {
            h ^= x;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= h >> 32;
        h ^= h >> self.index_bits.max(8);
        (h & ((1 << self.index_bits) - 1)) as u16
    }

    /// Fetch-time derivation: each view's weight index and the summed
    /// dot product. Pure — called by `predict` and `speculate`.
    fn derive(&self, pc: u32) -> ([u16; MAX_VIEWS], i32) {
        let mut indices = [0u16; MAX_VIEWS];
        let mut sum = 0i32;
        for (v, &view) in self.views.iter().enumerate() {
            let idx = self.hash_index(v, pc, self.feature(view, pc));
            indices[v] = idx;
            sum += i32::from(self.weights[v][idx as usize]);
        }
        (indices, sum)
    }

    fn train(&mut self, cp: &MppCheckpoint, taken: bool) {
        let predicted = cp.sum >= 0;
        let correct = predicted == taken;
        let low_confidence = cp.sum.abs() <= self.theta;

        // dynamic threshold fitting: grow theta while mispredicting,
        // shrink it while confidently correct
        if !correct {
            self.threshold_counter += 1;
            if self.threshold_counter >= THRESHOLD_COUNTER_MAX {
                self.theta += 1;
                self.threshold_counter = 0;
            }
        } else if low_confidence {
            self.threshold_counter -= 1;
            if self.threshold_counter <= -THRESHOLD_COUNTER_MAX {
                self.theta = (self.theta - 1).max(1);
                self.threshold_counter = 0;
            }
        }

        if !correct || low_confidence {
            for v in 0..self.views.len() {
                let w = &mut self.weights[v][cp.indices[v] as usize];
                *w = if taken {
                    (*w + 1).min(WEIGHT_MAX)
                } else {
                    (*w - 1).max(-WEIGHT_MAX)
                };
            }
        }
    }

    /// Applies one outcome to the speculative per-branch histories
    /// (global + local); the path register advances separately since it
    /// depends on the PC, not the direction.
    fn shift_histories(&mut self, pc: u32, outcome: bool) {
        self.ghist.shift_in(outcome);
        let slot = self.local_slot(pc) as usize;
        self.local[slot] =
            ((self.local[slot] << 1) | u16::from(outcome)) & ((1 << LOCAL_HISTORY_BITS) - 1);
    }
}

impl BranchPredictor for Mpp {
    fn name(&self) -> String {
        format!(
            "{}mpp-{}",
            if self.predicate { "p" } else { "" },
            self.index_bits
        )
    }

    fn predict(&mut self, branch: &BranchInfo, _scoreboard: &PredicateScoreboard) -> bool {
        if self.predicate {
            self.pred_hist.drain_visible(branch.index);
        }
        self.derive(branch.pc).1 >= 0
    }

    fn speculate(
        &mut self,
        branch: &BranchInfo,
        predicted: bool,
        _scoreboard: &PredicateScoreboard,
    ) {
        if self.predicate {
            // idempotent re-drain: predict already ran at this index
            self.pred_hist.drain_visible(branch.index);
        }
        let (indices, sum) = self.derive(branch.pc);
        let slot = self.local_slot(branch.pc);
        self.checkpoints.push_back(MppCheckpoint {
            indices,
            sum,
            ghist: self.ghist,
            local_slot: slot,
            local_val: self.local[slot as usize],
        });
        self.shift_histories(branch.pc, predicted);
        self.path = (self.path << 4) ^ u64::from(branch.pc >> 2);
    }

    fn commit(&mut self, _branch: &BranchInfo, taken: bool, _scoreboard: &PredicateScoreboard) {
        let cp = self
            .checkpoints
            .pop_front()
            .expect("mpp commit without a matching speculate");
        self.train(&cp, taken);
    }

    fn squash(&mut self, branch: &BranchInfo, taken: bool, _scoreboard: &PredicateScoreboard) {
        let cp = *self
            .checkpoints
            .front()
            .expect("mpp squash without a matching speculate");
        self.ghist = cp.ghist;
        self.local[cp.local_slot as usize] = cp.local_val;
        self.shift_histories(branch.pc, taken);
        // the path register is not restored: its speculative update used
        // the branch's PC, which the squash does not change
    }

    fn on_pred_write(&mut self, write: &PredWriteEvent) {
        if self.predicate {
            self.pred_hist.observe(write);
        }
    }

    fn storage_bits(&self) -> usize {
        let weight_bits: usize = self.weights.iter().map(|t| t.len() * 6).sum();
        weight_bits
            + self.ghist.storage_bits()
            + 64 // path register
            + self.local.len() * LOCAL_HISTORY_BITS as usize
            + 16 // theta + threshold counter
            + if self.predicate {
                self.pred_hist.storage_bits()
            } else {
                0
            }
    }
}

impl HistoryInsert for Mpp {
    fn insert_history_bit(&mut self, outcome: bool) {
        // external (PGU) bits are visible to the global-history views;
        // path and local histories are per-branch structures a
        // pseudo-outcome has no analogue in
        self.ghist.shift_in(outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predbranch_isa::PredReg;

    fn info(pc: u32, index: u64) -> BranchInfo {
        BranchInfo {
            pc,
            target: 0,
            guard: PredReg::new(1).unwrap(),
            region: None,
            index,
        }
    }

    fn write(index: u64, value: bool) -> PredWriteEvent {
        PredWriteEvent {
            pc: 0,
            preg: PredReg::new(1).unwrap(),
            value,
            index,
            guard: PredReg::TRUE,
            guard_value: true,
        }
    }

    fn sb() -> PredicateScoreboard {
        PredicateScoreboard::new(64)
    }

    #[test]
    fn name_encodes_table_size() {
        assert_eq!(Mpp::new(12).name(), "mpp-12");
        assert_eq!(Mpp::new(10).predicate_aware().name(), "pmpp-10");
    }

    #[test]
    fn learns_a_local_pattern_global_noise_cannot_hide() {
        // two interleaved branches: one random (noise in global
        // history), one with a short per-PC period the local view nails
        let scoreboard = sb();
        let mut mpp = Mpp::new(12);
        let mut x = 0xDEAD_BEEF_CAFE_F00Du64;
        let mut wrong_tail = 0;
        for i in 0..6000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let noise = info(0x80, i * 2);
            let noise_taken = x >> 63 == 1;
            let p = mpp.predict(&noise, &scoreboard);
            let _ = p;
            mpp.update(&noise, noise_taken, &scoreboard);

            let b = info(0x40, i * 2 + 1);
            let taken = matches!(i % 5, 0 | 2 | 3);
            let predicted = mpp.predict(&b, &scoreboard);
            if i >= 5000 && predicted != taken {
                wrong_tail += 1;
            }
            mpp.update(&b, taken, &scoreboard);
        }
        assert!(
            wrong_tail <= 20,
            "local view should carry a period-5 pattern, {wrong_tail}/1000 wrong"
        );
    }

    #[test]
    fn squash_repair_equals_correct_speculation() {
        let scoreboard = sb();
        let mut a = Mpp::new(10);
        for i in 0..300u64 {
            let b = info(0x10 + (i % 5) as u32 * 4, i);
            a.update(&b, i % 3 != 1, &scoreboard);
        }
        let mut b = a.clone();

        let branch = info(0x77, 900);
        let taken = false;
        a.speculate(&branch, !taken, &scoreboard);
        a.squash(&branch, taken, &scoreboard);
        a.commit(&branch, taken, &scoreboard);
        b.update(&branch, taken, &scoreboard);
        assert_eq!(a, b, "squash repair must fully erase the wrong-path shift");
    }

    #[test]
    fn predict_is_pure() {
        let scoreboard = sb();
        let mut m = Mpp::new(10);
        for i in 0..100u64 {
            m.update(&info(0x20, i), i % 2 == 0, &scoreboard);
        }
        let before = m.clone();
        let p1 = m.predict(&info(0x20, 200), &scoreboard);
        let p2 = m.predict(&info(0x20, 200), &scoreboard);
        assert_eq!(p1, p2);
        assert_eq!(m, before);
    }

    #[test]
    fn predicate_view_reads_predicate_context() {
        // outcome = most recent predicate value, predicate stream
        // pseudo-random: only the predicate view carries signal
        let scoreboard = sb();
        let run = |predicate: bool| -> u32 {
            let mut m = Mpp::new(12);
            if predicate {
                m = m.predicate_aware();
            }
            let mut x = 0x0123_4567_89AB_CDEFu64;
            let mut wrong_tail = 0;
            for i in 0..8000u64 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let value = x >> 63 == 1;
                m.on_pred_write(&write(i * 20, value));
                let b = info(0x40, i * 20 + PRED_DELAY + 2);
                let predicted = m.predict(&b, &scoreboard);
                if i >= 6000 && predicted != value {
                    wrong_tail += 1;
                }
                m.update(&b, value, &scoreboard);
            }
            wrong_tail
        };
        let pmpp = run(true);
        let plain = run(false);
        assert!(
            pmpp * 2 < plain,
            "pmpp ({pmpp}/2000 wrong) should beat mpp ({plain}/2000) decisively"
        );
    }

    #[test]
    fn storage_accounts_for_views() {
        let plain = Mpp::new(12);
        let pred = Mpp::new(12).predicate_aware();
        // the predicate variant adds one weight table + the register
        assert_eq!(
            pred.storage_bits(),
            plain.storage_bits() + (1 << 12) * 6 + PredicateHistory::new(0).storage_bits()
        );
    }

    #[test]
    #[should_panic(expected = "commit without a matching speculate")]
    fn unbalanced_commit_rejected() {
        let scoreboard = sb();
        Mpp::new(8).commit(&info(0, 0), true, &scoreboard);
    }
}

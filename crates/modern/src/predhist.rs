//! A dedicated predicate-outcome history register.

use std::collections::VecDeque;

use predbranch_sim::PredWriteEvent;

/// Width of the predicate-history register, in bits.
pub const PREDICATE_HISTORY_BITS: u32 = 12;

/// A shift register of recently resolved predicate-definition outcomes,
/// the feature the predicate-aware modern predictors (`ptage`, `pmpp`)
/// read.
///
/// This is the paper's PGU idea expressed natively: instead of splicing
/// predicate bits into the *branch-outcome* history (which perturbs
/// every history-indexed structure), the predictor keeps predicate
/// outcomes in their own register and hashes it into its index (TAGE)
/// or reads it as one more feature view (the perceptron).
///
/// Timing mirrors [`predbranch_core::Pgu`]: a definition becomes
/// visible `delay` fetch slots after the defining compare executes,
/// modeling commit-time availability of the predicate value. Drains are
/// driven by fetch index and are idempotent at the same index, so both
/// `predict` and `speculate` may drain.
///
/// The register is *architectural*: predicate definitions come from the
/// executed instruction stream, never from branch speculation, so a
/// branch squash does not roll it back. Branches instead checkpoint the
/// fetch-time *indices they derived from it*, so commit-time training
/// never reads the register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredicateHistory {
    bits: u64,
    delay: u64,
    pending: VecDeque<(u64, bool)>,
}

impl PredicateHistory {
    /// Creates an empty register whose insertions become visible
    /// `delay` fetch slots after the defining compare.
    pub fn new(delay: u64) -> Self {
        PredicateHistory {
            bits: 0,
            delay,
            pending: VecDeque::new(),
        }
    }

    /// Observes a predicate definition (called from `on_pred_write`).
    pub fn observe(&mut self, write: &PredWriteEvent) {
        if self.delay == 0 {
            self.shift_in(write.value);
        } else {
            self.pending.push_back((write.index, write.value));
        }
    }

    /// Drains pending definitions that have become visible by
    /// `fetch_index`. Idempotent at the same index.
    pub fn drain_visible(&mut self, fetch_index: u64) {
        while let Some(&(def_index, value)) = self.pending.front() {
            if fetch_index.saturating_sub(def_index) >= self.delay {
                self.shift_in(value);
                self.pending.pop_front();
            } else {
                break;
            }
        }
    }

    fn shift_in(&mut self, value: bool) {
        self.bits = ((self.bits << 1) | u64::from(value)) & ((1 << PREDICATE_HISTORY_BITS) - 1);
    }

    /// The current register value (most recent outcome at bit 0).
    pub fn value(&self) -> u64 {
        self.bits
    }

    /// Storage cost in bits (the register itself; the pending queue is
    /// bookkeeping the hardware gets from the pipeline for free).
    pub fn storage_bits(&self) -> usize {
        PREDICATE_HISTORY_BITS as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predbranch_isa::PredReg;

    fn write(index: u64, value: bool) -> PredWriteEvent {
        PredWriteEvent {
            pc: 0,
            preg: PredReg::new(1).unwrap(),
            value,
            index,
            guard: PredReg::TRUE,
            guard_value: true,
        }
    }

    #[test]
    fn immediate_observation_shifts() {
        let mut h = PredicateHistory::new(0);
        h.observe(&write(0, true));
        h.observe(&write(1, false));
        assert_eq!(h.value(), 0b10);
    }

    #[test]
    fn delayed_observation_waits_for_fetch_distance() {
        let mut h = PredicateHistory::new(5);
        h.observe(&write(10, true));
        h.drain_visible(13);
        assert_eq!(h.value(), 0, "3 slots later: not yet visible");
        h.drain_visible(15);
        assert_eq!(h.value(), 1, "5 slots later: visible");
        // idempotent at the same index
        h.drain_visible(15);
        assert_eq!(h.value(), 1);
    }

    #[test]
    fn register_is_bounded() {
        let mut h = PredicateHistory::new(0);
        for _ in 0..100 {
            h.observe(&write(0, true));
        }
        assert_eq!(h.value(), (1 << PREDICATE_HISTORY_BITS) - 1);
        assert_eq!(h.storage_bits(), 12);
    }
}

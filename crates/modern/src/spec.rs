//! Declarative specs for the modern predictor tier — a strict superset
//! of [`PredictorSpec`].

use std::fmt;

use predbranch_core::{build_predictor, BranchPredictor, Pgu, PredictorSpec, SquashFilter};

use crate::mpp::Mpp;
use crate::tage::Tage;

/// A predictor configuration that may be a classic spec or one of the
/// modern-tier predictors, with the same SFPF/PGU composition rules.
///
/// Every classic spec is representable as a transparent
/// [`ModernSpec::Classic`] — `Debug` and `Display` delegate to the
/// inner spec, so code keyed on a spec's `Debug` rendering (the bench
/// runner's result-cache keys) sees byte-identical output for classic
/// configurations.
///
/// # Examples
///
/// ```
/// use predbranch_modern::ModernSpec;
///
/// let classic: ModernSpec = "gshare:13/13+sfpf".parse().unwrap();
/// let modern: ModernSpec = "tage:4/10/64+pgu8".parse().unwrap();
/// assert!(matches!(classic, ModernSpec::Classic(_)));
/// assert!(matches!(modern, ModernSpec::Pgu { .. }));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub enum ModernSpec {
    /// A classic spec, built by the core builders unchanged.
    Classic(PredictorSpec),
    /// TAGE (`tage:T/I/H`), optionally predicate-aware (`ptage:T/I/H`).
    Tage {
        /// Number of tagged tables.
        tables: u32,
        /// log2 entries per tagged table (and the bimodal base).
        index_bits: u32,
        /// History length of the longest table.
        max_history: u32,
        /// Hash recent predicate outcomes into the table indices.
        predicate: bool,
    },
    /// Multiperspective perceptron (`mpp:I`), optionally with the
    /// predicate feature view (`pmpp:I`).
    Mpp {
        /// log2 entries per feature-view weight table.
        index_bits: u32,
        /// Add the predicate-history feature view.
        predicate: bool,
    },
    /// Squash false-path filter around a modern base.
    Sfpf {
        /// The wrapped configuration.
        base: Box<ModernSpec>,
        /// Also apply the known-true → taken rule.
        known_true: bool,
        /// Whether filtered branches still train the base predictor.
        update_filtered: bool,
        /// Learned pc → guard table bits (`None` = idealized).
        learned_guards: Option<u32>,
    },
    /// Predicate global update around a modern base.
    Pgu {
        /// The wrapped configuration.
        base: Box<ModernSpec>,
        /// Insertion delay in fetch slots.
        delay: u64,
    },
}

impl ModernSpec {
    /// Wraps this spec in the squash false-path filter (default
    /// policy). Classic specs stay classic (the wrapper is pushed into
    /// the inner [`PredictorSpec`]), keeping them transparent.
    pub fn with_sfpf(self) -> ModernSpec {
        match self {
            ModernSpec::Classic(c) => ModernSpec::Classic(c.with_sfpf()),
            other => ModernSpec::Sfpf {
                base: Box::new(other),
                known_true: false,
                update_filtered: true,
                learned_guards: None,
            },
        }
    }

    /// Wraps this spec in predicate global update with the given delay;
    /// classic specs stay classic.
    pub fn with_pgu(self, delay: u64) -> ModernSpec {
        match self {
            ModernSpec::Classic(c) => ModernSpec::Classic(c.with_pgu(delay)),
            other => ModernSpec::Pgu {
                base: Box::new(other),
                delay,
            },
        }
    }
}

impl From<PredictorSpec> for ModernSpec {
    fn from(spec: PredictorSpec) -> Self {
        ModernSpec::Classic(spec)
    }
}

impl From<&PredictorSpec> for ModernSpec {
    fn from(spec: &PredictorSpec) -> Self {
        ModernSpec::Classic(spec.clone())
    }
}

impl From<&ModernSpec> for ModernSpec {
    fn from(spec: &ModernSpec) -> Self {
        spec.clone()
    }
}

/// `Debug` is transparent for [`ModernSpec::Classic`] so a classic spec
/// renders exactly as the wrapped [`PredictorSpec`] would — cache keys
/// derived from the rendering are stable across the classic → modern
/// migration.
impl fmt::Debug for ModernSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModernSpec::Classic(inner) => inner.fmt(f),
            ModernSpec::Tage {
                tables,
                index_bits,
                max_history,
                predicate,
            } => f
                .debug_struct("Tage")
                .field("tables", tables)
                .field("index_bits", index_bits)
                .field("max_history", max_history)
                .field("predicate", predicate)
                .finish(),
            ModernSpec::Mpp {
                index_bits,
                predicate,
            } => f
                .debug_struct("Mpp")
                .field("index_bits", index_bits)
                .field("predicate", predicate)
                .finish(),
            ModernSpec::Sfpf {
                base,
                known_true,
                update_filtered,
                learned_guards,
            } => f
                .debug_struct("Sfpf")
                .field("base", base)
                .field("known_true", known_true)
                .field("update_filtered", update_filtered)
                .field("learned_guards", learned_guards)
                .finish(),
            ModernSpec::Pgu { base, delay } => f
                .debug_struct("Pgu")
                .field("base", base)
                .field("delay", delay)
                .finish(),
        }
    }
}

/// `Display` delegates to the built predictor's name, like the classic
/// spec.
impl fmt::Display for ModernSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&build_modern(self).name())
    }
}

/// Error from parsing a [`ModernSpec`] string. The rendered message
/// always carries the `bad predictor spec` prefix, whether the failure
/// came from the classic or the modern grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseModernSpecError(String);

impl fmt::Display for ParseModernSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseModernSpecError {}

/// Parses the compact spec syntax, extending the classic grammar with
/// the modern bases:
///
/// ```text
/// base      := <any classic base> | tage:T/I/H | ptage:T/I/H
///            | mpp:I | pmpp:I
/// modifier  := +sfpf | +sfpf! | +pgu | +pguN
/// spec      := base modifier*
/// ```
///
/// A spec with a classic base parses to a transparent
/// [`ModernSpec::Classic`] via the core parser, modifiers included.
///
/// # Examples
///
/// ```
/// use predbranch_core::BranchPredictor;
/// use predbranch_modern::{build_modern, ModernSpec};
///
/// let spec: ModernSpec = "pmpp:12+sfpf".parse().unwrap();
/// assert_eq!(build_modern(&spec).name(), "sfpf+pmpp-12");
/// ```
impl std::str::FromStr for ModernSpec {
    type Err = ParseModernSpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let base_kind = s
            .split('+')
            .next()
            .unwrap_or("")
            .trim()
            .split(':')
            .next()
            .unwrap_or("")
            .trim();
        if !matches!(base_kind, "tage" | "ptage" | "mpp" | "pmpp") {
            return s
                .parse::<PredictorSpec>()
                .map(ModernSpec::Classic)
                .map_err(|e| ParseModernSpecError(e.to_string()));
        }

        let err = |msg: &str| ParseModernSpecError(format!("bad predictor spec: {msg} in `{s}`"));
        let mut parts = s.split('+');
        let base_text = parts.next().ok_or_else(|| err("empty spec"))?.trim();
        let params = match base_text.split_once(':') {
            Some((_, p)) => p,
            None => "",
        };
        let nums: Vec<u32> = if params.is_empty() {
            Vec::new()
        } else {
            params
                .split('/')
                .map(|n| n.trim().parse::<u32>())
                .collect::<Result<_, _>>()
                .map_err(|_| err("bad numeric parameter"))?
        };
        let want = |n: usize| -> Result<(), ParseModernSpecError> {
            if nums.len() == n {
                Ok(())
            } else {
                Err(err("wrong parameter count"))
            }
        };
        let mut spec = match base_kind {
            "tage" | "ptage" => {
                want(3)?;
                ModernSpec::Tage {
                    tables: nums[0],
                    index_bits: nums[1],
                    max_history: nums[2],
                    predicate: base_kind == "ptage",
                }
            }
            // "mpp" | "pmpp" — the only kinds that reach here
            _ => {
                want(1)?;
                ModernSpec::Mpp {
                    index_bits: nums[0],
                    predicate: base_kind == "pmpp",
                }
            }
        };
        for modifier in parts {
            let modifier = modifier.trim();
            if modifier == "sfpf" {
                spec = spec.with_sfpf();
            } else if modifier == "sfpf!" {
                spec = ModernSpec::Sfpf {
                    base: Box::new(spec),
                    known_true: true,
                    update_filtered: true,
                    learned_guards: None,
                };
            } else if let Some(rest) = modifier.strip_prefix("pgu") {
                let delay: u64 = if rest.is_empty() {
                    8
                } else {
                    rest.parse().map_err(|_| err("bad pgu delay"))?
                };
                spec = spec.with_pgu(delay);
            } else {
                return Err(err("unknown modifier"));
            }
        }
        Ok(spec)
    }
}

/// Builds a TAGE instance from the spec's parameters.
fn tage_from(tables: u32, index_bits: u32, max_history: u32, predicate: bool) -> Tage {
    let t = Tage::new(tables, index_bits, max_history);
    if predicate {
        t.predicate_aware()
    } else {
        t
    }
}

/// Builds an MPP instance from the spec's parameters.
fn mpp_from(index_bits: u32, predicate: bool) -> Mpp {
    let m = Mpp::new(index_bits);
    if predicate {
        m.predicate_aware()
    } else {
        m
    }
}

/// Builds a boxed predictor from a modern spec — the superset
/// counterpart of [`predbranch_core::build_predictor`], with the same
/// composition rules: PGU requires a history-insertion point and
/// degrades to the plain base without one, and `sfpf(pgu(base))` keeps
/// the filter in front of PGU.
pub fn build_modern(spec: &ModernSpec) -> Box<dyn BranchPredictor> {
    match spec {
        ModernSpec::Classic(inner) => build_predictor(inner),
        ModernSpec::Tage {
            tables,
            index_bits,
            max_history,
            predicate,
        } => Box::new(tage_from(*tables, *index_bits, *max_history, *predicate)),
        ModernSpec::Mpp {
            index_bits,
            predicate,
        } => Box::new(mpp_from(*index_bits, *predicate)),
        ModernSpec::Sfpf {
            base,
            known_true,
            update_filtered,
            learned_guards,
        } => {
            let mut filter = SquashFilter::new(build_modern(base))
                .with_known_true(*known_true)
                .with_update_filtered(*update_filtered);
            if let Some(bits) = learned_guards {
                filter = filter.with_learned_guards(*bits);
            }
            Box::new(filter)
        }
        ModernSpec::Pgu { base, delay } => match &**base {
            ModernSpec::Classic(inner) => build_predictor(&inner.clone().with_pgu(*delay)),
            ModernSpec::Tage {
                tables,
                index_bits,
                max_history,
                predicate,
            } => Box::new(
                Pgu::new(tage_from(*tables, *index_bits, *max_history, *predicate))
                    .with_delay(*delay),
            ),
            ModernSpec::Mpp {
                index_bits,
                predicate,
            } => Box::new(Pgu::new(mpp_from(*index_bits, *predicate)).with_delay(*delay)),
            ModernSpec::Sfpf {
                base: inner,
                known_true,
                update_filtered,
                learned_guards,
            } => {
                // sfpf(pgu(base)): the filter sits in front of PGU,
                // mirroring the classic builder's rewrite
                let pgu = ModernSpec::Pgu {
                    base: inner.clone(),
                    delay: *delay,
                };
                build_modern(&ModernSpec::Sfpf {
                    base: Box::new(pgu),
                    known_true: *known_true,
                    update_filtered: *update_filtered,
                    learned_guards: *learned_guards,
                })
            }
            other => build_modern(other),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_specs_parse_transparently() {
        let spec: ModernSpec = "gshare:13/13+sfpf+pgu8".parse().unwrap();
        let classic: PredictorSpec = "gshare:13/13+sfpf+pgu8".parse().unwrap();
        assert_eq!(spec, ModernSpec::Classic(classic.clone()));
        // the Debug rendering (cache-key input) is byte-identical
        assert_eq!(format!("{spec:?}"), format!("{classic:?}"));
        assert_eq!(build_modern(&spec).name(), build_predictor(&classic).name());
    }

    #[test]
    fn parses_every_modern_base() {
        for (text, expect_name) in [
            ("tage:4/10/64", "tage-4/10/64"),
            ("ptage:4/10/64", "ptage-4/10/64"),
            ("mpp:12", "mpp-12"),
            ("pmpp:12", "pmpp-12"),
        ] {
            let spec: ModernSpec = text.parse().unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(build_modern(&spec).name(), expect_name, "{text}");
        }
    }

    #[test]
    fn modern_modifiers_compose_like_classic_ones() {
        for (text, expect_name) in [
            ("tage:4/10/64+sfpf", "sfpf+tage-4/10/64"),
            ("tage:4/10/64+pgu8", "pgu[d8]+tage-4/10/64"),
            ("tage:4/10/64+sfpf+pgu8", "sfpf+pgu[d8]+tage-4/10/64"),
            ("tage:4/10/64+pgu8+sfpf", "sfpf+pgu[d8]+tage-4/10/64"),
            ("mpp:12+sfpf+pgu", "sfpf+pgu[d8]+mpp-12"),
            ("pmpp:12+pgu0", "pgu+pmpp-12"),
        ] {
            let spec: ModernSpec = text.parse().unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(build_modern(&spec).name(), expect_name, "{text}");
        }
    }

    #[test]
    fn display_matches_built_name() {
        let spec: ModernSpec = "ptage:4/10/64+sfpf".parse().unwrap();
        assert_eq!(spec.to_string(), "sfpf+ptage-4/10/64");
    }

    #[test]
    fn rejects_garbage_with_spec_prefix() {
        for bad in [
            "",
            "tage:9",
            "tage:4/10",
            "tage:4/10/64/2",
            "mpp",
            "mpp:a",
            "pmpp:12/12",
            "tage:4/10/64+magic",
            "mpp:12+pguX",
            "gshare:13",
            "unknown:1",
        ] {
            let e = bad.parse::<ModernSpec>().expect_err(bad);
            assert!(
                e.to_string().starts_with("bad predictor spec"),
                "`{bad}` error lost its prefix: {e}"
            );
        }
    }

    #[test]
    fn pgu_over_classic_base_rebuilds_classic_composition() {
        // a hand-built Pgu{Classic} (not producible by the parser, which
        // canonicalizes) still builds the classic composition
        let spec = ModernSpec::Pgu {
            base: Box::new(ModernSpec::Classic(PredictorSpec::Gshare {
                index_bits: 10,
                history_bits: 10,
            })),
            delay: 4,
        };
        assert_eq!(build_modern(&spec).name(), "pgu[d4]+gshare-10/10");
    }
}

//! Static-dispatch stacks for the modern predictor tier.

use std::fmt;

use predbranch_core::{
    build_predictor_stack, BranchInfo, BranchPredictor, Pgu, PredictorStack, SquashFilter,
    StackVariant,
};
use predbranch_sim::{PredWriteEvent, PredicateScoreboard};

use crate::mpp::Mpp;
use crate::spec::{build_modern, ModernSpec};
use crate::tage::Tage;

/// Generates [`ModernStack`] and its [`BranchPredictor`] delegation:
/// one variant per concrete modern predictor shape, plus the
/// transparent `Classic` embedding of the core enum. Structured like
/// core's `predictor_stack!` (which hardcodes its own enum name), and
/// emits the same [`StackVariant`] table so CLI listings are generated
/// from the dispatch token stream.
macro_rules! modern_stack {
    ($( $(#[$meta:meta])* $variant:ident($ty:ty) ),+ $(,)?) => {
        /// A statically-dispatched modern-tier predictor: one variant
        /// per concrete shape reachable from a [`ModernSpec`], with
        /// classic specs embedding the whole [`PredictorStack`] enum
        /// (including its `Dyn` escape hatch, which exotic modern
        /// shapes also fall back to).
        ///
        /// # Examples
        ///
        /// ```
        /// use predbranch_core::BranchPredictor;
        /// use predbranch_modern::{build_modern_stack, ModernSpec};
        ///
        /// let spec: ModernSpec = "tage:4/10/64+sfpf+pgu8".parse().unwrap();
        /// let p = build_modern_stack(&spec);
        /// assert_eq!(p.name(), "sfpf+pgu[d8]+tage-4/10/64");
        /// assert!(p.is_statically_dispatched());
        /// ```
        pub enum ModernStack {
            $( $(#[$meta])* $variant($ty), )+
        }

        impl ModernStack {
            /// Every enumerated variant, generated from the same token
            /// stream as the enum (one [`StackVariant`] per variant, in
            /// declaration order).
            pub const VARIANTS: &'static [StackVariant] = &[
                $( StackVariant { name: stringify!($variant), ty: stringify!($ty) }, )+
            ];

            /// Whether this stack dispatches statically (`false` only
            /// for a classic spec that itself fell back to the boxed
            /// escape hatch).
            pub fn is_statically_dispatched(&self) -> bool {
                match self {
                    ModernStack::Classic(inner) => inner.is_statically_dispatched(),
                    _ => true,
                }
            }
        }

        impl BranchPredictor for ModernStack {
            fn name(&self) -> String {
                match self { $( ModernStack::$variant(p) => p.name(), )+ }
            }

            #[inline]
            fn predict(&mut self, branch: &BranchInfo, scoreboard: &PredicateScoreboard) -> bool {
                match self { $( ModernStack::$variant(p) => p.predict(branch, scoreboard), )+ }
            }

            #[inline]
            fn speculate(
                &mut self,
                branch: &BranchInfo,
                predicted: bool,
                scoreboard: &PredicateScoreboard,
            ) {
                match self { $( ModernStack::$variant(p) => p.speculate(branch, predicted, scoreboard), )+ }
            }

            #[inline]
            fn commit(&mut self, branch: &BranchInfo, taken: bool, scoreboard: &PredicateScoreboard) {
                match self { $( ModernStack::$variant(p) => p.commit(branch, taken, scoreboard), )+ }
            }

            #[inline]
            fn squash(&mut self, branch: &BranchInfo, taken: bool, scoreboard: &PredicateScoreboard) {
                match self { $( ModernStack::$variant(p) => p.squash(branch, taken, scoreboard), )+ }
            }

            #[inline]
            fn update(&mut self, branch: &BranchInfo, taken: bool, scoreboard: &PredicateScoreboard) {
                match self { $( ModernStack::$variant(p) => p.update(branch, taken, scoreboard), )+ }
            }

            #[inline]
            fn on_pred_write(&mut self, write: &PredWriteEvent) {
                match self { $( ModernStack::$variant(p) => p.on_pred_write(write), )+ }
            }

            fn storage_bits(&self) -> usize {
                match self { $( ModernStack::$variant(p) => p.storage_bits(), )+ }
            }
        }
    };
}

modern_stack! {
    /// Any classic predictor shape, embedded whole (including the core
    /// enum's boxed `Dyn` escape hatch).
    Classic(PredictorStack),
    /// TAGE, plain or predicate-aware.
    Tage(Tage),
    /// Squash filter over TAGE.
    SfpfTage(SquashFilter<Tage>),
    /// Predicate global update over TAGE.
    PguTage(Pgu<Tage>),
    /// Both techniques over TAGE.
    SfpfPguTage(SquashFilter<Pgu<Tage>>),
    /// Multiperspective perceptron, plain or predicate-aware.
    Mpp(Mpp),
    /// Squash filter over the multiperspective perceptron.
    SfpfMpp(SquashFilter<Mpp>),
    /// Predicate global update over the multiperspective perceptron.
    PguMpp(Pgu<Mpp>),
    /// Both techniques over the multiperspective perceptron.
    SfpfPguMpp(SquashFilter<Pgu<Mpp>>),
}

impl fmt::Debug for ModernStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ModernStack({})", self.name())
    }
}

/// Applies the SFPF policy knobs from a spec to a freshly built filter
/// (local mirror of the core stack's private helper).
fn configure_filter<P>(
    filter: SquashFilter<P>,
    known_true: bool,
    update_filtered: bool,
    learned_guards: Option<u32>,
) -> SquashFilter<P> {
    let filter = filter
        .with_known_true(known_true)
        .with_update_filtered(update_filtered);
    match learned_guards {
        Some(bits) => filter.with_learned_guards(bits),
        None => filter,
    }
}

fn tage_from(tables: u32, index_bits: u32, max_history: u32, predicate: bool) -> Tage {
    let t = Tage::new(tables, index_bits, max_history);
    if predicate {
        t.predicate_aware()
    } else {
        t
    }
}

fn mpp_from(index_bits: u32, predicate: bool) -> Mpp {
    let m = Mpp::new(index_bits);
    if predicate {
        m.predicate_aware()
    } else {
        m
    }
}

/// Builds a statically-dispatched predictor from a modern spec — the
/// hot-path counterpart of [`build_modern`], mirroring its composition
/// rules exactly. Shapes outside the enumerated set (e.g. doubly-nested
/// filters over a modern base) fall back to the boxed escape hatch via
/// `Classic(Dyn)`.
pub fn build_modern_stack(spec: &ModernSpec) -> ModernStack {
    match spec {
        ModernSpec::Classic(inner) => ModernStack::Classic(build_predictor_stack(inner)),
        ModernSpec::Tage {
            tables,
            index_bits,
            max_history,
            predicate,
        } => ModernStack::Tage(tage_from(*tables, *index_bits, *max_history, *predicate)),
        ModernSpec::Mpp {
            index_bits,
            predicate,
        } => ModernStack::Mpp(mpp_from(*index_bits, *predicate)),
        ModernSpec::Sfpf {
            base,
            known_true,
            update_filtered,
            learned_guards,
        } => {
            macro_rules! wrap {
                ($variant:ident, $inner:expr) => {
                    ModernStack::$variant(configure_filter(
                        SquashFilter::new($inner),
                        *known_true,
                        *update_filtered,
                        *learned_guards,
                    ))
                };
            }
            match &**base {
                ModernSpec::Tage {
                    tables,
                    index_bits,
                    max_history,
                    predicate,
                } => wrap!(
                    SfpfTage,
                    tage_from(*tables, *index_bits, *max_history, *predicate)
                ),
                ModernSpec::Mpp {
                    index_bits,
                    predicate,
                } => wrap!(SfpfMpp, mpp_from(*index_bits, *predicate)),
                ModernSpec::Pgu { base: inner, delay } => match &**inner {
                    ModernSpec::Tage {
                        tables,
                        index_bits,
                        max_history,
                        predicate,
                    } => wrap!(
                        SfpfPguTage,
                        Pgu::new(tage_from(*tables, *index_bits, *max_history, *predicate))
                            .with_delay(*delay)
                    ),
                    ModernSpec::Mpp {
                        index_bits,
                        predicate,
                    } => wrap!(
                        SfpfPguMpp,
                        Pgu::new(mpp_from(*index_bits, *predicate)).with_delay(*delay)
                    ),
                    // PGU over a classic base is a classic shape; over
                    // anything else, mirror build_modern's degradation
                    ModernSpec::Classic(c) => {
                        let classic = c.clone().with_pgu(*delay).with_sfpf_policy(
                            *known_true,
                            *update_filtered,
                            *learned_guards,
                        );
                        ModernStack::Classic(build_predictor_stack(&classic))
                    }
                    _ => ModernStack::Classic(PredictorStack::Dyn(build_modern(spec))),
                },
                ModernSpec::Classic(c) => {
                    let classic =
                        c.clone()
                            .with_sfpf_policy(*known_true, *update_filtered, *learned_guards);
                    ModernStack::Classic(build_predictor_stack(&classic))
                }
                // nested filters leave the enumerated set
                ModernSpec::Sfpf { .. } => {
                    ModernStack::Classic(PredictorStack::Dyn(build_modern(spec)))
                }
            }
        }
        ModernSpec::Pgu { base, delay } => match &**base {
            ModernSpec::Tage {
                tables,
                index_bits,
                max_history,
                predicate,
            } => ModernStack::PguTage(
                Pgu::new(tage_from(*tables, *index_bits, *max_history, *predicate))
                    .with_delay(*delay),
            ),
            ModernSpec::Mpp {
                index_bits,
                predicate,
            } => {
                ModernStack::PguMpp(Pgu::new(mpp_from(*index_bits, *predicate)).with_delay(*delay))
            }
            ModernSpec::Classic(c) => {
                ModernStack::Classic(build_predictor_stack(&c.clone().with_pgu(*delay)))
            }
            ModernSpec::Sfpf {
                base: inner,
                known_true,
                update_filtered,
                learned_guards,
            } => {
                // sfpf(pgu(base)): the filter sits in front of PGU
                let pgu = ModernSpec::Pgu {
                    base: inner.clone(),
                    delay: *delay,
                };
                build_modern_stack(&ModernSpec::Sfpf {
                    base: Box::new(pgu),
                    known_true: *known_true,
                    update_filtered: *update_filtered,
                    learned_guards: *learned_guards,
                })
            }
            other => build_modern_stack(other),
        },
    }
}

/// Builds the predictor bank for a gang-replay unit: one
/// statically-dispatched [`ModernStack`] lane per spec, in lane order.
/// This is the per-lane state split the gang path consumes — each lane
/// is a self-contained stack (no sharing between lanes), so a
/// `GangHarness` can wrap each in its own in-flight window and advance
/// all of them over one decoded event pass. The single-stack
/// [`build_modern_stack`] path is untouched: a bank of one is exactly
/// one `build_modern_stack` call.
pub fn build_modern_bank<'a>(specs: impl IntoIterator<Item = &'a ModernSpec>) -> Vec<ModernStack> {
    specs.into_iter().map(build_modern_stack).collect()
}

/// Helper: rebuild a classic SFPF spec carrying explicit policy knobs.
trait WithSfpfPolicy {
    fn with_sfpf_policy(
        self,
        known_true: bool,
        update_filtered: bool,
        learned_guards: Option<u32>,
    ) -> Self;
}

impl WithSfpfPolicy for predbranch_core::PredictorSpec {
    fn with_sfpf_policy(
        self,
        known_true: bool,
        update_filtered: bool,
        learned_guards: Option<u32>,
    ) -> Self {
        predbranch_core::PredictorSpec::Sfpf {
            base: Box::new(self),
            known_true,
            update_filtered,
            learned_guards,
        }
    }
}

/// Every stack variant an experiment CLI can reach: the modern
/// variants (minus the transparent `Classic` embedding) followed by
/// every classic variant. Generated from the same token streams as the
/// two enums, so a printed listing can never drift from the dispatch
/// code — the CLI integration test diffs the binary's output against
/// this table.
pub fn all_stack_variants() -> Vec<StackVariant> {
    ModernStack::VARIANTS
        .iter()
        .filter(|v| v.name != "Classic")
        .chain(PredictorStack::VARIANTS.iter())
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn modern_shapes() -> Vec<&'static str> {
        vec![
            "tage:4/8/48",
            "ptage:4/8/48",
            "mpp:10",
            "pmpp:10",
            "tage:4/8/48+sfpf",
            "tage:4/8/48+pgu8",
            "tage:4/8/48+sfpf+pgu8",
            "ptage:4/8/48+sfpf+pgu8",
            "mpp:10+sfpf",
            "mpp:10+pgu8",
            "mpp:10+sfpf+pgu8",
            "pmpp:10+sfpf+pgu8",
            "gshare:10/10",
            "gshare:10/10+sfpf+pgu8",
            "tournament:10/10/10/10",
        ]
    }

    #[test]
    fn every_spec_shape_is_statically_dispatched() {
        for text in modern_shapes() {
            let spec: ModernSpec = text.parse().unwrap();
            let stack = build_modern_stack(&spec);
            assert!(stack.is_statically_dispatched(), "{text} fell back to dyn");
        }
    }

    #[test]
    fn bank_builds_one_lane_per_spec_in_order() {
        let specs: Vec<ModernSpec> = modern_shapes().iter().map(|t| t.parse().unwrap()).collect();
        let bank = build_modern_bank(&specs);
        assert_eq!(bank.len(), specs.len());
        for (lane, spec) in bank.iter().zip(&specs) {
            assert_eq!(lane.name(), build_modern_stack(spec).name());
        }
    }

    #[test]
    fn stack_name_matches_boxed_builder() {
        for text in modern_shapes() {
            let spec: ModernSpec = text.parse().unwrap();
            assert_eq!(
                build_modern_stack(&spec).name(),
                build_modern(&spec).name(),
                "{text}"
            );
        }
    }

    #[test]
    fn pgu_then_sfpf_order_is_rewritten() {
        let spec: ModernSpec = "mpp:10+pgu4+sfpf".parse().unwrap();
        let stack = build_modern_stack(&spec);
        assert_eq!(stack.name(), "sfpf+pgu[d4]+mpp-10");
        assert!(matches!(stack, ModernStack::SfpfPguMpp(_)));
    }

    #[test]
    fn nested_filters_use_the_escape_hatch() {
        let spec = ModernSpec::Sfpf {
            base: Box::new("tage:4/8/48+sfpf".parse::<ModernSpec>().unwrap()),
            known_true: false,
            update_filtered: true,
            learned_guards: None,
        };
        let stack = build_modern_stack(&spec);
        assert!(!stack.is_statically_dispatched());
        assert_eq!(stack.name(), build_modern(&spec).name());
    }

    #[test]
    fn debug_shows_name() {
        let stack = build_modern_stack(&"mpp:10".parse().unwrap());
        assert_eq!(format!("{stack:?}"), "ModernStack(mpp-10)");
    }

    #[test]
    fn variants_table_tracks_both_enums() {
        let all = all_stack_variants();
        let names: Vec<&str> = all.iter().map(|v| v.name).collect();
        // no Classic passthrough, no duplicates, both tiers present
        assert!(!names.contains(&"Classic"));
        let unique: std::collections::BTreeSet<&&str> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
        assert!(names.contains(&"Tage"));
        assert!(names.contains(&"SfpfPguMpp"));
        assert!(names.contains(&"SfpfPguGshare"));
        assert!(names.contains(&"Dyn"));
        let both = all.iter().find(|v| v.name == "SfpfPguTage").unwrap();
        assert_eq!(both.type_name(), "SquashFilter<Pgu<Tage>>");
    }
}

//! A TAGE (TAgged GEometric history length) predictor.

use predbranch_core::{
    checkpoint_capacity, BranchInfo, BranchPredictor, CounterTable, FoldedHistory, HistoryInsert,
    LongHistory, Ring, WINDOW_CAPACITY,
};
use predbranch_sim::{PredWriteEvent, PredicateScoreboard};

use crate::predhist::PredicateHistory;

/// Maximum number of tagged tables a [`Tage`] instance may have.
pub const MAX_TAGE_TABLES: usize = 8;

/// History length of the shortest tagged table.
const MIN_HISTORY: u32 = 5;

/// Tag width of every tagged entry, in bits.
const TAG_BITS: u32 = 11;

const TAG_MASK: u64 = (1 << TAG_BITS) - 1;

/// How many of the newest predicate outcomes the predicate-aware
/// variant hashes into its table indices. Kept short so a recurring
/// (history, predicate) context maps to a stable entry instead of being
/// scattered by stale predicate bits.
const PRED_INDEX_OUTCOMES: u32 = 4;

/// Sentinel for "no tagged table" in provider/alternate fields.
const NO_TABLE: u8 = u8::MAX;

/// Delay (in fetch slots) before a predicate definition becomes visible
/// to the predicate-aware variant, matching the commit-time PGU timing
/// the bench experiments use.
const PRED_DELAY: u64 = 8;

/// Capacity of the TAGE snapshot ring, derived from the harness's
/// in-flight window bound. TAGE checkpoints are an order of magnitude
/// larger than a gshare history, so the ring is sized here once instead
/// of hard-coding a number that could fall behind the window.
const TAGE_SNAPSHOTS: usize = checkpoint_capacity(WINDOW_CAPACITY);

/// One tagged entry: a 3-bit signed prediction counter, a partial tag,
/// and a 2-bit usefulness counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TageEntry {
    /// Prediction counter in `-4..=3`; `ctr >= 0` predicts taken.
    ctr: i8,
    /// Partial tag ([`TAG_BITS`] bits).
    tag: u16,
    /// Usefulness counter in `0..=3`; 0 marks the entry replaceable.
    useful: u8,
}

impl TageEntry {
    fn empty() -> Self {
        TageEntry {
            ctr: -1,
            tag: 0,
            useful: 0,
        }
    }

    fn predict(&self) -> bool {
        self.ctr >= 0
    }

    /// A weak counter on a never-yet-useful entry: likely newly
    /// allocated, so its prediction is not yet trustworthy.
    fn is_weak_new(&self) -> bool {
        (self.ctr == 0 || self.ctr == -1) && self.useful == 0
    }

    fn train(&mut self, taken: bool) {
        self.ctr = if taken {
            (self.ctr + 1).min(3)
        } else {
            (self.ctr - 1).max(-4)
        };
    }
}

/// Everything a branch derives from the predictor's state at fetch:
/// per-table indices and tags, the provider/alternate match, and the
/// resulting prediction. Checkpointed whole so commit-time training
/// replays the fetch-time view exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Lookup {
    base_index: u64,
    indices: [u32; MAX_TAGE_TABLES],
    tags: [u16; MAX_TAGE_TABLES],
    /// Longest matching table, or [`NO_TABLE`].
    provider: u8,
    /// Next-longest matching table below the provider, or [`NO_TABLE`]
    /// (= the bimodal base).
    alt_table: u8,
    provider_pred: bool,
    alt_pred: bool,
    prediction: bool,
}

/// Per-branch speculative checkpoint: the full history/fold state to
/// restore on a squash, plus the fetch-time [`Lookup`] to train from at
/// commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TageCheckpoint {
    hist: LongHistory,
    idx_folds: [FoldedHistory; MAX_TAGE_TABLES],
    tag_folds: [[FoldedHistory; 2]; MAX_TAGE_TABLES],
    lookup: Lookup,
}

/// A TAGE predictor: a bimodal base table plus a geometric series of
/// partially tagged tables indexed by folds of ever-longer global
/// history, the canonical post-2006 conditional branch predictor.
///
/// Prediction comes from the longest-history table whose tag matches
/// (the *provider*), falling back to the next match (*altpred*) or the
/// base. Newly allocated entries are distrusted until they prove
/// themselves (`use_alt_on_na`). On a misprediction, an entry is
/// allocated in a longer-history table; failed allocations decay the
/// usefulness counters blocking them.
///
/// The speculative lifecycle is first-class: `speculate` checkpoints
/// the long history and every folded register and shifts the predicted
/// outcome in; `squash` restores and re-shifts the correct outcome;
/// `commit` trains from the checkpointed fetch-time indices and tags in
/// fetch order. The allocation LFSR advances only at commit, so state
/// evolution is a pure function of the committed stream.
///
/// The predicate-aware variant (`ptage`, [`Tage::predicate_aware`])
/// additionally hashes the newest few outcomes of a dedicated
/// [`PredicateHistory`] register into every table index, letting
/// entries specialize on the resolved predicate context the paper's PGU
/// mechanism targets — without perturbing the branch-outcome history.
///
/// # Examples
///
/// ```
/// use predbranch_core::BranchPredictor;
/// use predbranch_modern::Tage;
///
/// let t = Tage::new(4, 10, 64);
/// assert_eq!(t.name(), "tage-4/10/64");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tage {
    num_tables: usize,
    index_bits: u32,
    max_history: u32,
    lens: [u32; MAX_TAGE_TABLES],
    base: CounterTable,
    /// Tagged entries, all tables flattened: table `t` occupies
    /// `t << index_bits ..`.
    entries: Vec<TageEntry>,
    hist: LongHistory,
    idx_folds: [FoldedHistory; MAX_TAGE_TABLES],
    tag_folds: [[FoldedHistory; 2]; MAX_TAGE_TABLES],
    /// Chooser in `-8..=7`: non-negative trusts the alternate
    /// prediction when the provider entry is weak and new.
    use_alt_on_na: i8,
    /// Allocation-randomizing LFSR; stepped only at commit.
    lfsr: u16,
    predicate: bool,
    pred_hist: PredicateHistory,
    checkpoints: Ring<TageCheckpoint, TAGE_SNAPSHOTS>,
}

impl Tage {
    /// Creates a TAGE predictor with `tables` tagged tables of
    /// `2^index_bits` entries each, over history lengths growing
    /// geometrically from `MIN_HISTORY` to `max_history`.
    ///
    /// # Panics
    ///
    /// Panics if `tables` is 0 or greater than [`MAX_TAGE_TABLES`],
    /// `index_bits` is outside `1..=20`, or `max_history` leaves no room
    /// for a strictly increasing series
    /// (`MIN_HISTORY + tables - 1 ..= 256`).
    pub fn new(tables: u32, index_bits: u32, max_history: u32) -> Self {
        assert!(
            (1..=MAX_TAGE_TABLES as u32).contains(&tables),
            "tage table count must be 1..={MAX_TAGE_TABLES}"
        );
        assert!(
            (1..=20).contains(&index_bits),
            "tage index bits must be 1..=20"
        );
        assert!(
            (MIN_HISTORY + tables - 1..=predbranch_core::MAX_LONG_HISTORY).contains(&max_history),
            "tage max history must be {}..={} for {tables} tables",
            MIN_HISTORY + tables - 1,
            predbranch_core::MAX_LONG_HISTORY,
        );

        let num_tables = tables as usize;
        let mut lens = [0u32; MAX_TAGE_TABLES];
        for (t, len) in lens.iter_mut().enumerate().take(num_tables) {
            *len = geometric_length(t as u32, tables, max_history);
        }
        // enforce strict monotonicity after rounding
        for t in 1..num_tables {
            lens[t] = lens[t].max(lens[t - 1] + 1);
        }

        let dummy = FoldedHistory::new(1, 1);
        let mut idx_folds = [dummy; MAX_TAGE_TABLES];
        let mut tag_folds = [[dummy; 2]; MAX_TAGE_TABLES];
        for t in 0..num_tables {
            idx_folds[t] = FoldedHistory::new(lens[t], index_bits.min(32));
            tag_folds[t] = [
                FoldedHistory::new(lens[t], TAG_BITS),
                FoldedHistory::new(lens[t], TAG_BITS - 1),
            ];
        }

        Tage {
            num_tables,
            index_bits,
            max_history,
            lens,
            base: CounterTable::new(index_bits.min(28)),
            entries: vec![TageEntry::empty(); num_tables << index_bits],
            hist: LongHistory::new(max_history),
            idx_folds,
            tag_folds,
            use_alt_on_na: 0,
            lfsr: 0xACE1,
            predicate: false,
            pred_hist: PredicateHistory::new(PRED_DELAY),
            checkpoints: Ring::new(),
        }
    }

    /// Enables the predicate-history feature: the newest
    /// `PRED_INDEX_OUTCOMES` resolved predicate-definition outcomes
    /// are hashed into every table index.
    pub fn predicate_aware(mut self) -> Self {
        self.predicate = true;
        self
    }

    fn index_mask(&self) -> u64 {
        (1u64 << self.index_bits) - 1
    }

    fn entry(&self, table: usize, index: u32) -> &TageEntry {
        &self.entries[(table << self.index_bits) | index as usize]
    }

    fn entry_mut(&mut self, table: usize, index: u32) -> &mut TageEntry {
        &mut self.entries[(table << self.index_bits) | index as usize]
    }

    fn table_index(&self, table: usize, pc: u32) -> u32 {
        let pc = u64::from(pc);
        let mut h = pc ^ (pc >> self.index_bits.min(16)) ^ self.idx_folds[table].value();
        h ^= (table as u64) << 2;
        if self.predicate {
            h ^= self.pred_hist.value() & ((1 << PRED_INDEX_OUTCOMES) - 1);
        }
        (h & self.index_mask()) as u32
    }

    fn table_tag(&self, table: usize, pc: u32) -> u16 {
        let h = u64::from(pc)
            ^ self.tag_folds[table][0].value()
            ^ (self.tag_folds[table][1].value() << 1);
        (h & TAG_MASK) as u16
    }

    /// The complete fetch-time derivation for `pc`: indices, tags,
    /// provider/alternate selection and the prediction. Pure — called
    /// by both `predict` and `speculate` (which checkpoints it).
    fn lookup(&self, pc: u32) -> Lookup {
        let mut indices = [0u32; MAX_TAGE_TABLES];
        let mut tags = [0u16; MAX_TAGE_TABLES];
        for t in 0..self.num_tables {
            indices[t] = self.table_index(t, pc);
            tags[t] = self.table_tag(t, pc);
        }
        let base_index = u64::from(pc);
        let base_pred = self.base.predict(base_index);

        let mut provider = NO_TABLE;
        let mut alt_table = NO_TABLE;
        for t in (0..self.num_tables).rev() {
            if self.entry(t, indices[t]).tag == tags[t] {
                if provider == NO_TABLE {
                    provider = t as u8;
                } else {
                    alt_table = t as u8;
                    break;
                }
            }
        }

        let alt_pred = if alt_table == NO_TABLE {
            base_pred
        } else {
            self.entry(alt_table as usize, indices[alt_table as usize])
                .predict()
        };
        let (provider_pred, prediction) = if provider == NO_TABLE {
            (base_pred, base_pred)
        } else {
            let e = self.entry(provider as usize, indices[provider as usize]);
            let use_alt = e.is_weak_new() && self.use_alt_on_na >= 0;
            (e.predict(), if use_alt { alt_pred } else { e.predict() })
        };

        Lookup {
            base_index,
            indices,
            tags,
            provider,
            alt_table,
            provider_pred,
            alt_pred,
            prediction,
        }
    }

    /// Shifts one outcome into the long history, updating every folded
    /// register first (they must see the pre-shift state).
    fn shift_outcome(&mut self, outcome: bool) {
        for t in 0..self.num_tables {
            self.idx_folds[t].update(&self.hist, outcome);
            self.tag_folds[t][0].update(&self.hist, outcome);
            self.tag_folds[t][1].update(&self.hist, outcome);
        }
        self.hist.shift_in(outcome);
    }

    fn next_lfsr(&mut self) -> u16 {
        self.lfsr = (self.lfsr >> 1) ^ (0xB400 * (self.lfsr & 1));
        self.lfsr
    }

    fn train(&mut self, cp: &TageCheckpoint, taken: bool) {
        let l = cp.lookup;
        if l.provider != NO_TABLE {
            let p = l.provider as usize;
            let pi = l.indices[p];
            let weak_new = self.entry(p, pi).is_weak_new();

            // chooser: when a weak new provider disagreed with its
            // alternate, learn which of the two to trust next time
            if weak_new && l.provider_pred != l.alt_pred {
                self.use_alt_on_na = if l.alt_pred == taken {
                    (self.use_alt_on_na + 1).min(7)
                } else {
                    (self.use_alt_on_na - 1).max(-8)
                };
            }

            // usefulness tracks whether the provider beat its alternate
            if l.provider_pred != l.alt_pred {
                let e = self.entry_mut(p, pi);
                if l.provider_pred == taken {
                    e.useful = (e.useful + 1).min(3);
                } else {
                    e.useful = e.useful.saturating_sub(1);
                }
            }

            self.entry_mut(p, pi).train(taken);

            // keep the fallback fresh while the provider establishes
            // itself, so a failed allocation degrades gracefully
            if weak_new {
                if l.alt_table == NO_TABLE {
                    self.base.update(l.base_index, taken);
                } else {
                    let a = l.alt_table as usize;
                    self.entry_mut(a, l.indices[a]).train(taken);
                }
            }
        } else {
            self.base.update(l.base_index, taken);
        }

        // allocate a longer-history entry on a TAGE misprediction
        if l.prediction != taken {
            let above = if l.provider == NO_TABLE {
                0
            } else {
                l.provider as usize + 1
            };
            if above < self.num_tables {
                // randomize the first candidate so one hot slot doesn't
                // monopolize allocations
                let skip = usize::from(self.next_lfsr() & 1 == 1);
                let start = (above + skip).min(self.num_tables - 1);
                let mut allocated = false;
                for t in start..self.num_tables {
                    let e = self.entry_mut(t, l.indices[t]);
                    if e.useful == 0 {
                        *e = TageEntry {
                            ctr: if taken { 0 } else { -1 },
                            tag: l.tags[t],
                            useful: 0,
                        };
                        allocated = true;
                        break;
                    }
                }
                if !allocated {
                    // every candidate defended itself: decay them so a
                    // future allocation can succeed
                    for t in start..self.num_tables {
                        let e = self.entry_mut(t, l.indices[t]);
                        e.useful = e.useful.saturating_sub(1);
                    }
                }
            }
        }
    }
}

/// History length of table `t` in a geometric series from
/// `MIN_HISTORY` to `max_history` across `tables` tables.
fn geometric_length(t: u32, tables: u32, max_history: u32) -> u32 {
    if tables == 1 {
        return max_history;
    }
    let ratio = (f64::from(max_history) / f64::from(MIN_HISTORY)).powf(1.0 / f64::from(tables - 1));
    let len = f64::from(MIN_HISTORY) * ratio.powi(t as i32);
    (len + 0.5) as u32
}

impl BranchPredictor for Tage {
    fn name(&self) -> String {
        format!(
            "{}tage-{}/{}/{}",
            if self.predicate { "p" } else { "" },
            self.num_tables,
            self.index_bits,
            self.max_history
        )
    }

    fn predict(&mut self, branch: &BranchInfo, _scoreboard: &PredicateScoreboard) -> bool {
        if self.predicate {
            self.pred_hist.drain_visible(branch.index);
        }
        self.lookup(branch.pc).prediction
    }

    fn speculate(
        &mut self,
        branch: &BranchInfo,
        predicted: bool,
        _scoreboard: &PredicateScoreboard,
    ) {
        if self.predicate {
            // idempotent re-drain: predict already ran at this index
            self.pred_hist.drain_visible(branch.index);
        }
        let lookup = self.lookup(branch.pc);
        self.checkpoints.push_back(TageCheckpoint {
            hist: self.hist,
            idx_folds: self.idx_folds,
            tag_folds: self.tag_folds,
            lookup,
        });
        self.shift_outcome(predicted);
    }

    fn commit(&mut self, _branch: &BranchInfo, taken: bool, _scoreboard: &PredicateScoreboard) {
        let cp = self
            .checkpoints
            .pop_front()
            .expect("tage commit without a matching speculate");
        self.train(&cp, taken);
    }

    fn squash(&mut self, _branch: &BranchInfo, taken: bool, _scoreboard: &PredicateScoreboard) {
        let cp = *self
            .checkpoints
            .front()
            .expect("tage squash without a matching speculate");
        self.hist = cp.hist;
        self.idx_folds = cp.idx_folds;
        self.tag_folds = cp.tag_folds;
        self.shift_outcome(taken);
    }

    fn on_pred_write(&mut self, write: &PredWriteEvent) {
        if self.predicate {
            self.pred_hist.observe(write);
        }
    }

    fn storage_bits(&self) -> usize {
        let entry_bits = 3 + TAG_BITS as usize + 2;
        self.base.storage_bits()
            + self.entries.len() * entry_bits
            + self.hist.storage_bits()
            + 4 // use_alt_on_na
            + 16 // lfsr
            + if self.predicate {
                self.pred_hist.storage_bits()
            } else {
                0
            }
    }
}

impl HistoryInsert for Tage {
    fn insert_history_bit(&mut self, outcome: bool) {
        self.shift_outcome(outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predbranch_isa::PredReg;

    fn info(pc: u32, index: u64) -> BranchInfo {
        BranchInfo {
            pc,
            target: 0,
            guard: PredReg::new(1).unwrap(),
            region: None,
            index,
        }
    }

    fn write(index: u64, value: bool) -> PredWriteEvent {
        PredWriteEvent {
            pc: 0,
            preg: PredReg::new(1).unwrap(),
            value,
            index,
            guard: PredReg::TRUE,
            guard_value: true,
        }
    }

    fn sb() -> PredicateScoreboard {
        PredicateScoreboard::new(64)
    }

    #[test]
    fn name_encodes_geometry() {
        assert_eq!(Tage::new(4, 10, 64).name(), "tage-4/10/64");
        assert_eq!(
            Tage::new(6, 11, 128).predicate_aware().name(),
            "ptage-6/11/128"
        );
    }

    #[test]
    fn geometric_series_spans_min_to_max() {
        let t = Tage::new(4, 10, 64);
        assert_eq!(t.lens[0], MIN_HISTORY);
        assert_eq!(t.lens[3], 64);
        assert!(t.lens.windows(2).take(3).all(|w| w[0] < w[1]));
        // single table degenerates to the full history
        assert_eq!(Tage::new(1, 8, 32).lens[0], 32);
    }

    #[test]
    #[should_panic(expected = "tage max history")]
    fn history_too_short_for_series_rejected() {
        let _ = Tage::new(8, 10, 8);
    }

    #[test]
    fn learns_a_long_irregular_period() {
        // period-23 pattern: beyond a bimodal, learnable from history
        let pattern: Vec<bool> = (0..23).map(|i| (0x5A_F3F2u32 >> i) & 1 == 1).collect();
        let scoreboard = sb();
        let mut tage = Tage::new(4, 10, 64);
        let mut wrong_tail = 0;
        for i in 0..4000usize {
            let taken = pattern[i % 23];
            let b = info(0x40, i as u64);
            let predicted = tage.predict(&b, &scoreboard);
            if i >= 3000 && predicted != taken {
                wrong_tail += 1;
            }
            tage.update(&b, taken, &scoreboard);
        }
        assert!(
            wrong_tail <= 10,
            "tage should lock onto a period-23 pattern, {wrong_tail}/1000 wrong"
        );
    }

    #[test]
    fn squash_repair_equals_correct_speculation() {
        let scoreboard = sb();
        let mut a = Tage::new(4, 8, 48);
        // warm up with some state so the test isn't on a blank predictor
        for i in 0..200u64 {
            let b = info(0x10 + (i % 7) as u32 * 4, i);
            a.update(&b, i % 3 == 0, &scoreboard);
        }
        let mut b = a.clone();

        let branch = info(0x99, 1000);
        let taken = true;
        // a: mispredicted path — speculate wrong, squash, commit
        a.speculate(&branch, !taken, &scoreboard);
        a.squash(&branch, taken, &scoreboard);
        a.commit(&branch, taken, &scoreboard);
        // b: correct path — speculate right, commit
        b.update(&branch, taken, &scoreboard);
        assert_eq!(a, b, "squash repair must fully erase the wrong-path shift");
    }

    #[test]
    fn predict_is_pure() {
        let scoreboard = sb();
        let mut t = Tage::new(4, 8, 48);
        for i in 0..100u64 {
            t.update(&info(0x20, i), i % 2 == 0, &scoreboard);
        }
        let before = t.clone();
        let p1 = t.predict(&info(0x20, 200), &scoreboard);
        let p2 = t.predict(&info(0x20, 200), &scoreboard);
        assert_eq!(p1, p2);
        assert_eq!(t, before);
    }

    #[test]
    fn predicate_variant_reads_predicate_context() {
        // The branch outcome equals the most recent predicate value, and
        // the predicate stream is pseudo-random: the outcome history is
        // then uninformative noise (plain TAGE hovers near 50%), while
        // ptage sees the deciding bit in its predicate-history feature.
        let scoreboard = sb();
        let run = |predicate: bool| -> u32 {
            let mut t = Tage::new(4, 10, 64);
            if predicate {
                t = t.predicate_aware();
            }
            let mut x = 0x9E37_79B9_7F4A_7C15u64;
            let mut wrong_tail = 0;
            for i in 0..6000u64 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let value = x >> 63 == 1;
                t.on_pred_write(&write(i * 20, value));
                let b = info(0x40, i * 20 + PRED_DELAY + 2);
                let predicted = t.predict(&b, &scoreboard);
                if i >= 4000 && predicted != value {
                    wrong_tail += 1;
                }
                t.update(&b, value, &scoreboard);
            }
            wrong_tail
        };
        let ptage = run(true);
        let plain = run(false);
        assert!(
            ptage * 2 < plain,
            "ptage ({ptage}/2000 wrong) should beat tage ({plain}/2000) decisively"
        );
    }

    #[test]
    fn storage_accounts_for_predicate_register() {
        let plain = Tage::new(4, 10, 64);
        let pred = Tage::new(4, 10, 64).predicate_aware();
        assert_eq!(
            pred.storage_bits(),
            plain.storage_bits() + PredicateHistory::new(0).storage_bits()
        );
        // 4 tables * 1024 entries * 16 bits + 2048-bit base + history &c.
        assert!(plain.storage_bits() > 4 * 1024 * 16);
    }

    #[test]
    #[should_panic(expected = "commit without a matching speculate")]
    fn unbalanced_commit_rejected() {
        let scoreboard = sb();
        Tage::new(2, 6, 16).commit(&info(0, 0), true, &scoreboard);
    }
}

//! Regression tests for predictor checkpoint capacity under a full
//! in-flight branch window.
//!
//! The harness speculates a branch *before* checking whether the window
//! is full, so a predictor's checkpoint FIFO transiently holds one more
//! entry than [`WINDOW_CAPACITY`]. A checkpoint ring sized exactly to
//! the window would panic ("ring overflow") on the 65th speculate of a
//! long correctly-predicted run; [`checkpoint_capacity`] sizes it with
//! headroom. These tests fill the window for every modern predictor
//! shape (bare, predicate-aware, and sfpf/pgu-wrapped) and also run the
//! ordinary retire-8 schedule end to end.

use predbranch_core::{
    checkpoint_capacity, HarnessConfig, InsertFilter, PredictionHarness, Timing, WINDOW_CAPACITY,
};
use predbranch_isa::assemble;
use predbranch_modern::{build_modern_stack, ModernSpec};
use predbranch_sim::{Executor, Memory};

/// A loop long enough that, once the predictor warms up, well over
/// [`WINDOW_CAPACITY`] consecutive correct predictions pile up in
/// flight when nothing retires.
const LONG_LOOP: &str = r#"
    mov r1 = 0
loop:
    cmp.lt p1, p2 = r1, 300
    (p1) add r1 = r1, 1
    nop
    (p1) br.region 0, loop
    halt
"#;

const SPECS: &[&str] = &[
    "tage:4/10/64",
    "ptage:4/10/64",
    "mpp:10",
    "pmpp:10",
    "tage:4/10/64+sfpf+pgu8",
    "pmpp:10+sfpf+pgu8",
];

fn run_spec(spec: &str, retire_latency: u64) -> (u64, usize) {
    let program = assemble(LONG_LOOP).unwrap();
    let spec: ModernSpec = spec.parse().unwrap();
    let mut harness = PredictionHarness::new(
        build_modern_stack(&spec),
        HarnessConfig {
            timing: Timing::new(8, retire_latency),
            insert: InsertFilter::All,
        },
    );
    let summary = Executor::new(&program, Memory::new()).run(&mut harness, 1_000_000);
    assert!(summary.halted, "{spec:?} did not halt");
    let in_flight_at_end = harness.in_flight();
    harness.finish();
    assert_eq!(harness.in_flight(), 0);
    (harness.metrics().all.branches.get(), in_flight_at_end)
}

/// The capacity the modern predictors size their snapshot rings with
/// must exceed the window by at least the one-entry speculate overlap.
#[test]
fn checkpoint_capacity_exceeds_window() {
    assert!(checkpoint_capacity(WINDOW_CAPACITY) > WINDOW_CAPACITY);
}

/// Ordinary retire-8 schedule: every shape runs the whole loop and sees
/// every conditional branch.
#[test]
fn every_shape_survives_retire_eight() {
    for spec in SPECS {
        let (branches, _) = run_spec(spec, 8);
        assert_eq!(branches, 301, "{spec}");
    }
}

/// With an effectively infinite retire latency nothing leaves the
/// window until it is full, so the harness force-retires the oldest
/// branch on every subsequent fetch. Each predictor's checkpoint FIFO
/// must absorb the 65-deep transient without overflowing, and the
/// window must actually have filled (otherwise the test proves
/// nothing).
#[test]
fn full_window_does_not_overflow_checkpoints() {
    for spec in SPECS {
        let (branches, in_flight_at_end) = run_spec(spec, 1 << 40);
        assert_eq!(branches, 301, "{spec}");
        assert_eq!(
            in_flight_at_end, WINDOW_CAPACITY,
            "{spec}: window never filled; force-retire path untested"
        );
    }
}

//! End-to-end tests of the `pbpredict` binary.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn scratch(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "predbranch-modern-test-{}-{name}",
        std::process::id()
    ));
    p
}

const PROGRAM: &str = "    mov r1 = 0\nloop:\n    cmp.lt p1, p2 = r1, 100\n    (p1) add r1 = r1, 1\n    nop\n    nop\n    (p1) br.region 0, loop\n    halt\n";

#[test]
fn default_predictor_reports_metrics() {
    let src = scratch("default.s");
    fs::write(&src, PROGRAM).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_pbpredict"))
        .arg(src.to_str().unwrap())
        .output()
        .expect("pbpredict runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("predictor:        gshare-13/13"), "{text}");
    assert!(text.contains("cond branches:    101"), "{text}");
    assert!(text.contains("IPC:"), "{text}");
    fs::remove_file(src).ok();
}

#[test]
fn oracle_spec_is_perfect() {
    let src = scratch("oracle.s");
    fs::write(&src, PROGRAM).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_pbpredict"))
        .args([src.to_str().unwrap(), "--predictor", "oracle"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("mispredictions:   0"), "{text}");
    fs::remove_file(src).ok();
}

#[test]
fn composite_spec_parses_and_runs() {
    let src = scratch("composite.s");
    fs::write(&src, PROGRAM).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_pbpredict"))
        .args([
            src.to_str().unwrap(),
            "--predictor",
            "perceptron:7/14+sfpf+pgu8",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("sfpf+pgu[d8]+perceptron-7/14"), "{text}");
    fs::remove_file(src).ok();
}

#[test]
fn modern_specs_parse_and_run() {
    let src = scratch("modern.s");
    fs::write(&src, PROGRAM).unwrap();
    for (spec, name) in [
        ("tage:4/10/64", "predictor:        tage-4/10/64"),
        (
            "pmpp:12+sfpf+pgu8",
            "predictor:        sfpf+pgu[d8]+pmpp-12",
        ),
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_pbpredict"))
            .args([src.to_str().unwrap(), "--predictor", spec])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{spec}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8(out.stdout).unwrap();
        assert!(text.contains(name), "{spec}: {text}");
        assert!(text.contains("cond branches:    101"), "{spec}: {text}");
    }
    fs::remove_file(src).ok();
}

#[test]
fn bad_spec_is_rejected() {
    let src = scratch("badspec.s");
    fs::write(&src, PROGRAM).unwrap();
    // `tage` is a modern base but takes three parameters
    let out = Command::new(env!("CARGO_BIN_EXE_pbpredict"))
        .args([src.to_str().unwrap(), "--predictor", "tage:9"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("bad predictor spec"), "{err}");
    fs::remove_file(src).ok();
}

#[test]
fn stack_listing_matches_the_generated_table() {
    // the printed listing must be exactly the variants the stack macros
    // emitted — one line per variant, names and payload types matching
    let out = Command::new(env!("CARGO_BIN_EXE_pbpredict"))
        .arg("--list-stacks")
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    let printed: Vec<(String, String)> = text
        .lines()
        .skip(1) // header
        .map(|line| {
            let mut cols = line.split_whitespace();
            (
                cols.next().unwrap().to_string(),
                cols.next().unwrap().to_string(),
            )
        })
        .collect();
    let expected: Vec<(String, String)> = predbranch_modern::all_stack_variants()
        .iter()
        .map(|v| (v.name.to_string(), v.type_name()))
        .collect();
    assert_eq!(printed, expected, "CLI listing drifted from the enum");
}

//! Property tests pinning the modern predictors' speculative lifecycle
//! to the idealized immediate-update methodology: driven through the
//! in-flight window at retire latency 0, TAGE and the multiperspective
//! perceptron must end every run in *exactly* the state the plain
//! predict-then-update loop produces — byte for byte, for arbitrary
//! interleavings of branches and predicate writes. Any asymmetry
//! between `speculate`/`squash`/`commit` and `update` (a missed
//! rollback, a double history shift, an LFSR step on the wrong path)
//! shows up as a state divergence here.

use proptest::prelude::*;

use predbranch_core::{
    BranchInfo, BranchPredictor, HarnessConfig, InsertFilter, PredictionHarness, Timing,
};
use predbranch_isa::PredReg;
use predbranch_modern::{Mpp, Tage};
use predbranch_sim::{BranchEvent, EventSink, PredWriteEvent, PredicateScoreboard};

const RESOLVE_LATENCY: u64 = 4;

#[derive(Debug, Clone, Copy)]
enum Ev {
    Branch { pc: u32, taken: bool },
    Write { pc: u32, preg: u8, value: bool },
}

fn arb_event() -> impl Strategy<Value = Ev> {
    prop_oneof![
        3 => (0u32..512, any::<bool>()).prop_map(|(pc, taken)| Ev::Branch { pc, taken }),
        1 => (0u32..512, 1u8..64, any::<bool>())
            .prop_map(|(pc, preg, value)| Ev::Write { pc, preg, value }),
    ]
}

fn branch_event(pc: u32, taken: bool, index: u64) -> BranchEvent {
    BranchEvent {
        pc,
        target: 0,
        guard: PredReg::new(1).unwrap(),
        taken,
        conditional: true,
        region: None,
        index,
    }
}

fn write_event(pc: u32, preg: u8, value: bool, index: u64) -> PredWriteEvent {
    PredWriteEvent {
        pc,
        preg: PredReg::new(preg).unwrap(),
        value,
        index,
        guard: PredReg::TRUE,
        guard_value: true,
    }
}

/// Replays `events` through the windowed harness and returns the final
/// predictor state plus the misprediction count.
fn drive_windowed<P: BranchPredictor>(predictor: P, events: &[Ev], retire: u64) -> (P, u64) {
    let mut harness = PredictionHarness::new(
        predictor,
        HarnessConfig {
            timing: Timing::new(RESOLVE_LATENCY, retire),
            insert: InsertFilter::All,
        },
    );
    for (index, ev) in events.iter().enumerate() {
        let index = index as u64;
        match *ev {
            Ev::Branch { pc, taken } => harness.branch(&branch_event(pc, taken, index)),
            Ev::Write { pc, preg, value } => {
                harness.pred_write(&write_event(pc, preg, value, index))
            }
        }
    }
    let (predictor, metrics) = harness.into_parts();
    (predictor, metrics.all.mispredictions.get())
}

/// The inline-update reference: the pre-window methodology, predict
/// then immediately train, no speculation machinery involved.
fn drive_inline<P: BranchPredictor>(mut predictor: P, events: &[Ev]) -> (P, u64) {
    let mut scoreboard = PredicateScoreboard::new(RESOLVE_LATENCY);
    let mut mispredictions = 0u64;
    for (index, ev) in events.iter().enumerate() {
        let index = index as u64;
        match *ev {
            Ev::Branch { pc, taken } => {
                let info = BranchInfo::from_event(&branch_event(pc, taken, index));
                if predictor.predict(&info, &scoreboard) != taken {
                    mispredictions += 1;
                }
                predictor.update(&info, taken, &scoreboard);
            }
            Ev::Write { pc, preg, value } => {
                let event = write_event(pc, preg, value, index);
                scoreboard.observe(&event);
                predictor.on_pred_write(&event);
            }
        }
    }
    (predictor, mispredictions)
}

fn assert_retire_zero_matches<P>(fresh: P, events: &[Ev])
where
    P: BranchPredictor + Clone + PartialEq + std::fmt::Debug,
{
    let (windowed, windowed_misp) = drive_windowed(fresh.clone(), events, 0);
    let (inline, inline_misp) = drive_inline(fresh, events);
    assert_eq!(
        windowed, inline,
        "commit-order state diverged from inline update"
    );
    assert_eq!(windowed_misp, inline_misp, "misprediction counts diverged");
}

proptest! {
    /// At retire latency 0 every branch retires before the next event,
    /// so the speculate → (squash) → commit lifecycle must collapse to
    /// the inline predict-then-update loop exactly, for both modern
    /// predictors and their predicate-aware variants.
    #[test]
    fn retire_zero_state_equals_inline_reference(
        events in prop::collection::vec(arb_event(), 0..300),
    ) {
        assert_retire_zero_matches(Tage::new(4, 8, 48), &events);
        assert_retire_zero_matches(Tage::new(4, 8, 48).predicate_aware(), &events);
        assert_retire_zero_matches(Mpp::new(8), &events);
        assert_retire_zero_matches(Mpp::new(8).predicate_aware(), &events);
    }

    /// Deep and force-retired windows (arbitrary latency up to "never
    /// retires on its own") keep the checkpoint FIFOs balanced: the run
    /// completes without overflow and sees every branch exactly once.
    #[test]
    fn arbitrary_retire_latency_stays_balanced(
        events in prop::collection::vec(arb_event(), 0..300),
        retire in prop_oneof![Just(0u64), 1u64..16, Just(1 << 40)],
    ) {
        let n_branches = events
            .iter()
            .filter(|e| matches!(e, Ev::Branch { .. }))
            .count() as u64;
        for (tage, misp) in [
            drive_windowed(Tage::new(4, 8, 48), &events, retire),
            drive_windowed(Tage::new(4, 8, 48).predicate_aware(), &events, retire),
        ] {
            prop_assert!(misp <= n_branches);
            prop_assert_eq!(tage.name().contains("tage"), true);
        }
        let (mpp, misp) = drive_windowed(Mpp::new(8).predicate_aware(), &events, retire);
        prop_assert!(misp <= n_branches);
        prop_assert_eq!(mpp.name(), "pmpp-8");
    }
}

//! # predbranch — Incorporating Predicate Information into Branch Predictors
//!
//! A full reimplementation of the HPCA-9 (2003) study by Simon, Calder &
//! Ferrante as a Rust workspace, from the predicated ISA up to the
//! experiment harness. This facade crate re-exports every subsystem:
//!
//! * [`isa`] — the EPIC-style predicated instruction set (assembler,
//!   disassembler, binary encoding);
//! * [`compiler`] — CFG construction, profiling, and IMPACT-style
//!   if-conversion that leaves *region-based branches*;
//! * [`sim`] — the functional executor, predicate scoreboard, and
//!   pipeline timing model;
//! * [`core`] — the paper's predictors: the squash false-path filter and
//!   the predicate global-update predictor, over conventional baselines;
//! * [`modern`] — the post-2003 tier: TAGE and a multiperspective
//!   perceptron, each with a predicate-aware variant, asking the
//!   paper's question against modern baselines;
//! * [`workloads`] — eleven SPECint-2000-analog benchmarks;
//! * [`stats`] — counters, histograms, and table/series rendering;
//! * [`trace`] — binary trace record/replay with an on-disk trace
//!   cache, so sweeps execute each (binary, input) once;
//! * [`sweep`] — a deterministic work-stealing sweep engine (worker
//!   pool, run manifests, resumable checkpoints) whose parallel output
//!   is byte-identical to sequential; sweeps run *gang-replayed* by
//!   default — one pass over each event stream feeds every predictor
//!   configuration as an independent `GangHarness` lane;
//! * [`characterize`] — streaming predictability characterization:
//!   per-branch entropy / mutual-information metrics and the four-way
//!   H2P taxonomy (biased / history-predictable / predicate-predictable
//!   / fundamentally-hard) computed in one pass over an event stream.
//!
//! # Quickstart
//!
//! ```
//! use predbranch::core::{Gshare, HarnessConfig, PredictionHarness, SquashFilter};
//! use predbranch::sim::Executor;
//! use predbranch::workloads::{compile_benchmark, suite, CompileOptions, EVAL_SEED};
//!
//! // 1. take a benchmark and compile it with profile-guided if-conversion
//! let bench = &suite()[0];
//! let compiled = compile_benchmark(bench, &CompileOptions::default());
//! assert!(compiled.predicated.stats().region_branches > 0);
//!
//! // 2. predict its branches with gshare + the squash false-path filter
//! let predictor = SquashFilter::new(Gshare::new(13, 13));
//! let mut harness = PredictionHarness::new(predictor, HarnessConfig::default());
//! Executor::new(&compiled.predicated, bench.input(EVAL_SEED))
//!     .run(&mut harness, 8_000_000);
//!
//! let metrics = harness.metrics();
//! assert!(metrics.all.branches.get() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use predbranch_characterize as characterize;
pub use predbranch_compiler as compiler;
pub use predbranch_core as core;
pub use predbranch_isa as isa;
pub use predbranch_modern as modern;
pub use predbranch_sim as sim;
pub use predbranch_stats as stats;
pub use predbranch_sweep as sweep;
pub use predbranch_trace as trace;
pub use predbranch_workloads as workloads;

/// Everything a typical experiment needs, in one import.
///
/// # Examples
///
/// ```
/// use predbranch::prelude::*;
///
/// let bench = &suite()[7]; // "gap"
/// let compiled = compile_benchmark(bench, &CompileOptions::default());
/// let spec: PredictorSpec = "gshare:12/12+pgu8".parse().unwrap();
/// let mut harness = PredictionHarness::new(
///     build_predictor(&spec),
///     HarnessConfig::default(),
/// );
/// Executor::new(&compiled.predicated, bench.input(EVAL_SEED)).run(&mut harness, 8_000_000);
/// assert!(harness.metrics().all.misp_rate().percent() < 1.0);
/// ```
pub mod prelude {
    pub use predbranch_compiler::{
        hoist_compares, if_convert, lower, profile_cfg, CfgBuilder, Cond, IfConvertConfig,
    };
    pub use predbranch_core::{
        build_predictor, BranchPredictor, HarnessConfig, InsertFilter, PredictionHarness,
        PredictorSpec,
    };
    pub use predbranch_isa::{assemble, Gpr, PredReg, Program};
    pub use predbranch_sim::{Executor, Memory, PipelineConfig};
    pub use predbranch_stats::{Cell, Series, Table};
    pub use predbranch_sweep::{Checkpoint, ManifestBuilder, WorkerPool};
    pub use predbranch_trace::{CacheKey, TraceCache, TraceReader, TraceWriter};
    pub use predbranch_workloads::{
        compile_benchmark, suite, CompileOptions, EVAL_SEED, TRAIN_SEED,
    };
}

//! `pbsim` — run a predbranch assembly program and report dynamic
//! statistics.
//!
//! ```text
//! pbsim <file.s|file.hex> [--hex] [--max N] [--latency L] [--trace]
//! ```

use std::fs;
use std::process::ExitCode;

use predbranch_isa::assemble;
use predbranch_sim::{Event, ExecMetrics, Executor, GuardKnowledgeStats, Memory, TraceSink};

struct Options {
    path: String,
    max: u64,
    latency: u64,
    trace: bool,
    hex: bool,
}

fn parse_args() -> Option<Options> {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        path: String::new(),
        max: 10_000_000,
        latency: 8,
        trace: false,
        hex: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--max" => opts.max = args.next()?.parse().ok()?,
            "--latency" => opts.latency = args.next()?.parse().ok()?,
            "--trace" => opts.trace = true,
            "--hex" => opts.hex = true,
            path if opts.path.is_empty() && !path.starts_with('-') => {
                opts.path = path.to_string();
            }
            _ => return None,
        }
    }
    if opts.path.is_empty() {
        None
    } else {
        Some(opts)
    }
}

fn main() -> ExitCode {
    let Some(opts) = parse_args() else {
        eprintln!("usage: pbsim <file.s> [--max N] [--latency L] [--trace]");
        return ExitCode::FAILURE;
    };
    let text = match fs::read_to_string(&opts.path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("pbsim: cannot read {}: {e}", opts.path);
            return ExitCode::FAILURE;
        }
    };
    let program = if opts.hex {
        let words: Result<Vec<u64>, _> = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .map(|l| u64::from_str_radix(l, 16))
            .collect();
        let insts = words
            .map_err(|e| e.to_string())
            .and_then(|w| predbranch_isa::decode_program(&w).map_err(|e| e.to_string()))
            .and_then(|insts| predbranch_isa::Program::new(insts).map_err(|e| e.to_string()));
        match insts {
            Ok(p) => p,
            Err(e) => {
                eprintln!("pbsim: {}: {e}", opts.path);
                return ExitCode::FAILURE;
            }
        }
    } else {
        match assemble(&text) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("pbsim: {}: {e}", opts.path);
                return ExitCode::FAILURE;
            }
        }
    };

    let mut exec = Executor::new(&program, Memory::new());
    let mut sinks = (
        ExecMetrics::new(),
        (GuardKnowledgeStats::new(opts.latency), TraceSink::new()),
    );
    let summary = exec.run(&mut sinks, opts.max);
    let (metrics, (knowledge, trace)) = sinks;

    if opts.trace {
        for event in trace.events() {
            match event {
                Event::Branch(b) => println!(
                    "branch  @{:>5} pc {:>5} guard {:<4} {}",
                    b.index,
                    b.pc,
                    b.guard.to_string(),
                    if b.taken { "taken" } else { "not-taken" }
                ),
                Event::PredWrite(w) => println!(
                    "predset @{:>5} pc {:>5} {:<4} = {}",
                    w.index,
                    w.pc,
                    w.preg.to_string(),
                    w.value
                ),
            }
        }
    }

    println!("halted:              {}", summary.halted);
    println!("instructions:        {}", summary.instructions);
    println!("branches:            {}", summary.branches);
    println!("  conditional:       {}", summary.conditional_branches);
    println!("  taken:             {}", summary.taken_conditional);
    println!("  region-based:      {}", summary.region_branches);
    println!("predicate writes:    {}", summary.pred_writes);
    println!("taken fraction:      {}", metrics.taken_fraction());
    println!(
        "guard @fetch (lat {}): known-false {} / known-true {} / unknown {}",
        opts.latency,
        knowledge.known_false(),
        knowledge.known_true(),
        knowledge.unknown()
    );
    if summary.halted {
        ExitCode::SUCCESS
    } else {
        eprintln!("pbsim: instruction budget exhausted");
        ExitCode::FAILURE
    }
}

//! The functional executor.

use predbranch_isa::{apply_cmp_type, Gpr, Inst, Op, Program, Src};

use crate::memory::Memory;
use crate::state::ArchState;
use crate::trace::{BranchEvent, Event, EventSink, PredWriteEvent};

/// Number of events a batched producer accumulates before flushing them
/// to the sink in one [`EventSink::events`] call. Large enough to
/// amortize per-batch dispatch to nothing, small enough that the buffer
/// (at 48 bytes per event) stays comfortably inside L1/L2.
pub const EVENT_BATCH_CAPACITY: usize = 1024;

/// Summary of one [`Executor::run`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunSummary {
    /// Dynamic instructions executed (including guarded-off ones, which
    /// occupy fetch slots).
    pub instructions: u64,
    /// Dynamic branches of any kind.
    pub branches: u64,
    /// Dynamic conditional branches (guard ≠ `p0`).
    pub conditional_branches: u64,
    /// Dynamic region-based branches.
    pub region_branches: u64,
    /// Dynamic taken conditional branches.
    pub taken_conditional: u64,
    /// Dynamic predicate writes.
    pub pred_writes: u64,
    /// Whether the program reached `halt` (false = instruction budget
    /// exhausted).
    pub halted: bool,
}

/// A functional (architecture-level) executor for predicated programs.
///
/// Every instruction is "fetched" (consumes a dynamic index and, in the
/// timing model, a fetch slot) regardless of its guard; guarded-off
/// instructions simply have no architectural effect — the defining
/// property of predicated execution that the paper's techniques exploit.
///
/// The executor streams [`BranchEvent`]s and [`PredWriteEvent`]s to an
/// [`EventSink`] so arbitrarily long runs use constant memory.
#[derive(Debug)]
pub struct Executor<'a> {
    program: &'a Program,
    state: ArchState,
    memory: Memory,
    icount: u64,
}

impl<'a> Executor<'a> {
    /// Creates an executor at pc 0 with zeroed registers.
    pub fn new(program: &'a Program, memory: Memory) -> Self {
        Executor {
            program,
            state: ArchState::new(),
            memory,
            icount: 0,
        }
    }

    /// The architectural state.
    pub fn state(&self) -> &ArchState {
        &self.state
    }

    /// The data memory.
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Dynamic instructions executed so far.
    pub fn instructions(&self) -> u64 {
        self.icount
    }

    fn read_src(&self, src: Src) -> i64 {
        match src {
            Src::Reg(r) => self.state.reg(r),
            Src::Imm(i) => i as i64,
        }
    }

    /// Executes one instruction, streaming events to `sink`.
    ///
    /// Returns `false` once the machine is halted (and executes nothing).
    pub fn step(&mut self, sink: &mut impl EventSink, summary: &mut RunSummary) -> bool {
        if self.state.is_halted() {
            return false;
        }
        let pc = self.state.pc();
        // A hand-written program can fall off its own end (execution
        // reaching one past the last instruction); treat it as an
        // un-halted stop rather than a fault.
        let Some(inst): Option<&Inst> = self.program.inst(pc) else {
            return false;
        };
        let index = self.icount;
        self.icount += 1;
        summary.instructions += 1;
        sink.instruction(pc, index);
        let guard = self.state.pred(inst.guard);
        let mut next_pc = pc + 1;

        match inst.op {
            Op::Nop => {}
            Op::Halt => {
                if guard {
                    self.state.halt();
                }
            }
            Op::Alu {
                op,
                dst,
                src1,
                src2,
            } => {
                if guard {
                    let v = op.eval(self.state.reg(src1), self.read_src(src2));
                    self.state.set_reg(dst, v);
                }
            }
            Op::Mov { dst, src } => {
                if guard {
                    let v = self.read_src(src);
                    self.state.set_reg(dst, v);
                }
            }
            Op::Load { dst, base, offset } => {
                if guard {
                    let addr = self.state.reg(base).wrapping_add(offset as i64);
                    let v = self.memory.load(addr);
                    self.state.set_reg(dst, v);
                }
            }
            Op::Store { src, base, offset } => {
                if guard {
                    let addr = self.state.reg(base).wrapping_add(offset as i64);
                    self.memory.store(addr, self.state.reg(src));
                }
            }
            Op::Cmp {
                ctype,
                cond,
                p_true,
                p_false,
                src1,
                src2,
            } => {
                let result = cond.eval(self.state.reg(src1), self.read_src(src2));
                let old = (self.state.pred(p_true), self.state.pred(p_false));
                let new = apply_cmp_type(ctype, guard, result, old);
                // A write is architecturally performed when the compare
                // "fires": always for norm/unc under a true guard, for unc
                // even under a false guard (it clears), and for the
                // parallel types only when the result triggers them.
                let performed = if guard {
                    fired(ctype, result)
                } else {
                    ctype.writes_when_guard_false()
                };
                for (preg, value) in [(p_true, new.0), (p_false, new.1)] {
                    self.state.set_pred(preg, value);
                    if performed && !preg.is_always_true() {
                        summary.pred_writes += 1;
                        sink.pred_write(&PredWriteEvent {
                            pc,
                            preg,
                            value,
                            index,
                            guard: inst.guard,
                            guard_value: guard,
                        });
                    }
                }
            }
            Op::Br { target, region } => {
                let conditional = !inst.guard.is_always_true();
                summary.branches += 1;
                if conditional {
                    summary.conditional_branches += 1;
                    if guard {
                        summary.taken_conditional += 1;
                    }
                }
                if region.is_some() {
                    summary.region_branches += 1;
                }
                if guard {
                    next_pc = target;
                }
                sink.branch(&BranchEvent {
                    pc,
                    target,
                    guard: inst.guard,
                    taken: guard,
                    conditional,
                    region,
                    index,
                });
            }
        }

        if !self.state.is_halted() {
            self.state.set_pc(next_pc);
        }
        true
    }

    /// Runs until `halt` or `max_instructions`, streaming events to
    /// `sink`.
    pub fn run(&mut self, sink: &mut impl EventSink, max_instructions: u64) -> RunSummary {
        let mut summary = RunSummary::default();
        while summary.instructions < max_instructions {
            if !self.step(sink, &mut summary) {
                break;
            }
        }
        summary.halted = self.state.is_halted();
        summary
    }

    /// Runs like [`Executor::run`] but accumulates events into `buffer`
    /// (a reusable scratch vector — contents are overwritten) and
    /// delivers them to `sink` in [`EVENT_BATCH_CAPACITY`]-sized chunks
    /// via [`EventSink::events`], so a dynamically-dispatched sink pays
    /// one virtual call per chunk instead of one per event.
    ///
    /// Events arrive in the same order with the same payloads as under
    /// [`Executor::run`]; the only observable difference is that
    /// per-instruction [`EventSink::instruction`] callbacks are *not*
    /// forwarded (instructions are not [`Event`]s). Use [`Executor::run`]
    /// for sinks that account fetch slots (e.g. a harness with a
    /// timeline attached).
    pub fn run_batched(
        &mut self,
        sink: &mut impl EventSink,
        max_instructions: u64,
        buffer: &mut Vec<Event>,
    ) -> RunSummary {
        /// Adapter collecting step events into the batch buffer.
        struct Collector<'b>(&'b mut Vec<Event>);
        impl EventSink for Collector<'_> {
            fn branch(&mut self, event: &BranchEvent) {
                self.0.push(Event::Branch(*event));
            }
            fn pred_write(&mut self, event: &PredWriteEvent) {
                self.0.push(Event::PredWrite(*event));
            }
        }

        buffer.clear();
        let mut summary = RunSummary::default();
        let mut running = true;
        while running {
            while running
                && summary.instructions < max_instructions
                && buffer.len() < EVENT_BATCH_CAPACITY
            {
                running = self.step(&mut Collector(buffer), &mut summary);
            }
            sink.events(buffer);
            buffer.clear();
            running = running && summary.instructions < max_instructions;
        }
        summary.halted = self.state.is_halted();
        summary
    }

    /// Convenience accessor: value of `r<i>`, for tests.
    pub fn reg(&self, r: Gpr) -> i64 {
        self.state.reg(r)
    }
}

/// Whether a parallel compare type fires (performs its write) for the
/// given relational result under a true guard.
fn fired(ctype: predbranch_isa::CmpType, result: bool) -> bool {
    use predbranch_isa::CmpType::*;
    match ctype {
        Norm | Unc => true,
        And => !result,
        Or | OrAndcm => result,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{NullSink, TraceSink};
    use predbranch_isa::{assemble, PredReg};

    fn run_asm(src: &str) -> (RunSummary, TraceSink, ArchState, Memory) {
        let program = assemble(src).expect("test programs assemble");
        let mut exec = Executor::new(&program, Memory::new());
        let mut trace = TraceSink::new();
        let summary = exec.run(&mut trace, 100_000);
        (summary, trace, exec.state.clone(), exec.memory.clone())
    }

    fn r(i: u8) -> Gpr {
        Gpr::new(i).unwrap()
    }

    #[test]
    fn arithmetic_and_memory() {
        let (summary, _, state, memory) = run_asm(
            r#"
                mov r1 = 6
                mul r2 = r1, 7
                st [r0 + 10] = r2
                ld r3 = [r0 + 10]
                halt
            "#,
        );
        assert!(summary.halted);
        assert_eq!(state.reg(r(2)), 42);
        assert_eq!(state.reg(r(3)), 42);
        assert_eq!(memory.load(10), 42);
    }

    #[test]
    fn guarded_off_ops_have_no_effect() {
        let (_, _, state, memory) = run_asm(
            r#"
                mov r1 = 1
                cmp.eq p1, p2 = r1, 0      // p1=false, p2=true
                (p1) mov r2 = 99
                (p1) st [r0 + 5] = r1
                (p2) mov r3 = 7
                halt
            "#,
        );
        assert_eq!(state.reg(r(2)), 0);
        assert_eq!(memory.load(5), 0);
        assert_eq!(state.reg(r(3)), 7);
    }

    #[test]
    fn loop_executes_correct_count() {
        let (summary, trace, state, _) = run_asm(
            r#"
                mov r1 = 0
            loop:
                cmp.lt p1, p2 = r1, 10
                (p1) add r1 = r1, 1
                (p1) br loop
                halt
            "#,
        );
        assert!(summary.halted);
        assert_eq!(state.reg(r(1)), 10);
        // the loop branch executes 11 times: 10 taken + 1 not
        assert_eq!(summary.conditional_branches, 11);
        assert_eq!(summary.taken_conditional, 10);
        let outcomes: Vec<bool> = trace.branches().map(|b| b.taken).collect();
        assert_eq!(outcomes.len(), 11);
        assert!(!outcomes[10]);
    }

    #[test]
    fn branch_events_carry_guard_and_region() {
        let (_, trace, _, _) = run_asm(
            r#"
                cmp.eq p3, p4 = r0, r0
                (p4) br.region 9, end     // p4 false: not taken
                (p3) br.region 9, end     // p3 true: taken
                mov r1 = 1                // skipped
            end:
                halt
            "#,
        );
        let branches: Vec<_> = trace.branches().copied().collect();
        assert_eq!(branches.len(), 2);
        assert_eq!(branches[0].guard, PredReg::new(4).unwrap());
        assert!(!branches[0].taken);
        assert_eq!(branches[0].region, Some(9));
        assert!(branches[1].taken);
    }

    #[test]
    fn pred_write_events_for_norm_cmp() {
        let (_, trace, _, _) = run_asm(
            r#"
                mov r1 = 5
                cmp.gt p1, p2 = r1, 0
                halt
            "#,
        );
        let writes: Vec<_> = trace.pred_writes().copied().collect();
        assert_eq!(writes.len(), 2);
        assert_eq!(writes[0].preg, PredReg::new(1).unwrap());
        assert!(writes[0].value);
        assert_eq!(writes[1].preg, PredReg::new(2).unwrap());
        assert!(!writes[1].value);
    }

    #[test]
    fn unc_under_false_guard_clears_and_reports() {
        let (_, trace, state, _) = run_asm(
            r#"
                cmp.ne p1, p2 = r0, r0       // p1=false, p2=true
                cmp.eq.or p3, p4 = r0, r0    // or fires: p3=p4=true
                (p1) cmp.eq.unc p3, p4 = r0, r0 // guard false: clears both
                halt
            "#,
        );
        assert!(!state.pred(PredReg::new(3).unwrap()));
        assert!(!state.pred(PredReg::new(4).unwrap()));
        let clearing: Vec<_> = trace.pred_writes().filter(|w| w.pc == 2).collect();
        assert_eq!(clearing.len(), 2);
        assert!(clearing.iter().all(|w| !w.value));
    }

    #[test]
    fn parallel_or_only_reports_when_it_fires() {
        let (_, trace, _, _) = run_asm(
            r#"
                mov r1 = 1
                cmp.eq.or p1, p2 = r1, 0   // result false: no write, no event
                cmp.eq.or p1, p2 = r1, 1   // fires: writes both true
                halt
            "#,
        );
        let by_pc: Vec<u32> = trace.pred_writes().map(|w| w.pc).collect();
        assert_eq!(by_pc, vec![2, 2]);
    }

    #[test]
    fn guarded_halt_respects_guard() {
        let (summary, _, state, _) = run_asm(
            r#"
                cmp.ne p1, p2 = r0, r0   // p1 = false
                (p1) halt                // skipped
                mov r1 = 3
                halt
            "#,
        );
        assert!(summary.halted);
        assert_eq!(state.reg(r(1)), 3);
    }

    #[test]
    fn falling_off_the_end_stops_without_halting() {
        // last instruction is a conditional branch that is not taken
        let program = assemble("cmp.ne p1, p2 = r0, r0\n (p1) br @0\n halt").unwrap();
        // rearrange: make a program whose guarded-final-instruction falls
        // through — assemble can't omit halt, so jump past it instead
        let program2 = assemble("br end\n halt\nend: (p1) br @1").unwrap();
        let _ = program;
        let mut exec = Executor::new(&program2, Memory::new());
        let summary = exec.run(&mut NullSink, 1_000);
        assert!(!summary.halted, "fell off the end: not a clean halt");
        assert_eq!(summary.instructions, 2);
    }

    #[test]
    fn instruction_budget_stops_runaway() {
        let program = assemble("loop: br loop\n halt").unwrap();
        let mut exec = Executor::new(&program, Memory::new());
        let summary = exec.run(&mut NullSink, 500);
        assert!(!summary.halted);
        assert_eq!(summary.instructions, 500);
    }

    #[test]
    fn dynamic_indices_are_fetch_order() {
        let (_, trace, _, _) = run_asm(
            r#"
                cmp.eq p1, p2 = r0, r0
                (p1) br skip
                mov r1 = 1
            skip:
                halt
            "#,
        );
        let idxs: Vec<u64> = trace
            .events()
            .iter()
            .map(|e| match e {
                crate::trace::Event::Branch(b) => b.index,
                crate::trace::Event::PredWrite(w) => w.index,
            })
            .collect();
        // cmp at index 0 (two writes), branch at index 1
        assert_eq!(idxs, vec![0, 0, 1]);
    }

    #[test]
    fn run_batched_matches_run_event_for_event() {
        let src = r#"
            mov r1 = 0
        loop:
            cmp.lt p1, p2 = r1, 2000
            (p1) add r1 = r1, 1
            (p1) br.region 0, loop
            halt
        "#;
        let program = assemble(src).unwrap();
        let mut streamed = TraceSink::new();
        let streamed_summary = Executor::new(&program, Memory::new()).run(&mut streamed, 100_000);
        let mut batched = TraceSink::new();
        let mut buffer = Vec::new();
        let batched_summary =
            Executor::new(&program, Memory::new()).run_batched(&mut batched, 100_000, &mut buffer);
        assert_eq!(streamed_summary, batched_summary);
        assert_eq!(streamed.events(), batched.events());
        // enough events to exercise multiple flushes
        assert!(streamed.events().len() > super::EVENT_BATCH_CAPACITY);
    }

    #[test]
    fn run_batched_respects_instruction_budget() {
        let program = assemble("loop: br loop\n halt").unwrap();
        let mut exec = Executor::new(&program, Memory::new());
        let mut buffer = Vec::new();
        let summary = exec.run_batched(&mut NullSink, 500, &mut buffer);
        assert!(!summary.halted);
        assert_eq!(summary.instructions, 500);
    }

    #[test]
    fn unconditional_branch_event_not_conditional() {
        let (_, trace, _, _) = run_asm("br end\n nop\nend: halt");
        let b = trace.branches().next().unwrap();
        assert!(!b.conditional);
        assert!(b.taken);
    }
}

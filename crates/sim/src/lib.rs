//! Execution substrate for the predicated ISA: a functional executor that
//! streams branch and predicate-definition events, a predicate
//! scoreboard modelling what is *known at fetch time*, and a pipeline
//! timing model.
//!
//! This crate stands in for the cycle-level simulator the paper's authors
//! used. The predictor techniques under study consume exactly three
//! dynamic facts, all of which this simulator produces faithfully:
//!
//! 1. the stream of **conditional branches** with their guard predicate
//!    and outcome (a predicated branch is taken exactly when its guard is
//!    true) — [`BranchEvent`];
//! 2. the stream of **predicate definitions** (compare-to-predicate
//!    writes) — [`PredWriteEvent`];
//! 3. whether a guard predicate's value has **resolved by the time the
//!    branch is fetched**, which depends on the def-to-branch distance
//!    and the machine's resolve latency — [`PredicateScoreboard`].
//!
//! Timing is modelled analytically by [`PipelineModel`]: cycles are fetch
//! slots plus a fixed flush penalty per misprediction, the standard
//! first-order model for branch-predictor studies. Absolute IPC is not
//! meant to match the authors' testbed; relative effects are.
//!
//! # Examples
//!
//! ```
//! use predbranch_isa::assemble;
//! use predbranch_sim::{Executor, Memory, TraceSink};
//!
//! let program = assemble(
//!     r#"
//!         mov r1 = 3
//!     loop:
//!         cmp.gt p1, p2 = r1, 0
//!         (p1) sub r1 = r1, 1
//!         (p1) br loop
//!         halt
//!     "#,
//! ).unwrap();
//! let mut exec = Executor::new(&program, Memory::new());
//! let mut trace = TraceSink::new();
//! let summary = exec.run(&mut trace, 1_000);
//! assert!(summary.halted);
//! assert_eq!(exec.state().reg(predbranch_isa::Gpr::new(1).unwrap()), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod exec;
mod memory;
mod metrics;
mod pipeline;
mod scoreboard;
mod state;
mod trace;

pub use exec::{Executor, RunSummary, EVENT_BATCH_CAPACITY};
pub use memory::Memory;
pub use metrics::{ExecMetrics, GuardKnowledgeStats, RegionActivity};
pub use pipeline::{
    FetchTimeline, PipelineConfig, PipelineModel, DEFAULT_RESOLVE_LATENCY, DEFAULT_RETIRE_LATENCY,
};
pub use scoreboard::{PredKnowledge, PredicateScoreboard};
pub use state::ArchState;
pub use trace::{BranchEvent, Event, EventSink, NullSink, PredWriteEvent, TraceSink};

//! Word-addressed sparse data memory.

use std::collections::HashMap;

/// A sparse, word-addressed data memory of `i64` values.
///
/// Unwritten addresses read as zero (trap-free semantics matching the
/// rest of the ISA). Addresses are signed so base+offset arithmetic never
/// faults.
///
/// # Examples
///
/// ```
/// use predbranch_sim::Memory;
///
/// let mut mem = Memory::new();
/// assert_eq!(mem.load(100), 0);
/// mem.store(100, -7);
/// assert_eq!(mem.load(100), -7);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Memory {
    words: HashMap<i64, i64>,
}

impl Memory {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> Self {
        Memory::default()
    }

    /// Creates a memory pre-loaded with `values` starting at `base`.
    ///
    /// # Examples
    ///
    /// ```
    /// use predbranch_sim::Memory;
    ///
    /// let mem = Memory::from_slice(10, &[1, 2, 3]);
    /// assert_eq!(mem.load(11), 2);
    /// ```
    pub fn from_slice(base: i64, values: &[i64]) -> Self {
        let mut mem = Memory::new();
        for (i, &v) in values.iter().enumerate() {
            mem.store(base.wrapping_add(i as i64), v);
        }
        mem
    }

    /// Reads the word at `addr` (zero if never written).
    pub fn load(&self, addr: i64) -> i64 {
        self.words.get(&addr).copied().unwrap_or(0)
    }

    /// Writes the word at `addr`.
    pub fn store(&mut self, addr: i64, value: i64) {
        if value == 0 {
            // Keep the map sparse; zero is the default.
            self.words.remove(&addr);
        } else {
            self.words.insert(addr, value);
        }
    }

    /// Number of non-zero words.
    pub fn nonzero_words(&self) -> usize {
        self.words.len()
    }

    /// Iterates over `(addr, value)` pairs of non-zero words in
    /// unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (i64, i64)> + '_ {
        self.words.iter().map(|(&a, &v)| (a, v))
    }
}

impl FromIterator<(i64, i64)> for Memory {
    fn from_iter<T: IntoIterator<Item = (i64, i64)>>(iter: T) -> Self {
        let mut mem = Memory::new();
        for (a, v) in iter {
            mem.store(a, v);
        }
        mem
    }
}

impl Extend<(i64, i64)> for Memory {
    fn extend<T: IntoIterator<Item = (i64, i64)>>(&mut self, iter: T) {
        for (a, v) in iter {
            self.store(a, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_reads_zero() {
        let mem = Memory::new();
        assert_eq!(mem.load(0), 0);
        assert_eq!(mem.load(i64::MIN), 0);
        assert_eq!(mem.load(i64::MAX), 0);
    }

    #[test]
    fn store_then_load() {
        let mut mem = Memory::new();
        mem.store(-5, 42);
        assert_eq!(mem.load(-5), 42);
        mem.store(-5, 43);
        assert_eq!(mem.load(-5), 43);
    }

    #[test]
    fn storing_zero_erases() {
        let mut mem = Memory::new();
        mem.store(1, 9);
        assert_eq!(mem.nonzero_words(), 1);
        mem.store(1, 0);
        assert_eq!(mem.nonzero_words(), 0);
        assert_eq!(mem.load(1), 0);
    }

    #[test]
    fn from_slice_lays_out_consecutively() {
        let mem = Memory::from_slice(100, &[5, 0, 7]);
        assert_eq!(mem.load(100), 5);
        assert_eq!(mem.load(101), 0);
        assert_eq!(mem.load(102), 7);
        assert_eq!(mem.nonzero_words(), 2);
    }

    #[test]
    fn collect_and_extend() {
        let mut mem: Memory = [(1, 10), (2, 20)].into_iter().collect();
        mem.extend([(3, 30)]);
        assert_eq!(mem.load(3), 30);
        let mut pairs: Vec<_> = mem.iter().collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(1, 10), (2, 20), (3, 30)]);
    }

    #[test]
    fn equality_ignores_zero_writes() {
        let mut a = Memory::new();
        a.store(5, 0);
        assert_eq!(a, Memory::new());
    }
}

//! Event-stream metrics: dynamic instruction mix and fetch-time guard
//! knowledge.

use predbranch_stats::{Counter, Histogram, Ratio};

use crate::scoreboard::{PredKnowledge, PredicateScoreboard};
use crate::trace::{BranchEvent, EventSink, PredWriteEvent};

/// Dynamic-mix metrics accumulated from the event stream.
///
/// Feed it to [`crate::Executor::run`] (alone or composed in a tuple with
/// other sinks) to collect the per-benchmark characterization numbers:
/// dynamic branches by class, predicate-definition counts, and the
/// definition-to-branch distance distribution that determines how often
/// guards resolve before their branch is fetched.
///
/// # Examples
///
/// ```
/// use predbranch_sim::ExecMetrics;
///
/// let m = ExecMetrics::new();
/// assert_eq!(m.conditional_branches().get(), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecMetrics {
    branches: Counter,
    conditional: Counter,
    taken_conditional: Counter,
    region_branches: Counter,
    taken_region: Counter,
    pred_writes: Counter,
    /// Distance (fetch slots) from a conditional branch's last guard
    /// definition to the branch itself.
    guard_distance: Histogram,
    last_writes: PredicateScoreboard,
}

impl Default for ExecMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ExecMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        ExecMetrics {
            branches: Counter::new(),
            conditional: Counter::new(),
            taken_conditional: Counter::new(),
            region_branches: Counter::new(),
            taken_region: Counter::new(),
            pred_writes: Counter::new(),
            guard_distance: Histogram::linear(16, 4),
            // latency 0: used only to remember last-write indices
            last_writes: PredicateScoreboard::new(0),
        }
    }

    /// All dynamic branches.
    pub fn branches(&self) -> Counter {
        self.branches
    }

    /// Dynamic conditional branches.
    pub fn conditional_branches(&self) -> Counter {
        self.conditional
    }

    /// Dynamic region-based branches.
    pub fn region_branches(&self) -> Counter {
        self.region_branches
    }

    /// Taken fraction of conditional branches.
    pub fn taken_fraction(&self) -> Ratio {
        Ratio::of(self.taken_conditional.get(), self.conditional.get())
    }

    /// Fraction of conditional branches that are region-based.
    pub fn region_fraction(&self) -> Ratio {
        Ratio::of(self.region_branches.get(), self.conditional.get())
    }

    /// Dynamic predicate definitions.
    pub fn pred_writes(&self) -> Counter {
        self.pred_writes
    }

    /// Distribution of guard-definition-to-branch distances, in fetch
    /// slots (16 buckets of width 4, overflow beyond 64).
    pub fn guard_distance(&self) -> &Histogram {
        &self.guard_distance
    }
}

impl EventSink for ExecMetrics {
    fn branch(&mut self, event: &BranchEvent) {
        self.branches.increment();
        if event.conditional {
            self.conditional.increment();
            if event.taken {
                self.taken_conditional.increment();
            }
            if let Some(d) = self.last_writes.distance(event.guard, event.index) {
                self.guard_distance.record(d);
            }
        }
        if event.region.is_some() {
            self.region_branches.increment();
            if event.taken {
                self.taken_region.increment();
            }
        }
    }

    fn pred_write(&mut self, event: &PredWriteEvent) {
        self.pred_writes.increment();
        self.last_writes
            .record_write(event.preg, event.value, event.index);
    }
}

/// Classifies every conditional-branch fetch by what the scoreboard knows
/// about its guard predicate — the coverage data behind the squash
/// false-path filter (paper abstract: branches "known to be guarded with
/// a false predicate" are predicted not-taken with 100% accuracy).
///
/// # Examples
///
/// ```
/// use predbranch_sim::GuardKnowledgeStats;
///
/// let g = GuardKnowledgeStats::new(8);
/// assert_eq!(g.known_false().percent(), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuardKnowledgeStats {
    scoreboard: PredicateScoreboard,
    conditional: Counter,
    known_false: Counter,
    known_true: Counter,
    unknown: Counter,
    /// Among known-false guards, how often the branch was indeed not
    /// taken (must be 100% — checked by tests as a simulator invariant).
    known_false_correct: Counter,
}

impl GuardKnowledgeStats {
    /// Creates stats with the given scoreboard resolve latency.
    pub fn new(resolve_latency: u64) -> Self {
        GuardKnowledgeStats {
            scoreboard: PredicateScoreboard::new(resolve_latency),
            conditional: Counter::new(),
            known_false: Counter::new(),
            known_true: Counter::new(),
            unknown: Counter::new(),
            known_false_correct: Counter::new(),
        }
    }

    /// Conditional branches observed.
    pub fn conditional(&self) -> Counter {
        self.conditional
    }

    /// Fraction of conditional branches fetched with a known-false guard.
    pub fn known_false(&self) -> Ratio {
        Ratio::of(self.known_false.get(), self.conditional.get())
    }

    /// Fraction fetched with a known-true guard.
    pub fn known_true(&self) -> Ratio {
        Ratio::of(self.known_true.get(), self.conditional.get())
    }

    /// Fraction fetched with an unresolved guard.
    pub fn unknown(&self) -> Ratio {
        Ratio::of(self.unknown.get(), self.conditional.get())
    }

    /// Accuracy of "known-false ⇒ not taken" (always 100%; exposed so
    /// tests can assert the invariant end-to-end).
    pub fn known_false_accuracy(&self) -> Ratio {
        Ratio::of(self.known_false_correct.get(), self.known_false.get())
    }
}

impl EventSink for GuardKnowledgeStats {
    fn branch(&mut self, event: &BranchEvent) {
        if !event.conditional {
            return;
        }
        self.conditional.increment();
        match self.scoreboard.query(event.guard, event.index) {
            PredKnowledge::Known(false) => {
                self.known_false.increment();
                if !event.taken {
                    self.known_false_correct.increment();
                }
            }
            PredKnowledge::Known(true) => self.known_true.increment(),
            PredKnowledge::Unknown => self.unknown.increment(),
        }
    }

    fn pred_write(&mut self, event: &PredWriteEvent) {
        self.scoreboard.observe(event);
    }
}

/// Per-region dynamic activity: how often each if-converted region's
/// branches execute and fire — the data behind per-region breakdowns in
/// reports and the `region_branch_study` example.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegionActivity {
    per_region: std::collections::BTreeMap<u16, (u64, u64)>, // (branches, taken)
}

impl RegionActivity {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Iterates `(region id, dynamic branches, taken)` in region order.
    pub fn iter(&self) -> impl Iterator<Item = (u16, u64, u64)> + '_ {
        self.per_region.iter().map(|(&id, &(b, t))| (id, b, t))
    }

    /// Dynamic region-branch executions for one region.
    pub fn branches(&self, region: u16) -> u64 {
        self.per_region.get(&region).map_or(0, |&(b, _)| b)
    }

    /// Taken fraction of one region's branches.
    pub fn taken_fraction(&self, region: u16) -> Ratio {
        let (b, t) = self.per_region.get(&region).copied().unwrap_or((0, 0));
        Ratio::of(t, b)
    }

    /// Number of regions that executed at least one branch.
    pub fn active_regions(&self) -> usize {
        self.per_region.len()
    }
}

impl EventSink for RegionActivity {
    fn branch(&mut self, event: &BranchEvent) {
        if let Some(region) = event.region {
            let entry = self.per_region.entry(region).or_insert((0, 0));
            entry.0 += 1;
            if event.taken {
                entry.1 += 1;
            }
        }
    }

    fn pred_write(&mut self, _event: &PredWriteEvent) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Executor;
    use crate::memory::Memory;
    use predbranch_isa::assemble;

    fn run(src: &str, latency: u64) -> (ExecMetrics, GuardKnowledgeStats) {
        let program = assemble(src).unwrap();
        let mut exec = Executor::new(&program, Memory::new());
        let mut sinks = (ExecMetrics::new(), GuardKnowledgeStats::new(latency));
        exec.run(&mut sinks, 1_000_000);
        sinks
    }

    const LOOP: &str = r#"
        mov r1 = 0
    loop:
        cmp.lt p1, p2 = r1, 50
        (p1) add r1 = r1, 1
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        (p1) br.region 0, loop
        halt
    "#;

    #[test]
    fn exec_metrics_count_classes() {
        let (m, _) = run(LOOP, 0);
        assert_eq!(m.conditional_branches().get(), 51);
        assert_eq!(m.region_branches().get(), 51);
        assert_eq!(m.branches().get(), 51);
        assert!((m.taken_fraction().percent() - 100.0 * 50.0 / 51.0).abs() < 0.01);
        assert_eq!(m.region_fraction().percent(), 100.0);
        assert!(m.pred_writes().get() >= 102);
    }

    #[test]
    fn guard_distance_recorded() {
        let (m, _) = run(LOOP, 0);
        // cmp at dynamic i, branch at i+10 → distance 10 every iteration
        assert_eq!(m.guard_distance().count(), 51);
        assert_eq!(m.guard_distance().mean(), 10.0);
    }

    #[test]
    fn oracle_scoreboard_knows_everything() {
        let (_, g) = run(LOOP, 0);
        assert_eq!(g.unknown().percent(), 0.0);
        // the final iteration fetches the branch with p1 known false
        assert_eq!(g.known_false().numerator(), 1);
        assert_eq!(g.known_true().numerator(), 50);
    }

    #[test]
    fn distant_defs_resolve_close_defs_do_not() {
        // def-to-branch distance is 10 slots
        let (_, g) = run(LOOP, 10);
        assert_eq!(g.unknown().numerator(), 0);
        let (_, g) = run(LOOP, 11);
        assert_eq!(g.unknown().numerator(), 51);
    }

    #[test]
    fn known_false_is_always_not_taken() {
        let (_, g) = run(LOOP, 4);
        assert_eq!(g.known_false_accuracy().percent(), 100.0);
    }

    #[test]
    fn region_activity_tracks_per_region_counts() {
        let program = assemble(
            "start: cmp.lt p1, p2 = r1, 3\n (p1) add r1 = r1, 1\n (p1) br.region 4, start\n (p2) br.region 7, end\nend: halt",
        )
        .unwrap();
        let mut activity = RegionActivity::new();
        Executor::new(&program, Memory::new()).run(&mut activity, 10_000);
        assert_eq!(activity.active_regions(), 2);
        assert_eq!(activity.branches(4), 4);
        assert_eq!(activity.taken_fraction(4).percent(), 75.0);
        assert_eq!(activity.branches(7), 1);
        assert_eq!(activity.taken_fraction(7).percent(), 100.0);
        assert_eq!(activity.branches(9), 0);
    }
}

//! First-order pipeline timing model.

use std::fmt;

/// The machine's default predicate resolve latency, in fetch slots: the
/// distance between a compare executing and the first fetch that can
/// observe its predicate result.
///
/// This is *the* single definition of the study's default — the
/// scoreboard, [`PipelineConfig`], the prediction harness, and the
/// experiment grid all derive their defaults from this constant.
pub const DEFAULT_RESOLVE_LATENCY: u64 = 8;

/// The default branch retire latency, in fetch slots: the distance
/// between a branch being fetched (and predicted) and its resolved
/// outcome training the predictor. `0` means the predictor trains
/// before the next fetch — the classic idealized immediate-update
/// methodology — and is the default so existing results reproduce
/// exactly. Kept next to [`DEFAULT_RESOLVE_LATENCY`] because the two
/// knobs describe the same front-end timing story.
pub const DEFAULT_RETIRE_LATENCY: u64 = 0;

/// Front-end and recovery parameters of the modelled machine.
///
/// The defaults describe the EPIC-class machine the study assumes: a
/// 6-wide fetch front end, a 10-cycle misprediction flush, and an 8-slot
/// compare-to-fetch resolve latency for predicates
/// ([`DEFAULT_RESOLVE_LATENCY`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: u32,
    /// Cycles lost per mispredicted branch (pipeline flush).
    pub mispredict_penalty: u32,
    /// Cycles lost per *taken* (correctly predicted) branch — fetch
    /// redirection bubble.
    pub taken_bubble: u32,
    /// Fetch slots between a compare executing and the first branch fetch
    /// that can observe its predicate result (the scoreboard latency).
    pub resolve_latency: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            fetch_width: 6,
            mispredict_penalty: 10,
            taken_bubble: 1,
            resolve_latency: DEFAULT_RESOLVE_LATENCY,
        }
    }
}

/// Cycle and IPC estimates derived from dynamic counts.
///
/// The model charges one fetch slot per dynamic instruction (predicated-
/// off instructions still occupy slots — the fundamental cost of
/// predication), one flush per misprediction, and one bubble per taken
/// branch:
///
/// ```text
/// cycles = ceil(instructions / width)
///        + mispredictions × penalty
///        + taken_branches × bubble
/// ```
///
/// # Examples
///
/// ```
/// use predbranch_sim::{PipelineConfig, PipelineModel};
///
/// let config = PipelineConfig::default();
/// let perfect = PipelineModel::estimate(&config, 6_000, 0, 0);
/// assert_eq!(perfect.cycles(), 1_000);
/// assert_eq!(perfect.ipc(), 6.0);
///
/// let real = PipelineModel::estimate(&config, 6_000, 100, 0);
/// assert!(real.ipc() < perfect.ipc());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineModel {
    instructions: u64,
    cycles: u64,
    flush_cycles: u64,
    bubble_cycles: u64,
}

impl PipelineModel {
    /// Estimates execution time from dynamic counts.
    pub fn estimate(
        config: &PipelineConfig,
        instructions: u64,
        mispredictions: u64,
        taken_branches: u64,
    ) -> Self {
        let width = u64::from(config.fetch_width.max(1));
        let fetch_cycles = instructions.div_ceil(width);
        let flush_cycles = mispredictions * u64::from(config.mispredict_penalty);
        let bubble_cycles = taken_branches * u64::from(config.taken_bubble);
        PipelineModel {
            instructions,
            cycles: fetch_cycles + flush_cycles + bubble_cycles,
            flush_cycles,
            bubble_cycles,
        }
    }

    /// Total estimated cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Cycles lost to misprediction flushes.
    pub fn flush_cycles(&self) -> u64 {
        self.flush_cycles
    }

    /// Cycles lost to taken-branch fetch bubbles.
    pub fn bubble_cycles(&self) -> u64 {
        self.bubble_cycles
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Speedup of this model over a baseline running the same work:
    /// `baseline.cycles / self.cycles`.
    pub fn speedup_over(&self, baseline: &PipelineModel) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            baseline.cycles as f64 / self.cycles as f64
        }
    }
}

impl fmt::Display for PipelineModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} insts, {} cycles (flush {}, bubble {}), IPC {:.3}",
            self.instructions,
            self.cycles,
            self.flush_cycles,
            self.bubble_cycles,
            self.ipc()
        )
    }
}

/// A cycle-level fetch timeline: the event-driven counterpart of
/// [`PipelineModel`].
///
/// Where the closed-form model charges exactly `⌈instructions/width⌉`
/// fetch cycles, the timeline walks the instruction stream and models
/// **fetch fragmentation**: a taken branch ends its fetch cycle early
/// (the slots after it in the fetch block are wasted) and costs the
/// redirect bubble, and a misprediction stalls fetch for the full flush
/// penalty. Drive it from the caller that knows prediction outcomes
/// (`predbranch-core`'s harness does this when configured with a
/// timeline):
///
/// * [`FetchTimeline::instruction`] per fetched instruction,
/// * [`FetchTimeline::taken_branch`] when a taken branch is fetched,
/// * [`FetchTimeline::mispredict`] when a branch resolves mispredicted.
///
/// # Examples
///
/// ```
/// use predbranch_sim::{PipelineConfig, FetchTimeline};
///
/// let mut t = FetchTimeline::new(PipelineConfig { fetch_width: 4, ..Default::default() });
/// for _ in 0..3 {
///     t.instruction();
/// }
/// t.taken_branch(); // 4th slot is a taken branch: cycle ends + bubble
/// assert_eq!(t.cycles(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchTimeline {
    config: PipelineConfig,
    cycles: u64,
    slot: u32,
    instructions: u64,
}

impl FetchTimeline {
    /// Creates an empty timeline.
    pub fn new(config: PipelineConfig) -> Self {
        FetchTimeline {
            config,
            cycles: 0,
            slot: 0,
            instructions: 0,
        }
    }

    /// Accounts one fetched instruction (one slot).
    pub fn instruction(&mut self) {
        self.instructions += 1;
        self.slot += 1;
        if self.slot >= self.config.fetch_width.max(1) {
            self.cycles += 1;
            self.slot = 0;
        }
    }

    /// A taken branch was fetched: the rest of the fetch block is wasted
    /// and the redirect bubble is paid. Call *after*
    /// [`FetchTimeline::instruction`] for the branch itself.
    pub fn taken_branch(&mut self) {
        if self.slot > 0 {
            self.cycles += 1; // abandon the partially filled block
            self.slot = 0;
        }
        self.cycles += u64::from(self.config.taken_bubble);
    }

    /// A branch resolved mispredicted: fetch stalls for the flush
    /// penalty (the redirect itself is included in the penalty).
    pub fn mispredict(&mut self) {
        if self.slot > 0 {
            self.cycles += 1;
            self.slot = 0;
        }
        self.cycles += u64::from(self.config.mispredict_penalty);
    }

    /// Total cycles so far (counting a partially filled final block).
    pub fn cycles(&self) -> u64 {
        self.cycles + u64::from(self.slot > 0)
    }

    /// Instructions accounted so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Instructions per cycle so far.
    pub fn ipc(&self) -> f64 {
        let cycles = self.cycles();
        if cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> PipelineConfig {
        PipelineConfig {
            fetch_width: 4,
            mispredict_penalty: 10,
            taken_bubble: 1,
            resolve_latency: 8,
        }
    }

    #[test]
    fn fetch_cycles_round_up() {
        let m = PipelineModel::estimate(&config(), 5, 0, 0);
        assert_eq!(m.cycles(), 2);
    }

    #[test]
    fn penalties_accumulate() {
        let m = PipelineModel::estimate(&config(), 400, 3, 7);
        assert_eq!(m.cycles(), 100 + 30 + 7);
        assert_eq!(m.flush_cycles(), 30);
        assert_eq!(m.bubble_cycles(), 7);
    }

    #[test]
    fn ipc_matches_definition() {
        let m = PipelineModel::estimate(&config(), 400, 0, 0);
        assert_eq!(m.ipc(), 4.0);
    }

    #[test]
    fn fewer_mispredictions_means_speedup() {
        let base = PipelineModel::estimate(&config(), 1000, 100, 0);
        let better = PipelineModel::estimate(&config(), 1000, 10, 0);
        assert!(better.speedup_over(&base) > 1.0);
        assert!((base.speedup_over(&base) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_width_clamped() {
        let bad = PipelineConfig {
            fetch_width: 0,
            ..config()
        };
        let m = PipelineModel::estimate(&bad, 10, 0, 0);
        assert_eq!(m.cycles(), 10);
    }

    #[test]
    fn empty_run_is_defined() {
        let m = PipelineModel::estimate(&config(), 0, 0, 0);
        assert_eq!(m.cycles(), 0);
        assert_eq!(m.ipc(), 0.0);
    }

    #[test]
    fn display_reports_ipc() {
        let m = PipelineModel::estimate(&config(), 400, 1, 1);
        assert!(m.to_string().contains("IPC"));
    }

    #[test]
    fn timeline_full_blocks_match_closed_form() {
        let mut t = FetchTimeline::new(config());
        for _ in 0..400 {
            t.instruction();
        }
        assert_eq!(t.cycles(), 100);
        assert_eq!(t.ipc(), 4.0);
        assert_eq!(t.instructions(), 400);
    }

    #[test]
    fn timeline_partial_final_block_rounds_up() {
        let mut t = FetchTimeline::new(config());
        for _ in 0..5 {
            t.instruction();
        }
        assert_eq!(t.cycles(), 2);
    }

    #[test]
    fn taken_branch_fragments_fetch() {
        let mut t = FetchTimeline::new(config());
        // branch is the first of a 4-wide block: 3 slots wasted
        t.instruction();
        t.taken_branch();
        // one cycle for the fragment + one bubble
        assert_eq!(t.cycles(), 2);
        // the closed-form model would charge ceil(1/4) + 1 = 2 as well,
        // but diverges when fragments repeat:
        let mut frag = FetchTimeline::new(config());
        for _ in 0..4 {
            frag.instruction();
            frag.taken_branch();
        }
        assert_eq!(frag.cycles(), 8); // 4 fragments + 4 bubbles
        let closed = PipelineModel::estimate(&config(), 4, 0, 4);
        assert!(
            frag.cycles() > closed.cycles(),
            "fragmentation must cost more"
        );
    }

    #[test]
    fn mispredict_stalls_full_penalty() {
        let mut t = FetchTimeline::new(config());
        t.instruction();
        t.mispredict();
        assert_eq!(t.cycles(), 1 + 10);
    }

    #[test]
    fn timeline_is_lower_bounded_by_closed_form_fetch() {
        let mut t = FetchTimeline::new(config());
        let mut mispredicts = 0;
        for i in 0..1000u32 {
            t.instruction();
            if i % 37 == 0 {
                t.mispredict();
                mispredicts += 1;
            } else if i % 11 == 0 {
                t.taken_branch();
            }
        }
        let closed = PipelineModel::estimate(&config(), 1000, mispredicts, 0);
        assert!(t.cycles() >= closed.cycles());
    }
}

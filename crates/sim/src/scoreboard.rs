//! The predicate scoreboard: what the front end knows at fetch time.

use predbranch_isa::{PredReg, NUM_PREDS};

/// What the fetch stage knows about a predicate register's value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredKnowledge {
    /// The last definition has resolved; the value is architecturally
    /// certain at fetch.
    Known(bool),
    /// A definition is still in flight: the value cannot be trusted.
    Unknown,
}

impl PredKnowledge {
    /// The value if known.
    pub fn value(&self) -> Option<bool> {
        match *self {
            PredKnowledge::Known(v) => Some(v),
            PredKnowledge::Unknown => None,
        }
    }

    /// Whether the value is known to be false — the squash false-path
    /// filter's trigger condition.
    pub fn is_known_false(&self) -> bool {
        matches!(self, PredKnowledge::Known(false))
    }
}

/// Models when predicate definitions become visible to the fetch stage.
///
/// A definition written by the compare at dynamic index `d` is considered
/// resolved for a branch fetched at dynamic index `f` when
/// `f - d >= resolve_latency` (in fetch slots). With `resolve_latency ==
/// 0` the scoreboard is an oracle (every value known instantly); larger
/// latencies model the pipeline depth between a compare's execute stage
/// and the fetch stage consuming its result.
///
/// Predicates never written are known-false (their architectural reset
/// value), and `p0` is always known-true.
///
/// # Examples
///
/// ```
/// use predbranch_sim::{PredKnowledge, PredicateScoreboard};
/// use predbranch_isa::PredReg;
///
/// let p1 = PredReg::new(1).unwrap();
/// let mut sb = PredicateScoreboard::new(4);
/// sb.record_write(p1, true, 10);
/// assert_eq!(sb.query(p1, 12), PredKnowledge::Unknown);   // 2 < 4
/// assert_eq!(sb.query(p1, 14), PredKnowledge::Known(true));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredicateScoreboard {
    resolve_latency: u64,
    last_write: [Option<Write>; NUM_PREDS],
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Write {
    index: u64,
    value: bool,
    /// Resolved at write time (an `unc` clear under an already-known-false
    /// guard) — visible to fetch immediately, enabling false-path
    /// chaining.
    immediate: bool,
}

impl PredicateScoreboard {
    /// Creates a scoreboard with the given resolve latency (fetch slots
    /// between a compare and the first branch that can see its result).
    pub fn new(resolve_latency: u64) -> Self {
        PredicateScoreboard {
            resolve_latency,
            last_write: [None; NUM_PREDS],
        }
    }

    /// The configured resolve latency.
    pub fn resolve_latency(&self) -> u64 {
        self.resolve_latency
    }

    /// Records a predicate write at dynamic index `index`, resolving
    /// after the configured latency.
    pub fn record_write(&mut self, preg: PredReg, value: bool, index: u64) {
        self.record(preg, value, index, false);
    }

    /// Observes a full predicate-write event, applying **false-path
    /// chaining**: an `unc`-type clear performed under a guard that was
    /// *already known false* at the compare's fetch does not depend on the
    /// compare's data operands, so its result (false) is visible to fetch
    /// immediately instead of after the resolve latency. Because the
    /// cleared predicate is itself immediately known-false, a whole chain
    /// of guards along a predicated-off path resolves at once — which is
    /// what lets the squash false-path filter kill every branch on the
    /// false path, however close its own defining compare is.
    pub fn observe(&mut self, event: &crate::trace::PredWriteEvent) {
        let immediate = !event.guard_value && self.query(event.guard, event.index).is_known_false();
        debug_assert!(
            event.guard_value || !event.value,
            "false-guard writes clear"
        );
        self.record(event.preg, event.value, event.index, immediate);
    }

    fn record(&mut self, preg: PredReg, value: bool, index: u64, immediate: bool) {
        if !preg.is_always_true() {
            self.last_write[preg.index() as usize] = Some(Write {
                index,
                value,
                immediate,
            });
        }
    }

    /// Queries what fetch knows about `preg` at dynamic index
    /// `fetch_index`.
    pub fn query(&self, preg: PredReg, fetch_index: u64) -> PredKnowledge {
        if preg.is_always_true() {
            return PredKnowledge::Known(true);
        }
        match self.last_write[preg.index() as usize] {
            None => PredKnowledge::Known(false),
            Some(w) => {
                if w.immediate || fetch_index.saturating_sub(w.index) >= self.resolve_latency {
                    PredKnowledge::Known(w.value)
                } else {
                    PredKnowledge::Unknown
                }
            }
        }
    }

    /// The dynamic distance from the last write of `preg` to
    /// `fetch_index`, if it was ever written.
    pub fn distance(&self, preg: PredReg, fetch_index: u64) -> Option<u64> {
        self.last_write[preg.index() as usize].map(|w| fetch_index.saturating_sub(w.index))
    }

    /// Clears all write history (e.g. between benchmark runs).
    pub fn reset(&mut self) {
        self.last_write = [None; NUM_PREDS];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u8) -> PredReg {
        PredReg::new(i).unwrap()
    }

    #[test]
    fn p0_always_known_true() {
        let sb = PredicateScoreboard::new(100);
        assert_eq!(sb.query(PredReg::TRUE, 0), PredKnowledge::Known(true));
    }

    #[test]
    fn unwritten_predicates_known_false() {
        let sb = PredicateScoreboard::new(8);
        assert_eq!(sb.query(p(5), 1000), PredKnowledge::Known(false));
        assert!(sb.query(p(5), 0).is_known_false());
    }

    #[test]
    fn in_flight_definition_is_unknown() {
        let mut sb = PredicateScoreboard::new(8);
        sb.record_write(p(1), true, 100);
        for fetch in 100..108 {
            assert_eq!(sb.query(p(1), fetch), PredKnowledge::Unknown);
        }
        assert_eq!(sb.query(p(1), 108), PredKnowledge::Known(true));
    }

    #[test]
    fn zero_latency_is_an_oracle() {
        let mut sb = PredicateScoreboard::new(0);
        sb.record_write(p(2), false, 7);
        assert_eq!(sb.query(p(2), 7), PredKnowledge::Known(false));
    }

    #[test]
    fn newer_write_shadows_older() {
        let mut sb = PredicateScoreboard::new(4);
        sb.record_write(p(1), true, 0);
        sb.record_write(p(1), false, 10);
        // the old resolved value must NOT leak: a def is in flight
        assert_eq!(sb.query(p(1), 12), PredKnowledge::Unknown);
        assert_eq!(sb.query(p(1), 14), PredKnowledge::Known(false));
    }

    #[test]
    fn writes_to_p0_ignored() {
        let mut sb = PredicateScoreboard::new(4);
        sb.record_write(PredReg::TRUE, false, 0);
        assert_eq!(sb.query(PredReg::TRUE, 100), PredKnowledge::Known(true));
    }

    #[test]
    fn distance_tracks_last_write() {
        let mut sb = PredicateScoreboard::new(4);
        assert_eq!(sb.distance(p(3), 50), None);
        sb.record_write(p(3), true, 40);
        assert_eq!(sb.distance(p(3), 50), Some(10));
    }

    #[test]
    fn reset_clears_history() {
        let mut sb = PredicateScoreboard::new(4);
        sb.record_write(p(1), true, 0);
        sb.reset();
        assert_eq!(sb.query(p(1), 100), PredKnowledge::Known(false));
    }

    #[test]
    fn unc_clear_under_known_false_guard_resolves_immediately() {
        use crate::trace::PredWriteEvent;
        let mut sb = PredicateScoreboard::new(8);
        // p1 written false long ago: resolved
        sb.record_write(p(1), false, 0);
        // (p1) cmp.unc clears p2 at index 100 with p1 known false
        sb.observe(&PredWriteEvent {
            pc: 5,
            preg: p(2),
            value: false,
            index: 100,
            guard: p(1),
            guard_value: false,
        });
        // a branch fetched one slot later already knows p2 is false
        assert_eq!(sb.query(p(2), 101), PredKnowledge::Known(false));
    }

    #[test]
    fn false_path_chaining_propagates() {
        use crate::trace::PredWriteEvent;
        let mut sb = PredicateScoreboard::new(8);
        sb.record_write(p(1), false, 0);
        // chain: p1 → p2 → p3, all unc clears one slot apart
        for (guard, target, index) in [(1u8, 2u8, 100u64), (2, 3, 101)] {
            sb.observe(&PredWriteEvent {
                pc: 0,
                preg: p(target),
                value: false,
                index,
                guard: p(guard),
                guard_value: false,
            });
        }
        assert_eq!(sb.query(p(3), 102), PredKnowledge::Known(false));
    }

    #[test]
    fn unc_clear_under_unresolved_guard_waits() {
        use crate::trace::PredWriteEvent;
        let mut sb = PredicateScoreboard::new(8);
        // p1 written just now: in flight
        sb.record_write(p(1), false, 99);
        sb.observe(&PredWriteEvent {
            pc: 0,
            preg: p(2),
            value: false,
            index: 100,
            guard: p(1),
            guard_value: false,
        });
        assert_eq!(sb.query(p(2), 101), PredKnowledge::Unknown);
        assert_eq!(sb.query(p(2), 108), PredKnowledge::Known(false));
    }

    #[test]
    fn true_guard_writes_never_resolve_early() {
        use crate::trace::PredWriteEvent;
        let mut sb = PredicateScoreboard::new(8);
        sb.observe(&PredWriteEvent {
            pc: 0,
            preg: p(2),
            value: true,
            index: 100,
            guard: PredReg::TRUE,
            guard_value: true,
        });
        assert_eq!(sb.query(p(2), 101), PredKnowledge::Unknown);
    }

    #[test]
    fn knowledge_value_accessor() {
        assert_eq!(PredKnowledge::Known(true).value(), Some(true));
        assert_eq!(PredKnowledge::Unknown.value(), None);
        assert!(!PredKnowledge::Known(true).is_known_false());
        assert!(!PredKnowledge::Unknown.is_known_false());
    }
}

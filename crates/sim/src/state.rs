//! Architectural register state.

use predbranch_isa::{Gpr, PredReg, NUM_GPRS, NUM_PREDS};

/// Architectural state: general registers, predicate registers, and the
/// program counter.
///
/// `r0` always reads zero and `p0` always reads true; writes to either
/// are architecturally ignored, which this type enforces.
///
/// # Examples
///
/// ```
/// use predbranch_sim::ArchState;
/// use predbranch_isa::{Gpr, PredReg};
///
/// let mut s = ArchState::new();
/// s.set_reg(Gpr::new(1).unwrap(), 42);
/// s.set_reg(Gpr::ZERO, 99); // ignored
/// assert_eq!(s.reg(Gpr::new(1).unwrap()), 42);
/// assert_eq!(s.reg(Gpr::ZERO), 0);
/// assert!(s.pred(PredReg::TRUE));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchState {
    regs: [i64; NUM_GPRS],
    preds: [bool; NUM_PREDS],
    pc: u32,
    halted: bool,
}

impl Default for ArchState {
    fn default() -> Self {
        Self::new()
    }
}

impl ArchState {
    /// Creates a zeroed state: all registers 0, all predicates false
    /// (except `p0`), pc at 0.
    pub fn new() -> Self {
        let mut preds = [false; NUM_PREDS];
        preds[0] = true;
        ArchState {
            regs: [0; NUM_GPRS],
            preds,
            pc: 0,
            halted: false,
        }
    }

    /// Reads a general register (`r0` reads zero).
    pub fn reg(&self, r: Gpr) -> i64 {
        self.regs[r.index() as usize]
    }

    /// Writes a general register (writes to `r0` are ignored).
    pub fn set_reg(&mut self, r: Gpr, value: i64) {
        if !r.is_zero() {
            self.regs[r.index() as usize] = value;
        }
    }

    /// Reads a predicate register (`p0` reads true).
    pub fn pred(&self, p: PredReg) -> bool {
        self.preds[p.index() as usize]
    }

    /// Writes a predicate register (writes to `p0` are ignored).
    pub fn set_pred(&mut self, p: PredReg, value: bool) {
        if !p.is_always_true() {
            self.preds[p.index() as usize] = value;
        }
    }

    /// The current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Sets the program counter.
    pub fn set_pc(&mut self, pc: u32) {
        self.pc = pc;
    }

    /// Whether a `halt` has executed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Marks the machine halted.
    pub fn halt(&mut self) {
        self.halted = true;
    }

    /// The full predicate file as a slice (index = register number).
    pub fn preds(&self) -> &[bool; NUM_PREDS] {
        &self.preds
    }

    /// The full register file as a slice (index = register number).
    pub fn regs(&self) -> &[i64; NUM_GPRS] {
        &self.regs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_state_is_zeroed() {
        let s = ArchState::new();
        assert_eq!(s.pc(), 0);
        assert!(!s.is_halted());
        assert!(s.regs().iter().all(|&r| r == 0));
        assert!(s.pred(PredReg::TRUE));
        assert!(!s.pred(PredReg::new(1).unwrap()));
    }

    #[test]
    fn r0_write_ignored() {
        let mut s = ArchState::new();
        s.set_reg(Gpr::ZERO, 123);
        assert_eq!(s.reg(Gpr::ZERO), 0);
    }

    #[test]
    fn p0_write_ignored() {
        let mut s = ArchState::new();
        s.set_pred(PredReg::TRUE, false);
        assert!(s.pred(PredReg::TRUE));
    }

    #[test]
    fn normal_registers_read_back() {
        let mut s = ArchState::new();
        let r5 = Gpr::new(5).unwrap();
        let p7 = PredReg::new(7).unwrap();
        s.set_reg(r5, -9);
        s.set_pred(p7, true);
        assert_eq!(s.reg(r5), -9);
        assert!(s.pred(p7));
        s.set_pred(p7, false);
        assert!(!s.pred(p7));
    }

    #[test]
    fn halt_latches() {
        let mut s = ArchState::new();
        s.halt();
        assert!(s.is_halted());
    }

    #[test]
    fn pc_roundtrip() {
        let mut s = ArchState::new();
        s.set_pc(17);
        assert_eq!(s.pc(), 17);
    }
}

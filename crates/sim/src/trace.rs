//! Dynamic events streamed by the executor.

/// One dynamic conditional-or-unconditional branch.
///
/// In this ISA a conditional branch `(qp) br target` is taken exactly
/// when its guard predicate is true, so `taken == guard value` for
/// conditional branches and `taken == true` for unconditional ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchEvent {
    /// Static location of the branch.
    pub pc: u32,
    /// Branch target.
    pub target: u32,
    /// Guard predicate register (`p0` for unconditional branches).
    pub guard: predbranch_isa::PredReg,
    /// Whether the branch was taken.
    pub taken: bool,
    /// Whether the branch is conditional (guard other than `p0`).
    pub conditional: bool,
    /// The if-converted region this branch belongs to, if it is a
    /// region-based branch.
    pub region: Option<u16>,
    /// Dynamic instruction index of the branch (fetch order).
    pub index: u64,
}

/// One dynamic predicate definition: a compare instruction wrote (or, for
/// `unc` under a false guard, cleared) a predicate register.
///
/// The executor emits one event per *architecturally written* non-`p0`
/// target: `norm`/`unc` compares under a true guard write both targets,
/// `unc` under a false guard clears both, and the parallel types
/// (`and`/`or`/`or.andcm`) only produce events for targets they actually
/// write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PredWriteEvent {
    /// Static location of the defining compare.
    pub pc: u32,
    /// The written predicate register.
    pub preg: predbranch_isa::PredReg,
    /// The value written.
    pub value: bool,
    /// Dynamic instruction index of the compare.
    pub index: u64,
    /// The compare's own guard predicate.
    pub guard: predbranch_isa::PredReg,
    /// The architectural value of the compare's guard. `false` only for
    /// `unc`-type clears: such writes don't depend on the compare's data
    /// operands, so the front end can resolve them as soon as the *guard*
    /// is known — the chaining that lets the squash filter kill entire
    /// false paths (see [`crate::PredicateScoreboard::observe`]).
    pub guard_value: bool,
}

/// Any dynamic event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Event {
    /// A branch executed.
    Branch(BranchEvent),
    /// A predicate was written.
    PredWrite(PredWriteEvent),
}

impl Event {
    /// Dynamic instruction index of the instruction that produced the
    /// event (fetch order).
    pub fn index(&self) -> u64 {
        match self {
            Event::Branch(b) => b.index,
            Event::PredWrite(p) => p.index,
        }
    }

    /// Static pc of the instruction that produced the event.
    pub fn pc(&self) -> u32 {
        match self {
            Event::Branch(b) => b.pc,
            Event::PredWrite(p) => p.pc,
        }
    }
}

/// A consumer of the executor's event stream.
///
/// Implementations update predictors, scoreboards, and metric counters as
/// execution proceeds; the executor never buffers events itself, so
/// arbitrarily long runs use constant memory.
pub trait EventSink {
    /// Called for every executed branch (conditional or not).
    fn branch(&mut self, event: &BranchEvent);

    /// Called for every architectural predicate write.
    fn pred_write(&mut self, event: &PredWriteEvent);

    /// Called for every fetched instruction, before any branch or
    /// predicate-write event it produces (default: ignored). Timing
    /// sinks use this to account fetch slots.
    fn instruction(&mut self, _pc: u32, _index: u64) {}

    /// Dispatches an already-materialized [`Event`] to the matching
    /// callback — the entry point replay drivers (trace readers,
    /// buffered [`TraceSink`] playback) use.
    fn event(&mut self, event: &Event) {
        match event {
            Event::Branch(b) => self.branch(b),
            Event::PredWrite(p) => self.pred_write(p),
        }
    }

    /// Delivers a batch of already-materialized events, in order.
    ///
    /// Semantically identical to calling [`EventSink::event`] on each
    /// element (which is exactly what the default does); batch-decoding
    /// producers ([`crate::Executor::run_batched`], trace replay) use
    /// this so the per-event virtual dispatch of a `&mut dyn EventSink`
    /// is paid once per chunk instead of once per event. Implementations
    /// overriding this must preserve the element-wise semantics.
    fn events(&mut self, events: &[Event]) {
        for event in events {
            self.event(event);
        }
    }
}

/// A sink that discards all events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl EventSink for NullSink {
    fn branch(&mut self, _event: &BranchEvent) {}
    fn pred_write(&mut self, _event: &PredWriteEvent) {}
}

/// A sink that records every event, for tests and inspection.
///
/// # Examples
///
/// ```
/// use predbranch_sim::{Event, TraceSink, EventSink};
///
/// let mut t = TraceSink::new();
/// assert!(t.events().is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSink {
    events: Vec<Event>,
}

impl TraceSink {
    /// Creates an empty trace.
    pub fn new() -> Self {
        TraceSink::default()
    }

    /// All recorded events in execution order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Just the branch events, in order.
    pub fn branches(&self) -> impl Iterator<Item = &BranchEvent> {
        self.events.iter().filter_map(|e| match e {
            Event::Branch(b) => Some(b),
            Event::PredWrite(_) => None,
        })
    }

    /// Just the predicate-write events, in order.
    pub fn pred_writes(&self) -> impl Iterator<Item = &PredWriteEvent> {
        self.events.iter().filter_map(|e| match e {
            Event::PredWrite(p) => Some(p),
            Event::Branch(_) => None,
        })
    }
}

impl EventSink for TraceSink {
    fn branch(&mut self, event: &BranchEvent) {
        self.events.push(Event::Branch(*event));
    }

    fn pred_write(&mut self, event: &PredWriteEvent) {
        self.events.push(Event::PredWrite(*event));
    }

    fn events(&mut self, events: &[Event]) {
        self.events.extend_from_slice(events);
    }
}

/// Sinks compose as tuples: `(a, b)` forwards every event to both.
impl<A: EventSink, B: EventSink> EventSink for (A, B) {
    fn branch(&mut self, event: &BranchEvent) {
        self.0.branch(event);
        self.1.branch(event);
    }

    fn pred_write(&mut self, event: &PredWriteEvent) {
        self.0.pred_write(event);
        self.1.pred_write(event);
    }

    fn instruction(&mut self, pc: u32, index: u64) {
        self.0.instruction(pc, index);
        self.1.instruction(pc, index);
    }

    fn event(&mut self, event: &Event) {
        self.0.event(event);
        self.1.event(event);
    }

    fn events(&mut self, events: &[Event]) {
        self.0.events(events);
        self.1.events(events);
    }
}

impl<S: EventSink + ?Sized> EventSink for &mut S {
    fn branch(&mut self, event: &BranchEvent) {
        (**self).branch(event);
    }

    fn pred_write(&mut self, event: &PredWriteEvent) {
        (**self).pred_write(event);
    }

    fn instruction(&mut self, pc: u32, index: u64) {
        (**self).instruction(pc, index);
    }

    fn event(&mut self, event: &Event) {
        (**self).event(event);
    }

    fn events(&mut self, events: &[Event]) {
        (**self).events(events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predbranch_isa::PredReg;

    fn branch(index: u64) -> BranchEvent {
        BranchEvent {
            pc: 1,
            target: 0,
            guard: PredReg::new(1).unwrap(),
            taken: true,
            conditional: true,
            region: None,
            index,
        }
    }

    fn write(index: u64) -> PredWriteEvent {
        PredWriteEvent {
            pc: 0,
            preg: PredReg::new(1).unwrap(),
            value: true,
            index,
            guard: PredReg::TRUE,
            guard_value: true,
        }
    }

    #[test]
    fn trace_records_in_order() {
        let mut t = TraceSink::new();
        t.pred_write(&write(0));
        t.branch(&branch(1));
        assert_eq!(t.events().len(), 2);
        assert!(matches!(t.events()[0], Event::PredWrite(_)));
        assert!(matches!(t.events()[1], Event::Branch(_)));
    }

    #[test]
    fn filtered_views() {
        let mut t = TraceSink::new();
        t.pred_write(&write(0));
        t.branch(&branch(1));
        t.pred_write(&write(2));
        assert_eq!(t.branches().count(), 1);
        assert_eq!(t.pred_writes().count(), 2);
    }

    #[test]
    fn tuple_sink_fans_out() {
        let mut pair = (TraceSink::new(), TraceSink::new());
        pair.branch(&branch(0));
        assert_eq!(pair.0.events().len(), 1);
        assert_eq!(pair.1.events().len(), 1);
    }

    #[test]
    fn mut_ref_sink_forwards() {
        fn feed<S: EventSink>(mut sink: S, event: &BranchEvent) {
            sink.branch(event);
        }
        let mut t = TraceSink::new();
        feed(&mut t, &branch(0));
        assert_eq!(t.events().len(), 1);
    }

    #[test]
    fn null_sink_accepts_everything() {
        let mut n = NullSink;
        n.branch(&branch(0));
        n.pred_write(&write(1));
    }

    #[test]
    fn batched_delivery_matches_per_event() {
        let batch = [
            Event::PredWrite(write(0)),
            Event::Branch(branch(1)),
            Event::PredWrite(write(2)),
        ];
        // default implementation (per-event loop) through a sink that
        // only implements the required methods
        struct Plain(TraceSink);
        impl EventSink for Plain {
            fn branch(&mut self, event: &BranchEvent) {
                self.0.branch(event);
            }
            fn pred_write(&mut self, event: &PredWriteEvent) {
                self.0.pred_write(event);
            }
        }
        let mut plain = Plain(TraceSink::new());
        plain.events(&batch);
        // overridden implementations
        let mut fast = TraceSink::new();
        EventSink::events(&mut fast, &batch);
        let mut pair = (TraceSink::new(), TraceSink::new());
        pair.events(&batch);
        let mut via_ref = TraceSink::new();
        (&mut via_ref as &mut dyn EventSink).events(&batch);
        for sink in [&plain.0, &fast, &pair.0, &pair.1, &via_ref] {
            assert_eq!(sink.events(), &batch);
        }
    }
}

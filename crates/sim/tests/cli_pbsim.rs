//! End-to-end tests of the `pbsim` binary.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn scratch(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("predbranch-sim-test-{}-{name}", std::process::id()));
    p
}

const PROGRAM: &str = "    mov r1 = 0\nloop:\n    cmp.lt p1, p2 = r1, 7\n    (p1) add r1 = r1, 1\n    (p1) br.region 0, loop\n    halt\n";

#[test]
fn runs_assembly_and_reports_summary() {
    let src = scratch("run.s");
    fs::write(&src, PROGRAM).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_pbsim"))
        .args([src.to_str().unwrap(), "--latency", "2"])
        .output()
        .expect("pbsim runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("halted:              true"), "{text}");
    assert!(text.contains("region-based:      8"), "{text}");
    fs::remove_file(src).ok();
}

#[test]
fn trace_mode_prints_events() {
    let src = scratch("trace.s");
    fs::write(&src, PROGRAM).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_pbsim"))
        .args([src.to_str().unwrap(), "--trace"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("branch "), "{text}");
    assert!(text.contains("predset"), "{text}");
    fs::remove_file(src).ok();
}

#[test]
fn hex_mode_executes_encoded_words() {
    // encode the program with the library, execute via --hex
    let program = predbranch_isa::assemble(PROGRAM).unwrap();
    let words = predbranch_isa::encode_program(&program).unwrap();
    let hex: String = words.iter().map(|w| format!("{w:016x}\n")).collect();
    let path = scratch("run.hex");
    fs::write(&path, hex).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_pbsim"))
        .args([path.to_str().unwrap(), "--hex"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("halted:              true"), "{text}");
    fs::remove_file(path).ok();
}

#[test]
fn budget_exhaustion_is_a_failure_exit() {
    let src = scratch("spin.s");
    fs::write(&src, "loop: br loop\n halt\n").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_pbsim"))
        .args([src.to_str().unwrap(), "--max", "100"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    fs::remove_file(src).ok();
}

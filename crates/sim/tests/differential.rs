//! Differential testing: for random structured programs, the if-converted
//! (predicated) binary must compute exactly the same architectural result
//! as the plain branchy lowering. This is the end-to-end correctness
//! argument for the whole compiler + executor substrate.

use std::collections::HashMap;

use proptest::prelude::*;

use predbranch_compiler::{
    hoist_compares, if_convert, lower, profile_cfg, Cfg, CfgBuilder, Cond, IfConvertConfig,
    ProfileConfig,
};
use predbranch_isa::{AluOp, CmpCond, Gpr, Src};
use predbranch_sim::{Executor, Memory, NullSink};

const MAX_INSTS: u64 = 2_000_000;

/// A generated straight-line operation over registers r1..r10.
#[derive(Debug, Clone)]
enum GenOp {
    Alu(AluOp, u8, u8, i32),
    AluReg(AluOp, u8, u8, u8),
    Mov(u8, i32),
    Load(u8, u8, i32),
    Store(u8, u8, i32),
}

/// A generated structured statement.
#[derive(Debug, Clone)]
enum Stmt {
    Op(GenOp),
    IfThenElse(GenCond, Vec<Stmt>, Vec<Stmt>),
    IfThen(GenCond, Vec<Stmt>),
    ForLoop(u8, Vec<Stmt>),
}

#[derive(Debug, Clone, Copy)]
struct GenCond {
    cond: CmpCond,
    src1: u8,
    imm: i32,
}

fn r(i: u8) -> Gpr {
    Gpr::new(i).unwrap()
}

fn arb_data_reg() -> impl Strategy<Value = u8> {
    1u8..10
}

fn arb_op() -> impl Strategy<Value = GenOp> {
    let alu = prop::sample::select(vec![
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Rem,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
    ]);
    prop_oneof![
        (alu.clone(), arb_data_reg(), arb_data_reg(), -10i32..10)
            .prop_map(|(op, d, s, imm)| GenOp::Alu(op, d, s, imm)),
        (alu, arb_data_reg(), arb_data_reg(), arb_data_reg())
            .prop_map(|(op, d, s1, s2)| GenOp::AluReg(op, d, s1, s2)),
        (arb_data_reg(), -100i32..100).prop_map(|(d, imm)| GenOp::Mov(d, imm)),
        (arb_data_reg(), arb_data_reg(), 0i32..32).prop_map(|(d, b, o)| GenOp::Load(d, b, o)),
        (arb_data_reg(), arb_data_reg(), 0i32..32).prop_map(|(s, b, o)| GenOp::Store(s, b, o)),
    ]
}

fn arb_cond() -> impl Strategy<Value = GenCond> {
    (
        prop::sample::select(CmpCond::ALL.to_vec()),
        arb_data_reg(),
        -8i32..8,
    )
        .prop_map(|(cond, src1, imm)| GenCond { cond, src1, imm })
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    let leaf = arb_op().prop_map(Stmt::Op);
    leaf.prop_recursive(3, 24, 6, |inner| {
        prop_oneof![
            arb_op().prop_map(Stmt::Op),
            (
                arb_cond(),
                prop::collection::vec(inner.clone(), 0..4),
                prop::collection::vec(inner.clone(), 0..4)
            )
                .prop_map(|(c, t, e)| Stmt::IfThenElse(c, t, e)),
            (arb_cond(), prop::collection::vec(inner.clone(), 0..4))
                .prop_map(|(c, t)| Stmt::IfThen(c, t)),
            (1u8..5, prop::collection::vec(inner, 0..4))
                .prop_map(|(n, body)| Stmt::ForLoop(n, body)),
        ]
    })
}

fn emit(b: &mut CfgBuilder, stmt: &Stmt, depth: u8) {
    match stmt {
        Stmt::Op(op) => match *op {
            GenOp::Alu(op, d, s, imm) => b.alu(op, r(d), r(s), Src::Imm(imm)),
            GenOp::AluReg(op, d, s1, s2) => b.alu(op, r(d), r(s1), Src::Reg(r(s2))),
            GenOp::Mov(d, imm) => b.mov(r(d), imm),
            GenOp::Load(d, base, off) => b.load(r(d), r(base), off),
            GenOp::Store(s, base, off) => b.store(r(s), r(base), off),
        },
        Stmt::IfThenElse(c, t, e) => {
            b.if_then_else(
                Cond::new(c.cond, r(c.src1), c.imm),
                |b| {
                    for s in t {
                        emit(b, s, depth);
                    }
                },
                |b| {
                    for s in e {
                        emit(b, s, depth);
                    }
                },
            );
        }
        Stmt::IfThen(c, t) => {
            b.if_then(Cond::new(c.cond, r(c.src1), c.imm), |b| {
                for s in t {
                    emit(b, s, depth);
                }
            });
        }
        Stmt::ForLoop(n, body) => {
            // dedicated counter register per nesting depth, untouched by
            // the r1..r10 data ops
            let counter = r(30 + depth);
            b.for_range(counter, 0, *n as i32, |b| {
                for s in body {
                    emit(b, s, depth + 1);
                }
            });
        }
    }
}

fn build_cfg(stmts: &[Stmt]) -> Cfg {
    let mut b = CfgBuilder::new();
    // seed data registers from memory so behaviour is data-dependent
    for i in 1..10u8 {
        b.load(r(i), Gpr::ZERO, i as i32);
    }
    for s in stmts {
        emit(&mut b, s, 0);
    }
    b.halt();
    b.finish().expect("generated programs are well-formed")
}

fn arb_memory() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(-50i64..50, 32)
}

fn run_program(
    program: &predbranch_isa::Program,
    init: &[i64],
) -> (Vec<i64>, Vec<(i64, i64)>, bool) {
    let memory = Memory::from_slice(0, init);
    let mut exec = Executor::new(program, memory);
    let summary = exec.run(&mut NullSink, MAX_INSTS);
    let regs = exec.state().regs().to_vec();
    let mut mem: Vec<(i64, i64)> = exec.memory().iter().collect();
    mem.sort_unstable();
    (regs, mem, summary.halted)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline property: plain lowering and if-conversion agree on
    /// final registers and memory for every generated program.
    #[test]
    fn ifconvert_preserves_semantics(
        stmts in prop::collection::vec(arb_stmt(), 1..8),
        init in arb_memory(),
        aggressive in any::<bool>(),
    ) {
        let cfg = build_cfg(&stmts);
        let plain = lower(&cfg).expect("lowering succeeds");

        // profile on the same input the run uses (self-training keeps the
        // convert/keep decisions deterministic and input-correlated)
        let mut train: HashMap<i64, i64> =
            init.iter().enumerate().map(|(a, &v)| (a as i64, v)).collect();
        let profile = profile_cfg(&cfg, &mut train, &ProfileConfig::default());

        let config = if aggressive {
            IfConvertConfig { convert_bias_below: 1.01, ..IfConvertConfig::default() }
        } else {
            IfConvertConfig::default()
        };
        let converted = if_convert(&cfg, Some(&profile), &config).expect("if-conversion succeeds");

        let (regs_a, mem_a, halted_a) = run_program(&plain, &init);
        let (regs_b, mem_b, halted_b) = run_program(&converted.program, &init);

        prop_assert!(halted_a, "plain program must halt");
        prop_assert!(halted_b, "converted program must halt");
        prop_assert_eq!(&regs_a[..30], &regs_b[..30], "data registers must match");
        prop_assert_eq!(mem_a, mem_b, "memory must match");
    }

    /// Without profile data the converter uses its unknown-bias default;
    /// semantics must still be preserved.
    #[test]
    fn ifconvert_without_profile_preserves_semantics(
        stmts in prop::collection::vec(arb_stmt(), 1..6),
        init in arb_memory(),
    ) {
        let cfg = build_cfg(&stmts);
        let plain = lower(&cfg).expect("lowering succeeds");
        let converted =
            if_convert(&cfg, None, &IfConvertConfig::default()).expect("if-conversion succeeds");

        let (regs_a, mem_a, halted_a) = run_program(&plain, &init);
        let (regs_b, mem_b, halted_b) = run_program(&converted.program, &init);
        prop_assert!(halted_a && halted_b);
        prop_assert_eq!(&regs_a[..30], &regs_b[..30]);
        prop_assert_eq!(mem_a, mem_b);
    }

    /// Compare hoisting is semantics-preserving on both the plain and the
    /// predicated binaries of random structured programs.
    #[test]
    fn hoisting_preserves_semantics(
        stmts in prop::collection::vec(arb_stmt(), 1..8),
        init in arb_memory(),
    ) {
        let cfg = build_cfg(&stmts);
        let plain = lower(&cfg).expect("lowering succeeds");
        let converted =
            if_convert(&cfg, None, &IfConvertConfig::default()).expect("if-conversion succeeds");
        for program in [&plain, &converted.program] {
            let hoisted = hoist_compares(program);
            prop_assert_eq!(hoisted.program.len(), program.len());
            let (regs_a, mem_a, halted_a) = run_program(program, &init);
            let (regs_b, mem_b, halted_b) = run_program(&hoisted.program, &init);
            prop_assert_eq!(halted_a, halted_b);
            prop_assert_eq!(&regs_a[..], &regs_b[..]);
            prop_assert_eq!(mem_a, mem_b);
        }
    }

    /// Structural accounting: every accepted region removed at least one
    /// branch, and the emitted region-branch instructions agree exactly
    /// with the converter's own bookkeeping.
    #[test]
    fn ifconvert_bookkeeping_matches_emitted_code(
        stmts in prop::collection::vec(arb_stmt(), 1..8),
    ) {
        let cfg = build_cfg(&stmts);
        let converted =
            if_convert(&cfg, None, &IfConvertConfig::default()).expect("if-conversion succeeds");
        for region in &converted.regions {
            prop_assert!(region.converted_branches >= 1);
        }
        let s = converted.program.stats();
        prop_assert_eq!(s.region_branches, converted.stats.branches_kept);
        let per_region: u32 = converted.regions.iter().map(|r| r.kept_branches).sum();
        prop_assert_eq!(per_region, converted.stats.branches_kept);
        let converted_total: u32 =
            converted.regions.iter().map(|r| r.converted_branches).sum();
        prop_assert_eq!(converted_total, converted.stats.branches_converted);
    }
}

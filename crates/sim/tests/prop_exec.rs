//! Executor property tests on randomly generated valid programs.

use proptest::prelude::*;

use predbranch_isa::{AluOp, CmpCond, CmpType, Gpr, Inst, Op, PredReg, Program, Src};
use predbranch_sim::{Executor, Memory, NullSink, TraceSink};

fn arb_gpr() -> impl Strategy<Value = Gpr> {
    (0u8..16).prop_map(|i| Gpr::new(i).unwrap())
}

fn arb_pred() -> impl Strategy<Value = PredReg> {
    (0u8..16).prop_map(|i| PredReg::new(i).unwrap())
}

fn arb_op(len: u32) -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Nop),
        Just(Op::Halt),
        (0..len).prop_map(|target| Op::Br {
            target,
            region: None
        }),
        (0..len, any::<bool>()).prop_map(|(target, tag)| Op::Br {
            target,
            region: tag.then_some(1),
        }),
        (arb_gpr(), -100i32..100).prop_map(|(dst, imm)| Op::Mov {
            dst,
            src: Src::Imm(imm)
        }),
        (
            prop::sample::select(AluOp::ALL.to_vec()),
            arb_gpr(),
            arb_gpr(),
            -8i32..8
        )
            .prop_map(|(op, dst, src1, imm)| Op::Alu {
                op,
                dst,
                src1,
                src2: Src::Imm(imm)
            }),
        (arb_gpr(), arb_gpr(), 0i32..64).prop_map(|(dst, base, offset)| Op::Load {
            dst,
            base,
            offset
        }),
        (arb_gpr(), arb_gpr(), 0i32..64).prop_map(|(src, base, offset)| Op::Store {
            src,
            base,
            offset
        }),
        (
            prop::sample::select(CmpType::ALL.to_vec()),
            prop::sample::select(CmpCond::ALL.to_vec()),
            arb_pred(),
            arb_pred(),
            arb_gpr(),
            -8i32..8
        )
            .prop_map(|(ctype, cond, p_true, p_false, src1, imm)| Op::Cmp {
                ctype,
                cond,
                p_true,
                p_false,
                src1,
                src2: Src::Imm(imm),
            }),
    ]
}

fn arb_program() -> impl Strategy<Value = Program> {
    (2u32..40)
        .prop_flat_map(|len| prop::collection::vec((arb_pred(), arb_op(len)), len as usize))
        .prop_map(|pairs| {
            let mut insts: Vec<Inst> = pairs
                .into_iter()
                .map(|(guard, op)| Inst::guarded(guard, op))
                .collect();
            insts.push(Inst::new(Op::Halt));
            Program::new(insts).expect("targets are in range and halt exists")
        })
}

const BUDGET: u64 = 20_000;

proptest! {
    /// Execution is deterministic: identical runs produce identical
    /// state, memory, and event streams.
    #[test]
    fn execution_is_deterministic(program in arb_program()) {
        let run = || {
            let mut exec = Executor::new(&program, Memory::new());
            let mut trace = TraceSink::new();
            let summary = exec.run(&mut trace, BUDGET);
            (summary, exec.state().clone(), trace)
        };
        let (s1, st1, t1) = run();
        let (s2, st2, t2) = run();
        prop_assert_eq!(s1, s2);
        prop_assert_eq!(st1, st2);
        prop_assert_eq!(t1.events(), t2.events());
    }

    /// The executor never exceeds its instruction budget, and the
    /// summary's counters are internally consistent.
    #[test]
    fn budget_and_counters_consistent(program in arb_program()) {
        let mut exec = Executor::new(&program, Memory::new());
        let mut trace = TraceSink::new();
        let summary = exec.run(&mut trace, BUDGET);
        prop_assert!(summary.instructions <= BUDGET);
        prop_assert_eq!(summary.instructions, exec.instructions());
        prop_assert!(summary.conditional_branches <= summary.branches);
        prop_assert!(summary.taken_conditional <= summary.conditional_branches);
        prop_assert_eq!(summary.branches, trace.branches().count() as u64);
        prop_assert_eq!(summary.pred_writes, trace.pred_writes().count() as u64);
    }

    /// The sink choice cannot perturb execution (sinks observe, they
    /// don't steer).
    #[test]
    fn sinks_do_not_perturb(program in arb_program()) {
        let mut a = Executor::new(&program, Memory::new());
        let mut b = Executor::new(&program, Memory::new());
        let sa = a.run(&mut NullSink, BUDGET);
        let sb = b.run(&mut TraceSink::new(), BUDGET);
        prop_assert_eq!(sa, sb);
        prop_assert_eq!(a.state(), b.state());
        prop_assert_eq!(a.memory(), b.memory());
    }

    /// Architectural invariants hold at every point: r0 stays zero, p0
    /// stays true, and every reported branch outcome equals the guard's
    /// architectural value at that moment.
    #[test]
    fn architectural_invariants(program in arb_program()) {
        let mut exec = Executor::new(&program, Memory::new());
        let mut trace = TraceSink::new();
        exec.run(&mut trace, BUDGET);
        prop_assert_eq!(exec.state().reg(Gpr::ZERO), 0);
        prop_assert!(exec.state().pred(PredReg::TRUE));
        // replay predicate file from events; conditional branch outcomes
        // must match the replayed guard values
        let mut preds = [false; 64];
        preds[0] = true;
        for event in trace.events() {
            match event {
                predbranch_sim::Event::PredWrite(w) => {
                    preds[w.preg.index() as usize] = w.value;
                }
                predbranch_sim::Event::Branch(b) => {
                    prop_assert_eq!(b.taken, preds[b.guard.index() as usize]);
                    prop_assert_eq!(b.conditional, !b.guard.is_always_true());
                }
            }
        }
    }
}

proptest! {
    /// Lint soundness: instructions the static linter marks unreachable
    /// are never fetched by the executor, on any generated program.
    #[test]
    fn unreachable_lint_is_sound(program in arb_program()) {
        use predbranch_isa::{lint_program, Lint};

        #[derive(Default)]
        struct FetchedPcs(std::collections::HashSet<u32>);
        impl predbranch_sim::EventSink for FetchedPcs {
            fn branch(&mut self, _: &predbranch_sim::BranchEvent) {}
            fn pred_write(&mut self, _: &predbranch_sim::PredWriteEvent) {}
            fn instruction(&mut self, pc: u32, _index: u64) {
                self.0.insert(pc);
            }
        }

        let mut fetched = FetchedPcs::default();
        Executor::new(&program, Memory::new()).run(&mut fetched, BUDGET);
        for lint in lint_program(&program) {
            if let Lint::Unreachable { pc } = lint {
                prop_assert!(
                    !fetched.0.contains(&pc),
                    "statically unreachable pc {pc} was fetched"
                );
            }
        }
    }
}

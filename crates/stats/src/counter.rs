//! Event counters and derived ratios.

use std::fmt;
use std::ops::AddAssign;

/// A saturating `u64` event counter.
///
/// Counters deliberately saturate instead of wrapping: an experiment that
/// somehow exceeds `u64::MAX` events should report a pegged counter, not a
/// small bogus value.
///
/// # Examples
///
/// ```
/// use predbranch_stats::Counter;
///
/// let mut c = Counter::new();
/// c.add(3);
/// c.increment();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter starting at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Creates a counter starting at `value`.
    pub fn with_value(value: u64) -> Self {
        Counter(value)
    }

    /// Adds `n` to the counter, saturating at `u64::MAX`.
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Adds one to the counter.
    pub fn increment(&mut self) {
        self.add(1);
    }

    /// Returns the current count.
    pub fn get(&self) -> u64 {
        self.0
    }

    /// Resets the counter to zero.
    pub fn reset(&mut self) {
        self.0 = 0;
    }

    /// Returns this counter expressed as a fraction of `denom`.
    ///
    /// # Examples
    ///
    /// ```
    /// use predbranch_stats::Counter;
    ///
    /// let mut hits = Counter::new();
    /// hits.add(30);
    /// assert_eq!(hits.as_fraction_of(120).percent(), 25.0);
    /// ```
    pub fn as_fraction_of(&self, denom: u64) -> Ratio {
        Ratio::of(self.0, denom)
    }
}

impl AddAssign<u64> for Counter {
    fn add_assign(&mut self, rhs: u64) {
        self.add(rhs);
    }
}

impl From<u64> for Counter {
    fn from(value: u64) -> Self {
        Counter(value)
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A numerator/denominator pair with convenience accessors.
///
/// `Ratio` keeps the raw integers so tables can print both the rate and the
/// underlying event counts; `0/0` is defined as a rate of `0.0` so that
/// empty benchmarks render cleanly rather than as `NaN`.
///
/// # Examples
///
/// ```
/// use predbranch_stats::Ratio;
///
/// let r = Ratio::of(7, 200);
/// assert_eq!(r.value(), 0.035);
/// assert_eq!(r.per_kilo(), 35.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Ratio {
    numerator: u64,
    denominator: u64,
}

impl Ratio {
    /// Creates the ratio `numerator / denominator`.
    pub fn of(numerator: u64, denominator: u64) -> Self {
        Ratio {
            numerator,
            denominator,
        }
    }

    /// The numerator (event count).
    pub fn numerator(&self) -> u64 {
        self.numerator
    }

    /// The denominator (population count).
    pub fn denominator(&self) -> u64 {
        self.denominator
    }

    /// The ratio as a float; `0.0` when the denominator is zero.
    ///
    /// The zero-denominator rule applies to *any* numerator — `5/0` is
    /// `0.0`, not infinity: a rate over an empty population is reported
    /// as "no events", never as a NaN/∞ that would poison downstream
    /// means. Counts at `u64::MAX` convert through `f64` (53-bit
    /// mantissa), so extreme ratios are correct to within one part in
    /// 2⁵³ — `Ratio::of(u64::MAX, u64::MAX).value()` is exactly `1.0`.
    pub fn value(&self) -> f64 {
        if self.denominator == 0 {
            0.0
        } else {
            self.numerator as f64 / self.denominator as f64
        }
    }

    /// The ratio scaled to percent; `0.0` when the denominator is zero
    /// (see [`Ratio::value`] for the exact degenerate-case contract).
    pub fn percent(&self) -> f64 {
        self.value() * 100.0
    }

    /// The ratio scaled to events per thousand (e.g. MPKI when the
    /// denominator counts kilo-instructions × 1000).
    pub fn per_kilo(&self) -> f64 {
        self.value() * 1000.0
    }

    /// The complement ratio `(denominator - numerator) / denominator`.
    ///
    /// Useful for flipping a misprediction rate into an accuracy.
    pub fn complement(&self) -> Ratio {
        Ratio {
            numerator: self.denominator.saturating_sub(self.numerator),
            denominator: self.denominator,
        }
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3}% ({}/{})",
            self.percent(),
            self.numerator,
            self.denominator
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_starts_at_zero() {
        assert_eq!(Counter::new().get(), 0);
        assert_eq!(Counter::default().get(), 0);
    }

    #[test]
    fn counter_adds_and_increments() {
        let mut c = Counter::new();
        c.add(10);
        c.increment();
        c += 4;
        assert_eq!(c.get(), 15);
    }

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let mut c = Counter::with_value(u64::MAX - 1);
        c.add(10);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn counter_reset_returns_to_zero() {
        let mut c = Counter::with_value(99);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        let r = Ratio::of(5, 0);
        assert_eq!(r.value(), 0.0);
        assert_eq!(r.percent(), 0.0);
        assert_eq!(r.per_kilo(), 0.0);
        // a pegged numerator over an empty population is still "no events"
        assert_eq!(Ratio::of(u64::MAX, 0).percent(), 0.0);
        assert_eq!(Ratio::of(0, 0).percent(), 0.0);
    }

    #[test]
    fn ratio_extreme_counts_stay_finite_and_ordered() {
        assert_eq!(Ratio::of(u64::MAX, u64::MAX).value(), 1.0);
        assert_eq!(Ratio::of(u64::MAX, u64::MAX).percent(), 100.0);
        let tiny = Ratio::of(1, u64::MAX).value();
        assert!(tiny > 0.0 && tiny < 1e-18);
        let huge = Ratio::of(u64::MAX, 1).percent();
        assert!(huge.is_finite() && huge > 1e21);
    }

    #[test]
    fn ratio_percent_and_per_kilo() {
        let r = Ratio::of(1, 8);
        assert_eq!(r.percent(), 12.5);
        assert_eq!(r.per_kilo(), 125.0);
    }

    #[test]
    fn ratio_complement_flips_numerator() {
        let r = Ratio::of(30, 100);
        assert_eq!(r.complement(), Ratio::of(70, 100));
    }

    #[test]
    fn ratio_complement_saturates_if_numerator_exceeds_denominator() {
        let r = Ratio::of(150, 100);
        assert_eq!(r.complement().numerator(), 0);
    }

    #[test]
    fn counter_as_fraction_of() {
        let c = Counter::with_value(25);
        assert_eq!(c.as_fraction_of(100).percent(), 25.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Counter::with_value(7).to_string(), "7");
        assert_eq!(Ratio::of(1, 4).to_string(), "25.000% (1/4)");
    }
}
